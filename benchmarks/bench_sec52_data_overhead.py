"""§5.2: record-protocol data overhead for web browsing.

Paper: "the median MAC overhead for SplitTLS compared to NoEncrypt was
0.6%; as expected, mcTLS triples that to 2.4%" — mcTLS records carry
three MACs plus a context byte instead of one MAC.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table

from repro.experiments.overhead import record_overhead
from repro.workloads import generate_corpus


def test_sec52_record_overhead(benchmark, capsys):
    corpus = generate_corpus(n_pages=100, seed=2015)
    results = benchmark.pedantic(
        lambda: record_overhead(corpus, max_pages=100), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{r.median_overhead_pct:.2f}%",
            f"{r.p90_overhead_pct:.2f}%",
            {"SplitTLS": "0.6%", "mcTLS": "2.4%"}[name],
        ]
        for name, r in results.items()
    ]
    ratio = (
        results["mcTLS"].median_overhead_pct / results["SplitTLS"].median_overhead_pct
    )
    emit(
        "sec52_data_overhead",
        "Per-page record overhead vs NoEncrypt (100 synthetic pages, 4-Context)\n"
        + format_table(["protocol", "median", "p90", "paper median"], rows)
        + f"\n\nmcTLS/SplitTLS median ratio: {ratio:.1f}x (paper: 3x)",
        capsys,
    )
