"""Ablation: the cost of the optional reader-policing fixes (§3.4).

The default 3-MAC scheme lets readers modify records undetectably *by
other readers*.  The paper sketches two fixes and judges "the benefits
seem insufficient to justify the additional overhead" — this bench puts
numbers on that judgment: per-record bytes and protection throughput for
the default scheme vs pairwise reader MACs vs writer signatures.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table

from repro.crypto.rsa import generate_rsa_key
from repro.mctls import keys as mk
from repro.mctls.record import McTLSRecordLayer
from repro.mctls.strict_readers import PairwiseReaderMACs, WriterSignatures
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256 as SUITE
from repro.tls.record import APPLICATION_DATA

PAYLOAD = b"x" * 1400  # one MSS-ish record
ROUNDS = 200


def _default_layer():
    layer = McTLSRecordLayer(is_client=True)
    layer.set_suite(SUITE)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    layer.install_context_keys(1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1))
    layer.activate_write()
    return layer


def test_ablation_strict_readers(benchmark, capsys):
    signing_key = generate_rsa_key(1024)

    def run():
        rows = []

        # Baseline: the standard 3-MAC record.
        layer = _default_layer()
        start = time.process_time()
        for _ in range(ROUNDS):
            wire = layer.encode(APPLICATION_DATA, PAYLOAD, 1)
        elapsed = time.process_time() - start
        overhead = len(wire) - len(PAYLOAD)
        rows.append(
            ["3-MAC (default)", f"{overhead}", f"{ROUNDS / elapsed:.0f}", "no"]
        )

        # Fix (a): pairwise reader MACs, 2 and 4 readers.
        for n_readers in (2, 4):
            scheme = PairwiseReaderMACs(
                reader_keys={i: bytes([i]) * 32 for i in range(1, n_readers + 1)}
            )
            start = time.process_time()
            for seq in range(ROUNDS):
                scheme.protect(seq, APPLICATION_DATA, 1, PAYLOAD)
            elapsed = time.process_time() - start
            rows.append(
                [
                    f"pairwise MACs ({n_readers} readers)",
                    f"+{scheme.overhead_bytes()}",
                    f"{ROUNDS / elapsed:.0f}",
                    "yes",
                ]
            )

        # Fix (b): writer signatures (RSA-1024).
        scheme = WriterSignatures(signing_key=signing_key)
        sig_rounds = max(10, ROUNDS // 10)  # signatures are slow
        start = time.process_time()
        for seq in range(sig_rounds):
            scheme.protect(seq, APPLICATION_DATA, 1, PAYLOAD)
        elapsed = time.process_time() - start
        rows.append(
            [
                "writer signatures (RSA-1024)",
                f"+{scheme.overhead_bytes()}",
                f"{sig_rounds / elapsed:.0f}",
                "yes",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_strict_readers",
        "Reader-policing options: per-record overhead and protect ops/sec\n"
        + format_table(
            ["scheme", "bytes/record", "records/s", "readers policed"], rows
        )
        + "\n\n(The paper: 'the benefits seem insufficient to justify the"
        "\nadditional overhead' — the signature row shows why.)",
        capsys,
    )
