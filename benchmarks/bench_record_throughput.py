"""Record-protection throughput per cipher suite and protocol.

Not a paper figure — this bench justifies (and quantifies) the
reproduction's cipher-suite substitution: pure-Python AES-128-CBC is
orders of magnitude slower than the SHA-CTR suite that the simulation
benches use, while the record *geometry* (what the paper's numbers
depend on) is near-identical.  It also shows the mcTLS-vs-TLS record
cost ratio: three HMACs + per-context keying vs one HMAC.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table

from repro.mctls import keys as mk
from repro.mctls.record import McTLSRecordLayer
from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
)
from repro.tls.record import APPLICATION_DATA, RecordLayer

PAYLOAD = b"x" * 16000  # near-full record
AES_BYTES = 256_000  # pure-Python AES is slow; keep its round small
FAST_BYTES = 8_000_000


def _tls_layer(suite):
    layer = RecordLayer()
    layer.write_state.activate(suite, suite.new_cipher(bytes(16)), b"m" * 32)
    return layer


def _mctls_layer(suite):
    layer = McTLSRecordLayer(is_client=True)
    layer.set_suite(suite)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    layer.install_context_keys(1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1))
    layer.activate_write()
    return layer


def _measure(encode, total_bytes):
    rounds = max(1, total_bytes // len(PAYLOAD))
    start = time.process_time()
    wire_len = 0
    for _ in range(rounds):
        wire_len = len(encode(PAYLOAD))
    elapsed = time.process_time() - start
    mbps = rounds * len(PAYLOAD) / elapsed / 1e6
    overhead_pct = 100.0 * (wire_len - len(PAYLOAD)) / len(PAYLOAD)
    return mbps, overhead_pct


def test_record_throughput(benchmark, capsys):
    def run():
        rows = []
        configs = [
            ("TLS / AES-128-CBC", _tls_layer(SUITE_DHE_RSA_AES128_CBC_SHA256), AES_BYTES,
             lambda layer: lambda p: layer.encode(APPLICATION_DATA, p)),
            ("TLS / SHA-CTR", _tls_layer(SUITE_DHE_RSA_SHACTR_SHA256), FAST_BYTES,
             lambda layer: lambda p: layer.encode(APPLICATION_DATA, p)),
            ("mcTLS / AES-128-CBC", _mctls_layer(SUITE_DHE_RSA_AES128_CBC_SHA256), AES_BYTES,
             lambda layer: lambda p: layer.encode(APPLICATION_DATA, p, 1)),
            ("mcTLS / SHA-CTR", _mctls_layer(SUITE_DHE_RSA_SHACTR_SHA256), FAST_BYTES,
             lambda layer: lambda p: layer.encode(APPLICATION_DATA, p, 1)),
        ]
        for name, layer, budget, make_encode in configs:
            mbps, overhead = _measure(make_encode(layer), budget)
            rows.append([name, f"{mbps:.2f}", f"{overhead:.2f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "record_throughput",
        "Record protection throughput (16 kB records, single direction)\n"
        + format_table(["configuration", "MB/s", "wire overhead"], rows)
        + "\n\nSHA-CTR preserves record geometry at tractable speed — the"
        "\nsubstitution the simulation benches rely on (EXPERIMENTS.md #1).",
        capsys,
    )
