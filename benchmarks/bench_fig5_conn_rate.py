"""Figure 5: sustainable handshake rate at the server (left) and the
middlebox (right), vs number of contexts.

Absolute rates are pure-Python rates; the paper's *ratios* are the
reproduction target:

* server: mcTLS 23–35 % below SplitTLS/E2E-TLS, the gap widening with
  contexts; client-key-distribution mode reclaims it;
* middlebox: mcTLS 45–75 % above SplitTLS (one mcTLS handshake vs two
  TLS handshakes); E2E-TLS orders of magnitude above both (blind
  forwarding).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import BENCH_REPS, cpu_testbed, emit, format_table

from repro.experiments.throughput import figure5


def test_fig5_connection_rates(benchmark, capsys):
    bed = cpu_testbed()
    rows = benchmark.pedantic(
        lambda: figure5(bed, context_counts=(1, 2, 4, 8, 16), repetitions=BENCH_REPS),
        rounds=1,
        iterations=1,
    )
    table_rows = []
    for r in rows:
        mbox = f"{r.middlebox_cps:.0f}" if r.middlebox_cps else "-"
        table_rows.append(
            [
                r.mode,
                str(r.n_contexts),
                str(r.n_middleboxes),
                f"{r.server_cps:.0f}",
                mbox,
                f"{r.client_cps:.0f}",
            ]
        )
    # Ratio summary at 1 and 16 contexts (the paper's 23%→35% span).
    def rate(mode, ctx, field):
        for r in rows:
            if r.mode == mode and r.n_contexts == ctx and r.n_middleboxes == 1:
                return getattr(r, field)
        return float("nan")

    summary_lines = []
    for ctx in (1, 16):
        mctls = rate("mcTLS", ctx, "server_cps")
        split = rate("SplitTLS", ctx, "server_cps")
        summary_lines.append(
            f"server: mcTLS vs SplitTLS at {ctx} ctx: "
            f"{100 * (1 - mctls / split):.0f}% fewer conns/s (paper: 23-35%)"
        )
    mctls_mb = rate("mcTLS", 1, "middlebox_cps")
    split_mb = rate("SplitTLS", 1, "middlebox_cps")
    summary_lines.append(
        f"middlebox: mcTLS vs SplitTLS at 1 ctx: "
        f"{100 * (mctls_mb / split_mb - 1):.0f}% more conns/s (paper: 45-75%)"
    )
    emit(
        "fig5_connection_rates",
        "Handshakes per second by node (pure-Python rates; ratios are the target)\n"
        + format_table(
            ["series", "contexts", "mboxes", "server/s", "mbox/s", "client/s"],
            table_rows,
        )
        + "\n\n"
        + "\n".join(summary_lines),
        capsys,
    )
