"""Figure 5: sustainable handshake rate, two ways.

**In-memory (pytest entry)** — the original Fig. 5 reproduction: pure
protocol-CPU handshake rates per node via ``experiments.throughput``.
The paper's *ratios* are the target:

* server: mcTLS 23–35 % below SplitTLS/E2E-TLS, the gap widening with
  contexts; client-key-distribution mode reclaims it;
* middlebox: mcTLS 45–75 % above SplitTLS (one mcTLS handshake vs two
  TLS handshakes); E2E-TLS orders of magnitude above both (blind
  forwarding).

**Real sockets (CLI entry)** — the serving-runtime capacity question:
hundreds of concurrent sessions over loopback TCP through the
``repro.aio`` runtime (client → 0–2 middlebox relays → server),
measured by the concurrent load generator, with a thread-per-connection
``repro.sockets`` baseline at equal concurrency.  Results accumulate in
a machine-readable trajectory (``BENCH_conn_rate.json``), PR-3 style::

    python benchmarks/bench_fig5_conn_rate.py --phase smoke   # CI
    python benchmarks/bench_fig5_conn_rate.py --phase full    # the real run
    python benchmarks/bench_fig5_conn_rate.py --phase sharded # mp scaling

Acceptance (full phase): every (mode × middlebox-count) cell completes
a >= 200-concurrent-session run, and the async runtime sustains >=
RUNTIME_THRESHOLD x the threaded runtime's connection rate on the
runtime-bound workload.  Handshake-CPU-bound workloads converge under
the GIL (pure-Python crypto serialises both runtimes identically — see
EXPERIMENTS.md deviation #9); their ratios are still recorded.

**Sharded (``--phase sharded``)** — the multi-process runtime question:
pure-Python handshake crypto pins one core per process, so forking the
endpoint across ``--workers`` processes is the only way past the GIL.
The phase measures CPU-bound mcTLS conn/s at 1 worker vs ``--workers``
workers (multi-process clients too, so the *client* doesn't become the
single-core bottleneck), plus a stateless-ticket resumption cell that
only works if tickets cross worker boundaries.  The scaling gate
(>= SHARDED_THRESHOLD x at 4 workers) is contingent on the host
actually having >= workers cores — a single-core host records the
measured ratio and ``pass: null`` with the reason, because demanding
parallel speedup from one core would only reward a dishonest
measurement (EXPERIMENTS.md deviation #10).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from _common import BENCH_KEY_BITS, BENCH_REPS, cpu_testbed, emit, format_table

from repro.experiments.harness import Mode, TestBed
from repro.experiments.throughput import figure5

SCHEMA = "mctls-conn-rate/1"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_conn_rate.json"
RUNTIME_THRESHOLD = 2.0
SHARDED_THRESHOLD = 2.0
SHARDED_WORKERS = 4

# The serving-load matrix of the tentpole: the three §5 protocol
# comparisons across 0/1/2 middlebox hops.
LOAD_MODES = (Mode.MCTLS, Mode.SPLIT_TLS, Mode.E2E_TLS)
LOAD_MIDDLEBOXES = (0, 1, 2)

# Runtime comparisons (async vs threaded, equal concurrency).  The
# NoEncrypt-through-a-relay cell is the acceptance gate: with crypto out
# of the way the serving runtime itself is the bottleneck, and the relay
# hop is where the runtimes differ most (two pump threads per connection
# vs two tasks on one loop).  The direct NoEncrypt cell and the mcTLS
# cell (the paper's one-hop deployment shape) are reported ungated —
# pure-Python handshake crypto serializes on the GIL in both runtimes,
# so CPU-bound cells converge toward 1x by construction (see
# EXPERIMENTS.md deviation #9).
COMPARISONS = (
    {"mode": Mode.NO_ENCRYPT, "middleboxes": 1, "gate": True, "scale": 5},
    {"mode": Mode.NO_ENCRYPT, "middleboxes": 0, "gate": False, "scale": 5},
    {"mode": Mode.MCTLS, "middleboxes": 1, "gate": False, "scale": 1},
)


def cell_key(mode: Mode, middleboxes: int, runtime: str = "async", extra: str = "") -> str:
    key = f"{mode.value}|{middleboxes}mb|{runtime}"
    return f"{key}|{extra}" if extra else key


def _entry(report_row: dict, phase: str, key_bits: int) -> dict:
    load = report_row["load"]
    entry = {
        "phase": phase,
        "mode": report_row["mode"],
        "middleboxes": report_row["middleboxes"],
        "contexts": report_row["contexts"],
        "key_bits": key_bits,
        "runtime": load["runtime"],
        "concurrency": load["concurrency"],
        "requested": load["requested"],
        "completed": load["completed"],
        "failed": load["failed"],
        "resumed": load["resumed"],
        "duration_s": load["duration_s"],
        "conn_per_s": load["conn_per_s"],
        "handshake_latency_s": load["handshake_latency_s"],
        "python": platform.python_version(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if "server" in report_row:
        entry["server_stats"] = report_row["server"]
    return entry


def run_phase(
    phase: str,
    bed: TestBed,
    concurrency: int,
    connections: int,
    resume_ratio: float,
    output: Path,
) -> dict:
    from repro.experiments.serving import run_async_load, run_threaded_load

    report = load_report(output)
    entries = report["entries"]
    print(
        f"# conn-rate bench — phase={phase}, key_bits={bed.key_bits}, "
        f"concurrency={concurrency}, connections={connections}/cell"
    )

    # 1. The serving matrix on the async runtime.
    for mode in LOAD_MODES:
        for middleboxes in LOAD_MIDDLEBOXES:
            row = asyncio.run(
                run_async_load(
                    bed,
                    mode,
                    middleboxes,
                    connections=connections,
                    concurrency=concurrency,
                )
            )
            entry = _entry(row, phase, bed.key_bits)
            entries[f"{phase}@{cell_key(mode, middleboxes)}"] = entry
            lat = entry["handshake_latency_s"]
            print(
                f"  {mode.value:9s} {middleboxes}mb async    "
                f"{entry['conn_per_s']:>8.1f} conn/s  "
                f"p50={lat['p50']:.3f}s p95={lat['p95']:.3f}s p99={lat['p99']:.3f}s  "
                f"failed={entry['failed']}"
            )

    # 2. A resumption cell: the --resume-ratio knob exercised end to end.
    row = asyncio.run(
        run_async_load(
            bed,
            Mode.MCTLS,
            1,
            connections=connections,
            concurrency=concurrency,
            resume_ratio=resume_ratio,
        )
    )
    entry = _entry(row, phase, bed.key_bits)
    entry["resume_ratio"] = resume_ratio
    entries[f"{phase}@{cell_key(Mode.MCTLS, 1, extra=f'resume{resume_ratio}')}"] = entry
    print(
        f"  {Mode.MCTLS.value:9s} 1mb async    "
        f"{entry['conn_per_s']:>8.1f} conn/s  resumed={entry['resumed']} "
        f"of {entry['completed']} (ratio {resume_ratio})"
    )

    # 3. Runtime comparison: the same workload end-to-end on both
    # runtimes (threaded = blocking clients + thread-per-connection
    # servers; async = loadgen + repro.aio servers).
    comparisons = {}
    for spec in COMPARISONS:
        mode, middleboxes = spec["mode"], spec["middleboxes"]
        n = connections * spec["scale"]
        threaded = run_threaded_load(
            bed, mode, middleboxes, connections=n, concurrency=concurrency
        )
        async_row = asyncio.run(
            run_async_load(
                bed, mode, middleboxes, connections=n, concurrency=concurrency
            )
        )
        t_entry = _entry(threaded, phase, bed.key_bits)
        a_entry = _entry(async_row, phase, bed.key_bits)
        entries[f"{phase}@{cell_key(mode, middleboxes, 'threaded')}"] = t_entry
        entries[f"{phase}@{cell_key(mode, middleboxes, 'async', 'vs-threaded')}"] = a_entry
        ratio = (
            a_entry["conn_per_s"] / t_entry["conn_per_s"]
            if t_entry["conn_per_s"]
            else float("inf")
        )
        comparisons[cell_key(mode, middleboxes, "ratio")] = {
            "threaded_conn_per_s": t_entry["conn_per_s"],
            "async_conn_per_s": a_entry["conn_per_s"],
            "concurrency": concurrency,
            "connections": n,
            "ratio": round(ratio, 3),
            "gate": spec["gate"],
        }
        print(
            f"  {mode.value:9s} {middleboxes}mb threaded {t_entry['conn_per_s']:>8.1f} conn/s "
            f"vs async {a_entry['conn_per_s']:>8.1f} conn/s -> {ratio:.2f}x"
            f"{'  [acceptance gate]' if spec['gate'] else ''}"
        )

    report[f"comparisons_{phase}"] = comparisons
    report["acceptance"] = compute_acceptance(report, concurrency)
    report["updated"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"# wrote {output}")
    if report["acceptance"]["pass"] is not None:
        print(
            f"# acceptance: {'PASS' if report['acceptance']['pass'] else 'FAIL'} "
            f"({json.dumps(report['acceptance']['checks'])})"
        )
    return report


def available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover


def run_sharded_phase(
    phase: str,
    bed: TestBed,
    workers: int,
    concurrency: int,
    connections: int,
    resume_ratio: float,
    ticket_ratio: float,
    output: Path,
) -> dict:
    """Measure multi-process scaling of CPU-bound mcTLS serving.

    Three cells: 1 worker (baseline), ``workers`` workers (the scaling
    numerator), and ``workers`` workers with stateless-ticket resumption
    (which exercises cross-worker ticket acceptance under load).
    """
    from repro.experiments.serving import run_sharded_load

    report = load_report(output)
    entries = report["entries"]
    cores = available_cores()
    print(
        f"# sharded conn-rate — phase={phase}, workers={workers}, "
        f"cores={cores}, key_bits={bed.key_bits}, "
        f"concurrency={concurrency}, connections={connections}/cell"
    )

    cells = {}
    for n_workers in (1, workers):
        row = run_sharded_load(
            bed,
            Mode.MCTLS,
            n_middleboxes=0,
            workers=n_workers,
            connections=connections,
            concurrency=concurrency,
            client_processes=min(n_workers, max(1, cores)),
        )
        entry = _entry(row, phase, bed.key_bits)
        entry["workers"] = n_workers
        entry["client_processes"] = row["client_processes"]
        entries[f"{phase}@{cell_key(Mode.MCTLS, 0, 'mp', f'w{n_workers}')}"] = entry
        cells[n_workers] = entry
        print(
            f"  mcTLS 0mb mp w={n_workers}  {entry['conn_per_s']:>8.1f} conn/s  "
            f"completed={entry['completed']}/{entry['requested']} "
            f"failed={entry['failed']}"
        )

    ticket_row = run_sharded_load(
        bed,
        Mode.MCTLS,
        n_middleboxes=0,
        workers=workers,
        connections=connections,
        concurrency=concurrency,
        client_processes=min(workers, max(1, cores)),
        resume_ratio=resume_ratio,
        ticket_ratio=ticket_ratio,
    )
    ticket_entry = _entry(ticket_row, phase, bed.key_bits)
    ticket_entry["workers"] = workers
    ticket_entry["resume_ratio"] = resume_ratio
    ticket_entry["ticket_ratio"] = ticket_ratio
    entries[
        f"{phase}@{cell_key(Mode.MCTLS, 0, 'mp', f'w{workers}|tickets')}"
    ] = ticket_entry
    print(
        f"  mcTLS 0mb mp w={workers} tickets  "
        f"{ticket_entry['conn_per_s']:>8.1f} conn/s  "
        f"resumed={ticket_entry['resumed']} of {ticket_entry['completed']}"
    )

    base_rate = cells[1]["conn_per_s"]
    ratio = cells[workers]["conn_per_s"] / base_rate if base_rate else float("inf")
    all_completed = all(
        e["failed"] == 0 and e["completed"] == e["requested"]
        for e in (cells[1], cells[workers], ticket_entry)
    )
    tickets_resumed = ticket_entry["resumed"] > 0
    sharded: dict = {
        "workers": workers,
        "cpu_count": cores,
        "threshold": SHARDED_THRESHOLD,
        "baseline_conn_per_s": base_rate,
        "sharded_conn_per_s": cells[workers]["conn_per_s"],
        "ratio": round(ratio, 3),
        "all_completed": all_completed,
        "tickets_resumed": tickets_resumed,
    }
    if cores >= workers:
        sharded["pass"] = bool(
            ratio >= SHARDED_THRESHOLD and all_completed and tickets_resumed
        )
    else:
        # One process per core is the whole premise; with fewer cores
        # than workers the speedup is physically unavailable, so the
        # scaling gate is not judged (the correctness checks still are).
        sharded["pass"] = None
        sharded["reason"] = (
            f"scaling gate needs >= {workers} cores; host has {cores} "
            f"(ratio recorded, correctness checks "
            f"{'passed' if all_completed and tickets_resumed else 'FAILED'})"
        )
    report["sharded"] = sharded
    report["updated"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"# wrote {output}")
    verdict = {True: "PASS", False: "FAIL", None: "NOT JUDGED"}[sharded["pass"]]
    print(
        f"# sharded scaling: {ratio:.2f}x at {workers} workers on {cores} "
        f"core(s) -> {verdict}"
        + (f" ({sharded['reason']})" if "reason" in sharded else "")
    )
    return report


def load_report(path: Path) -> dict:
    if path.exists():
        report = json.loads(path.read_text())
        if report.get("schema") == SCHEMA:
            return report
    return {"schema": SCHEMA, "entries": {}}


def compute_acceptance(report: dict, concurrency: int) -> dict:
    """Full-phase gates: every matrix cell completed its >=200-concurrent
    run with zero failures, and the gated runtime ratio clears
    RUNTIME_THRESHOLD."""
    entries = report["entries"]
    full_cells = {
        k: v
        for k, v in entries.items()
        if k.startswith("full@") and v["runtime"] == "async"
    }
    if not full_cells:
        return {"pass": None, "reason": "full phase not run", "checks": {}}
    checks = {}
    matrix_ok = True
    for mode in LOAD_MODES:
        for middleboxes in LOAD_MIDDLEBOXES:
            cell = entries.get(f"full@{cell_key(mode, middleboxes)}")
            ok = (
                cell is not None
                and cell["failed"] == 0
                and cell["completed"] == cell["requested"]
                and cell["concurrency"] >= 200
            )
            matrix_ok &= ok
            checks[f"matrix:{mode.value}|{middleboxes}mb"] = ok
    ratio_ok = True
    for key, comp in report.get("comparisons_full", {}).items():
        if comp["gate"]:
            ok = comp["ratio"] >= RUNTIME_THRESHOLD
            ratio_ok &= ok
            checks[f"runtime:{key}"] = comp["ratio"]
    return {
        "pass": bool(matrix_ok and ratio_ok),
        "threshold": RUNTIME_THRESHOLD,
        "min_concurrency": 200,
        "checks": checks,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phase", choices=("smoke", "full", "sharded"), default="full")
    parser.add_argument("--key-bits", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--connections", type=int, default=None)
    parser.add_argument("--resume-ratio", type=float, default=0.8)
    parser.add_argument("--ticket-ratio", type=float, default=1.0)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sharded cells (smoke: adds a "
        "sharded smoke pass; sharded phase default: "
        f"{SHARDED_WORKERS})",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.phase == "smoke":
        # Small keys, few sessions: proves every cell of the serving
        # matrix runs end-to-end over real sockets.  Never touches the
        # repo-root trajectory unless pointed at it.
        from repro.crypto.dh import GROUP_TEST_512

        key_bits = args.key_bits or 512
        bed = TestBed(key_bits=key_bits, dh_group=GROUP_TEST_512)
        output = args.output or (
            REPO_ROOT / "benchmarks" / "results" / "bench_conn_rate_smoke.json"
        )
        report = run_phase(
            "smoke",
            bed,
            concurrency=args.concurrency or 8,
            connections=args.connections or 24,
            resume_ratio=args.resume_ratio,
            output=output,
        )
        if args.workers:
            report = run_sharded_phase(
                "smoke",
                bed,
                workers=args.workers,
                concurrency=args.concurrency or 8,
                connections=args.connections or 24,
                resume_ratio=args.resume_ratio,
                ticket_ratio=args.ticket_ratio,
                output=output,
            )
        smoke = {
            k: v for k, v in report["entries"].items() if k.startswith("smoke@")
        }
        bad = [k for k, v in smoke.items() if v["failed"] or not v["completed"]]
        if args.workers and not report["sharded"]["tickets_resumed"]:
            bad.append("sharded:tickets_resumed")
        if bad:
            print(f"smoke FAIL: {bad}", file=sys.stderr)
            return 1
        print(f"smoke OK: {len(smoke)} cells, all sessions completed")
        return 0

    key_bits = args.key_bits or BENCH_KEY_BITS
    bed = cpu_testbed() if key_bits == BENCH_KEY_BITS else TestBed(key_bits=key_bits)
    if args.phase == "sharded":
        concurrency = args.concurrency or 64
        connections = args.connections or max(2 * concurrency, 400)
        report = run_sharded_phase(
            "sharded",
            bed,
            workers=args.workers or SHARDED_WORKERS,
            concurrency=concurrency,
            connections=connections,
            resume_ratio=args.resume_ratio,
            ticket_ratio=args.ticket_ratio,
            output=args.output or DEFAULT_OUTPUT,
        )
        return 0 if report["sharded"]["pass"] is not False else 1

    concurrency = args.concurrency or 200
    connections = args.connections or max(2 * concurrency, 400)
    run_phase(
        "full",
        bed,
        concurrency=concurrency,
        connections=connections,
        resume_ratio=args.resume_ratio,
        output=args.output or DEFAULT_OUTPUT,
    )
    return 0


# -- pytest entry: the original in-memory Fig. 5 reproduction ---------------


def test_fig5_connection_rates(benchmark, capsys):
    bed = cpu_testbed()
    rows = benchmark.pedantic(
        lambda: figure5(bed, context_counts=(1, 2, 4, 8, 16), repetitions=BENCH_REPS),
        rounds=1,
        iterations=1,
    )
    table_rows = []
    for r in rows:
        mbox = f"{r.middlebox_cps:.0f}" if r.middlebox_cps else "-"
        table_rows.append(
            [
                r.mode,
                str(r.n_contexts),
                str(r.n_middleboxes),
                f"{r.server_cps:.0f}",
                mbox,
                f"{r.client_cps:.0f}",
            ]
        )
    # Ratio summary at 1 and 16 contexts (the paper's 23%→35% span).
    def rate(mode, ctx, field):
        for r in rows:
            if r.mode == mode and r.n_contexts == ctx and r.n_middleboxes == 1:
                return getattr(r, field)
        return float("nan")

    summary_lines = []
    for ctx in (1, 16):
        mctls = rate("mcTLS", ctx, "server_cps")
        split = rate("SplitTLS", ctx, "server_cps")
        summary_lines.append(
            f"server: mcTLS vs SplitTLS at {ctx} ctx: "
            f"{100 * (1 - mctls / split):.0f}% fewer conns/s (paper: 23-35%)"
        )
    mctls_mb = rate("mcTLS", 1, "middlebox_cps")
    split_mb = rate("SplitTLS", 1, "middlebox_cps")
    summary_lines.append(
        f"middlebox: mcTLS vs SplitTLS at 1 ctx: "
        f"{100 * (mctls_mb / split_mb - 1):.0f}% more conns/s (paper: 45-75%)"
    )
    emit(
        "fig5_connection_rates",
        "Handshakes per second by node (pure-Python rates; ratios are the target)\n"
        + format_table(
            ["series", "contexts", "mboxes", "server/s", "mbox/s", "client/s"],
            table_rows,
        )
        + "\n\n"
        + "\n".join(summary_lines),
        capsys,
    )


if __name__ == "__main__":
    raise SystemExit(main())
