"""Ablation: transport knobs behind the paper's timing anomalies.

Two sweeps DESIGN.md calls out:

* **Nagle × delayed ACK** — the paper blames Nagle for every mcTLS
  timing artefact; delayed ACKs (not modelled in their analysis) make
  the stalls *shorter* (a 40 ms timer instead of a full RTT in the
  two-small-writes case) but can also penalise the baselines.  We sweep
  all four combinations for mcTLS TTFB.
* **handshake mode** — default (contributory) vs client key distribution
  has no RTT cost, only CPU; the TTFB sweep verifies the wire-time
  equivalence the paper implies.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table, quick_testbed

from repro.experiments.handshake_time import measure_ttfb
from repro.experiments.harness import Mode, build_links, build_path
from repro.netsim import Simulator
from repro.netsim.profiles import controlled


def _ttfb_with(bed, nagle: bool, delayed_ack: bool, n_contexts: int) -> float:
    """measure_ttfb variant exposing delayed_ack (local rebuild)."""
    from repro.experiments.harness import is_app_data, is_handshake_complete
    from repro.netsim.tcp import make_tcp_pair

    sim = Simulator()
    profile = controlled(hops=2, bandwidth_mbps=10.0, hop_delay_ms=20.0)
    links = build_links(sim, profile)
    topology = bed.topology(1, n_contexts=n_contexts)
    result = {}
    holder = []

    def client_event(event, now):
        if is_handshake_complete(event):
            holder[0].client_node.send_application_data(b"R" * 100, context_id=1)
        elif is_app_data(event) and "ttfb" not in result:
            result["ttfb"] = now

    def server_event(event, now):
        if is_app_data(event):
            holder[0].server_node.send_application_data(b"D" * 100, context_id=1)

    # build_path with per-socket delayed_ack needs manual wiring.
    from repro.experiments.harness import EndpointNode, RelayNode, SimPath

    client_conn, server_conn = bed.make_endpoints(Mode.MCTLS, topology=topology)
    relays = bed.make_relays(Mode.MCTLS, 1)
    pairs = [
        make_tcp_pair(sim, fwd, rev, nagle=nagle, delayed_ack=delayed_ack)
        for fwd, rev in links
    ]
    client_node = EndpointNode(sim, client_conn, pairs[0][0], True, client_event)
    relay_nodes = [RelayNode(sim, relays[0], pairs[0][1], pairs[1][0])]
    server_node = EndpointNode(sim, server_conn, pairs[1][1], False, server_event)
    path = SimPath(sim, client_node, relay_nodes, server_node, links)
    holder.append(path)
    path.start()
    sim.run(until=60.0)
    return result["ttfb"]


def test_ablation_transport_knobs(benchmark, capsys):
    bed = quick_testbed()

    def run():
        rows = []
        for n_ctx in (1, 8, 12):
            for nagle in (True, False):
                for delack in (False, True):
                    ttfb = _ttfb_with(bed, nagle, delack, n_ctx)
                    rows.append(
                        [
                            str(n_ctx),
                            "on" if nagle else "off",
                            "on" if delack else "off",
                            f"{ttfb * 1000:.0f}",
                        ]
                    )
        # Handshake-mode comparison. With Nagle on, CKD's larger key
        # material (full keys instead of halves) can cross an MSS earlier
        # and eat an extra stall; with TCP_NODELAY the modes are
        # wire-time identical — CKD saves CPU, not RTTs.
        mode_rows = []
        for nagle in (True, False):
            default = measure_ttfb(bed, Mode.MCTLS, n_contexts=4, nagle=nagle)
            ckd = measure_ttfb(bed, Mode.MCTLS_CKD, n_contexts=4, nagle=nagle)
            mode_rows.append(
                [
                    "on" if nagle else "off",
                    f"{default.ttfb_s * 1000:.0f}",
                    f"{ckd.ttfb_s * 1000:.0f}",
                ]
            )
        return rows, mode_rows

    rows, mode_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_transport_knobs",
        "mcTLS TTFB (ms) under Nagle × delayed-ACK (1 middlebox)\n"
        + format_table(["contexts", "nagle", "delayed ack", "ttfb ms"], rows)
        + "\n\nHandshake mode at 4 contexts (CKD ships full keys — larger"
        "\nflights can hit Nagle stalls earlier; identical once Nagle is off):\n"
        + format_table(["nagle", "default ms", "client-key-dist ms"], mode_rows),
        capsys,
    )
