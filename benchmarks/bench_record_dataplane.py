"""Record data-plane throughput driver with a machine-readable trajectory.

Every experiment in the reproduction funnels real bytes through the
record layers, so this driver measures the *data plane* itself: records
per second and MB/s per (protocol, suite, role) for

* TLS endpoint encode / decode,
* mcTLS endpoint encode / decode / full encode+decode loop,
* the middlebox record processor (opaque pass-through, READ verify,
  WRITE rebuild).

Unlike the table benches, results go to a machine-readable JSON at the
repo root (``BENCH_record_dataplane.json``) keyed by *phase* so runs can
be compared across PRs:

* ``--phase before`` — record a baseline (run on the pre-optimization
  tree);
* ``--phase after`` — record the current tree and compute speedups
  against the stored ``before`` entries;
* ``--phase smoke`` — tiny byte counts, correctness of the harness only
  (used by CI; writes wherever ``--output`` points, never the repo
  root trajectory by default).

Decode-side roles feed the receiver the whole wire stream at once — the
bulk-transfer receive pattern of Fig. 7 — so receive-buffer behaviour is
part of what is measured, exactly like the real middlebox relay loop.

The default workload uses small (256 B) records: records/sec is a
*per-record-overhead* metric, and small records — HTTP headers,
interactive traffic, the small objects of Fig. 7 — are where that
overhead dominates.  The per-byte keystream cost is pinned by wire
compatibility (golden vectors), so MTU-size runs (``--payload-bytes
1400``) measure the crypto floor instead; every JSON entry embeds its
own ``payload_len``/``records`` and speedups are only computed between
entries with identical workloads.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from collections import deque
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.mctls import keys as mk
from repro.mctls.contexts import Permission
from repro.mctls.record import (
    McTLSRecordLayer,
    MiddleboxRecordProcessor,
    split_burst,
    split_records,
)
from repro.crypto.provider import OPENSSL
from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_AES128CTR_SHA256,
    SUITE_DHE_RSA_CHACHA20_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
    CipherSuite,
)
from repro.tls.record import APPLICATION_DATA, RecordLayer

SCHEMA = "mctls-record-dataplane/1"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_record_dataplane.json"
THRESHOLD = 2.0

# Records per batched call — the per-wakeup burst a receive loop sees
# when a bulk sender keeps the pipe full (RECV_SIZE / small-record).
BURST = 32

# The acceptance criteria of the zero-copy/key-cached data-plane PR:
# the mcTLS SHA-CTR endpoint encode+decode loop and the middlebox
# read/write paths must clear THRESHOLD x the stored baseline.
ACCEPTANCE_KEYS = (
    "mctls|shactr|endpoint-encode-decode",
    "mctls|shactr|middlebox-read",
    "mctls|shactr|middlebox-write",
)

SUITES = {
    "shactr": SUITE_DHE_RSA_SHACTR_SHA256,
    "aes128-cbc": SUITE_DHE_RSA_AES128_CBC_SHA256,
}
# OpenSSL-provider stream suites (same wire geometry as SHA-CTR, real
# cipher cores).  Only benchmarkable when the ``cryptography`` package
# is importable; the ``--phase provider`` gate requires it.
if OPENSSL.available:
    SUITES["aes128-ctr"] = SUITE_DHE_RSA_AES128CTR_SHA256
    SUITES["chacha20"] = SUITE_DHE_RSA_CHACHA20_SHA256

SECRET, RC, RS = b"S" * 48, b"c" * 32, b"s" * 32


# -- fixtures ----------------------------------------------------------------


def _tls_pair(suite: CipherSuite):
    enc_key, mac_key = bytes(suite.key_length), b"m" * 32
    writer = RecordLayer()
    writer.write_state.activate(suite, suite.new_cipher(enc_key), mac_key)
    reader = RecordLayer()
    reader.read_state.activate(suite, suite.new_cipher(enc_key), mac_key)
    return writer, reader


def _mctls_layer(suite: CipherSuite, is_client: bool) -> McTLSRecordLayer:
    layer = McTLSRecordLayer(is_client=is_client)
    layer.set_suite(suite)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(SECRET, RC, RS))
    layer.install_context_keys(1, mk.ckd_context_keys(SECRET, RC, RS, 1))
    layer.activate_write()
    layer.activate_read()
    return layer


def _processor(suite: CipherSuite, permission: Permission) -> MiddleboxRecordProcessor:
    proc = MiddleboxRecordProcessor(suite, mk.C2S)
    keys = mk.ckd_context_keys(SECRET, RC, RS, 1)
    proc.install(1, permission, keys if permission.can_read else None)
    proc.activate()
    return proc


def _wire_stream(suite: CipherSuite, payload: bytes, records: int) -> bytes:
    client = _mctls_layer(suite, True)
    return b"".join(
        client.encode(APPLICATION_DATA, payload, 1) for _ in range(records)
    )


# -- roles -------------------------------------------------------------------


def _run_tls_encode(suite, payload, records):
    writer, _ = _tls_pair(suite)
    start = time.perf_counter()
    for _ in range(records):
        writer.encode(APPLICATION_DATA, payload)
    return time.perf_counter() - start


def _run_tls_decode(suite, payload, records):
    writer, reader = _tls_pair(suite)
    wire = b"".join(writer.encode(APPLICATION_DATA, payload) for _ in range(records))
    start = time.perf_counter()
    reader.feed(wire)
    seen = sum(1 for _ in reader.read_all())
    elapsed = time.perf_counter() - start
    assert seen == records, f"decoded {seen}/{records} TLS records"
    return elapsed


def _run_mctls_encode(suite, payload, records):
    client = _mctls_layer(suite, True)
    start = time.perf_counter()
    for _ in range(records):
        client.encode(APPLICATION_DATA, payload, 1)
    return time.perf_counter() - start


def _run_mctls_decode(suite, payload, records):
    wire = _wire_stream(suite, payload, records)
    server = _mctls_layer(suite, False)
    start = time.perf_counter()
    server.feed(wire)
    seen = sum(1 for _ in server.read_all())
    elapsed = time.perf_counter() - start
    assert seen == records, f"decoded {seen}/{records} mcTLS records"
    return elapsed


def _run_mctls_encode_decode(suite, payload, records):
    client = _mctls_layer(suite, True)
    server = _mctls_layer(suite, False)
    start = time.perf_counter()
    wire = b"".join(
        client.encode(APPLICATION_DATA, payload, 1) for _ in range(records)
    )
    server.feed(wire)
    seen = sum(1 for _ in server.read_all())
    elapsed = time.perf_counter() - start
    assert seen == records, f"roundtripped {seen}/{records} mcTLS records"
    return elapsed


def _run_middlebox(suite, payload, records, permission, rebuild):
    wire = _wire_stream(suite, payload, records)
    proc = _processor(suite, permission)
    buf = bytearray(wire)
    out = bytearray()
    start = time.perf_counter()
    for content_type, ctx_id, fragment, raw in split_records(buf):
        opened = proc.open_record(content_type, ctx_id, fragment)
        if rebuild and opened.payload is not None:
            out += proc.rebuild_record(opened, opened.payload)
        else:
            out += raw
    elapsed = time.perf_counter() - start
    assert len(out) >= records * len(payload), "middlebox dropped records"
    return elapsed


# -- batched roles (the batched data-plane PR) -------------------------------


def _run_tls_encode_batched(suite, payload, records):
    writer, _ = _tls_pair(suite)
    items = [(APPLICATION_DATA, payload)] * BURST
    bursts, rem = divmod(records, BURST)
    start = time.perf_counter()
    for _ in range(bursts):
        writer.encode_batch(items)
    if rem:
        writer.encode_batch(items[:rem])
    return time.perf_counter() - start


def _run_tls_decode_batched(suite, payload, records):
    writer, reader = _tls_pair(suite)
    wire = b"".join(writer.encode(APPLICATION_DATA, payload) for _ in range(records))
    start = time.perf_counter()
    reader.feed(wire)
    seen = sum(1 for _ in reader.read_burst())
    elapsed = time.perf_counter() - start
    assert seen == records, f"decoded {seen}/{records} TLS records"
    return elapsed


def _run_mctls_encode_batched(suite, payload, records):
    client = _mctls_layer(suite, True)
    items = [(APPLICATION_DATA, payload, 1)] * BURST
    bursts, rem = divmod(records, BURST)
    start = time.perf_counter()
    for _ in range(bursts):
        client.encode_batch(items)
    if rem:
        client.encode_batch(items[:rem])
    return time.perf_counter() - start


def _run_mctls_decode_batched(suite, payload, records):
    wire = _wire_stream(suite, payload, records)
    server = _mctls_layer(suite, False)
    start = time.perf_counter()
    server.feed(wire)
    seen = sum(1 for _ in server.read_burst())
    elapsed = time.perf_counter() - start
    assert seen == records, f"decoded {seen}/{records} mcTLS records"
    return elapsed


def _run_middlebox_batched(suite, payload, records, permission, rebuild):
    """The forwarding loop of ``McTLSMiddlebox._relay_app_burst``:
    one framing pass, one batched open per wakeup burst, verbatim runs
    coalesced into single output chunks, and (for WRITE) one batched
    rebuild."""
    wire = _wire_stream(suite, payload, records)
    proc = _processor(suite, permission)
    buf = bytearray(wire)
    out = []
    start = time.perf_counter()
    burst, entries, error = split_burst(buf)
    assert error is None
    if proc.opaque:
        # Fully pass-through processor: one framing pass, one slice.
        proc.skip_burst(len(entries))
        out.append(burst[entries[0][2] : entries[-1][3]])
        elapsed = time.perf_counter() - start
        assert sum(len(c) for c in out) >= records * len(payload)
        return elapsed
    if rebuild:
        opened_records = [
            o for o in proc.open_wire_burst(burst, entries) if o is not None
        ]
        out.extend(proc.rebuild_burst([(o, o.payload) for o in opened_records]))
    else:
        # Every record forwards verbatim here (pass-through or READ):
        # drain the opener (each record is still verified in order) and
        # emit the whole run as one coalesced burst slice.
        deque(proc.open_wire_burst(burst, entries), maxlen=0)
        out.append(burst[entries[0][2] : entries[-1][3]])
    elapsed = time.perf_counter() - start
    total_out = sum(len(c) for c in out)
    assert total_out >= records * len(payload), "middlebox dropped records"
    return elapsed


ROLES = {
    ("tls", "endpoint-encode"): _run_tls_encode,
    ("tls", "endpoint-decode"): _run_tls_decode,
    ("mctls", "endpoint-encode"): _run_mctls_encode,
    ("mctls", "endpoint-decode"): _run_mctls_decode,
    ("mctls", "endpoint-encode-decode"): _run_mctls_encode_decode,
    ("mctls", "middlebox-passthrough"): lambda s, p, r: _run_middlebox(
        s, p, r, Permission.NONE, False
    ),
    ("mctls", "middlebox-read"): lambda s, p, r: _run_middlebox(
        s, p, r, Permission.READ, False
    ),
    ("mctls", "middlebox-write"): lambda s, p, r: _run_middlebox(
        s, p, r, Permission.WRITE, True
    ),
}

# Batched twin of each sequential role (SHA-CTR suite only — the AES
# suite has no vectorized path and falls back to the sequential loop).
BATCHED_ROLES = {
    ("tls", "endpoint-encode-batched"): _run_tls_encode_batched,
    ("tls", "endpoint-decode-batched"): _run_tls_decode_batched,
    ("mctls", "endpoint-encode-batched"): _run_mctls_encode_batched,
    ("mctls", "endpoint-decode-batched"): _run_mctls_decode_batched,
    ("mctls", "middlebox-passthrough-batched"): lambda s, p, r: _run_middlebox_batched(
        s, p, r, Permission.NONE, False
    ),
    ("mctls", "middlebox-read-batched"): lambda s, p, r: _run_middlebox_batched(
        s, p, r, Permission.READ, False
    ),
    ("mctls", "middlebox-write-batched"): lambda s, p, r: _run_middlebox_batched(
        s, p, r, Permission.WRITE, True
    ),
}
ROLES.update(BATCHED_ROLES)

# Acceptance gate of the batched data-plane PR: middlebox *forwarding*
# throughput at the default small-record workload (the passthrough cell
# — one vectorized framing pass plus one burst slice per wakeup).  The
# READ and WRITE cells are reported but ungated under SHA-CTR: both
# paths pay the same per-record floor — one HMAC verification plus one
# keystream's worth of SHA blocks — so batching there only amortises
# framing and dispatch overhead, which caps the honest speedup below 2x
# at 256 B (WRITE additionally regenerates a fresh keystream per
# rebuilt record).  Breaking that floor is exactly what the OpenSSL
# provider suites are for: ``--phase provider`` below gates READ and
# WRITE at >= 2x under AES-128-CTR (resolving deviation #11).
BATCHED_ACCEPTANCE_PAIRS = {
    "mctls|shactr|middlebox-passthrough-batched": "mctls|shactr|middlebox-passthrough",
}

# Acceptance gate of the provider PR (deviation #11): the OpenSSL
# AES-128-CTR batched middlebox READ and WRITE cells must clear
# THRESHOLD x the *sequential SHA-CTR seed* cells measured in the same
# run — the exact pairing the seed benchmark reported when the
# deviation was recorded.  ChaCha20 cells are reported but ungated (its
# per-record context setup only amortises at large payloads).
PROVIDER_SUITES = ("aes128-ctr", "chacha20", "shactr")
PROVIDER_ACCEPTANCE_PAIRS = {
    "mctls|aes128-ctr|middlebox-read-batched": "mctls|shactr|middlebox-read",
    "mctls|aes128-ctr|middlebox-write-batched": "mctls|shactr|middlebox-write",
}


def scenario_list(payload_len: int, records: int, aes_records: int, aes_payload: int):
    """Every (protocol, suite, role) cell with its workload scale.

    Pure-Python AES is orders of magnitude slower, so its cells run a
    reduced workload — entries embed their own scale, and comparisons
    are only ever made between entries with identical keys.
    """
    cells = []
    for (protocol, role) in ROLES:
        for suite_name in ("shactr", "aes128-cbc"):
            if suite_name == "aes128-cbc":
                cells.append((protocol, suite_name, role, aes_payload, aes_records))
            else:
                cells.append((protocol, suite_name, role, payload_len, records))
    return cells


# -- measurement -------------------------------------------------------------


def measure(protocol, suite_name, role, payload_len, records, repeats):
    runner = ROLES[(protocol, role)]
    suite = SUITES[suite_name]
    payload = b"\x5a" * payload_len
    best = min(runner(suite, payload, records) for _ in range(repeats))
    return {
        "phase": None,  # filled by caller
        "protocol": protocol,
        "suite": suite_name,
        "role": role,
        "payload_len": payload_len,
        "records": records,
        "repeats": repeats,
        "seconds": round(best, 6),
        "records_per_sec": round(records / best, 1),
        "mb_per_sec": round(records * payload_len / best / 1e6, 3),
    }


def entry_key(entry) -> str:
    return f"{entry['protocol']}|{entry['suite']}|{entry['role']}"


def compute_speedups(entries: dict) -> dict:
    """after/before records-per-sec ratio for every cell with both phases."""
    speedups = {}
    for key in sorted({k.split("@", 1)[1] for k in entries}):
        before = entries.get(f"before@{key}")
        after = entries.get(f"after@{key}")
        if not before or not after:
            continue
        comparable = (
            before["payload_len"] == after["payload_len"]
            and before["records"] == after["records"]
        )
        speedups[key] = {
            "before_records_per_sec": before["records_per_sec"],
            "after_records_per_sec": after["records_per_sec"],
            "speedup": round(
                after["records_per_sec"] / before["records_per_sec"], 3
            ),
            "comparable_workload": comparable,
        }
    return speedups


def compute_acceptance(speedups: dict) -> dict:
    checked = {
        key: speedups[key]["speedup"] for key in ACCEPTANCE_KEYS if key in speedups
    }
    return {
        "threshold": THRESHOLD,
        "required_keys": list(ACCEPTANCE_KEYS),
        "speedups": checked,
        "pass": bool(checked)
        and len(checked) == len(ACCEPTANCE_KEYS)
        and all(v >= THRESHOLD for v in checked.values()),
    }


# -- persistence -------------------------------------------------------------


def load_report(path: Path) -> dict:
    if path.exists():
        report = json.loads(path.read_text())
        if report.get("schema") == SCHEMA:
            return report
    return {"schema": SCHEMA, "entries": {}, "speedups": {}, "acceptance": {}}


def run(phase, payload_len, records, aes_records, aes_payload, repeats, output):
    report = load_report(output)
    cells = scenario_list(payload_len, records, aes_records, aes_payload)
    print(f"# record data-plane bench — phase={phase}, {len(cells)} cells")
    for protocol, suite_name, role, plen, count in cells:
        entry = measure(protocol, suite_name, role, plen, count, repeats)
        entry["phase"] = phase
        entry["python"] = platform.python_version()
        entry["timestamp"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
        report["entries"][f"{phase}@{entry_key(entry)}"] = entry
        print(
            f"  {protocol:5s} {suite_name:10s} {role:24s} "
            f"{entry['records_per_sec']:>10.1f} rec/s  "
            f"{entry['mb_per_sec']:>8.3f} MB/s"
        )
    report["speedups"] = compute_speedups(report["entries"])
    report["acceptance"] = compute_acceptance(report["speedups"])
    report["updated"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"# wrote {output}")
    if report["speedups"]:
        print("# speedups (after vs before, records/sec):")
        for key, s in sorted(report["speedups"].items()):
            print(f"  {key:40s} {s['speedup']:.2f}x")
    if report["acceptance"].get("speedups"):
        verdict = "PASS" if report["acceptance"]["pass"] else "FAIL"
        print(f"# acceptance (>= {THRESHOLD}x on {len(ACCEPTANCE_KEYS)} keys): {verdict}")
    return report


def run_batched(payload_len, records, repeats, output):
    """``--phase batched``: measure each batched role against a freshly
    measured sequential twin (same process, same workload) and gate the
    middlebox forwarding pairs on ``THRESHOLD``x."""
    report = load_report(output)
    print(
        f"# record data-plane bench — phase=batched, "
        f"{len(BATCHED_ROLES)} role pairs (shactr, {payload_len} B x {records})"
    )
    ratios = {}
    for (protocol, role) in sorted(BATCHED_ROLES):
        base_role = role[: -len("-batched")]
        pair = {}
        for phase, measured_role in (
            ("batched-base", base_role),
            ("batched", role),
        ):
            entry = measure(protocol, "shactr", measured_role, payload_len, records, repeats)
            entry["phase"] = phase
            entry["python"] = platform.python_version()
            entry["timestamp"] = datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            )
            report["entries"][f"{phase}@{entry_key(entry)}"] = entry
            pair[phase] = entry
        ratio = round(
            pair["batched"]["records_per_sec"]
            / pair["batched-base"]["records_per_sec"],
            3,
        )
        key = f"{protocol}|shactr|{role}"
        ratios[key] = {
            "sequential_records_per_sec": pair["batched-base"]["records_per_sec"],
            "batched_records_per_sec": pair["batched"]["records_per_sec"],
            "speedup": ratio,
        }
        print(
            f"  {protocol:5s} {role:32s} "
            f"{pair['batched-base']['records_per_sec']:>10.1f} -> "
            f"{pair['batched']['records_per_sec']:>10.1f} rec/s  {ratio:.2f}x"
        )
    checked = {
        key: ratios[key]["speedup"]
        for key in BATCHED_ACCEPTANCE_PAIRS
        if key in ratios
    }
    report["batched_speedups"] = ratios
    report["batched_acceptance"] = {
        "threshold": THRESHOLD,
        "required_keys": list(BATCHED_ACCEPTANCE_PAIRS),
        "speedups": checked,
        "pass": bool(checked)
        and len(checked) == len(BATCHED_ACCEPTANCE_PAIRS)
        and all(v >= THRESHOLD for v in checked.values()),
    }
    report["updated"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"# wrote {output}")
    verdict = "PASS" if report["batched_acceptance"]["pass"] else "FAIL"
    print(
        f"# batched acceptance (>= {THRESHOLD}x on "
        f"{len(BATCHED_ACCEPTANCE_PAIRS)} middlebox forwarding keys): {verdict}"
    )
    return report


def run_provider(payload_len, records, repeats, output):
    """``--phase provider``: gate the OpenSSL record suites.

    Measures every stream suite's batched middlebox READ and WRITE
    cells against the *sequential SHA-CTR* twins — the seed data plane
    this repo shipped with — all in one process on one workload, then
    gates the AES-128-CTR pairs on ``THRESHOLD``x.  A pass resolves
    deviation #11 (the pure-Python per-record crypto floor capped
    batched READ/WRITE below 2x at 256 B).
    """
    report = load_report(output)
    if not OPENSSL.available:
        print("# provider phase SKIPPED: 'cryptography' package unavailable")
        report["provider_acceptance"] = {
            "threshold": THRESHOLD,
            "required_keys": list(PROVIDER_ACCEPTANCE_PAIRS),
            "speedups": {},
            "pass": False,
            "skipped": "openssl provider unavailable",
        }
        output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return report
    suites = [s for s in PROVIDER_SUITES if s in SUITES]
    print(
        f"# record data-plane bench — phase=provider, "
        f"{len(suites)} stream suites ({payload_len} B x {records})"
    )
    seed = {}
    for role in ("middlebox-read", "middlebox-write"):
        entry = measure("mctls", "shactr", role, payload_len, records, repeats)
        entry["phase"] = "provider-seed"
        entry["python"] = platform.python_version()
        entry["timestamp"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
        report["entries"][f"provider-seed@{entry_key(entry)}"] = entry
        seed[entry_key(entry)] = entry
        print(
            f"  seed  {entry_key(entry):42s} "
            f"{entry['records_per_sec']:>10.1f} rec/s"
        )
    ratios = {}
    for suite_name in suites:
        for role in ("middlebox-read-batched", "middlebox-write-batched"):
            entry = measure("mctls", suite_name, role, payload_len, records, repeats)
            entry["phase"] = "provider"
            entry["python"] = platform.python_version()
            entry["timestamp"] = datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            )
            key = entry_key(entry)
            report["entries"][f"provider@{key}"] = entry
            seed_key = f"mctls|shactr|{role[: -len('-batched')]}"
            ratio = round(
                entry["records_per_sec"] / seed[seed_key]["records_per_sec"], 3
            )
            ratios[key] = {
                "seed_key": seed_key,
                "seed_records_per_sec": seed[seed_key]["records_per_sec"],
                "batched_records_per_sec": entry["records_per_sec"],
                "speedup": ratio,
            }
            print(
                f"  {suite_name:10s} {role:26s} "
                f"{entry['records_per_sec']:>10.1f} rec/s  {ratio:.2f}x vs seed"
            )
    checked = {
        key: ratios[key]["speedup"]
        for key in PROVIDER_ACCEPTANCE_PAIRS
        if key in ratios
    }
    passed = (
        bool(checked)
        and len(checked) == len(PROVIDER_ACCEPTANCE_PAIRS)
        and all(v >= THRESHOLD for v in checked.values())
    )
    report["provider_speedups"] = ratios
    report["provider_acceptance"] = {
        "threshold": THRESHOLD,
        "required_keys": list(PROVIDER_ACCEPTANCE_PAIRS),
        "speedups": checked,
        "pass": passed,
        "deviation_11_resolved": passed,
    }
    report["updated"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"# wrote {output}")
    verdict = "PASS" if passed else "FAIL"
    print(
        f"# provider acceptance (>= {THRESHOLD}x vs sequential seed on "
        f"{len(PROVIDER_ACCEPTANCE_PAIRS)} middlebox keys): {verdict}"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--phase",
        choices=("before", "after", "smoke", "batched", "provider"),
        default="after",
    )
    parser.add_argument(
        "--payload-bytes",
        type=int,
        default=int(os.environ.get("MCTLS_BENCH_DATAPLANE_PAYLOAD", "256")),
    )
    parser.add_argument(
        "--records",
        type=int,
        default=int(os.environ.get("MCTLS_BENCH_DATAPLANE_RECORDS", "800")),
    )
    parser.add_argument("--aes-records", type=int, default=None)
    parser.add_argument("--aes-payload-bytes", type=int, default=256)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.phase == "smoke":
        # Tiny workload: correctness of the harness, not timing.  Never
        # touches the repo-root trajectory unless asked explicitly.
        output = args.output or (REPO_ROOT / "benchmarks" / "results" / "bench_smoke.json")
        records = min(args.records, 8)
        payload = min(args.payload_bytes, 256)
        report = run("smoke", payload, records, 2, 64, 1, output)
        expected = len(scenario_list(0, 0, 0, 0))
        produced = sum(1 for k in report["entries"] if k.startswith("smoke@"))
        if produced != expected:
            print(f"smoke FAIL: {produced}/{expected} cells produced", file=sys.stderr)
            return 1
        print(f"smoke OK: {produced}/{expected} cells produced")
        return 0

    if args.phase == "batched":
        output = args.output or DEFAULT_OUTPUT
        report = run_batched(
            args.payload_bytes, args.records, args.repeat, output
        )
        return 0 if report["batched_acceptance"]["pass"] else 1

    if args.phase == "provider":
        output = args.output or DEFAULT_OUTPUT
        report = run_provider(
            args.payload_bytes, args.records, args.repeat, output
        )
        return 0 if report["provider_acceptance"]["pass"] else 1

    output = args.output or DEFAULT_OUTPUT
    aes_records = args.aes_records or max(4, args.records // 50)
    run(
        args.phase,
        args.payload_bytes,
        args.records,
        aes_records,
        args.aes_payload_bytes,
        args.repeat,
        output,
    )
    return 0


# -- pytest entry (matches the house bench style; not in tier-1 testpaths) --


def test_record_dataplane_smoke(capsys):
    from _common import RESULTS_DIR, emit

    out = RESULTS_DIR / "bench_smoke.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    code = main(["--phase", "smoke", "--output", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    rows = [
        f"{e['protocol']:5s} {e['suite']:10s} {e['role']:24s} "
        f"{e['records_per_sec']:.0f} rec/s"
        for k, e in sorted(report["entries"].items())
        if k.startswith("smoke@")
    ]
    emit(
        "record_dataplane_smoke",
        "Record data-plane smoke run (tiny workload, harness correctness)\n"
        + "\n".join(rows),
        capsys,
    )


if __name__ == "__main__":
    raise SystemExit(main())
