"""Figure 4: page load time CDF across mcTLS context strategies.

Paper finding: 1-Context, 4-Context and Context-per-Header perform the
same (mcTLS is insensitive to context assignment), with Nagle-off curves
slightly left of Nagle-on.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import BENCH_PAGES, emit, format_table, quick_testbed

from repro.experiments.page_load import figure4
from repro.workloads import generate_corpus


def _percentiles(values, points=(0.10, 0.25, 0.50, 0.75, 0.90)):
    ordered = sorted(values)
    return [ordered[min(len(ordered) - 1, int(p * len(ordered)))] for p in points]


def test_fig4_plt_strategies(benchmark, capsys):
    bed = quick_testbed()
    corpus = generate_corpus(n_pages=BENCH_PAGES, seed=2015)
    rows = benchmark.pedantic(
        lambda: figure4(bed, corpus), rounds=1, iterations=1
    )
    by_label = {}
    for r in rows:
        by_label.setdefault(r.label, []).append(r.plt_s)
    table_rows = []
    for label in sorted(by_label):
        p10, p25, p50, p75, p90 = _percentiles(by_label[label])
        table_rows.append(
            [label, f"{p10:.2f}", f"{p25:.2f}", f"{p50:.2f}", f"{p75:.2f}", f"{p90:.2f}"]
        )
    emit(
        "fig4_plt_strategies",
        f"Page load time percentiles (s), {BENCH_PAGES} synthetic pages\n"
        + format_table(["strategy", "p10", "p25", "p50", "p75", "p90"], table_rows),
        capsys,
    )
