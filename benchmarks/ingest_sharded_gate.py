"""Ingest the CI ``sharded-gate`` artifact into ``BENCH_conn_rate.json``.

Single-core dev hosts can only record the multi-process scaling gate as
NOT JUDGED (``"pass": null`` — EXPERIMENTS.md deviation #10): demanding
a parallel speedup from one core would reward a dishonest measurement.
CI's ``sharded-gate`` job runs the same phase on a 4-vCPU runner where
the gate *is* judged, and uploads the report as the
``bench-conn-rate-sharded`` artifact.  This tool folds that artifact's
verdict back into the repo's tracked trajectory::

    python benchmarks/ingest_sharded_gate.py sharded_gate_report.json

Merge semantics — deliberately narrow:

* the artifact must be a ``mctls-conn-rate/1`` report whose ``sharded``
  section was actually judged: ``pass`` is true/false (never null) and
  ``cpu_count`` >= ``--min-cores`` (default 4, the gate's premise);
* the artifact's ``sharded`` verdict **replaces** the target's, with
  provenance recorded under ``sharded.source``;
* the artifact's ``sharded@...`` entries replace the target's
  same-keyed entries (the measurements behind the verdict travel with
  it);
* everything else in the target — full/smoke entries, acceptance,
  runtime comparisons — is preserved untouched.

Exit status mirrors the ingested verdict so the tool composes with CI
gating: 0 when the judged gate passed, 1 when it failed, 2 when the
artifact is unusable (wrong schema, unjudged, or too few cores).
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_fig5_conn_rate import DEFAULT_OUTPUT, SCHEMA, load_report


class ArtifactError(ValueError):
    """The artifact cannot honestly update the tracked verdict."""


def validate_artifact(artifact: dict, min_cores: int) -> dict:
    """Return the artifact's judged ``sharded`` section or raise."""
    if artifact.get("schema") != SCHEMA:
        raise ArtifactError(
            f"artifact schema {artifact.get('schema')!r} != {SCHEMA!r}"
        )
    sharded = artifact.get("sharded")
    if not isinstance(sharded, dict):
        raise ArtifactError("artifact has no 'sharded' section (wrong phase?)")
    if sharded.get("pass") is None:
        raise ArtifactError(
            "artifact's sharded gate was NOT JUDGED"
            + (f" ({sharded['reason']})" if "reason" in sharded else "")
            + " — ingesting it would not improve on the local null verdict"
        )
    cores = sharded.get("cpu_count", 0)
    if cores < min_cores:
        raise ArtifactError(
            f"artifact measured on {cores} core(s); the gate's premise "
            f"needs >= {min_cores}"
        )
    missing = [key for key in ("ratio", "workers") if key not in sharded]
    if missing:
        raise ArtifactError(
            f"artifact's sharded section lacks {', '.join(missing)} — "
            "a judged verdict must carry the measurements behind it"
        )
    return sharded


def merge(target: dict, artifact: dict, *, min_cores: int, source: str) -> dict:
    """Fold the artifact's judged verdict into ``target`` (in place)."""
    sharded = dict(validate_artifact(artifact, min_cores))
    sharded["source"] = source
    target["sharded"] = sharded
    entries = target.setdefault("entries", {})
    for key, entry in artifact.get("entries", {}).items():
        if key.startswith("sharded@"):
            entries[key] = entry
    target["updated"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    return target


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifact",
        type=Path,
        help="BENCH_conn_rate.json downloaded from the bench-conn-rate-"
        "sharded CI artifact (or produced locally on a >=4-core host)",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--min-cores",
        type=int,
        default=4,
        help="reject artifacts measured on fewer cores (default 4)",
    )
    parser.add_argument(
        "--source",
        default="ci:sharded-gate",
        help="provenance label recorded under sharded.source",
    )
    args = parser.parse_args(argv)

    artifact = json.loads(args.artifact.read_text())
    report = load_report(args.output)
    previous = report.get("sharded", {}).get("pass")
    try:
        merge(report, artifact, min_cores=args.min_cores, source=args.source)
    except ArtifactError as exc:
        print(f"!! refusing to ingest {args.artifact}: {exc}")
        return 2

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    sharded = report["sharded"]
    verdict = "PASS" if sharded["pass"] else "FAIL"
    print(
        f"# ingested {args.source}: sharded scaling {sharded['ratio']:.2f}x "
        f"at {sharded['workers']} workers on {sharded['cpu_count']} cores "
        f"-> {verdict} (was {previous!r}); wrote {args.output}"
    )
    return 0 if sharded["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
