"""Figure 7: file download time across link speeds and file sizes.

Paper findings: handshake overhead dominates small files (all encrypted
protocols pay a similar fixed cost over NoEncrypt); large transfers are
bandwidth-bound with negligible protocol differences; the same holds in
the wide-area (fiber / 3G) profiles.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table, quick_testbed

from repro.experiments.transfer import figure7


def test_fig7_transfer_times(benchmark, capsys):
    bed = quick_testbed()
    rows = benchmark.pedantic(lambda: figure7(bed), rounds=1, iterations=1)
    by_config = {}
    for r in rows:
        by_config.setdefault(r.config, {})[r.mode] = r.download_time_s
    series = sorted({r.mode for r in rows})
    table_rows = [
        [config] + [f"{by_config[config].get(s, float('nan')):.3f}" for s in series]
        for config in by_config
    ]
    emit(
        "fig7_transfer_times",
        "Download time (s): connection start to last byte, 1 middlebox\n"
        + format_table(["config"] + series, table_rows),
        capsys,
    )
