"""Middlebox data-plane cost by permission level.

The paper's Figure 5 covers handshake CPU; this bench covers the other
half of its §5.3 conclusion ("it is not only feasible, but practical to
use middleboxes in the core network"): per-record forwarding cost at the
middlebox for each access level.

* NONE — parse header, count the sequence number, forward raw bytes;
* READ — decrypt + verify the readers MAC;
* WRITE (unmodified) — decrypt + verify the writers MAC, forward raw;
* WRITE (rewriting) — decrypt, verify, re-encrypt + two fresh MACs;
* SplitTLS — decrypt + verify, re-encrypt + MAC (its only mode).
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table

from repro.mctls import keys as mk
from repro.mctls.contexts import Permission
from repro.mctls.record import McTLSRecordLayer, MiddleboxRecordProcessor, split_records
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256 as SUITE
from repro.tls.record import APPLICATION_DATA

PAYLOAD_LEN = 1400
ROUNDS = 400


def _sender(context_ids=(1,)):
    layer = McTLSRecordLayer(is_client=True)
    layer.set_suite(SUITE)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    for ctx in context_ids:
        layer.install_context_keys(
            ctx, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, ctx)
        )
    layer.activate_write()
    return layer


def _records(n):
    sender = _sender()
    wires = [sender.encode(APPLICATION_DATA, b"x" * PAYLOAD_LEN, 1) for _ in range(n)]
    out = []
    for wire in wires:
        out.append(next(split_records(bytearray(wire))))
    return out


def _processor(permission):
    proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
    keys = mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
    proc.install(1, permission, keys if permission.can_read else None)
    proc.activate()
    return proc


def _measure(permission, rewrite):
    records = _records(ROUNDS)
    proc = _processor(permission)
    start = time.process_time()
    for content_type, ctx_id, fragment, raw in records:
        opened = proc.open_record(content_type, ctx_id, fragment)
        if rewrite and opened.payload is not None:
            proc.rebuild_record(opened, opened.payload[::-1])
    elapsed = time.process_time() - start
    return ROUNDS * PAYLOAD_LEN / elapsed / 1e6


def test_middlebox_dataplane(benchmark, capsys):
    def run():
        rows = [
            ["mcTLS NONE (opaque forward)", f"{_measure(Permission.NONE, False):.1f}"],
            ["mcTLS READ (verify)", f"{_measure(Permission.READ, False):.1f}"],
            ["mcTLS WRITE, unmodified", f"{_measure(Permission.WRITE, False):.1f}"],
            ["mcTLS WRITE, rewriting", f"{_measure(Permission.WRITE, True):.1f}"],
        ]

        # SplitTLS reference: decrypt+verify then re-encrypt+MAC per record.
        from repro.tls.record import RecordLayer

        inbound = RecordLayer()
        outbound = RecordLayer()
        sender = RecordLayer()
        enc_key, mac_key = bytes(16), b"m" * 32
        sender.write_state.activate(SUITE, SUITE.new_cipher(enc_key), mac_key)
        inbound.read_state.activate(SUITE, SUITE.new_cipher(enc_key), mac_key)
        outbound.write_state.activate(SUITE, SUITE.new_cipher(enc_key), mac_key)
        wires = [
            sender.encode(APPLICATION_DATA, b"x" * PAYLOAD_LEN) for _ in range(ROUNDS)
        ]
        start = time.process_time()
        for wire in wires:
            inbound.feed(wire)
            _, plaintext = inbound.read_record()
            outbound.encode(APPLICATION_DATA, plaintext)
        elapsed = time.process_time() - start
        rows.append(["SplitTLS (decrypt + re-encrypt)", f"{ROUNDS * PAYLOAD_LEN / elapsed / 1e6:.1f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "middlebox_dataplane",
        "Middlebox per-record forwarding throughput (1400 B records, SHA-CTR suite)\n"
        + format_table(["configuration", "MB/s"], rows)
        + "\n\nOpaque forwarding is near-free; read verification costs one"
        "\ndecrypt+MAC; only actual rewriting approaches SplitTLS's"
        "\nunconditional decrypt-re-encrypt cost.",
        capsys,
    )
