"""Delegation economics: mdTLS warrants vs mcTLS key distribution.

The mdTLS variant replaces per-middlebox context-key distribution with
signed warrants: endpoints state *who may hold what* once, and the
server seals one DelegatedKeyMaterial blob per middlebox.  The question
this benchmark answers is what that buys per added middlebox, measured
on real handshakes (per-party op counters, same harness as Table 3):

* **Endpoint key-distribution ops** — shared-secret computations plus
  symmetric sealing operations performed by the two endpoints
  (``secret_comp`` + ``sym_encrypt``).  Under the forward-secret DHE
  key transport each added middlebox costs mcTLS DEFAULT 4 endpoint ops
  (both endpoints: pairwise DH combine + seal), CLIENT_KEY_DIST 2 (the
  client alone), and mdTLS 1 (one server-side seal to the warranted
  certificate key; the client only signs its warrant).
* **Signature economics** — the flip side: warrants move the per-mbox
  cost into ``asym_sign``/``asym_verify`` (each party checks both
  endpoints' warrants), which is why mdTLS is a *delegation* design,
  not a free lunch.
* **Handshake latency** — wall-clock full-handshake time per mode at
  0-3 middleboxes, best of ``MCTLS_BENCH_REPS``.

Results accumulate in ``BENCH_mdtls_delegation.json`` (schema
``mctls-mdtls-delegation/1``).  Acceptance: the measured marginal
endpoint key-distribution cost per added middlebox must order
mdTLS < CLIENT_KEY_DIST < DEFAULT.

    python benchmarks/bench_mdtls_delegation.py            # 1024-bit run
    python benchmarks/bench_mdtls_delegation.py --quick    # 512-bit smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from _common import BENCH_KEY_BITS, BENCH_REPS, emit, format_table

from repro.experiments.harness import Mode, TestBed
from repro.experiments.opcounts import measure_opcounts
from repro.mctls.session import KeyTransport
from repro.transport import Chain

SCHEMA = "mctls-mdtls-delegation/1"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_mdtls_delegation.json"

MODES = (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
MIDDLEBOXES = (0, 1, 2, 3)
N_CONTEXTS = 2

# "Key distribution" = computing a secret with a party and sealing key
# material to it.  Signature work is reported separately — moving cost
# from this bucket into signatures is exactly the delegation trade.
KD_CATEGORIES = ("secret_comp", "sym_encrypt")
SHOW = ("asym_sign", "asym_verify", "key_gen", "secret_comp", "sym_encrypt")


def make_bed(quick: bool = False) -> TestBed:
    """DHE-transport testbed: mdTLS always runs DHE, so the mcTLS modes
    are measured under the forward-secret key transport too — the
    apples-to-apples comparison (the RSA transport of the paper's
    prototype halves DEFAULT's marginal by skipping pairwise DH)."""
    if quick:
        from repro.crypto.dh import GROUP_TEST_512

        return TestBed(
            key_bits=512, dh_group=GROUP_TEST_512, key_transport=KeyTransport.DHE
        )
    return TestBed(key_bits=BENCH_KEY_BITS, key_transport=KeyTransport.DHE)


def endpoint_kd(counts: dict) -> int:
    return sum(
        counts[party].get(cat, 0)
        for party in ("client", "server")
        for cat in KD_CATEGORIES
    )


def time_handshake(bed: TestBed, mode: Mode, n_middleboxes: int, reps: int) -> float:
    """Best-of-``reps`` wall-clock full handshake (construction and key
    generation excluded — the clock starts at ClientHello)."""
    best = float("inf")
    for _ in range(reps):
        topology = bed.topology(n_middleboxes, n_contexts=N_CONTEXTS)
        client, server = bed.make_endpoints(mode, topology=topology)
        relays = bed.make_relays(mode, n_middleboxes)
        chain = Chain(client, relays, server)
        start = time.perf_counter()
        client.start_handshake()
        chain.pump()
        elapsed = time.perf_counter() - start
        if not client.handshake_complete or not server.handshake_complete:
            raise RuntimeError(f"handshake failed for {mode} at {n_middleboxes}mb")
        best = min(best, elapsed)
    return best


def run(bed: TestBed, reps: int = BENCH_REPS) -> dict:
    entries: dict = {}
    for mode in MODES:
        for n in MIDDLEBOXES:
            result = measure_opcounts(
                bed, mode, n_contexts=N_CONTEXTS, n_middleboxes=n
            )
            entries[f"{mode.value}|{n}mb"] = {
                "mode": mode.value,
                "middleboxes": n,
                "contexts": N_CONTEXTS,
                "counts": result.counts,
                "endpoint_kd": endpoint_kd(result.counts),
                "handshake_s": round(time_handshake(bed, mode, n, reps), 6),
            }

    marginals: dict = {}
    for mode in MODES:
        kd = [entries[f"{mode.value}|{n}mb"]["endpoint_kd"] for n in MIDDLEBOXES]
        deltas = [b - a for a, b in zip(kd, kd[1:])]
        marginals[mode.value] = {
            "endpoint_kd_by_mbox": kd,
            "deltas": deltas,
            # Worst observed marginal — the number the acceptance orders.
            "per_mbox": max(deltas),
        }

    md = marginals[Mode.MDTLS.value]["per_mbox"]
    ckd = marginals[Mode.MCTLS_CKD.value]["per_mbox"]
    default = marginals[Mode.MCTLS.value]["per_mbox"]
    report = {
        "schema": SCHEMA,
        "key_bits": bed.key_bits,
        "key_transport": "DHE",
        "n_contexts": N_CONTEXTS,
        "entries": entries,
        "marginal_endpoint_kd": marginals,
        "acceptance": {
            "criterion": "marginal endpoint key-distribution ops per added "
            "middlebox: mdTLS < mcTLS-ckd < mcTLS",
            "per_mbox": {"mdTLS": md, "mcTLS-ckd": ckd, "mcTLS": default},
            "pass": bool(md < ckd < default),
        },
        "reps": reps,
        "python": platform.python_version(),
        "updated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    return report


def render(report: dict, capsys=None) -> None:
    entries = report["entries"]
    op_rows = []
    for mode in MODES:
        for n in MIDDLEBOXES:
            entry = entries[f"{mode.value}|{n}mb"]
            for party in ("client", "middlebox", "server"):
                if party not in entry["counts"]:
                    continue
                counts = entry["counts"][party]
                op_rows.append(
                    [mode.value, n, party]
                    + [counts.get(cat, 0) for cat in SHOW]
                )
    summary_rows = []
    for mode in MODES:
        for n in MIDDLEBOXES:
            entry = entries[f"{mode.value}|{n}mb"]
            marginal = report["marginal_endpoint_kd"][mode.value]
            delta = marginal["deltas"][n - 1] if n else "-"
            summary_rows.append(
                [
                    mode.value,
                    n,
                    entry["endpoint_kd"],
                    delta,
                    f"{entry['handshake_s'] * 1e3:.1f}",
                ]
            )
    acceptance = report["acceptance"]
    verdict = "PASS" if acceptance["pass"] else "FAIL"
    text = (
        f"Per-party crypto ops per full handshake "
        f"(K={report['n_contexts']} contexts, DHE key transport, "
        f"{report['key_bits']}-bit keys)\n"
        + format_table(["mode", "mbox", "party"] + list(SHOW), op_rows)
        + "\n\nEndpoint key-distribution ops (secret_comp + sym_encrypt, "
        "client+server) and handshake latency\n"
        + format_table(
            ["mode", "mbox", "endpoint_kd", "per-added-mbox", "handshake_ms"],
            summary_rows,
        )
        + f"\n\nacceptance ({acceptance['criterion']}): "
        + " < ".join(
            f"{name}={acceptance['per_mbox'][name]}"
            for name in ("mdTLS", "mcTLS-ckd", "mcTLS")
        )
        + f" -> {verdict}"
    )
    emit("mdtls_delegation", text, capsys)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="512-bit keys / test DH group (CI smoke; op counts are "
        "key-size independent, latency is not)",
    )
    parser.add_argument("--reps", type=int, default=BENCH_REPS)
    args = parser.parse_args(argv)

    report = run(make_bed(quick=args.quick), reps=args.reps)
    render(report)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"# wrote {args.output}")
    return 0 if report["acceptance"]["pass"] else 1


def test_mdtls_delegation_opcounts(benchmark, capsys):
    report = benchmark.pedantic(
        lambda: run(make_bed(quick=True), reps=1), rounds=1, iterations=1
    )
    render(report, capsys)
    assert report["acceptance"]["pass"], report["acceptance"]
    # The delegation claim, spelled out: every added middlebox costs the
    # endpoints one sealing op under warrants, two under client key
    # distribution, four under default mcTLS.
    per_mbox = report["acceptance"]["per_mbox"]
    assert per_mbox == {"mdTLS": 1, "mcTLS-ckd": 2, "mcTLS": 4}


if __name__ == "__main__":
    raise SystemExit(main())
