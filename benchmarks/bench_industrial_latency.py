"""Industrial low-latency scenario: per-hop record latency + framing overhead.

Madtls's deployment shape (tiny periodic records through in-path
industrial middleboxes, each hop spending a hard latency budget) asked
two questions of this codebase:

1. **How many wire bytes does a protected record cost?**  Measured by
   running a real handshake per framing and differencing wire bytes
   against payload bytes.  This is deterministic — geometry, not timing —
   so it is the *gated* half: at <= 64 B payloads the compact framing
   (4 B header, 8 B truncated MACs, per-field MACs included) must beat
   the default framing (6 B header, three 32 B MACs) on overhead bytes
   per record.
2. **What latency does each in-path hop add?**  Measured over real
   loopback sockets by ``repro.experiments.serving.measure_per_hop_latency``
   for all six protocol stacks (plus compact-framing rows for the two
   mcTLS stacks).  Wall-clock on a shared 1-core CI host is noise-bound,
   so latency is *reported, never gated*.

Results land in ``BENCH_industrial_latency.json`` (machine-readable,
keyed by phase) plus the usual text table under ``benchmarks/results/``.

* ``--phase smoke`` — tiny record counts, harness correctness + the
  overhead gate (CI).
* ``--phase full``  — more records, 2 hops, steadier percentiles.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from _common import emit, format_table, quick_testbed

from repro.experiments.harness import Mode
from repro.experiments.serving import measure_per_hop_latency
from repro.mctls.contexts import (
    ContextDefinition,
    FieldDef,
    FieldSchema,
    SessionTopology,
)
from repro.mctls.client import McTLSClient
from repro.mctls.server import McTLSServer
from repro.transport import Chain

SCHEMA = "mctls-industrial-latency/1"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_industrial_latency.json"

# Payload sizes of the overhead gate: the "<= 64 B records" regime where
# Madtls-style traffic lives (sensor values, setpoints, acks).
OVERHEAD_SIZES = (16, 32, 64)

# The six stacks of the serving comparison.
ALL_MODES = (
    Mode.MCTLS,
    Mode.MCTLS_CKD,
    Mode.MDTLS,
    Mode.SPLIT_TLS,
    Mode.E2E_TLS,
    Mode.NO_ENCRYPT,
)

# Compact framing is an mcTLS record-layer feature; the delegation stack
# and the baselines have no framing negotiation.
COMPACT_MODES = (Mode.MCTLS, Mode.MCTLS_CKD)


def _field_schema() -> FieldSchema:
    return FieldSchema(
        context_id=1,
        fields=(FieldDef("hdr", 0, 8), FieldDef("body", 8, 64)),
        write_grants={"hdr": (1,)},
    )


# -- overhead (deterministic, gated) ----------------------------------------


def measure_overhead(framing: str) -> dict:
    """Wire overhead bytes per protected record under one framing.

    Runs a real client <-> server handshake (so the framing is actually
    *negotiated*, not assumed), then differences wire bytes against
    payload bytes for each probe size.  Field schemas ride along under
    the compact framing, so its numbers include the per-field MACs.
    """
    bed = quick_testbed()
    topology = SessionTopology(
        middleboxes=(),
        contexts=(ContextDefinition(1, "telemetry", {}),),
    )
    config = bed.client_tls_config()
    config.framing = framing
    if framing != "mctls-default":
        config.field_schemas = (_field_schema(),)
    client = McTLSClient(config, topology=topology)
    server = McTLSServer(bed.server_tls_config())
    chain = Chain(client, [], server)
    client.start_handshake()
    chain.pump()
    assert client.handshake_complete and server.handshake_complete
    assert client.negotiated_framing.name == framing

    overhead = {}
    for size in OVERHEAD_SIZES:
        payload = bytes(range(size % 256 or 1)) * (size // max(1, size % 256 or 1) + 1)
        payload = payload[:size]
        client.send_application_data(payload, context_id=1)
        wire = client.data_to_send()
        server.receive_data(wire)  # keep both sides' sequence numbers aligned
        overhead[str(size)] = len(wire) - size
    return {
        "framing": framing,
        "overhead_bytes": overhead,
    }


def run_overhead_gate() -> tuple:
    """Measure both framings and gate compact < default at every size."""
    default = measure_overhead("mctls-default")
    compact = measure_overhead("mctls-compact")
    rows = []
    failures = []
    for size in OVERHEAD_SIZES:
        d = default["overhead_bytes"][str(size)]
        c = compact["overhead_bytes"][str(size)]
        ratio = c / d
        rows.append([size, d, c, f"{ratio:.3f}", "PASS" if ratio < 1.0 else "FAIL"])
        if ratio >= 1.0:
            failures.append(
                f"compact overhead {c}B >= default {d}B at {size}B payload"
            )
    section = {
        "default": default,
        "compact": compact,
        "ratio": {
            str(size): round(
                compact["overhead_bytes"][str(size)]
                / default["overhead_bytes"][str(size)],
                4,
            )
            for size in OVERHEAD_SIZES
        },
        "gate": "compact/default overhead ratio < 1.0 at <= 64B payloads",
        "passed": not failures,
    }
    table = format_table(
        ["payload_B", "default_overhead_B", "compact_overhead_B", "ratio", "gate"],
        rows,
    )
    return section, table, failures


# -- latency (measured, reported ungated) -----------------------------------


async def run_latency(phase: str) -> list:
    """Per-hop added latency for every stack; compact rows for mcTLS."""
    bed = quick_testbed()
    if phase == "full":
        records, period_s, max_hops = 200, 0.005, 2
    else:
        records, period_s, max_hops = 25, 0.002, 1
    runs = []
    jobs = [(mode, "mctls-default", ()) for mode in ALL_MODES]
    jobs += [(mode, "mctls-compact", (_field_schema(),)) for mode in COMPACT_MODES]
    for mode, framing, schemas in jobs:
        report = await measure_per_hop_latency(
            bed,
            mode,
            max_hops=max_hops,
            records=records,
            record_size=32,
            period_s=period_s,
            framing=framing,
            field_schemas=schemas,
        )
        runs.append(report)
    return runs


def latency_table(runs: list) -> str:
    rows = []
    for report in runs:
        added = report["added_latency_per_hop_s"]
        last = added[max(added)] if added else {}
        zero_hop = report["per_hop"][0]["record_latency_s"]
        rows.append(
            [
                report["mode"],
                report["framing"] or "-",
                f"{zero_hop['p99'] * 1e6:.0f}",
                f"{last.get('p50', float('nan')) * 1e6:.0f}",
                f"{last.get('p99', float('nan')) * 1e6:.0f}",
            ]
        )
    return format_table(
        ["mode", "framing", "0hop_p99_us", "added/hop_p50_us", "added/hop_p99_us"],
        rows,
    )


# -- entry point -------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phase", choices=("smoke", "full"), default="smoke")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    overhead_section, overhead_table, failures = run_overhead_gate()
    latency_runs = asyncio.run(run_latency(args.phase))

    result = {
        "schema": SCHEMA,
        "phase": args.phase,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "overhead": overhead_section,
        "latency": {
            "note": (
                "wall-clock over loopback sockets; reported, not gated "
                "(1-core CI hosts make latency non-deterministic)"
            ),
            "runs": latency_runs,
        },
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    text = (
        "Per-record wire overhead (gated):\n"
        + overhead_table
        + "\n\nPer-hop added record latency (reported, ungated):\n"
        + latency_table(latency_runs)
    )
    emit("industrial_latency", text)
    print(f"wrote {args.output}")

    if failures:
        print("OVERHEAD GATE FAILED:", "; ".join(failures))
        return 1
    print("overhead gate passed: compact < default at every <= 64B payload")
    return 0


if __name__ == "__main__":
    sys.exit(main())
