"""Ablation: DHE vs RSA key transport for MiddleboxKeyMaterial.

The paper's design (Figure 1) derives pairwise endpoint↔middlebox keys
via ephemeral DH; its evaluated prototype RSA-encrypted the material
instead ("for simplicity... forward secrecy is not currently supported").
This bench quantifies the trade the authors made implicitly:

* middlebox handshake CPU — the DHE design adds two DH key pairs, two
  combines and two signatures at the middlebox;
* handshake bytes — the DHE design ships two signed key exchanges per
  middlebox; RSA mode ships larger sealed key material.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import BENCH_KEY_BITS, BENCH_REPS, emit, format_table

from repro.experiments.handshake_size import measure_handshake_size
from repro.experiments.harness import Mode, TestBed
from repro.experiments.throughput import measure_handshake_throughput
from repro.mctls.session import KeyTransport


def test_ablation_key_transport(benchmark, capsys):
    def run():
        rows = []
        for transport in (KeyTransport.RSA, KeyTransport.DHE):
            bed = TestBed(key_bits=BENCH_KEY_BITS, key_transport=transport)
            rate = measure_handshake_throughput(
                bed, Mode.MCTLS, n_contexts=4, n_middleboxes=1, repetitions=BENCH_REPS
            )
            size = measure_handshake_size(bed, Mode.MCTLS, 4, 1)
            rows.append(
                [
                    transport.name,
                    f"{rate.middlebox_cps:.0f}",
                    f"{rate.server_cps:.0f}",
                    f"{rate.client_cps:.0f}",
                    f"{size.bytes_total / 1000:.2f}",
                    "no" if transport is KeyTransport.RSA else "yes",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_key_transport",
        "mcTLS key transport (4 contexts, 1 middlebox)\n"
        + format_table(
            ["transport", "mbox hs/s", "server hs/s", "client hs/s",
             "handshake kB", "forward secrecy"],
            rows,
        )
        + "\n\nThe RSA row is what the paper's Figure 5 measured; DHE is the"
        "\npaper's actual design and what this library defaults to.",
        capsys,
    )
