"""Shared helpers for the benchmark suite.

Every benchmark prints a paper-style table (bypassing pytest capture so
results are always visible) and archives it under
``benchmarks/results/``.  Scale knobs come from environment variables so
CI can run quick passes and a full reproduction can crank them up:

* ``MCTLS_BENCH_PAGES`` — corpus pages per PLT series (default 12)
* ``MCTLS_BENCH_REPS`` — repetitions for CPU measurements (default 3)
* ``MCTLS_BENCH_KEY_BITS`` — RSA/DH size for CPU benches (default 1024)
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_PAGES = int(os.environ.get("MCTLS_BENCH_PAGES", "12"))
BENCH_REPS = int(os.environ.get("MCTLS_BENCH_REPS", "3"))
BENCH_KEY_BITS = int(os.environ.get("MCTLS_BENCH_KEY_BITS", "1024"))


def emit(name: str, text: str, capsys=None) -> None:
    """Print a result table (uncaptured) and archive it."""
    banner = f"\n===== {name} =====\n{text}\n"
    if capsys is not None:
        with capsys.disabled():
            print(banner)
    else:
        print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def format_table(headers, rows) -> str:
    """Fixed-width text table."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in columns[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def quick_testbed():
    """Small-key testbed for simulation benches (timing is simulated, so
    key size only affects handshake byte counts; 512-bit keeps message
    flights in the same sub-MSS regime the paper's build started in)."""
    from repro.crypto.dh import GROUP_TEST_512
    from repro.experiments.harness import TestBed

    if not hasattr(quick_testbed, "_bed"):
        quick_testbed._bed = TestBed(key_bits=512, dh_group=GROUP_TEST_512)
    return quick_testbed._bed


def cpu_testbed():
    """Realistically sized testbed for CPU-bound benches."""
    from repro.experiments.harness import shared_testbed

    return shared_testbed(key_bits=BENCH_KEY_BITS)
