"""Figure 8: handshake sizes.

Paper findings (2048-bit OpenSSL certificates): mcTLS base handshake
≈ 2.1 kB vs ≈ 1.6 kB for SplitTLS/E2E-TLS; mcTLS grows with contexts
(key material) and middleboxes (certificates + key exchanges); the
baselines stay flat; handshake size is independent of file size.
Absolute sizes scale with certificate/key sizes — the relative pattern
is the target.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import cpu_testbed, emit, format_table

from repro.experiments.handshake_size import figure8


def test_fig8_handshake_sizes(benchmark, capsys):
    bed = cpu_testbed()
    rows = benchmark.pedantic(lambda: figure8(bed), rounds=1, iterations=1)
    table_rows = [
        [
            f"ctx={r.n_contexts} mbox={r.n_middleboxes}",
            r.mode,
            f"{r.bytes_total / 1000:.2f}",
        ]
        for r in rows
    ]
    emit(
        "fig8_handshake_sizes",
        "Handshake bytes crossing the client's access link (kB)\n"
        + format_table(["config", "protocol", "kB"], table_rows),
        capsys,
    )
