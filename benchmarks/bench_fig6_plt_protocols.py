"""Figure 6: page load time CDF, mcTLS vs the baselines.

Paper finding: SplitTLS, E2E-TLS and NoEncrypt perform the same; mcTLS
with Nagle adds half a second or more (multiple per-context sends stall);
disabling Nagle closes the gap — "mcTLS has no impact on real world Web
page load times."
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import BENCH_PAGES, emit, format_table, quick_testbed

from repro.experiments.page_load import figure6
from repro.workloads import generate_corpus


def _percentiles(values, points=(0.10, 0.25, 0.50, 0.75, 0.90)):
    ordered = sorted(values)
    return [ordered[min(len(ordered) - 1, int(p * len(ordered)))] for p in points]


def test_fig6_plt_protocols(benchmark, capsys):
    bed = quick_testbed()
    corpus = generate_corpus(n_pages=BENCH_PAGES, seed=2015)
    rows = benchmark.pedantic(
        lambda: figure6(bed, corpus), rounds=1, iterations=1
    )
    by_label = {}
    for r in rows:
        by_label.setdefault(r.label, []).append(r.plt_s)
    table_rows = []
    for label in sorted(by_label):
        p10, p25, p50, p75, p90 = _percentiles(by_label[label])
        table_rows.append(
            [label, f"{p10:.2f}", f"{p25:.2f}", f"{p50:.2f}", f"{p75:.2f}", f"{p90:.2f}"]
        )
    emit(
        "fig6_plt_protocols",
        f"Page load time percentiles (s), {BENCH_PAGES} synthetic pages\n"
        + format_table(["series", "p10", "p25", "p50", "p75", "p90"], table_rows),
        capsys,
    )
