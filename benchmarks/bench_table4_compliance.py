"""Table 4: design-requirement compliance of mcTLS vs prior proposals."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table

from repro.mctls.compliance import TABLE4


def test_table4_compliance(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: [[row.name] + [c.symbol for c in row.cells()] for row in TABLE4],
        rounds=1,
        iterations=1,
    )
    emit(
        "table4_compliance",
        "Requirement compliance (● full, ◌ partial)\n"
        + format_table(["proposal", "R1", "R2", "R3", "R4", "R5"], rows),
        capsys,
    )
