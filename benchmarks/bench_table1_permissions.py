"""Table 1: the least-privilege permission matrix of the middlebox apps.

Not a timing benchmark — it renders the permission rows that every
implemented middlebox application actually declares (and that the test
suite enforces end-to-end), matching the paper's Table 1.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table

from repro.mctls.contexts import Permission
from repro.middleboxes import ALL_MIDDLEBOX_APPS

_SYMBOL = {Permission.NONE: " ", Permission.READ: "r", Permission.WRITE: "rw"}


def test_table1_permission_matrix(benchmark, capsys):
    def build():
        rows = []
        for app in ALL_MIDDLEBOX_APPS:
            spec = app.PERMISSIONS
            rows.append(
                [
                    app.DISPLAY_NAME,
                    _SYMBOL[spec.request_headers],
                    _SYMBOL[spec.request_body],
                    _SYMBOL[spec.response_headers],
                    _SYMBOL[spec.response_body],
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "table1_permissions",
        "Middlebox permission matrix (r = read, rw = read/write)\n"
        + format_table(
            ["middlebox", "req hdrs", "req body", "resp hdrs", "resp body"], rows
        )
        + "\n\nNo middlebox needs read/write access to all of the data.",
        capsys,
    )
