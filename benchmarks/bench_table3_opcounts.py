"""Table 3: cryptographic operations per handshake and per party.

Prints measured operation counts (real handshakes, per-party counters)
next to the paper's closed-form expressions evaluated at the same (N, K).
Counting granularity differs (see EXPERIMENTS.md) — the structural
relationships are the target: client/server cost growing with N and K in
default mode, the CKD mode collapsing server cost, SplitTLS's middlebox
paying for two full handshakes.  The mdTLS delegation row is measured
too but has no paper column (the paper predates the variant); its
head-to-head economics live in ``bench_mdtls_delegation.py``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import cpu_testbed, emit, format_table

from repro.crypto.opcount import CATEGORIES
from repro.experiments.opcounts import table3

_SHOW = ("hash", "secret_comp", "key_gen", "asym_verify", "asym_sign", "sym_encrypt", "sym_decrypt")


def test_table3_opcounts(benchmark, capsys):
    bed = cpu_testbed()
    results = benchmark.pedantic(
        lambda: table3(bed, n_contexts=4, n_middleboxes=1), rounds=1, iterations=1
    )
    table_rows = []
    for result in results:
        for party in ("client", "middlebox", "server"):
            if party not in result.counts:
                continue
            measured = result.counts[party]
            paper = result.paper.get(party, {})
            table_rows.append(
                [result.mode, party]
                + [
                    f"{measured.get(cat, 0)}/{paper.get(cat, '-')}"
                    for cat in _SHOW
                ]
            )
    emit(
        "table3_opcounts",
        "Crypto ops per handshake, measured/paper-formula (N=1 middlebox, K=4 contexts)\n"
        + format_table(["mode", "party"] + list(_SHOW), table_rows),
        capsys,
    )
