"""Figure 3: time to first byte vs. #contexts (left) and #middleboxes (right).

Paper shapes to check in the output:

* NoEncrypt ≈ 2 RTT; mcTLS / SplitTLS / E2E-TLS ≈ 4 RTT at small context
  counts;
* mcTLS with Nagle steps up by ~1 hop-RTT at context counts where a
  handshake flight crosses an MSS (10 and 14 in the paper's build; the
  exact counts depend on message sizes — ours are recorded in
  EXPERIMENTS.md);
* mcTLS with Nagle disabled stays flat on the common curve;
* TTFB grows linearly with middleboxes (each adds a 20 ms hop).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit, format_table, quick_testbed

from repro.experiments.handshake_time import figure3_left, figure3_right


def test_fig3_left_contexts(benchmark, capsys):
    bed = quick_testbed()
    rows = benchmark.pedantic(
        lambda: figure3_left(bed, context_counts=tuple(range(1, 17))),
        rounds=1,
        iterations=1,
    )
    by_series = {}
    for r in rows:
        by_series.setdefault(r.mode, {})[r.n_contexts] = r.ttfb_s * 1000
    contexts = sorted({r.n_contexts for r in rows})
    table_rows = [
        [series] + [f"{by_series[series].get(c, float('nan')):.0f}" for c in contexts]
        for series in sorted(by_series)
    ]
    emit(
        "fig3_left_ttfb_vs_contexts",
        "Time to first byte (ms), 1 middlebox, 10 Mbps / 20 ms hops\n"
        + format_table(["series"] + [str(c) for c in contexts], table_rows),
        capsys,
    )


def test_fig3_right_middleboxes(benchmark, capsys):
    bed = quick_testbed()
    rows = benchmark.pedantic(
        lambda: figure3_right(bed, middlebox_counts=(0, 1, 2, 4, 8, 12, 16)),
        rounds=1,
        iterations=1,
    )
    by_series = {}
    for r in rows:
        by_series.setdefault(r.mode, {})[r.n_middleboxes] = r.ttfb_s * 1000
    counts = sorted({r.n_middleboxes for r in rows})
    table_rows = [
        [series] + [f"{by_series[series].get(c, float('nan')):.0f}" for c in counts]
        for series in sorted(by_series)
    ]
    emit(
        "fig3_right_ttfb_vs_middleboxes",
        "Time to first byte (ms) vs middlebox count (each adds a 20 ms hop)\n"
        + format_table(["series"] + [str(c) for c in counts], table_rows),
        capsys,
    )
