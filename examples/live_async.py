#!/usr/bin/env python
"""The live-sockets scenario on the asyncio serving runtime.

``examples/live_sockets.py`` runs one client through a thread-per-
connection server; this one runs the same mcTLS deployment on
``repro.aio`` — a production-shaped server and middlebox relay on
loopback with accept-backpressure, timeouts and stats — and drives
several concurrent clients plus a quick load-generator burst through it.

Run:  python examples/live_async.py
"""

import asyncio

from repro.aio import AsyncEndpointServer, AsyncRelayServer, connect, run_load
from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.tls.connection import TLSConfig


async def main() -> None:
    print("Generating keys...")
    ca = CertificateAuthority.create_root("Live Demo CA", key_bits=1024)
    server_identity = Identity.issued_by(ca, "live.example", key_bits=1024)
    proxy_identity = Identity.issued_by(ca, "proxy.live.example", key_bits=1024)

    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, "proxy.live.example")],
        contexts=[
            ContextDefinition(1, "request", {1: Permission.READ}),
            ContextDefinition(2, "response", {1: Permission.READ}),
        ],
    )

    # The echo server: answer every request verbatim in the response
    # context, serving sessions until each peer hangs up (the server
    # turns the peer's clean end-of-session into the end of this
    # handler).
    async def handle(conn) -> None:
        while True:
            event = await conn.recv_app_data()
            await conn.send(event.data, context_id=2)

    server = AsyncEndpointServer(
        ("127.0.0.1", 0),
        connection_factory=lambda: McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_MODP_1024,
            )
        ),
        handler=handle,
        max_connections=64,
    )
    await server.start()

    observed = []
    relay = AsyncRelayServer(
        ("127.0.0.1", 0),
        upstream_addr=("127.0.0.1", server.port),
        relay_factory=lambda: McTLSMiddlebox(
            "proxy.live.example",
            TLSConfig(identity=proxy_identity, trusted_roots=[ca.certificate]),
            observer=lambda d, ctx, data: observed.append((ctx, data)),
        ),
    )
    await relay.start()
    print(f"[setup] server on :{server.port}, middlebox on :{relay.port}")

    def make_client():
        return McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="live.example",
                dh_group=GROUP_MODP_1024,
            ),
            topology=topology,
        )

    # A handful of clients, concurrently, through the same relay.
    async def one_client(i: int) -> bytes:
        conn = await connect(("127.0.0.1", relay.port), make_client())
        await conn.handshake()
        await conn.send(f"hello #{i}".encode(), context_id=1)
        reply = await conn.recv_app_data()
        assert reply.context_id == 2
        await conn.close()
        return reply.data

    replies = await asyncio.gather(*(one_client(i) for i in range(4)))
    print(f"[clients] {len(replies)} concurrent sessions complete")
    assert sorted(replies) == sorted(
        f"hello #{i}".encode() for i in range(4)
    )
    assert all((1, f"hello #{i}".encode()) in observed for i in range(4))

    # And a short load-generator burst against the same chain.
    result = await run_load(
        ("127.0.0.1", relay.port),
        lambda resume: make_client(),
        connections=8,
        concurrency=4,
        payload=b"ping",
        context_id=1,
    )
    pct = result.latency_percentiles()
    print(
        f"[loadgen] {result.completed}/{result.requested} sessions, "
        f"{result.conn_per_s:.1f} conn/s, handshake p50={pct['p50']:.3f}s"
    )
    assert result.failed == 0

    await relay.stop()
    await server.stop()
    print(
        f"[stats] server: {server.stats.handshakes_ok} handshakes, "
        f"relay: {relay.stats.accepted} sessions relayed"
    )
    assert server.stats.handshakes_ok == 12
    assert relay.stats.accepted == 12
    print("OK: async runtime served concurrent mcTLS sessions through a relay.")


if __name__ == "__main__":
    asyncio.run(main())
