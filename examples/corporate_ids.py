#!/usr/bin/env python
"""The corporate-firewall / IDS use case (§4.2 of the paper).

An enterprise inserts an intrusion detection system with *read-only*
access to all four HTTP contexts.  Unlike today's practice, the IDS no
longer impersonates servers with a custom root certificate: both the
employee's client and the outside server see it in the session and
consent to exactly read-only access.  The IDS can detect exfiltration
and attack signatures but cannot alter a byte.

Run:  python examples/corporate_ids.py
"""

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.http import FOUR_CONTEXT, HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.mctls import McTLSClient, McTLSServer, MiddleboxInfo, SessionTopology
from repro.mctls.session import McTLSApplicationData
from repro.middleboxes import IntrusionDetectionSystem
from repro.tls.connection import TLSConfig
from repro.transport import Chain


def main() -> None:
    print("Generating keys...")
    ca = CertificateAuthority.create_root("Corp + Web CA", key_bits=1024)
    server_identity = Identity.issued_by(ca, "partner.example", key_bits=1024)
    ids_identity = Identity.issued_by(ca, "ids.corp.example", key_bits=1024)

    ids = IntrusionDetectionSystem(
        "ids.corp.example",
        TLSConfig(identity=ids_identity, trusted_roots=[ca.certificate]),
    )
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, "ids.corp.example")],
        contexts=IntrusionDetectionSystem.context_definitions(1),
    )

    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name="partner.example",
            dh_group=GROUP_MODP_1024,
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_MODP_1024,
        ),
    )

    def handler(request: HttpRequest) -> HttpResponse:
        return HttpResponse(body=b"<html>form received</html>")

    client_session = HttpClientSession(client, FOUR_CONTEXT)
    server_session = HttpServerSession(server, handler, FOUR_CONTEXT)

    chain = Chain(client, [ids.middlebox], server)
    chain.on_client_event = (
        lambda e: client_session.on_data(e.data)
        if isinstance(e, McTLSApplicationData)
        else None
    )
    chain.on_server_event = (
        lambda e: server_session.on_data(e.data)
        if isinstance(e, McTLSApplicationData)
        else None
    )
    client.start_handshake()
    chain.pump()
    print(f"IDS in session with permissions: "
          f"{ {c: p.name for c, p in ids.middlebox.permissions.items()} }")

    # Benign traffic.
    client_session.request(HttpRequest(target="/status"), lambda r: None)
    chain.pump()
    print(f"after benign request: alerts={len(ids.alerts)}")

    # An injection attempt inside a POST body.
    client_session.request(
        HttpRequest(method="POST", target="/search", body=b"q=' OR 1=1 --"),
        lambda r: None,
    )
    chain.pump()
    print(f"after injection attempt: alerts={len(ids.alerts)}")
    for alert in ids.alerts:
        print(f"  ALERT: signature {alert.signature!r} in context {alert.context_id}")

    assert ids.alarmed and ids.alerts[0].signature == b"' OR 1=1"
    print(f"OK: IDS scanned {ids.bytes_scanned} bytes read-only and caught the attack.")


if __name__ == "__main__":
    main()
