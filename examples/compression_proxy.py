#!/usr/bin/env python
"""The data-compression-proxy use case (§4.2 of the paper).

A mobile client grants an ISP compression proxy write access to the
*response* contexts only (the Table 1 "Compression" row); requests stay
invisible.  The proxy deflate-compresses response bodies in flight, the
client transparently inflates them, and the endpoint can tell — via the
endpoint MAC — that a legal in-network modification took place.

Run:  python examples/compression_proxy.py
"""

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.http import FOUR_CONTEXT, HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.mctls import McTLSClient, McTLSServer, MiddleboxInfo, SessionTopology
from repro.mctls.session import McTLSApplicationData
from repro.middleboxes import CompressionProxy
from repro.tls.connection import TLSConfig
from repro.transport import Chain

PAGE = (b"<html><body>" + b"<p>compressible web content</p>" * 400 + b"</body></html>")


def main() -> None:
    print("Generating keys...")
    ca = CertificateAuthority.create_root("Example Root CA", key_bits=1024)
    server_identity = Identity.issued_by(ca, "www.example.com", key_bits=1024)
    proxy_identity = Identity.issued_by(ca, "compress.isp.net", key_bits=1024)

    proxy = CompressionProxy(
        "compress.isp.net",
        TLSConfig(identity=proxy_identity, trusted_roots=[ca.certificate]),
    )
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, "compress.isp.net")],
        contexts=CompressionProxy.context_definitions(1),
    )

    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name="www.example.com",
            dh_group=GROUP_MODP_1024,
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_MODP_1024,
        ),
    )
    client_session = HttpClientSession(client, FOUR_CONTEXT)
    server_session = HttpServerSession(
        server, lambda req: HttpResponse(body=PAGE), FOUR_CONTEXT
    )

    chain = Chain(client, [proxy.middlebox], server)
    modified_flags = []

    def on_client_event(event):
        if isinstance(event, McTLSApplicationData):
            modified_flags.append(event.legally_modified)
            client_session.on_data(event.data)

    chain.on_client_event = on_client_event
    chain.on_server_event = (
        lambda e: server_session.on_data(e.data)
        if isinstance(e, McTLSApplicationData)
        else None
    )

    client.start_handshake()
    chain.pump()

    responses = []
    client_session.request(HttpRequest(target="/page.html"), responses.append)
    chain.pump()

    response = responses[0]
    assert response.body == PAGE, "decompressed body must match the original"
    print(f"original body:    {len(PAGE)} bytes")
    print(f"on the wire:      {proxy.bytes_out} bytes "
          f"({proxy.savings_ratio:.0%} saved by the proxy)")
    print(f"client detected a legal in-network modification: "
          f"{any(modified_flags)}")
    print("OK: compression happened in-network, under response-only access.")


if __name__ == "__main__":
    main()
