#!/usr/bin/env python
"""Quickstart: an mcTLS session with one read-only middlebox.

Demonstrates the core public API in ~60 lines:

1. build a certificate hierarchy (root CA, server and middlebox identities);
2. declare a session topology — which middleboxes, which encryption
   contexts, who may read or write what;
3. run the handshake through the middlebox and exchange data, observing
   the least-privilege guarantees in action.

Run:  python examples/quickstart.py
"""

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.mctls.session import McTLSApplicationData
from repro.tls.connection import TLSConfig
from repro.transport import Chain


def main() -> None:
    # 1. Certificates: a root CA that signs the server and the middlebox.
    print("Generating keys (pure Python, a few seconds)...")
    ca = CertificateAuthority.create_root("Example Root CA", key_bits=1024)
    server_identity = Identity.issued_by(ca, "www.example.com", key_bits=1024)
    proxy_identity = Identity.issued_by(ca, "proxy.isp.net", key_bits=1024)

    # 2. Topology: one middlebox; it may READ context 1 ("headers") but
    #    has no access to context 2 ("payload").
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(mbox_id=1, name="proxy.isp.net")],
        contexts=[
            ContextDefinition(1, "headers", {1: Permission.READ}),
            ContextDefinition(2, "payload"),
        ],
    )

    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name="www.example.com",
            dh_group=GROUP_MODP_1024,
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_MODP_1024,
        ),
    )
    observed = []
    proxy = McTLSMiddlebox(
        "proxy.isp.net",
        TLSConfig(identity=proxy_identity, trusted_roots=[ca.certificate]),
        observer=lambda direction, ctx, data: observed.append((ctx, data)),
    )

    # 3. Handshake through the middlebox, then send data per context.
    chain = Chain(client, [proxy], server)
    client.start_handshake()
    chain.pump()
    print(f"handshake complete; middlebox permissions: "
          f"{ {c: p.name for c, p in proxy.permissions.items()} }")

    client.send_application_data(b"GET /index.html", context_id=1)
    client.send_application_data(b"supercalifragilistic-secret", context_id=2)
    events = chain.pump()

    received = [
        (e.context_id, e.data)
        for e in events
        if isinstance(e, McTLSApplicationData)
    ]
    print(f"server received: {received}")
    print(f"middlebox observed (context 1 only): {observed}")
    assert all(ctx == 1 for ctx, _ in observed), "least privilege violated!"
    print("OK: the middlebox saw the headers context and nothing else.")


if __name__ == "__main__":
    main()
