#!/usr/bin/env python
"""A live mcTLS session over real TCP sockets on localhost.

Everything else in ``examples/`` runs over in-memory pipes; this one
starts an actual mcTLS server and middlebox relay on loopback ports and
drives a client through them — the deployment shape of §5.4, three OS
processes' worth of roles in one script via threads.

Run:  python examples/live_sockets.py
"""

import threading

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.sockets import EndpointServer, RelayServer, connect
from repro.tls.connection import TLSConfig


def main() -> None:
    print("Generating keys...")
    ca = CertificateAuthority.create_root("Live Demo CA", key_bits=1024)
    server_identity = Identity.issued_by(ca, "live.example", key_bits=1024)
    proxy_identity = Identity.issued_by(ca, "proxy.live.example", key_bits=1024)

    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, "proxy.live.example")],
        contexts=[
            ContextDefinition(1, "request", {1: Permission.READ}),
            ContextDefinition(2, "response", {1: Permission.READ}),
        ],
    )

    # The echo server: receives a message, answers in the response context.
    def handle(conn) -> None:
        conn.handshake()
        event = conn.recv_app_data()
        print(f"[server] got {event.data!r} on context {event.context_id}")
        conn.send(b"echo: " + event.data, context_id=2)

    server = EndpointServer(
        ("127.0.0.1", 0),
        connection_factory=lambda: McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_MODP_1024,
            )
        ),
        handler=handle,
    ).start()

    observed = []
    relay = RelayServer(
        ("127.0.0.1", 0),
        upstream_addr=("127.0.0.1", server.port),
        relay_factory=lambda: McTLSMiddlebox(
            "proxy.live.example",
            TLSConfig(identity=proxy_identity, trusted_roots=[ca.certificate]),
            observer=lambda d, ctx, data: observed.append((ctx, data)),
        ),
    ).start()
    print(f"[setup] server on :{server.port}, middlebox on :{relay.port}")

    client = connect(
        ("127.0.0.1", relay.port),
        McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="live.example",
                dh_group=GROUP_MODP_1024,
            ),
            topology=topology,
        ),
    )
    client.handshake()
    print("[client] mcTLS handshake complete over real sockets")
    client.send(b"hello across loopback", context_id=1)
    reply = client.recv_app_data()
    print(f"[client] reply: {reply.data!r} (context {reply.context_id})")

    assert reply.data == b"echo: hello across loopback"
    assert (1, b"hello across loopback") in observed
    print(f"[middlebox] observed: {observed}")
    print("OK: live sockets, real middlebox relay, least-privilege intact.")

    client.close()
    relay.stop()
    server.stop()


if __name__ == "__main__":
    main()
