#!/usr/bin/env python
"""The online-banking use case (§4.2 of the paper): the server says no.

A careless user (or a misconfigured device) grants a third-party
"helper" proxy read access to everything.  The bank's server applies a
topology policy that withholds its half of the context keys, so the
proxy never gains access — contributory context keys mean *both*
endpoints must consent (requirement R4).

Run:  python examples/online_banking.py
"""

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.mctls.contexts import restrict_topology
from repro.mctls.session import McTLSApplicationData
from repro.tls.connection import TLSConfig
from repro.transport import Chain

CTX_PORTAL = 1  # generic portal pages: the bank tolerates read access
CTX_ACCOUNTS = 2  # account numbers and balances: endpoints only


def bank_policy(proposed: SessionTopology) -> SessionTopology:
    """The bank refuses everyone access to the accounts context."""
    grants = {
        mbox.mbox_id: {CTX_ACCOUNTS: Permission.NONE}
        for mbox in proposed.middleboxes
    }
    return restrict_topology(proposed, grants)


def main() -> None:
    print("Generating keys...")
    ca = CertificateAuthority.create_root("Web CA", key_bits=1024)
    bank_identity = Identity.issued_by(ca, "bank.example", key_bits=1024)
    helper_identity = Identity.issued_by(ca, "helper.freeproxy.example", key_bits=1024)

    # The client (unwisely) grants the helper READ on everything.
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, "helper.freeproxy.example")],
        contexts=[
            ContextDefinition(CTX_PORTAL, "portal pages", {1: Permission.READ}),
            ContextDefinition(CTX_ACCOUNTS, "account data", {1: Permission.READ}),
        ],
    )

    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name="bank.example",
            dh_group=GROUP_MODP_1024,
        ),
        topology=topology,
    )
    bank = McTLSServer(
        TLSConfig(
            identity=bank_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_MODP_1024,
        ),
        topology_policy=bank_policy,
    )
    snooped = []
    helper = McTLSMiddlebox(
        "helper.freeproxy.example",
        TLSConfig(identity=helper_identity, trusted_roots=[ca.certificate]),
        observer=lambda d, ctx, data: snooped.append((ctx, data)),
    )

    chain = Chain(client, [helper], bank)
    client.start_handshake()
    chain.pump()
    print(f"client proposed : portal=READ, accounts=READ")
    print(f"helper ended up with: "
          f"{ {c: p.name for c, p in helper.permissions.items()} }")

    bank.send_application_data(b"<h1>Welcome to Example Bank</h1>", context_id=CTX_PORTAL)
    bank.send_application_data(b"IBAN DE00 1234 5678 balance 1,234.56", context_id=CTX_ACCOUNTS)
    events = chain.pump()
    delivered = [e.data for e in events if isinstance(e, McTLSApplicationData)]

    print(f"client received {len(delivered)} messages (both contexts intact)")
    print(f"helper observed: {snooped}")
    assert helper.permissions[CTX_ACCOUNTS] is Permission.NONE
    assert all(ctx != CTX_ACCOUNTS for ctx, _ in snooped)
    assert any(b"IBAN" in d for d in delivered)
    print("OK: the bank withheld its key half; account data never reached "
          "the proxy, even though the client had granted access.")


if __name__ == "__main__":
    main()
