#!/usr/bin/env python
"""Middlebox discovery (§6.1) and graceful TLS fallback (§5.4).

Two deployment realities the paper discusses beyond the core protocol:

1. the client assembles its middlebox list from several sources —
   operator requirements (DHCP-style), user choices (mDNS-style service
   registry), and content-provider policy (DNS-style records);
2. when the server turns out not to speak mcTLS at all, the client
   falls back to plain TLS — but never downgrades in response to a
   security failure.

Run:  python examples/discovery_and_fallback.py
"""

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    Permission,
    SessionTopology,
)
from repro.mctls.discovery import (
    ContentProviderPolicy,
    DiscoveredMiddlebox,
    NetworkPolicy,
    ServiceRegistry,
    discover,
)
from repro.mctls.fallback import connect_with_fallback
from repro.tls.client import TLSClient
from repro.tls.connection import TLSConfig
from repro.tls.server import TLSServer
from repro.transport import Chain, pump


def main() -> None:
    print("Generating keys...")
    ca = CertificateAuthority.create_root("Web CA", key_bits=1024)
    server_identity = Identity.issued_by(ca, "shop.example", key_bits=1024)
    scanner_identity = Identity.issued_by(ca, "virus-scan.corp.example", key_bits=1024)
    compress_identity = Identity.issued_by(ca, "compress.isp.example", key_bits=1024)
    waf_identity = Identity.issued_by(ca, "waf.shop.example", key_bits=1024)

    # -- §6.1: three discovery sources --------------------------------
    corporate_network = NetworkPolicy(
        required=[DiscoveredMiddlebox("virus-scan.corp.example", service="ids")]
    )
    registry = ServiceRegistry()
    registry.advertise("compression", "compress.isp.example", "10.1.2.3:443")
    provider_dns = ContentProviderPolicy()
    provider_dns.publish(
        "shop.example", [DiscoveredMiddlebox("waf.shop.example", service="waf")]
    )

    middleboxes = discover(
        "shop.example",
        network=corporate_network,
        user=registry.find("compression"),
        content_provider=provider_dns,
    )
    print("discovered middlebox path:")
    for m in middleboxes:
        print(f"  {m.mbox_id}. {m.name}")

    topology = SessionTopology(
        middleboxes=middleboxes,
        contexts=[
            ContextDefinition(
                1, "traffic", {m.mbox_id: Permission.READ for m in middleboxes}
            )
        ],
    )
    client_config = TLSConfig(
        trusted_roots=[ca.certificate],
        server_name="shop.example",
        dh_group=GROUP_MODP_1024,
    )

    # Full mcTLS session through all three discovered middleboxes.
    client = McTLSClient(client_config, topology=topology)
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_MODP_1024,
        )
    )
    relays = [
        McTLSMiddlebox(ident.name, TLSConfig(identity=ident, trusted_roots=[ca.certificate]))
        for ident in (scanner_identity, compress_identity, waf_identity)
    ]
    chain = Chain(client, relays, server)
    client.start_handshake()
    chain.pump()
    print(f"mcTLS session up through {len(relays)} middleboxes: "
          f"{client.handshake_complete}")

    # -- §5.4: fallback against a TLS-only server ----------------------
    def dial_tls_only_server():
        server = TLSServer(
            TLSConfig(identity=server_identity, dh_group=GROUP_MODP_1024)
        )
        return server, pump

    conn = connect_with_fallback(
        client_config,
        SessionTopology(contexts=[ContextDefinition(1, "all")]),
        dial_tls_only_server,
    )
    assert isinstance(conn, TLSClient) and conn.handshake_complete
    print("legacy server detected: fell back to plain TLS and completed.")
    print("OK: discovery assembled the path; fallback handled the legacy peer.")


if __name__ == "__main__":
    main()
