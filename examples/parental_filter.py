#!/usr/bin/env python
"""The parental-filter use case (§4.2 of the paper).

A school network inserts a filter with read-only access to *request
headers* — the minimum needed to check full URLs against a blacklist
(the paper notes only 5 % of real blacklist entries are whole domains).
The filter sees no bodies and no responses; non-compliant requests raise
its block flag, on which the network drops the connection.

Run:  python examples/parental_filter.py
"""

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024
from repro.http import FOUR_CONTEXT, HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.mctls import McTLSClient, McTLSServer, MiddleboxInfo, SessionTopology
from repro.mctls.session import McTLSApplicationData
from repro.middleboxes import ParentalFilter
from repro.tls.connection import TLSConfig
from repro.transport import Chain

BLACKLIST = ["badsite.example", "news.example/celebrity-gossip"]


def main() -> None:
    print("Generating keys...")
    ca = CertificateAuthority.create_root("School District CA", key_bits=1024)
    server_identity = Identity.issued_by(ca, "news.example", key_bits=1024)
    filter_identity = Identity.issued_by(ca, "filter.school.edu", key_bits=1024)

    blocked_log = []
    content_filter = ParentalFilter(
        "filter.school.edu",
        TLSConfig(identity=filter_identity, trusted_roots=[ca.certificate]),
        blacklist=BLACKLIST,
        on_block=blocked_log.append,
    )
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, "filter.school.edu")],
        contexts=ParentalFilter.context_definitions(1),
    )

    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name="news.example",
            dh_group=GROUP_MODP_1024,
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_MODP_1024,
        ),
    )
    client_session = HttpClientSession(client, FOUR_CONTEXT)
    server_session = HttpServerSession(
        server, lambda req: HttpResponse(body=b"article text"), FOUR_CONTEXT
    )

    chain = Chain(client, [content_filter.middlebox], server)
    chain.on_client_event = (
        lambda e: client_session.on_data(e.data)
        if isinstance(e, McTLSApplicationData)
        else None
    )
    chain.on_server_event = (
        lambda e: server_session.on_data(e.data)
        if isinstance(e, McTLSApplicationData)
        else None
    )
    client.start_handshake()
    chain.pump()

    for target in ["/science/article-42", "/celebrity-gossip/latest"]:
        responses = []
        client_session.request(
            HttpRequest(target=target, headers=[("Host", "news.example")]),
            responses.append,
        )
        chain.pump()
        verdict = "BLOCKED" if content_filter.blocked else "allowed"
        print(f"GET news.example{target}: {verdict}")
        if content_filter.blocked:
            # The network operator tears the connection down.
            print(f"  filter log: {blocked_log}")
            break

    assert blocked_log == ["news.example/celebrity-gossip/latest"]
    print("OK: URL-level filtering with request-header-only visibility.")


if __name__ == "__main__":
    main()
