"""Unit tests for the mcTLS record layer and middlebox record processor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, Permission
from repro.mctls.record import (
    MAX_FRAGMENT,
    MCTLS_HEADER_LEN,
    MacVerificationError,
    McTLSRecordError,
    McTLSRecordLayer,
    MiddleboxRecordProcessor,
    encode_header,
    split_records,
)
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256 as SUITE
from repro.tls.record import ALERT, APPLICATION_DATA, HANDSHAKE, MAX_PLAINTEXT

RC, RS = b"c" * 32, b"s" * 32
ENDPOINT_SECRET = b"S" * 48


def make_context_keys(ctx_id=1):
    return mk.ckd_context_keys(ENDPOINT_SECRET, RC, RS, ctx_id)


def make_layer(is_client, context_ids=(1,), activate=True):
    layer = McTLSRecordLayer(is_client=is_client)
    layer.set_suite(SUITE)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(ENDPOINT_SECRET, RC, RS))
    for ctx_id in context_ids:
        layer.install_context_keys(ctx_id, make_context_keys(ctx_id))
    if activate:
        layer.activate_write()
        layer.activate_read()
    return layer


def make_pair(context_ids=(1,)):
    return make_layer(True, context_ids), make_layer(False, context_ids)


class TestEndpointRecords:
    def test_context_roundtrip(self):
        client, server = make_pair()
        server.feed(client.encode(APPLICATION_DATA, b"hello", 1))
        record = server.read_record()
        assert (record.context_id, record.payload) == (1, b"hello")
        assert record.legally_modified is False

    def test_control_context_roundtrip(self):
        client, server = make_pair()
        server.feed(client.encode(HANDSHAKE, b"finished-ish", ENDPOINT_CONTEXT_ID))
        record = server.read_record()
        assert record.context_id == ENDPOINT_CONTEXT_ID
        assert record.payload == b"finished-ish"

    def test_directional_separation(self):
        """A client record cannot be decoded as a server record (keys are
        directional)."""
        client, _ = make_pair()
        other_client = make_layer(True)
        other_client.feed(client.encode(APPLICATION_DATA, b"x", 1))
        with pytest.raises(McTLSRecordError):
            other_client.read_record()

    def test_unknown_context_rejected_on_send(self):
        client, _ = make_pair()
        with pytest.raises(McTLSRecordError, match="no keys"):
            client.encode(APPLICATION_DATA, b"x", 99)

    def test_unknown_context_rejected_on_receive(self):
        client, server = make_pair(context_ids=(1, 2))
        limited = make_layer(False, context_ids=(1,))
        limited.feed(client.encode(APPLICATION_DATA, b"x", 2))
        with pytest.raises(McTLSRecordError, match="no keys"):
            limited.read_record()

    def test_activation_requires_keys(self):
        layer = McTLSRecordLayer(is_client=True)
        with pytest.raises(McTLSRecordError):
            layer.activate_write()

    def test_fragmentation_and_reassembly(self):
        client, server = make_pair()
        payload = bytes(range(256)) * 200  # > MAX_PLAINTEXT
        server.feed(client.encode(APPLICATION_DATA, payload, 1))
        chunks = [r.payload for r in server.read_all()]
        assert len(chunks) >= 2
        assert b"".join(chunks) == payload

    def test_sequence_numbers_global_across_contexts(self):
        """Records in different contexts share one sequence space."""
        client, server = make_pair(context_ids=(1, 2))
        r1 = client.encode(APPLICATION_DATA, b"a", 1)
        r2 = client.encode(APPLICATION_DATA, b"b", 2)
        # Delivering ctx-2's record first desynchronises the sequence.
        server.feed(r2)
        with pytest.raises(McTLSRecordError):
            server.read_record()
        del r1

    def test_cross_context_splice_rejected(self):
        """A record cut from context 1 cannot be replayed as context 2."""
        client, server = make_pair(context_ids=(1, 2))
        wire = bytearray(client.encode(APPLICATION_DATA, b"spliced", 1))
        wire[3] = 2  # rewrite the context id in the header
        server.feed(bytes(wire))
        with pytest.raises(McTLSRecordError):
            server.read_record()

    def test_content_type_confusion_rejected(self):
        client, server = make_pair()
        wire = bytearray(client.encode(APPLICATION_DATA, b"x", 1))
        wire[0] = ALERT
        server.feed(bytes(wire))
        with pytest.raises(McTLSRecordError):
            server.read_record()

    @given(st.binary(max_size=1000), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, payload, ctx_id):
        client, server = make_pair(context_ids=(1, 2, 3))
        server.feed(client.encode(APPLICATION_DATA, payload, ctx_id))
        received = b"".join(r.payload for r in server.read_all())
        assert received == payload


class TestSplitRecords:
    def test_yields_complete_records_only(self):
        client, _ = make_pair()
        wire = client.encode(APPLICATION_DATA, b"abc", 1)
        buf = bytearray(wire[:-1])
        assert list(split_records(buf)) == []
        buf += wire[-1:]
        records = list(split_records(buf))
        assert len(records) == 1
        assert records[0][3] == wire  # raw bytes preserved
        assert not buf

    def test_header_fields(self):
        header = encode_header(APPLICATION_DATA, 7, 100)
        assert len(header) == MCTLS_HEADER_LEN
        assert header[0] == APPLICATION_DATA
        assert header[3] == 7

    def test_oversized_record_rejected(self):
        buf = bytearray(encode_header(APPLICATION_DATA, 1, 0xFFFF))
        with pytest.raises(McTLSRecordError):
            list(split_records(buf))


class TestRecordSizeLimits:
    def test_fragment_exactly_at_limit_accepted(self):
        wire = encode_header(APPLICATION_DATA, 1, MAX_FRAGMENT) + b"\x00" * MAX_FRAGMENT
        records = list(split_records(bytearray(wire)))
        assert len(records) == 1
        assert len(records[0][2]) == MAX_FRAGMENT

    def test_fragment_one_over_limit_rejected(self):
        header = encode_header(APPLICATION_DATA, 1, MAX_FRAGMENT + 1)
        with pytest.raises(McTLSRecordError, match="too long"):
            list(split_records(bytearray(header)))

    def test_payload_exactly_max_plaintext_is_one_record(self):
        """A MAX_PLAINTEXT payload fits one record: its fragment (nonce +
        payload + three MACs) stays within the MAX_FRAGMENT expansion
        budget and the receiver round-trips it."""
        client, server = make_pair()
        payload = b"x" * MAX_PLAINTEXT
        wire = client.encode(APPLICATION_DATA, payload, 1)
        records = list(split_records(bytearray(wire)))
        assert len(records) == 1
        assert len(records[0][2]) <= MAX_FRAGMENT
        server.feed(wire)
        assert b"".join(r.payload for r in server.read_all()) == payload

    def test_payload_one_over_max_plaintext_fragments(self):
        client, server = make_pair()
        payload = b"y" * (MAX_PLAINTEXT + 1)
        wire = client.encode(APPLICATION_DATA, payload, 1)
        assert len(list(split_records(bytearray(wire)))) == 2
        server.feed(wire)
        chunks = [r.payload for r in server.read_all()]
        assert [len(c) for c in chunks] == [MAX_PLAINTEXT, 1]
        assert b"".join(chunks) == payload


class TestSequenceNumbers:
    def test_third_party_deletion_detected_across_contexts(self):
        """Sequence numbers are global per direction: silently deleting a
        context-1 record makes the *next* record — in a different
        context — fail its writer MAC at the endpoint."""
        client, server = make_pair(context_ids=(1, 2))
        deleted = client.encode(APPLICATION_DATA, b"deleted by attacker", 1)
        survivor = client.encode(APPLICATION_DATA, b"survivor", 2)
        server.feed(survivor)  # the context-1 record never arrives
        with pytest.raises(MacVerificationError) as excinfo:
            server.read_record()
        assert excinfo.value.mac == "writers"
        assert excinfo.value.where == "endpoint"
        assert excinfo.value.context_id == 2
        del deleted

    def test_no_deletion_no_false_positive(self):
        client, server = make_pair(context_ids=(1, 2))
        server.feed(client.encode(APPLICATION_DATA, b"first", 1))
        server.feed(client.encode(APPLICATION_DATA, b"second", 2))
        received = [(r.context_id, r.payload) for r in server.read_all()]
        assert received == [(1, b"first"), (2, b"second")]


class TestMiddleboxProcessor:
    def _wire(self, client, payload=b"data", ctx=1):
        wire = client.encode(APPLICATION_DATA, payload, ctx)
        _, ctx_id, fragment, _ = next(split_records(bytearray(wire)))
        return ctx_id, fragment

    def test_reader_opens_record(self):
        client, _ = make_pair()
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(1, Permission.READ, make_context_keys())
        proc.activate()
        ctx_id, fragment = self._wire(client)
        opened = proc.open_record(APPLICATION_DATA, ctx_id, fragment)
        assert opened.payload == b"data"
        assert opened.permission is Permission.READ

    def test_no_permission_returns_opaque(self):
        client, _ = make_pair()
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.activate()
        ctx_id, fragment = self._wire(client)
        opened = proc.open_record(APPLICATION_DATA, ctx_id, fragment)
        assert opened.payload is None

    def test_opaque_records_consume_sequence_numbers(self):
        """A no-access record still advances the global sequence, so a
        later readable record verifies correctly."""
        client, _ = make_pair(context_ids=(1, 2))
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(2, Permission.READ, make_context_keys(2))
        proc.activate()
        ctx1, frag1 = self._wire(client, b"opaque", 1)
        assert proc.open_record(APPLICATION_DATA, ctx1, frag1).payload is None
        ctx2, frag2 = self._wire(client, b"readable", 2)
        assert proc.open_record(APPLICATION_DATA, ctx2, frag2).payload == b"readable"

    def test_writer_rebuild_roundtrip(self):
        client, server = make_pair()
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(1, Permission.WRITE, make_context_keys())
        proc.activate()
        ctx_id, fragment = self._wire(client, b"original")
        opened = proc.open_record(APPLICATION_DATA, ctx_id, fragment)
        rebuilt = proc.rebuild_record(opened, b"rewritten, longer payload")
        server.feed(rebuilt)
        record = server.read_record()
        assert record.payload == b"rewritten, longer payload"
        assert record.legally_modified is True

    def test_reader_cannot_rebuild(self):
        client, _ = make_pair()
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(1, Permission.READ, make_context_keys())
        proc.activate()
        ctx_id, fragment = self._wire(client)
        opened = proc.open_record(APPLICATION_DATA, ctx_id, fragment)
        with pytest.raises(McTLSRecordError, match="write permission"):
            proc.rebuild_record(opened, b"nope")

    def test_tamper_detected_by_reader(self):
        client, _ = make_pair()
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(1, Permission.READ, make_context_keys())
        proc.activate()
        ctx_id, fragment = self._wire(client)
        bad = bytearray(fragment)
        bad[-1] ^= 1
        with pytest.raises(McTLSRecordError):
            proc.open_record(APPLICATION_DATA, ctx_id, bytes(bad))

    def test_inactive_processor_rejects(self):
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        with pytest.raises(McTLSRecordError, match="not yet activated"):
            proc.open_record(APPLICATION_DATA, 1, b"x" * 100)
