"""Remaining edge paths: transcripts, alerts, persistence, validation."""

import pytest

from repro.crypto.numtheory import generate_prime
from repro.crypto.rsa import RSAError, generate_rsa_key
from repro.mctls.session import TranscriptStore
from repro.tls.connection import (
    ALERT_LEVEL_FATAL,
    AlertReceived,
    ConnectionClosed,
    TLSError,
)
from repro.workloads import generate_corpus
from repro.workloads.alexa import PageCorpus


class TestTranscriptStore:
    def test_duplicate_tag_rejected(self):
        store = TranscriptStore()
        store.add("client_hello", b"x")
        with pytest.raises(TLSError, match="duplicate"):
            store.add("client_hello", b"y")

    def test_missing_messages_reported(self):
        store = TranscriptStore()
        store.add("a", b"1")
        with pytest.raises(TLSError, match="missing.*'b'"):
            store.hash_over(["a", "b"])

    def test_hash_is_order_sensitive(self):
        store = TranscriptStore()
        store.add("a", b"1")
        store.add("b", b"2")
        assert store.hash_over(["a", "b"]) != store.hash_over(["b", "a"])
        assert store.has("a") and not store.has("z")


class TestAlertHandling:
    def test_fatal_alert_closes_connection(self, client_config, server_config):
        from repro.tls import TLSClient, TLSServer
        from repro.transport import pump

        client = TLSClient(client_config)
        server = TLSServer(server_config)
        client.start_handshake()
        pump(client, server)
        # Inject a fatal alert record from the server.
        server._send_alert(ALERT_LEVEL_FATAL, 40)
        events = client.receive_bytes(server.data_to_send())
        assert any(isinstance(e, AlertReceived) and e.level == 2 for e in events)
        assert any(isinstance(e, ConnectionClosed) for e in events)
        assert client.closed

    def test_double_close_is_idempotent(self, client_config, server_config):
        from repro.tls import TLSClient, TLSServer
        from repro.transport import pump

        client = TLSClient(client_config)
        server = TLSServer(server_config)
        client.start_handshake()
        pump(client, server)
        client.close()
        first = client.data_to_send()
        client.close()
        assert client.data_to_send() == b""  # no second alert
        assert first

    def test_receive_after_close_ignored(self, client_config, server_config):
        from repro.tls import TLSClient, TLSServer
        from repro.transport import pump

        client = TLSClient(client_config)
        server = TLSServer(server_config)
        client.start_handshake()
        pump(client, server)
        client.close()
        server.send_application_data(b"late data")
        assert client.receive_bytes(server.data_to_send()) == []


class TestCorpusPersistence:
    def test_json_roundtrip(self):
        corpus = generate_corpus(n_pages=10, seed=3)
        restored = PageCorpus.from_json(corpus.to_json())
        assert restored.seed == corpus.seed
        assert len(restored) == len(corpus)
        for original, copy in zip(corpus, restored):
            assert original.url == copy.url
            assert original.connections == copy.connections
            assert original.total_bytes == copy.total_bytes

    def test_restored_corpus_usable_in_experiments(self):
        corpus = generate_corpus(n_pages=3, seed=3)
        restored = PageCorpus.from_json(corpus.to_json())
        assert restored.size_percentile(0.5) == corpus.size_percentile(0.5)


class TestValidationPaths:
    def test_prime_size_floor(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_rsa_key_size_floor(self):
        with pytest.raises(ValueError):
            generate_rsa_key(256)

    def test_rsa_modulus_too_small_to_sign(self):
        key = generate_rsa_key(512)
        # 512-bit keys CAN sign SHA-256; build a fake tiny-modulus check
        # through the encode helper instead.
        from repro.crypto.rsa import _pkcs1_sign_encode

        with pytest.raises(RSAError):
            _pkcs1_sign_encode(b"m", 40)  # 40-byte modulus < digest+overhead

    def test_link_validation(self):
        from repro.netsim import Simulator
        from repro.netsim.link import Link

        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0, delay_s=0.0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=None, delay_s=-1.0)

    def test_event_budget_guard(self):
        from repro.netsim import Simulator

        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="budget"):
            sim.run(max_events=1000)
