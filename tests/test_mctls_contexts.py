"""Tests for encryption contexts, topology and the permission model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mctls.contexts import (
    ContextDefinition,
    MiddleboxInfo,
    Permission,
    SessionTopology,
    restrict_topology,
)


def simple_topology():
    return SessionTopology(
        middleboxes=[MiddleboxInfo(1, "m1"), MiddleboxInfo(2, "m2")],
        contexts=[
            ContextDefinition(1, "headers", {1: Permission.READ, 2: Permission.WRITE}),
            ContextDefinition(2, "body", {2: Permission.READ}),
        ],
    )


class TestPermission:
    def test_ordering(self):
        assert Permission.NONE < Permission.READ < Permission.WRITE

    def test_capabilities(self):
        assert not Permission.NONE.can_read and not Permission.NONE.can_write
        assert Permission.READ.can_read and not Permission.READ.can_write
        assert Permission.WRITE.can_read and Permission.WRITE.can_write


class TestTopology:
    def test_lookups(self):
        topo = simple_topology()
        assert topo.context_ids == [1, 2]
        assert topo.middlebox_ids == [1, 2]
        assert topo.middlebox_by_name("m2").mbox_id == 2
        assert topo.middlebox_by_name("nope") is None
        assert topo.context(1).purpose == "headers"

    def test_permissions_of(self):
        topo = simple_topology()
        assert topo.permissions_of(1) == {1: Permission.READ, 2: Permission.NONE}
        assert topo.readable_contexts(2) == [1, 2]
        assert topo.writable_contexts(2) == [1]

    def test_duplicate_middlebox_ids_rejected(self):
        with pytest.raises(ValueError):
            SessionTopology(middleboxes=[MiddleboxInfo(1, "a"), MiddleboxInfo(1, "b")])

    def test_duplicate_context_ids_rejected(self):
        with pytest.raises(ValueError):
            SessionTopology(
                contexts=[ContextDefinition(1, "a"), ContextDefinition(1, "b")]
            )

    def test_unknown_middlebox_permission_rejected(self):
        with pytest.raises(ValueError):
            SessionTopology(
                contexts=[ContextDefinition(1, "a", {9: Permission.READ})]
            )

    def test_context_zero_reserved(self):
        with pytest.raises(ValueError):
            ContextDefinition(0, "reserved")

    def test_encode_decode_roundtrip(self):
        topo = simple_topology()
        decoded = SessionTopology.decode(topo.encode())
        assert decoded.context_ids == topo.context_ids
        assert decoded.middlebox_ids == topo.middlebox_ids
        for mbox_id in topo.middlebox_ids:
            assert decoded.permissions_of(mbox_id) == topo.permissions_of(mbox_id)


class TestPolicyRestriction:
    def test_cap_lowers_permission(self):
        topo = simple_topology()
        restricted = restrict_topology(topo, {2: {1: Permission.READ}})
        assert restricted.context(1).permission_for(2) == Permission.READ
        # Unaffected grants stay.
        assert restricted.context(1).permission_for(1) == Permission.READ

    def test_deny_all(self):
        topo = simple_topology()
        restricted = restrict_topology(
            topo, {1: {1: Permission.NONE}, 2: {1: Permission.NONE, 2: Permission.NONE}}
        )
        assert restricted.context(1).permission_for(1) == Permission.NONE
        assert restricted.context(1).permission_for(2) == Permission.NONE
        assert restricted.context(2).permission_for(2) == Permission.NONE

    def test_cap_cannot_raise_permission(self):
        topo = simple_topology()
        raised = restrict_topology(topo, {1: {2: Permission.WRITE}})
        # Client proposed NONE for mbox 1 on ctx 2; server cap can't raise it.
        assert raised.context(2).permission_for(1) == Permission.NONE


@st.composite
def topologies(draw):
    n_mbox = draw(st.integers(min_value=0, max_value=4))
    middleboxes = [MiddleboxInfo(i + 1, f"m{i + 1}") for i in range(n_mbox)]
    n_ctx = draw(st.integers(min_value=1, max_value=6))
    contexts = []
    for c in range(n_ctx):
        perms = {}
        for m in middleboxes:
            perm = draw(st.sampled_from(list(Permission)))
            if perm is not Permission.NONE:
                perms[m.mbox_id] = perm
        contexts.append(ContextDefinition(c + 1, f"ctx{c + 1}", perms))
    return SessionTopology(middleboxes=middleboxes, contexts=contexts)


@given(topologies())
@settings(max_examples=50)
def test_topology_roundtrip_property(topo):
    decoded = SessionTopology.decode(topo.encode())
    assert decoded.encode() == topo.encode()
    for mbox_id in topo.middlebox_ids:
        assert decoded.permissions_of(mbox_id) == topo.permissions_of(mbox_id)
