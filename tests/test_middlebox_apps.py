"""Tests for the Table 1 middlebox applications, run through real
mcTLS sessions with the 4-Context strategy."""

import zlib

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.http import FOUR_CONTEXT, HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.mctls import McTLSClient, McTLSServer, MiddleboxInfo, Permission, SessionTopology
from repro.mctls.session import McTLSApplicationData
from repro.middleboxes import (
    ALL_MIDDLEBOX_APPS,
    CacheProxy,
    CompressionProxy,
    IntrusionDetectionSystem,
    LoadBalancer,
    PacketPacer,
    ParentalFilter,
    TrackerBlocker,
    WanOptimizer,
)
from repro.middleboxes.base import PermissionSpec
from repro.tls.connection import TLSConfig
from repro.transport import Chain


def run_app_session(ca, server_identity, mbox_identity, app_class, handler, **app_kwargs):
    """Build an mcTLS session with one app middlebox; returns
    (app, client_session, chain, issue) where issue(request) returns the
    response."""
    app = app_class(
        mbox_identity.name,
        TLSConfig(
            identity=mbox_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
        **app_kwargs,
    )
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=app_class.context_definitions(1),
    )
    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
    )
    client_session = HttpClientSession(client, FOUR_CONTEXT)
    server_session = HttpServerSession(server, handler, FOUR_CONTEXT)
    chain = Chain(client, [app.middlebox], server)
    chain.on_client_event = (
        lambda e: client_session.on_data(e.data) if isinstance(e, McTLSApplicationData) else None
    )
    chain.on_server_event = (
        lambda e: server_session.on_data(e.data) if isinstance(e, McTLSApplicationData) else None
    )
    client.start_handshake()
    chain.pump()

    def issue(request):
        responses = []
        client_session.request(request, responses.append)
        chain.pump()
        assert responses, "no response received"
        return responses[0]

    return app, client_session, chain, issue


class TestPermissionMatrix:
    def test_table1_rows(self):
        """The permission matrix matches Table 1 of the paper."""
        rows = {app.DISPLAY_NAME: app.PERMISSIONS for app in ALL_MIDDLEBOX_APPS}
        N, R, W = Permission.NONE, Permission.READ, Permission.WRITE
        assert rows["Cache"] == PermissionSpec(R, N, W, W)
        assert rows["Compression"] == PermissionSpec(N, N, W, W)
        assert rows["Load Balancer"] == PermissionSpec(R, N, N, N)
        assert rows["IDS"] == PermissionSpec(R, R, R, R)
        assert rows["Parental Filter"] == PermissionSpec(R, N, N, N)
        assert rows["Tracker Blocker"] == PermissionSpec(W, N, W, N)
        assert rows["Packet Pacer"] == PermissionSpec(N, N, N, R)
        assert rows["WAN Optimizer"] == PermissionSpec(R, R, R, R)

    def test_no_app_needs_full_write(self):
        """The caption: no middlebox needs read/write access to everything."""
        for app in ALL_MIDDLEBOX_APPS:
            spec = app.PERMISSIONS.row()
            assert not all(p is Permission.WRITE for p in spec.values())

    def test_context_definitions_match_spec(self):
        contexts = IntrusionDetectionSystem.context_definitions(7)
        assert [c.permission_for(7) for c in contexts] == [Permission.READ] * 4


class TestCache:
    def test_hit_miss_annotation(self, ca, server_identity, mbox_identity):
        app, session, chain, issue = run_app_session(
            ca,
            server_identity,
            mbox_identity,
            CacheProxy,
            lambda req: HttpResponse(body=b"page-content"),
        )
        first = issue(HttpRequest(target="/page", headers=[("Host", "h")]))
        assert first.get_header("X-Cache") == "MISS"
        second = issue(HttpRequest(target="/page", headers=[("Host", "h")]))
        assert second.get_header("X-Cache") == "HIT"
        assert app.hits == 1 and app.misses == 1
        app.flush()
        assert app.store["h/page"] == b"page-content"

    def test_distinct_urls_both_miss(self, ca, server_identity, mbox_identity):
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CacheProxy,
            lambda req: HttpResponse(body=req.target.encode()),
        )
        issue(HttpRequest(target="/a", headers=[("Host", "h")]))
        issue(HttpRequest(target="/b", headers=[("Host", "h")]))
        assert app.misses == 2 and app.hits == 0


class TestCompression:
    def test_compresses_and_client_inflates(self, ca, server_identity, mbox_identity):
        body = b"compressible " * 500
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(body=body),
        )
        response = issue(HttpRequest(target="/big"))
        assert response.body == body  # transparently inflated
        assert app.responses_compressed == 1
        assert app.bytes_out < app.bytes_in
        assert app.savings_ratio > 0.5

    def test_skips_incompressible(self, ca, server_identity, mbox_identity):
        import os

        body = os.urandom(2000)
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(body=body),
        )
        response = issue(HttpRequest(target="/noise"))
        assert response.body == body
        assert app.responses_compressed == 0

    def test_small_bodies_untouched(self, ca, server_identity, mbox_identity):
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(body=b"tiny"),
        )
        assert issue(HttpRequest(target="/t")).body == b"tiny"


class TestIDS:
    def test_detects_signatures_in_requests_and_responses(
        self, ca, server_identity, mbox_identity
    ):
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, IntrusionDetectionSystem,
            lambda req: HttpResponse(body=b"<script>alert(1)</script>"),
        )
        issue(
            HttpRequest(
                method="POST", target="/login", body=b"user=' OR 1=1 --"
            )
        )
        signatures = {a.signature for a in app.alerts}
        assert b"' OR 1=1" in signatures
        assert b"<script>alert" in signatures
        assert app.bytes_scanned > 0

    def test_clean_traffic_no_alerts(self, ca, server_identity, mbox_identity):
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, IntrusionDetectionSystem,
            lambda req: HttpResponse(body=b"hello world"),
        )
        issue(HttpRequest(target="/safe"))
        assert not app.alarmed

    def test_cross_record_signature(self):
        """A signature split across two records is still found."""
        from repro.crypto.certs import CertificateAuthority, Identity

        ca = CertificateAuthority.create_root("t", key_bits=512)
        identity = Identity.issued_by(ca, "ids", key_bits=512)
        app = IntrusionDetectionSystem("ids", TLSConfig(identity=identity))
        app._scan(4, b"...../etc/pa")
        app._scan(4, b"sswd.....")
        assert any(a.signature == b"/etc/passwd" for a in app.alerts)


class TestLoadBalancer:
    def test_deterministic_affinity(self, ca, server_identity, mbox_identity):
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, LoadBalancer,
            lambda req: HttpResponse(),
        )
        issue(HttpRequest(target="/app/x", headers=[("Host", "h")]))
        issue(HttpRequest(target="/app/y", headers=[("Host", "h")]))
        assert len(app.decisions) == 2
        assert app.decisions[0] == app.decisions[1]  # same first segment

    def test_requires_backends(self, mbox_config):
        with pytest.raises(ValueError):
            LoadBalancer("lb", mbox_config, backends=())


class TestParentalFilter:
    def test_blocks_blacklisted_domain(self, ca, server_identity, mbox_identity):
        blocked = []
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, ParentalFilter,
            lambda req: HttpResponse(),
            blacklist=["bad.example"],
            on_block=blocked.append,
        )
        issue(HttpRequest(target="/", headers=[("Host", "good.example")]))
        assert not app.blocked
        issue(HttpRequest(target="/page", headers=[("Host", "bad.example")]))
        assert app.blocked
        assert blocked == ["bad.example/page"]

    def test_full_url_entries(self, ca, server_identity, mbox_identity):
        """Only 5% of blacklists are whole domains — URL entries must work."""
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, ParentalFilter,
            lambda req: HttpResponse(),
            blacklist=["site.example/adult"],
        )
        issue(HttpRequest(target="/family", headers=[("Host", "site.example")]))
        assert not app.blocked
        issue(HttpRequest(target="/adult/x", headers=[("Host", "site.example")]))
        assert app.blocked

    def test_subdomain_match(self, ca, server_identity, mbox_identity):
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, ParentalFilter,
            lambda req: HttpResponse(),
            blacklist=["bad.example"],
        )
        issue(HttpRequest(target="/", headers=[("Host", "www.bad.example")]))
        assert app.blocked


class TestTrackerBlocker:
    def test_strips_cookies_both_directions(self, ca, server_identity, mbox_identity):
        seen_by_server = []

        def handler(req):
            seen_by_server.append(req)
            return HttpResponse(
                headers=[("Set-Cookie", "track=1"), ("X-Fine", "yes")], body=b"ok"
            )

        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, TrackerBlocker, handler
        )
        response = issue(
            HttpRequest(target="/", headers=[("Host", "h"), ("Cookie", "id=123")])
        )
        assert seen_by_server[0].get_header("Cookie") is None
        assert seen_by_server[0].get_header("Host") == "h"
        assert response.get_header("Set-Cookie") is None
        assert response.get_header("X-Fine") == "yes"
        assert app.headers_stripped == 2


class TestPacketPacer:
    def test_schedule_computation(self, mbox_config):
        clock = iter([0.0, 0.0, 0.0]).__next__
        app = PacketPacer("pacer", mbox_config, target_rate_bps=8000, clock=clock)
        app.observe_response_body(b"x" * 1000)  # 1 s at 8 kbps
        app.observe_response_body(b"x" * 1000)
        assert app.bytes_paced == 2000
        # Second record is scheduled 1 s after the first.
        assert app.schedule[1][1] == pytest.approx(1.0)
        assert app.total_injected_delay == pytest.approx(1.0)

    def test_invalid_rate(self, mbox_config):
        with pytest.raises(ValueError):
            PacketPacer("pacer", mbox_config, target_rate_bps=0)


class TestWanOptimizer:
    def test_detects_redundancy(self, ca, server_identity, mbox_identity):
        body = b"The same block of content repeated. " * 50
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, WanOptimizer,
            lambda req: HttpResponse(body=body),
        )
        issue(HttpRequest(target="/1"))
        issue(HttpRequest(target="/2"))  # identical body ⇒ all redundant
        assert app.redundancy_ratio > 0.3
        assert app.total_bytes > 2 * len(body)
