"""Integration tests for the TLS 1.2 client/server handshake."""

import pytest

from repro.crypto.certs import CertificateAuthority
from repro.crypto.dh import GROUP_TEST_512
from repro.tls import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
    TLSClient,
    TLSConfig,
    TLSServer,
    TLSError,
)
from repro.tls.connection import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    HandshakeComplete,
)
from repro.transport import pump


def make_pair(client_config, server_config):
    client = TLSClient(client_config)
    server = TLSServer(server_config)
    client.start_handshake()
    return client, server


class TestHandshake:
    def test_completes_both_sides(self, client_config, server_config):
        client, server = make_pair(client_config, server_config)
        events = pump(client, server)
        assert sum(isinstance(e, HandshakeComplete) for e in events) == 2
        assert client.handshake_complete and server.handshake_complete

    def test_client_sees_server_certificate(self, client_config, server_config):
        client, server = make_pair(client_config, server_config)
        pump(client, server)
        assert client.peer_certificate.subject == "server.example"

    def test_application_data_both_directions(self, client_config, server_config):
        client, server = make_pair(client_config, server_config)
        pump(client, server)
        client.send_application_data(b"ping")
        events = pump(client, server)
        assert any(isinstance(e, ApplicationData) and e.data == b"ping" for e in events)
        server.send_application_data(b"pong")
        events = pump(client, server)
        assert any(isinstance(e, ApplicationData) and e.data == b"pong" for e in events)

    def test_large_transfer(self, client_config, server_config):
        client, server = make_pair(client_config, server_config)
        pump(client, server)
        payload = bytes(range(256)) * 300  # ~77 kB, multiple records
        server.send_application_data(payload)
        events = pump(client, server)
        received = b"".join(e.data for e in events if isinstance(e, ApplicationData))
        assert received == payload

    def test_wrong_server_name_rejected(self, ca, server_config):
        config = TLSConfig(
            trusted_roots=[ca.certificate],
            server_name="other.example",
            dh_group=GROUP_TEST_512,
        )
        client, server = make_pair(config, server_config)
        with pytest.raises(TLSError, match="certificate"):
            pump(client, server)

    def test_untrusted_ca_rejected(self, server_config):
        rogue = CertificateAuthority.create_root("Rogue", key_bits=512)
        config = TLSConfig(
            trusted_roots=[rogue.certificate],
            server_name="server.example",
            dh_group=GROUP_TEST_512,
        )
        client, server = make_pair(config, server_config)
        with pytest.raises(TLSError):
            pump(client, server)

    def test_no_common_suite_fails(self, client_config, server_config):
        from dataclasses import replace

        client = TLSClient(replace(client_config, cipher_suites=(SUITE_DHE_RSA_AES128_CBC_SHA256,)))
        server = TLSServer(replace(server_config, cipher_suites=(SUITE_DHE_RSA_SHACTR_SHA256,)))
        client.start_handshake()
        with pytest.raises(TLSError, match="cipher suite"):
            pump(client, server)

    def test_fast_suite_negotiation(self, client_config, server_config):
        from dataclasses import replace

        client = TLSClient(replace(client_config, cipher_suites=(SUITE_DHE_RSA_SHACTR_SHA256,)))
        server = TLSServer(replace(server_config, cipher_suites=(SUITE_DHE_RSA_SHACTR_SHA256,)))
        client.start_handshake()
        events = pump(client, server)
        complete = [e for e in events if isinstance(e, HandshakeComplete)]
        assert all(e.cipher_suite == "DHE-RSA-SHACTR-SHA256" for e in complete)

    def test_data_before_handshake_rejected(self, client_config):
        client = TLSClient(client_config)
        with pytest.raises(TLSError):
            client.send_application_data(b"too early")

    def test_server_requires_identity(self):
        with pytest.raises(TLSError):
            TLSServer(TLSConfig())

    def test_close_notify(self, client_config, server_config):
        client, server = make_pair(client_config, server_config)
        pump(client, server)
        client.close()
        events = pump(client, server)
        assert any(isinstance(e, ConnectionClosed) for e in events)
        assert any(
            isinstance(e, AlertReceived) and e.description == 0 for e in events
        )

    def test_mitm_tamper_detected(self, client_config, server_config):
        """Flipping a bit in the ServerKeyExchange breaks the handshake."""
        client = TLSClient(client_config)
        server = TLSServer(server_config)
        client.start_handshake()
        server.receive_bytes(client.data_to_send())
        flight = bytearray(server.data_to_send())
        # Flip a byte well inside the flight (within the SKE signature area).
        flight[len(flight) // 2] ^= 0xFF
        with pytest.raises(TLSError):
            client.receive_bytes(bytes(flight))

    def test_finished_covers_transcript(self, client_config, server_config):
        """Dropping a handshake message breaks Finished verification."""
        client = TLSClient(client_config)
        server = TLSServer(server_config)
        client.start_handshake()
        # Tamper: replay the ClientHello twice to the server — the duplicate
        # is rejected as an unexpected message.
        hello = client.data_to_send()
        server.receive_bytes(hello)
        with pytest.raises(TLSError):
            server.receive_bytes(hello)
