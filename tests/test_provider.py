"""Provider-layer tests: frozen wire vectors, keystream correctness
against independent references, MAC backend unification, and the
provider-aware pooling / calibration satellites.

The OpenSSL-dependent tests skip cleanly when ``cryptography`` is
absent; everything the pure provider owns runs everywhere.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import json
from pathlib import Path

import pytest

from repro.crypto.aes import AES
from repro.crypto.fastcipher import (
    KEYSTREAM_POOL,
    _measured_numpy_crossover,
    clear_keystream_cache,
)
from repro.crypto.hmaccache import CachedHmacSha256
from repro.crypto.provider import (
    OPENSSL,
    PROVIDERS,
    PURE,
    CryptoProvider,
    get_provider,
)
from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, Permission
from repro.mctls.record import (
    MCTLS_HEADER_LEN,
    McTLSRecordLayer,
    MiddleboxRecordProcessor,
    split_burst,
    split_records,
)
from repro.tls.ciphersuites import SUITES
from repro.tls.record import APPLICATION_DATA, HANDSHAKE, RecordLayer

from tests.golden.gen_record_vectors import _patched_nonces

needs_openssl = pytest.mark.skipif(
    not OPENSSL.available, reason="cryptography package not importable"
)

VECTORS_PATH = Path(__file__).parent / "golden" / "provider_vectors.json"
PROVIDER_SUITE_IDS = {"aes128-ctr": 0xFF68, "chacha20": 0xFF69}


def _vectors() -> dict:
    return json.loads(VECTORS_PATH.read_text())


def _suite(name: str):
    return SUITES[PROVIDER_SUITE_IDS[name]]


# -- registry -----------------------------------------------------------------


def test_registry_contents():
    assert get_provider("pure") is PURE
    assert get_provider("openssl") is OPENSSL
    assert set(PROVIDERS) == {"pure", "openssl"}
    with pytest.raises(KeyError):
        get_provider("sgx-enclave")


def test_pure_provider_is_default_for_existing_suites():
    assert SUITES[0xFF67].provider == "pure"
    assert SUITES[0x0067].provider == "pure"


@needs_openssl
def test_openssl_suites_registered_when_available():
    assert SUITES[0xFF68].provider == "openssl"
    assert SUITES[0xFF69].provider == "openssl"


# -- frozen wire vectors ------------------------------------------------------


@needs_openssl
@pytest.mark.parametrize("name", sorted(PROVIDER_SUITE_IDS))
def test_frozen_vectors_match_regenerated(name):
    """Regenerating a suite's vector group must reproduce the frozen
    bytes exactly — same contract as record_vectors.json for the pure
    suites."""
    from tests.golden.gen_provider_vectors import build_provider_vectors

    frozen = _vectors()
    rebuilt = build_provider_vectors()
    assert rebuilt["suites"][name] == frozen["suites"][name]


@needs_openssl
@pytest.mark.parametrize("name", sorted(PROVIDER_SUITE_IDS))
def test_frozen_tls_records_decode(name):
    group = _vectors()["suites"][name]["tls"]
    suite = _suite(name)
    reader = RecordLayer()
    reader.read_state.activate(
        suite,
        suite.new_cipher(bytes.fromhex(group["enc_key"])),
        bytes.fromhex(group["mac_key"]),
    )
    for rec in group["records"]:
        reader.feed(bytes.fromhex(rec["wire"]))
        content_type, plaintext = reader.read_record()
        assert content_type == APPLICATION_DATA
        assert plaintext == bytes.fromhex(rec["payload"])


@needs_openssl
@pytest.mark.parametrize("name", sorted(PROVIDER_SUITE_IDS))
@pytest.mark.parametrize("direction", ["mctls_c2s", "mctls_s2c"])
def test_frozen_mctls_records_decode(name, direction):
    group = _vectors()["suites"][name][direction]
    suite = _suite(name)
    is_client_writer = direction == "mctls_c2s"
    reader = McTLSRecordLayer(is_client=not is_client_writer)
    reader.set_suite(suite)
    reader.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    reader.install_context_keys(
        1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
    )
    reader.activate_write()
    reader.activate_read()
    for rec in group["records"]:
        reader.feed(bytes.fromhex(rec["wire"]))
        record = reader.read_record()
        assert record.context_id == rec["context_id"]
        assert record.payload == bytes.fromhex(rec["payload"])


@needs_openssl
@pytest.mark.parametrize("name", sorted(PROVIDER_SUITE_IDS))
def test_frozen_burst_equals_sequential_concat(name):
    """The frozen batched wires must equal the concatenation of the
    frozen per-record wires — nonces are drawn in the same order."""
    group = _vectors()["suites"][name]
    assert group["tls_burst"] == "".join(r["wire"] for r in group["tls"]["records"])
    for direction in ("mctls_c2s", "mctls_s2c"):
        assert group[f"{direction}_burst"] == "".join(
            r["wire"] for r in group[direction]["records"]
        )


@needs_openssl
@pytest.mark.parametrize("name", sorted(PROVIDER_SUITE_IDS))
def test_frozen_rebuild_cases_decode(name):
    group = _vectors()["suites"][name]["middlebox_rebuild"]
    suite = _suite(name)
    server = McTLSRecordLayer(is_client=False)
    server.set_suite(suite)
    server.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    server.install_context_keys(
        1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
    )
    server.activate_write()
    server.activate_read()
    for case in group["cases"]:
        server.feed(bytes.fromhex(case["rebuilt_wire"]))
        record = server.read_record()
        assert record.payload == bytes.fromhex(case["replacement_payload"])
        modified = case["replacement_payload"] != case["original_payload"]
        assert record.legally_modified == modified


# -- keystream correctness against independent references ---------------------


@needs_openssl
def test_aes_ctr_keystream_matches_pure_python_aes():
    """The persistent-ECB generator must equal CTR mode computed from
    the repo's own pure-Python AES, block by block."""
    key = bytes(range(16))
    gen = OPENSSL.aes_ctr_keystream(key)
    ref = AES(key)
    for nonce_int, length in [
        (0, 1),
        (1, 16),
        (2**64 - 2, 100),  # low-half carry mid-run
        (2**128 - 1, 33),  # full wraparound
        (12345678901234567890, 352),
    ]:
        nonce = nonce_int.to_bytes(16, "big")
        expected = b"".join(
            ref.encrypt_block(((nonce_int + i) % (1 << 128)).to_bytes(16, "big"))
            for i in range(-(-length // 16))
        )
        got = bytes(gen.keystream(nonce, length))
        assert got == expected[: len(got)]
        assert len(got) >= length


@needs_openssl
def test_aes_ctr_batch_matches_per_record():
    key = b"\xaa" * 16
    gen = OPENSSL.aes_ctr_keystream(key)
    nonces = [bytes([i]) * 16 for i in range(6)]
    sizes = [1, 16, 17, 256, 352, 4096]
    batch = gen.keystream_batch(nonces, sizes)
    for nonce, size, out in zip(nonces, sizes, batch):
        assert bytes(out) == bytes(gen.keystream(nonce, size))[: len(out)]


@needs_openssl
def test_aes_ctr_batch_carry_fallback_is_exact():
    """A nonce whose low 64 bits would overflow during the run must take
    the scalar fallback and still be bit-exact."""
    key = b"\xbb" * 16
    gen = OPENSSL.aes_ctr_keystream(key)
    carry_nonce = (2**64 - 1).to_bytes(8, "big").rjust(16, b"\x01")
    nonces = [b"\x02" * 16, carry_nonce]
    sizes = [64, 64]
    batch = gen.keystream_batch(nonces, sizes)
    for nonce, size, out in zip(nonces, sizes, batch):
        assert bytes(out) == bytes(gen.keystream(nonce, size))


@needs_openssl
def test_chacha20_keystream_deterministic_and_key_expanded():
    key16 = b"\xcc" * 16
    gen = OPENSSL.chacha20_keystream(key16)
    nonce = b"\x07" * 16
    a = bytes(gen.keystream(nonce, 100))
    b = bytes(OPENSSL.chacha20_keystream(key16).keystream(nonce, 100))
    assert a == b and len(a) == 100
    # 16-byte suite keys expand via SHA-256 to ChaCha20's 32 bytes.
    expanded = OPENSSL.chacha20_keystream(hashlib.sha256(key16).digest())
    assert bytes(expanded.keystream(nonce, 100)) == a


@needs_openssl
def test_openssl_unavailable_paths_raise(monkeypatch):
    from repro.crypto import provider as provider_mod

    p = provider_mod.OpenSSLProvider()
    monkeypatch.setattr(p, "available", False)
    with pytest.raises(RuntimeError, match="unavailable"):
        p.aes_ctr_keystream(b"k" * 16)
    with pytest.raises(RuntimeError, match="unavailable"):
        p.chacha20_keystream(b"k" * 16)
    # MAC stays usable (falls back to the hashlib implementation).
    assert p.mac_context(b"m" * 32).digest(b"x") == _hmac.new(
        b"m" * 32, b"x", hashlib.sha256
    ).digest()


# -- MAC unification ----------------------------------------------------------


@pytest.mark.parametrize("provider_name", sorted(PROVIDERS))
def test_provider_mac_matches_hmac_reference(provider_name):
    provider = PROVIDERS[provider_name]
    if provider_name == "openssl" and not provider.available:
        pytest.skip("cryptography package not importable")
    key = bytes(range(32))
    ctx = provider.mac_context(key)
    ref = _hmac.new(key, b"part-one|part-two", hashlib.sha256).digest()
    assert ctx.digest(b"part-one|", b"part-two") == ref
    assert provider.hmac(key, b"part-one|", b"part-two") == ref


@needs_openssl
def test_hazmat_and_hashlib_mac_backends_identical():
    from repro.crypto.provider import OpenSSLHmacSha256

    key = b"\x42" * 32
    for parts in [(b"",), (b"a", b"bc", b"def"), (memoryview(b"view-part"),)]:
        assert (
            OpenSSLHmacSha256(key).digest(*parts)
            == CachedHmacSha256(key).digest(*parts)
        )


def test_suite_mac_context_routes_through_provider():
    key = b"\x24" * 32
    ref = _hmac.new(key, b"record", hashlib.sha256).digest()
    for suite in SUITES.values():
        assert suite.mac_context(key).digest(b"record") == ref


@needs_openssl
def test_hmac_backend_env_override(monkeypatch):
    from repro.crypto import provider as provider_mod
    from repro.crypto.provider import OpenSSLHmacSha256, OpenSSLProvider

    monkeypatch.setattr(provider_mod, "_HMAC_BACKEND", "hazmat")
    assert type(OpenSSLProvider().mac_context(b"k" * 32)) is OpenSSLHmacSha256
    monkeypatch.setattr(provider_mod, "_HMAC_BACKEND", "hashlib")
    assert type(OpenSSLProvider().mac_context(b"k" * 32)) is CachedHmacSha256


# -- provider-aware pooling ---------------------------------------------------


def test_pool_worthwhile_thresholds():
    hit = KEYSTREAM_POOL.hit_cost_ns()
    assert hit > 0
    assert KEYSTREAM_POOL.worthwhile(hit * 100)
    assert not KEYSTREAM_POOL.worthwhile(hit * 0.5)


def test_pool_mode_override(monkeypatch):
    from repro.crypto import fastcipher

    monkeypatch.setattr(fastcipher, "_POOL_MODE", "on")
    assert KEYSTREAM_POOL.worthwhile(0.0)
    monkeypatch.setattr(fastcipher, "_POOL_MODE", "off")
    assert not KEYSTREAM_POOL.worthwhile(float("inf"))


@needs_openssl
def test_pooled_generator_uses_shared_pool():
    clear_keystream_cache()
    gen = OPENSSL.aes_ctr_keystream(b"\xdd" * 16)
    if not gen.pooled:
        pytest.skip("pool self-disabled for AES-CTR on this host")
    nonce = b"\x11" * 16
    misses, hits = KEYSTREAM_POOL.misses, KEYSTREAM_POOL.hits
    first = gen.stream_for(nonce, 352)
    second = gen.stream_for(nonce, 352)
    assert first == second
    assert KEYSTREAM_POOL.misses == misses + 1
    assert KEYSTREAM_POOL.hits == hits + 1
    clear_keystream_cache()


@needs_openssl
def test_pool_keys_disambiguate_providers():
    """AES-CTR and ChaCha20 keystreams for the same (key, nonce) must
    never collide in the shared pool."""
    clear_keystream_cache()
    key, nonce = b"\xee" * 16, b"\x33" * 16
    aes = OPENSSL.aes_ctr_keystream(key)
    cha = OPENSSL.chacha20_keystream(key)
    if not (aes.pooled and cha.pooled):
        pytest.skip("pool self-disabled on this host")
    a = bytes(aes.stream_for(nonce, 64))[:64]
    c = bytes(cha.stream_for(nonce, 64))[:64]
    assert a != c
    assert bytes(aes.stream_for(nonce, 64))[:64] == a
    clear_keystream_cache()


# -- xor crossover calibration satellite --------------------------------------


def test_xor_crossover_env_override():
    assert _measured_numpy_crossover({"REPRO_XOR_CROSSOVER": "777"}) == 777
    assert _measured_numpy_crossover({"REPRO_XOR_CROSSOVER": "0"}) == 0
    assert _measured_numpy_crossover({"REPRO_XOR_CROSSOVER": "-5"}) == 0


def test_xor_crossover_measured_value_sane():
    value = _measured_numpy_crossover({})
    assert value in (128, 256, 512, 1024, 2048, 4096) or value == 1 << 62


# -- end-to-end data plane under provider suites ------------------------------


@needs_openssl
@pytest.mark.parametrize("name", sorted(PROVIDER_SUITE_IDS))
def test_batched_equals_sequential_live(name):
    """Fresh (non-golden) differential: encode_batch output decodes
    record-by-record and burst framing round-trips through a WRITE
    middlebox, under each provider suite."""
    suite = _suite(name)
    payloads = [b"", b"x" * 256, bytes(range(64)), b"tail"]
    with _patched_nonces():
        writer = McTLSRecordLayer(is_client=True)
        writer.set_suite(suite)
        writer.set_endpoint_keys(
            mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32)
        )
        writer.install_context_keys(
            1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
        )
        writer.activate_write()
        batch = writer.encode_batch([(APPLICATION_DATA, p, 1) for p in payloads])
    with _patched_nonces():
        seq_writer = McTLSRecordLayer(is_client=True)
        seq_writer.set_suite(suite)
        seq_writer.set_endpoint_keys(
            mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32)
        )
        seq_writer.install_context_keys(
            1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
        )
        seq_writer.activate_write()
        sequential = b"".join(
            seq_writer.encode(APPLICATION_DATA, p, 1) for p in payloads
        )
    assert batch == sequential

    proc = MiddleboxRecordProcessor(suite, mk.C2S)
    proc.install(
        1, Permission.WRITE, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
    )
    proc.activate()
    burst, entries, error = split_burst(bytearray(batch))
    assert error is None and len(entries) == len(payloads)
    view = memoryview(burst)
    recs = [
        (ct, cid, view[start + MCTLS_HEADER_LEN : end])
        for ct, cid, start, end in entries
    ]
    opened = list(proc.open_burst(recs))
    for op, payload in zip(opened, payloads):
        assert bytes(op.payload) == payload
    rebuilt = proc.rebuild_burst([(op, bytes(op.payload)) for op in opened])
    # Unmodified re-MAC: the server-side reader must accept every record.
    server = McTLSRecordLayer(is_client=False)
    server.set_suite(suite)
    server.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    server.install_context_keys(
        1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
    )
    server.activate_read()
    server.feed(b"".join(rebuilt))
    for payload in payloads:
        record = server.read_record()
        assert record.payload == payload
        assert not record.legally_modified


# -- burst fast-path primitives (grid keystreams, two-part MACs) --------------


def test_digest2_matches_digest_pure():
    mac = CachedHmacSha256(b"k" * 32)
    header, body = b"h" * 14, b"p" * 256
    assert mac.digest2(header, body) == mac.digest(header, body)
    assert mac.digest2(b"", b"") == mac.digest(b"", b"")
    assert mac.digest2(memoryview(header), bytearray(body)) == mac.digest(
        header, body
    )


@needs_openssl
def test_digest2_matches_digest_openssl():
    mac = OPENSSL.mac_context(b"k" * 32)
    header, body = b"h" * 14, b"p" * 256
    assert mac.digest2(header, body) == mac.digest(header, body)
    assert mac.digest2(memoryview(header), bytearray(body)) == mac.digest(
        header, body
    )


@needs_openssl
@pytest.mark.parametrize("size", [1, 15, 16, 52, 352])
def test_keystream_grid_arr_matches_grid(size):
    np = pytest.importorskip("numpy")
    gen = OPENSSL.aes_ctr_keystream(b"K" * 16)
    count = 9
    nonces = bytes(range(256))[: count * 16]
    arr = gen.keystream_grid_arr(nonces, count, size)
    assert arr.shape == (count, size)
    assert arr.tobytes() == gen.keystream_grid(nonces, count, size)
    # The scratch buffers are reused: a second call with different
    # nonces must still be exact (and invalidates the first view).
    nonces2 = bytes(reversed(range(256)))[: count * 16]
    arr2 = gen.keystream_grid_arr(nonces2, count, size)
    assert arr2.tobytes() == gen.keystream_grid(nonces2, count, size)


@needs_openssl
def test_keystream_grid_arr_carry_fallback_is_exact():
    pytest.importorskip("numpy")
    gen = OPENSSL.aes_ctr_keystream(b"K" * 16)
    # One record's counter run overflows the low 64 bits mid-stream.
    nonces = (b"\x11" * 8 + b"\xff" * 8) + bytes(16)
    arr = gen.keystream_grid_arr(nonces, 2, 48)
    assert arr.tobytes() == gen.keystream_grid(nonces, 2, 48)


@needs_openssl
def test_stream_grid_arr_fused_only():
    pytest.importorskip("numpy")
    aes = _suite("aes128-ctr").new_cipher(b"K" * 16)
    chacha = _suite("chacha20").new_cipher(b"K" * 16)
    shactr = SUITES[0xFF67].new_cipher(b"K" * 16)
    nonces = bytes(64)
    assert aes.stream_grid_arr(nonces, 4, 32) is not None
    assert aes.stream_grid_arr(nonces, 4, 32).tobytes() == aes.stream_grid(
        nonces, 4, 32
    )
    # Unfused ciphers decline so callers keep the pool-accounted path.
    assert chacha.stream_grid_arr(nonces, 4, 32) is None
    assert shactr.stream_grid_arr(nonces, 4, 32) is None


@needs_openssl
@pytest.mark.parametrize("name", ["aes128-ctr", "chacha20"])
@pytest.mark.parametrize(
    "permission", [Permission.READ, Permission.WRITE], ids=["read", "write"]
)
def test_open_wire_burst_matches_open_burst(name, permission):
    suite = _suite(name)
    payloads = [b"%03d" % i + b"x" * 253 for i in range(12)]
    client = McTLSRecordLayer(is_client=True)
    client.set_suite(suite)
    client.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    client.install_context_keys(
        1, mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1)
    )
    client.activate_write()
    wire = b"".join(client.encode(APPLICATION_DATA, p, 1) for p in payloads)

    def processor():
        proc = MiddleboxRecordProcessor(suite, mk.C2S)
        proc.install(
            1,
            permission,
            mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, 1),
        )
        proc.activate()
        return proc

    burst, entries, error = split_burst(bytearray(wire))
    assert error is None and len(entries) == len(payloads)
    via_wire = list(processor().open_wire_burst(burst, entries))
    view = memoryview(burst)
    via_slices = list(
        processor().open_burst(
            (ct, cid, view[start + MCTLS_HEADER_LEN : end])
            for ct, cid, start, end in entries
        )
    )
    assert len(via_wire) == len(via_slices) == len(payloads)
    for a, b, payload in zip(via_wire, via_slices, payloads):
        assert bytes(a.payload) == bytes(b.payload) == payload
        assert (a.context_id, a.seq, a.permission) == (b.context_id, b.seq, b.permission)
        assert a.endpoint_mac == b.endpoint_mac
        assert a.writer_mac == b.writer_mac
        assert a.reader_mac == b.reader_mac
