"""Unit tests for the experiment harness (TestBed factories, path glue)."""

import pytest

from repro.baselines import BlindRelay, PlainConnection, PlainRelay, SplitTLSRelay
from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import (
    Mode,
    TestBed,
    build_links,
    build_path,
    is_app_data,
    is_handshake_complete,
    shared_testbed,
)
from repro.mctls import KeyTransport, McTLSClient, McTLSMiddlebox, McTLSServer
from repro.mdtls import MdTLSClient, MdTLSMiddlebox, MdTLSServer
from repro.netsim import Simulator
from repro.netsim.profiles import controlled
from repro.tls.client import TLSClient
from repro.tls.connection import ApplicationData, HandshakeComplete
from repro.tls.server import TLSServer


@pytest.fixture(scope="module")
def bed():
    return TestBed(key_bits=512, dh_group=GROUP_TEST_512)


class TestTestBed:
    def test_identity_caching(self, bed):
        first = bed.middlebox_identities(2)
        second = bed.middlebox_identities(3)
        assert second[:2] == first  # cached, extended on demand

    def test_endpoint_factories(self, bed):
        cases = {
            Mode.MCTLS: (McTLSClient, McTLSServer),
            Mode.MCTLS_CKD: (McTLSClient, McTLSServer),
            Mode.MDTLS: (MdTLSClient, MdTLSServer),
            Mode.SPLIT_TLS: (TLSClient, TLSServer),
            Mode.E2E_TLS: (TLSClient, TLSServer),
            Mode.NO_ENCRYPT: (PlainConnection, PlainConnection),
        }
        for mode, (client_type, server_type) in cases.items():
            client, server = bed.make_endpoints(mode)
            assert isinstance(client, client_type), mode
            assert isinstance(server, server_type), mode

    def test_relay_factories(self, bed):
        assert bed.make_relays(Mode.MCTLS, 0) == []
        assert all(isinstance(r, McTLSMiddlebox) for r in bed.make_relays(Mode.MCTLS, 2))
        assert all(isinstance(r, MdTLSMiddlebox) for r in bed.make_relays(Mode.MDTLS, 2))
        assert all(isinstance(r, SplitTLSRelay) for r in bed.make_relays(Mode.SPLIT_TLS, 2))
        assert all(isinstance(r, BlindRelay) for r in bed.make_relays(Mode.E2E_TLS, 2))
        assert all(isinstance(r, PlainRelay) for r in bed.make_relays(Mode.NO_ENCRYPT, 2))

    def test_key_transport_propagates(self):
        bed = TestBed(key_bits=512, dh_group=GROUP_TEST_512, key_transport=KeyTransport.DHE)
        client, _ = bed.make_endpoints(Mode.MCTLS)
        assert client.key_transport is KeyTransport.DHE

    def test_worst_case_topology(self, bed):
        from repro.mctls import Permission

        topo = bed.topology(2, n_contexts=3)
        for ctx in topo.contexts:
            for mbox_id in (1, 2):
                assert ctx.permission_for(mbox_id) is Permission.WRITE

    def test_shared_testbed_caches(self):
        a = shared_testbed(key_bits=512)
        b = shared_testbed(key_bits=512)
        assert a is b


class TestEventHelpers:
    def test_predicates(self):
        assert is_handshake_complete(HandshakeComplete(cipher_suite="x"))
        assert not is_handshake_complete(ApplicationData(data=b""))
        assert is_app_data(ApplicationData(data=b""))
        from repro.mctls.session import McTLSApplicationData, McTLSHandshakeComplete
        from repro.mctls import SessionTopology
        from repro.mctls.contexts import ContextDefinition
        from repro.mctls.session import HandshakeMode

        assert is_app_data(McTLSApplicationData(data=b"", context_id=1))
        topo = SessionTopology(contexts=[ContextDefinition(1, "x")])
        assert is_handshake_complete(
            McTLSHandshakeComplete(cipher_suite="x", mode=HandshakeMode.DEFAULT, topology=topo)
        )


class TestBuildPath:
    def test_relay_count_validation(self, bed):
        sim = Simulator()
        links = build_links(sim, controlled(hops=3))
        with pytest.raises(ValueError, match="relay"):
            build_path(sim, bed, Mode.E2E_TLS, links, relays=[BlindRelay()])

    def test_explicit_relays_used(self, bed):
        sim = Simulator()
        links = build_links(sim, controlled(hops=2))
        marker = BlindRelay()
        path = build_path(sim, bed, Mode.E2E_TLS, links, relays=[marker])
        assert path.relay_nodes[0].relay is marker

    def test_link_count_matches_profile(self, bed):
        sim = Simulator()
        profile = controlled(hops=4)
        links = build_links(sim, profile)
        assert len(links) == 4

    def test_client_hop_byte_counter(self, bed):
        sim = Simulator()
        links = build_links(sim, controlled(hops=2))
        done = []

        def client_event(event, now):
            if is_handshake_complete(event):
                done.append(now)

        path = build_path(
            sim, bed, Mode.E2E_TLS, links, client_on_event=client_event
        )
        path.start()
        sim.run(until=10.0)
        assert done
        assert path.total_bytes_on_client_hop() > 1000  # a TLS handshake's worth
