"""Stateless session tickets: seal/unseal properties and wire behaviour.

The ticket subsystem (``repro.tls.tickets``) lets a server resume
sessions with **zero per-session memory**: all resumption state lives in
a self-encrypted, self-authenticated blob the client stores.  That only
works if the blob is tamper-evident, expires, survives key rotation
within the retention window, and — for mcTLS — seals the *full granted
context topology* so resumption can never hand a middlebox more access
than the full handshake granted.

Three layers, all seeded (``random.Random``) so runs are deterministic:

* **properties** — seal/unseal round-trips, rotation windows, expiry,
  version skew, cross-manager rejection;
* **adversarial** — every single-bit flip and every truncation of a
  ticket must be rejected with :class:`TicketError` (never a wrong
  payload, never a crash), mirroring the ``repro.faults`` bit-flip /
  truncation mutator idioms; on-path ClientHello tampering runs through
  the real :class:`repro.faults.TamperProxy`;
* **wire** — TLS and mcTLS handshakes against *fresh server objects*
  (no shared cache — proving statelessness), with fallback-to-full on
  every defect and the mcTLS never-widen topology check.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.faults import HandshakeMutator, TamperPlan, TamperProxy
from repro.mctls import ContextDefinition, Permission
from repro.tls.client import TLSClient
from repro.tls.connection import TLSError
from repro.tls.messages import CLIENT_HELLO
from repro.tls.server import TLSServer
from repro.tls.sessioncache import TLSSessionState
from repro.tls.tickets import (
    KIND_MCTLS,
    KIND_TLS,
    MIN_TICKET_LEN,
    TICKET_VERSION,
    ClientTicket,
    TicketError,
    TicketKeyManager,
)
from repro.transport import Chain, pump

from tests.mctls_helpers import build_session

SEEDS = (7, 4242)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class _Store(dict):
    """Minimal get/put store (the client only needs those two)."""

    def put(self, key, value):
        self[key] = value


# -- seal/unseal properties -------------------------------------------------


class TestSealUnseal:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip_property(self, seed):
        rng = random.Random(seed)
        manager = TicketKeyManager(rng=rng.randbytes)
        for trial in range(50):
            kind = KIND_TLS if trial % 2 == 0 else KIND_MCTLS
            payload = rng.randbytes(rng.randrange(0, 200))
            ticket = manager.seal(kind, payload)
            assert len(ticket) >= MIN_TICKET_LEN
            got_kind, got_payload = manager.unseal(ticket)
            assert got_kind == kind
            assert got_payload == payload
        assert manager.stats.sealed == 50
        assert manager.stats.unsealed == 50
        assert manager.stats.rejected == 0

    def test_same_payload_seals_differently(self):
        manager = TicketKeyManager()
        a = manager.seal(KIND_TLS, b"state")
        b = manager.seal(KIND_TLS, b"state")
        assert a != b  # fresh nonce per ticket
        assert manager.unseal(a) == manager.unseal(b) == (KIND_TLS, b"state")

    def test_rotation_window(self):
        clock = FakeClock()
        manager = TicketKeyManager(lifetime=100.0, rotation_period=50.0, clock=clock)
        old_ticket = manager.seal(KIND_TLS, b"old")
        old_key = manager.current_key_name

        clock.now = 60.0  # past the rotation period: new seals, new key
        new_ticket = manager.seal(KIND_TLS, b"new")
        assert manager.current_key_name != old_key
        assert manager.stats.rotations == 1

        # The retired key still unseals within its retention window...
        assert manager.unseal(old_ticket) == (KIND_TLS, b"old")
        assert manager.unseal(new_ticket) == (KIND_TLS, b"new")

        # ...and is pruned once no ticket under it can still be alive
        # (rotation_period + lifetime after its creation).
        clock.now = 151.0
        with pytest.raises(TicketError):
            manager.unseal(old_ticket)

    def test_expiry_rejected_before_key_retirement(self):
        clock = FakeClock()
        manager = TicketKeyManager(lifetime=100.0, rotation_period=500.0, clock=clock)
        ticket = manager.seal(KIND_TLS, b"short-lived")
        clock.now = 99.0
        assert manager.unseal(ticket) == (KIND_TLS, b"short-lived")
        clock.now = 101.0  # key still current, ticket itself expired
        with pytest.raises(TicketError):
            manager.unseal(ticket)
        assert manager.stats.rejected == 1

    def test_version_skew_rejected(self):
        manager = TicketKeyManager()
        blob = bytearray(manager.seal(KIND_TLS, b"v"))
        blob[0] = TICKET_VERSION + 1
        with pytest.raises(TicketError):
            manager.unseal(bytes(blob))

    def test_cross_manager_rejected(self):
        """A ticket only unseals at a server holding the same keys —
        the property that makes fork-inherited managers necessary and
        sufficient for cross-worker resumption."""
        a, b = TicketKeyManager(), TicketKeyManager()
        ticket = a.seal(KIND_TLS, b"mine")
        with pytest.raises(TicketError):
            b.unseal(ticket)
        assert b.stats.rejected == 1


# -- adversarial: bit flips and truncation ----------------------------------


class TestTamperResistance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_sampled_bit_flip_rejected(self, seed):
        """FlipPayloadBit's idiom applied to the whole blob: any seeded
        single-bit flip anywhere in the ticket must yield TicketError —
        never a wrong payload, never a different exception."""
        rng = random.Random(seed)
        manager = TicketKeyManager()
        ticket = manager.seal(KIND_MCTLS, rng.randbytes(64))
        for _ in range(100):
            mutated = bytearray(ticket)
            mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            with pytest.raises(TicketError):
                manager.unseal(bytes(mutated))
        assert manager.stats.rejected == 100

    def test_every_truncation_rejected(self):
        """TruncateRecord's idiom: every proper prefix of a ticket is
        rejected (including the empty blob)."""
        manager = TicketKeyManager()
        ticket = manager.seal(KIND_TLS, b"truncate-me")
        for cut in range(len(ticket)):
            with pytest.raises(TicketError):
                manager.unseal(ticket[:cut])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_extension_garbage_never_crashes_server(
        self, seed, client_config, server_config
    ):
        """Random bytes in the ticket extension slot → silent full
        handshake, not an exception."""
        rng = random.Random(seed)
        manager = TicketKeyManager()
        store = _Store()
        store[client_config.server_name or ""] = ClientTicket(
            ticket=rng.randbytes(rng.randrange(0, 3 * MIN_TICKET_LEN)),
            state=TLSSessionState(
                session_id=b"",
                master_secret=rng.randbytes(48),
                cipher_suite_id=TLSClient(client_config).config.suite_ids()[0],
                server_name=client_config.server_name or "",
            ),
        )
        client = TLSClient(client_config, ticket_store=store)
        server = TLSServer(server_config, ticket_manager=manager)
        client.start_handshake()
        pump(client, server)
        assert client.handshake_complete and server.handshake_complete
        assert not client.resumed and not server.resumed


# -- wire: TLS --------------------------------------------------------------


def _tls_handshake(client_config, server_config, store, manager):
    client = TLSClient(client_config, ticket_store=store)
    # A fresh server object every time: no session cache, no shared
    # state beyond the ticket keys — resumption is O(1) server memory.
    server = TLSServer(server_config, ticket_manager=manager)
    client.start_handshake()
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete
    return client, server


class TestTLSWire:
    def test_full_then_ticket_resume_across_server_objects(
        self, client_config, server_config
    ):
        manager = TicketKeyManager()
        store = _Store()
        first_client, first_server = _tls_handshake(
            client_config, server_config, store, manager
        )
        assert not first_client.resumed
        assert store  # NewSessionTicket delivered and kept

        second_client, second_server = _tls_handshake(
            client_config, server_config, store, manager
        )
        assert second_client.resumed and second_server.resumed
        assert manager.stats.unsealed == 1

    def test_tampered_stored_ticket_falls_back_then_reissues(
        self, client_config, server_config
    ):
        manager = TicketKeyManager()
        store = _Store()
        _tls_handshake(client_config, server_config, store, manager)

        key = next(iter(store))
        good = store[key]
        blob = bytearray(good.ticket)
        blob[len(blob) // 2] ^= 0x01
        store[key] = dataclasses.replace(good, ticket=bytes(blob))

        client, server = _tls_handshake(client_config, server_config, store, manager)
        assert not client.resumed and not server.resumed
        assert manager.stats.rejected == 1
        # The fallback handshake issued a fresh ticket; the next session
        # resumes again — one bad blob costs one round trip, not the key.
        client3, server3 = _tls_handshake(client_config, server_config, store, manager)
        assert client3.resumed and server3.resumed

    def test_mctls_kind_ticket_rejected_by_tls_server(
        self, client_config, server_config
    ):
        """Cross-protocol replay: a ticket sealed for mcTLS state must
        not resume a plain TLS session even under the same keys."""
        manager = TicketKeyManager()
        store = _Store()
        _tls_handshake(client_config, server_config, store, manager)
        key = next(iter(store))
        good = store[key]
        wrong_kind = manager.seal(KIND_MCTLS, b"not tls state")
        store[key] = dataclasses.replace(good, ticket=wrong_kind)

        client, server = _tls_handshake(client_config, server_config, store, manager)
        assert not client.resumed and not server.resumed


# -- wire: mcTLS ------------------------------------------------------------


def _contexts():
    return [
        ContextDefinition(1, "content", {1: Permission.READ}),
        ContextDefinition(2, "headers", {1: Permission.WRITE}),
    ]


def _widened_contexts():
    return [
        ContextDefinition(1, "content", {1: Permission.WRITE}),
        ContextDefinition(2, "headers", {1: Permission.WRITE}),
    ]


class TestMcTLSWire:
    def test_ticket_resume_preserves_permissions(
        self, ca, server_identity, mbox_identity
    ):
        manager = TicketKeyManager()
        store = _Store()
        _, full_mboxes, full_server, _ = build_session(
            ca, server_identity, [mbox_identity], _contexts(),
            ticket_store=store, ticket_manager=manager,
        )
        assert not full_server.resumed
        assert store

        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], _contexts(),
            ticket_store=store, ticket_manager=manager,
        )
        assert client.resumed and server.resumed
        # Identical per-context grants: resumption widened nothing.
        assert [dict(m.permissions) for m in mboxes] == [
            dict(m.permissions) for m in full_mboxes
        ]
        client.send_application_data(b"resumed-data", context_id=1)
        events = chain.pump()
        assert any(getattr(e, "data", None) == b"resumed-data" for e in events)

    def test_topology_change_cannot_ride_old_ticket(
        self, ca, server_identity, mbox_identity
    ):
        """Forging the client-side ticket record to claim a *wider*
        topology must not get that topology resumed: the server compares
        the ClientHello topology against the one sealed inside the
        ticket and falls back to a full handshake, whose grants come
        from current policy — never from the ticket."""
        manager = TicketKeyManager()
        store = _Store()
        _, _, _, _ = build_session(
            ca, server_identity, [mbox_identity], _contexts(),
            ticket_store=store, ticket_manager=manager,
        )
        key = next(iter(store))
        good = store[key]

        client, mboxes, server, _ = build_session(
            ca, server_identity, [mbox_identity], _widened_contexts(),
            ticket_store=store, ticket_manager=manager,
        )
        # Honest client: its topology changed, so it never offered the
        # stale ticket at all (store state no longer matches).
        assert not client.resumed and not server.resumed

        # Dishonest client: splice the new topology into the stored
        # ticket record so the offer goes out with the old sealed blob.
        forged_state = dataclasses.replace(
            good.state,
            topology_bytes=client.topology.encode(),
        )
        store[key] = dataclasses.replace(good, state=forged_state)
        client2, mboxes2, server2, _ = build_session(
            ca, server_identity, [mbox_identity], _widened_contexts(),
            ticket_store=store, ticket_manager=manager,
        )
        assert not client2.resumed and not server2.resumed
        # Full-handshake grants under current policy — the middlebox got
        # the new topology because policy granted it, not the ticket;
        # the sealed (narrow) topology never resumed into the wide one.
        assert server2.handshake_complete
        assert mboxes2[0].permissions[1] is Permission.WRITE

    def test_on_path_ticket_tamper_detected_never_widens(
        self, ca, server_identity, mbox_identity
    ):
        """A key-less on-path attacker flips one bit inside the ticket
        bytes of the ClientHello (via the real TamperProxy).  The server
        rejects the blob and falls back to a full handshake; the
        transcript divergence is then caught at Finished — a clean
        protocol failure, no crash, no resumption, no access granted."""
        manager = TicketKeyManager()
        store = _Store()
        build_session(
            ca, server_identity, [mbox_identity], _contexts(),
            ticket_store=store, ticket_manager=manager,
        )
        ticket_bytes = next(iter(store.values())).ticket

        class FlipTicketByte(HandshakeMutator):
            name = "hs-flip-ticket"
            mutation_class = "field-mutation"

            def mutate_message(self, msg_type, body, rng):
                if msg_type != CLIENT_HELLO:
                    return None
                index = body.find(ticket_bytes)
                if index < 0:  # pragma: no cover - offer must be present
                    return None
                mutated = bytearray(body)
                mutated[index + rng.randrange(len(ticket_bytes))] ^= 0x40
                return [(msg_type, bytes(mutated))]

        from tests.mctls_helpers import (  # local: same wiring, no pump
            GROUP_TEST_512,
            McTLSClient,
            McTLSServer,
            MiddleboxInfo,
            SessionTopology,
            TLSConfig,
        )

        topology = SessionTopology(
            middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
            contexts=_contexts(),
        )
        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name=server_identity.name,
                dh_group=GROUP_TEST_512,
            ),
            topology=topology,
            ticket_store=store,
        )
        server = McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
            ticket_manager=manager,
        )
        proxy = TamperProxy(TamperPlan(seed=7, handshake_mutator=FlipTicketByte()))
        chain = Chain(client, [proxy], server)
        client.start_handshake()
        with pytest.raises(TLSError):
            chain.pump()
        assert not server.resumed
        assert not server.handshake_complete
        assert manager.stats.rejected == 1
