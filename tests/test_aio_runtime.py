"""The asyncio serving runtime: concurrency, timeouts, limits, shutdown,
fault isolation, and stats accounting over real loopback sockets."""

import asyncio
import socket

import pytest

from repro.aio import (
    AsyncEndpointServer,
    AsyncRelayServer,
    SessionEnded,
    connect,
    percentile,
    run_load,
    run_load_threaded,
)
from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.tls import TLSClient, TLSServer
from repro.tls.connection import TLSConfig
from repro.tls.sessioncache import ClientSessionStore, SessionCache

LOOPBACK = "127.0.0.1"


@pytest.fixture()
def topology(mbox_identity):
    return SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=[
            ContextDefinition(1, "request", {1: Permission.READ}),
            ContextDefinition(2, "response", {1: Permission.READ}),
        ],
    )


async def echo_handler(conn):
    while True:
        event = await conn.recv_app_data()
        await conn.send(event.data, context_id=event.context_id)


def run(coro):
    """Run a coroutine and assert no asyncio task outlives it.

    The leak check runs only when the scenario itself succeeded, so a
    real test failure is never masked by the tasks it left behind.
    """

    async def wrapped():
        result = await coro
        leaked = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        assert not leaked, f"leaked asyncio tasks: {leaked}"
        return result

    return asyncio.run(wrapped())


class TestAsyncEndpoint:
    def test_tls_echo_and_stats(self, ca, server_identity, client_config):
        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                echo_handler,
            )
            await server.start()
            conn = await connect((LOOPBACK, server.port), TLSClient(client_config))
            await conn.handshake()
            await conn.send(b"ping")
            reply = await conn.recv_app_data()
            assert reply.data == b"ping"
            await conn.close()
            await server.stop()
            snap = server.snapshot()
            assert snap["accepted"] == 1
            assert snap["handshakes_ok"] == 1
            assert snap["handshakes_failed"] == 0
            assert snap["active"] == 0
            # The server received at least the client's handshake flight
            # plus one application record, and sent its own.
            assert snap["bytes_in"] > 0 and snap["bytes_out"] > 0
            assert conn.bytes_in == snap["bytes_out"]
            assert conn.bytes_out == snap["bytes_in"]

        run(scenario())

    def test_concurrent_clients_stats_match_traffic(
        self, ca, server_identity, client_config
    ):
        N = 8

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                echo_handler,
            )
            await server.start()

            async def one(i):
                conn = await connect(
                    (LOOPBACK, server.port), TLSClient(client_config)
                )
                await conn.handshake()
                await conn.send(f"client-{i}".encode())
                reply = await conn.recv_app_data()
                await conn.close()
                return reply.data

            replies = await asyncio.gather(*(one(i) for i in range(N)))
            await server.stop()
            assert sorted(replies) == sorted(
                f"client-{i}".encode() for i in range(N)
            )
            snap = server.snapshot()
            assert snap["accepted"] == N
            assert snap["handshakes_ok"] == N
            assert snap["active"] == 0

        run(scenario())

    def test_max_connections_backpressure(self, ca, server_identity, client_config):
        """With a 1-connection limit, a second client queues in the
        backlog until the first session finishes — it is never refused,
        and the server never holds two sessions at once."""
        peak = []

        async def holding_handler(conn):
            event = await conn.recv_app_data()
            await asyncio.sleep(0.05)
            await conn.send(event.data, context_id=event.context_id)

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                holding_handler,
                max_connections=1,
            )
            await server.start()

            async def one(i):
                conn = await connect(
                    (LOOPBACK, server.port), TLSClient(client_config)
                )
                await conn.handshake()
                peak.append(server.stats.active)
                await conn.send(b"x")
                await conn.recv_app_data()
                await conn.close()

            await asyncio.gather(one(0), one(1), one(2))
            await server.stop()
            assert server.stats.accepted == 3
            assert max(peak) == 1

        run(scenario())

    def test_handshake_timeout_enforced(self, ca, server_identity):
        """A client that connects and never speaks is cut off by the
        handshake deadline and counted as a failed handshake."""

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                echo_handler,
                handshake_timeout=0.2,
            )
            await server.start()
            reader, writer = await asyncio.open_connection(LOOPBACK, server.port)
            # Say nothing; the server must drop us (possibly after an
            # alert record — only the EOF matters here).
            await reader.read()
            writer.close()
            await writer.wait_closed()
            # stop() awaits every handler task, so after it returns the
            # stats ledger is final — no polling needed.
            await server.stop()
            assert server.stats.handshakes_failed == 1
            assert server.stats.handshakes_ok == 0

        run(scenario())

    def test_garbage_peer_does_not_poison_accept_loop(
        self, ca, server_identity, client_config
    ):
        """A peer streaming garbage (and one injecting a flipped
        handshake byte) fails alone; the next well-behaved client is
        served by the same listener."""

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                echo_handler,
                handshake_timeout=1.0,
            )
            await server.start()

            # Garbage peer: raw junk bytes instead of a ClientHello.
            reader, writer = await asyncio.open_connection(LOOPBACK, server.port)
            writer.write(b"\x99" * 4096)
            await writer.drain()
            await reader.read()  # server gives up on us
            writer.close()
            await writer.wait_closed()

            # Fault-injected peer: a real ClientHello with one byte
            # flipped mid-flight — fails parse/verify, isolated.
            client = TLSClient(client_config)
            client.start_handshake()
            flight = bytearray(client.data_to_send())
            flight[len(flight) // 2] ^= 0x40
            reader, writer = await asyncio.open_connection(LOOPBACK, server.port)
            writer.write(bytes(flight))
            await writer.drain()
            await reader.read()
            writer.close()
            await writer.wait_closed()

            # The accept loop must still serve a clean client.
            conn = await connect((LOOPBACK, server.port), TLSClient(client_config))
            await conn.handshake()
            await conn.send(b"still alive")
            assert (await conn.recv_app_data()).data == b"still alive"
            await conn.close()
            await server.stop()
            assert server.stats.handshakes_ok == 1
            assert server.stats.handshakes_failed == 2

        run(scenario())

    def test_graceful_shutdown_finishes_inflight_sessions(
        self, ca, server_identity, client_config
    ):
        """stop(graceful=True) lets a mid-session client finish its
        exchange; stop(graceful=False) cancels a hung one."""

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                echo_handler,
            )
            await server.start()
            conn = await connect((LOOPBACK, server.port), TLSClient(client_config))
            await conn.handshake()

            # Start the shutdown, then speak only once the server has
            # committed to stopping (its first act is setting the flag) —
            # event-sequenced, no timed sleeps to race against.
            stop_task = asyncio.create_task(server.stop(graceful=True))
            while not server._stopping:
                await asyncio.sleep(0)
            await conn.send(b"late but served")
            reply = await conn.recv_app_data()
            await conn.close()
            await stop_task
            assert reply.data == b"late but served"
            assert server.stats.handshakes_ok == 1
            assert server.stats.errors == 0

            # Forced shutdown: a second server with an idle client dies
            # immediately instead of waiting out the idle timeout.
            server2 = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                echo_handler,
                idle_timeout=30.0,
            )
            await server2.start()
            conn2 = await connect((LOOPBACK, server2.port), TLSClient(client_config))
            await conn2.handshake()
            await asyncio.wait_for(server2.stop(graceful=False), timeout=5.0)
            await conn2.close()

        run(scenario())

    def test_session_cache_threaded_through_server(
        self, ca, server_identity, client_config
    ):
        """A cache handed to the server is shared by every
        per-connection protocol object; clients with a session store
        resume against it and the stats ledger shows the hit."""

        async def scenario():
            cache = SessionCache(capacity=8)
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda session_cache: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512),
                    session_cache=session_cache,
                ),
                echo_handler,
                session_cache=cache,
            )
            await server.start()
            store = ClientSessionStore(capacity=8)

            async def one_session():
                conn = await connect(
                    (LOOPBACK, server.port),
                    TLSClient(client_config, session_store=store),
                )
                await conn.handshake()
                resumed = conn.connection.resumed
                await conn.send(b"hi")
                await conn.recv_app_data()
                await conn.close()
                return resumed

            assert await one_session() is False  # full handshake, seeds cache
            assert await one_session() is True  # abbreviated handshake
            await server.stop()
            snap = server.snapshot()
            assert snap["resumed"] == 1
            assert snap["handshakes_ok"] == 2
            assert snap["session_cache"]["hits"] == 1
            assert len(cache) >= 1

        run(scenario())


class TestAsyncRelay:
    def test_mctls_through_async_relay(
        self, ca, server_identity, mbox_identity, topology, client_config
    ):
        observed = []

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: McTLSServer(
                    TLSConfig(
                        identity=server_identity,
                        trusted_roots=[ca.certificate],
                        dh_group=GROUP_TEST_512,
                    )
                ),
                echo_handler,
            )
            await server.start()
            relay = AsyncRelayServer(
                (LOOPBACK, 0),
                upstream_addr=(LOOPBACK, server.port),
                relay_factory=lambda: McTLSMiddlebox(
                    mbox_identity.name,
                    TLSConfig(
                        identity=mbox_identity,
                        trusted_roots=[ca.certificate],
                        dh_group=GROUP_TEST_512,
                    ),
                    observer=lambda d, ctx, data: observed.append((ctx, data)),
                ),
            )
            await relay.start()

            async def one(i):
                conn = await connect(
                    (LOOPBACK, relay.port),
                    McTLSClient(client_config, topology=topology),
                )
                await conn.handshake()
                await conn.send(f"c{i}".encode(), context_id=1)
                reply = await conn.recv_app_data()
                assert reply.context_id == 1
                await conn.close()
                return reply.data

            replies = await asyncio.gather(*(one(i) for i in range(4)))
            await relay.stop()
            await server.stop()
            assert sorted(replies) == sorted(f"c{i}".encode() for i in range(4))
            for i in range(4):
                assert (1, f"c{i}".encode()) in observed
            assert relay.stats.accepted == 4
            assert relay.stats.active == 0
            assert relay.stats.bytes_in > 0 and relay.stats.bytes_out > 0

        run(scenario())

    def test_faulty_client_does_not_poison_relay(
        self, ca, server_identity, mbox_identity, topology, client_config
    ):
        """Garbage through the relay kills that relay session (the
        middlebox raises on it) but the relay keeps accepting."""

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: McTLSServer(
                    TLSConfig(
                        identity=server_identity,
                        trusted_roots=[ca.certificate],
                        dh_group=GROUP_TEST_512,
                    )
                ),
                echo_handler,
            )
            await server.start()
            relay = AsyncRelayServer(
                (LOOPBACK, 0),
                upstream_addr=(LOOPBACK, server.port),
                relay_factory=lambda: McTLSMiddlebox(
                    mbox_identity.name,
                    TLSConfig(
                        identity=mbox_identity,
                        trusted_roots=[ca.certificate],
                        dh_group=GROUP_TEST_512,
                    ),
                ),
                idle_timeout=1.0,
            )
            await relay.start()

            reader, writer = await asyncio.open_connection(LOOPBACK, relay.port)
            writer.write(b"\xff" * 1024)  # not a TLS record stream
            await writer.drain()
            await reader.read()
            writer.close()
            await writer.wait_closed()

            conn = await connect(
                (LOOPBACK, relay.port),
                McTLSClient(client_config, topology=topology),
            )
            await conn.handshake()
            await conn.send(b"ok", context_id=1)
            assert (await conn.recv_app_data()).data == b"ok"
            await conn.close()
            await relay.stop()
            await server.stop()
            assert relay.stats.errors >= 1
            assert relay.stats.accepted == 2

        run(scenario())


class TestLoadGenerator:
    def test_closed_loop_load_with_resumption(self, ca, server_identity, client_config):
        async def scenario():
            cache = SessionCache(capacity=32)
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda session_cache: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512),
                    session_cache=session_cache,
                ),
                echo_handler,
                session_cache=cache,
            )
            await server.start()
            store = ClientSessionStore(capacity=32)

            def factory(resume=False):
                return TLSClient(
                    client_config, session_store=store if resume else None
                )

            # Seed the store, then drive a mixed full/resumed run.
            seed = await run_load(
                (LOOPBACK, server.port), factory, connections=1,
                concurrency=1, resume_ratio=1.0,
            )
            assert seed.completed == 1
            result = await run_load(
                (LOOPBACK, server.port),
                factory,
                connections=12,
                concurrency=4,
                resume_ratio=0.5,
            )
            await server.stop()
            assert result.completed == 12
            assert result.failed == 0
            assert result.resumed == 6  # every flagged session resumed
            assert server.stats.resumed == 6  # the seed run was full
            assert len(result.handshake_latencies) == 12
            pct = result.latency_percentiles()
            assert pct["p50"] <= pct["p95"] <= pct["p99"]
            assert result.conn_per_s > 0

        run(scenario())

    def test_open_loop_rate_paces_launches(self, ca, server_identity, client_config):
        """At a 25/s offered rate, 5 sessions must take >= 4/25 s."""

        async def scenario():
            server = AsyncEndpointServer(
                (LOOPBACK, 0),
                lambda: TLSServer(
                    TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
                ),
                echo_handler,
            )
            await server.start()
            result = await run_load(
                (LOOPBACK, server.port),
                lambda resume: TLSClient(client_config),
                connections=5,
                concurrency=5,
                rate=25.0,
            )
            await server.stop()
            assert result.completed == 5
            assert result.duration_s >= 4 / 25.0

        run(scenario())

    def test_threaded_twin_same_workload(self, ca, server_identity, client_config):
        from repro.sockets import EndpointServer

        def handler(conn):
            while True:
                event = conn.recv_app_data()
                conn.send(event.data, context_id=event.context_id)

        server = EndpointServer(
            (LOOPBACK, 0),
            lambda: TLSServer(
                TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
            ),
            handler,
        ).start()
        try:
            result = run_load_threaded(
                (LOOPBACK, server.port),
                lambda resume: TLSClient(client_config),
                connections=6,
                concurrency=3,
            )
        finally:
            server.stop()
        assert result.runtime == "threaded"
        assert result.completed == 6
        assert result.failed == 0

    def test_percentile_nearest_rank_on_small_samples(self):
        """n < 100 uses nearest-rank: a reported percentile is an actual
        sample, so a sparse tail can't be interpolated away — the p99 of
        25 latencies is the worst latency observed, not a blend of the
        two largest (the old bug under-reported exactly the tail the
        industrial scenario gates on)."""
        values = [float(i) for i in range(1, 26)]  # n=25
        assert percentile(values, 99) == 25.0  # the max sample, not 24.76
        assert percentile(values, 95) == 24.0  # ceil(23.75) -> rank 24
        assert percentile(values, 50) == 13.0  # ceil(12.5) -> rank 13
        assert percentile(values, 0) == 1.0  # rank clamps to 1
        assert percentile(values, 100) == 25.0
        assert percentile([7.0], 99) == 7.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_percentile_interpolates_on_large_samples(self):
        values = [float(i) for i in range(100)]  # n=100: interpolation path
        assert percentile(values, 50) == pytest.approx(49.5)
        assert percentile(values, 99) == pytest.approx(98.01)
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 99.0

    def test_percentile_seeded_regression_pins_both_paths(self):
        import math
        import random

        rng = random.Random(2015)
        small = sorted(rng.random() for _ in range(25))
        big = sorted(rng.random() for _ in range(400))
        for p in (50, 95, 99):
            # Nearest-rank: always an actual sample, never below it.
            rank = min(max(math.ceil(p / 100.0 * len(small)), 1), len(small))
            assert percentile(small, p) == small[rank - 1]
            assert percentile(small, p) in small
        assert percentile(small, 99) == small[-1]
        # Interpolation: linear between the two bracketing samples.
        rank = 0.99 * (len(big) - 1)
        low, frac = int(rank), 0.99 * (len(big) - 1) - int(rank)
        expected = big[low] * (1 - frac) + big[low + 1] * frac
        assert percentile(big, 99) == pytest.approx(expected)
        assert big[0] <= percentile(big, 50) <= big[-1]
        assert percentile([], 99) != percentile([], 99)  # NaN on empty


class TestServingChains:
    """End-to-end through repro.experiments.serving (what the bench runs)."""

    @pytest.mark.parametrize("mode_name,middleboxes", [
        ("mcTLS", 1),
        ("SplitTLS", 1),
        ("E2E-TLS", 2),
    ])
    def test_modes_over_loopback(self, mode_name, middleboxes):
        from repro.experiments.harness import Mode, TestBed
        from repro.experiments.serving import run_async_load

        bed = TestBed(key_bits=512, dh_group=GROUP_TEST_512)
        report = run(
            run_async_load(
                bed,
                Mode(mode_name),
                middleboxes,
                connections=6,
                concurrency=3,
            )
        )
        assert report["load"]["completed"] == 6
        assert report["load"]["failed"] == 0
        assert report["server"]["handshakes_ok"] == 6

    @pytest.mark.parametrize("framing", ["mctls-default", "mctls-compact"])
    def test_industrial_periodic_load(self, framing):
        """The industrial scenario over a real loopback chain: a periodic
        small-record session through one middlebox, under both framings."""
        from repro.experiments.harness import Mode, TestBed
        from repro.experiments.serving import run_industrial_load
        from repro.mctls.contexts import FieldDef, FieldSchema

        schemas = ()
        if framing == "mctls-compact":
            schemas = (
                FieldSchema(
                    context_id=1,
                    fields=(FieldDef("hdr", 0, 8), FieldDef("body", 8, 64)),
                    write_grants={"hdr": (1,)},
                ),
            )
        bed = TestBed(key_bits=512, dh_group=GROUP_TEST_512)
        report = run(
            run_industrial_load(
                bed,
                Mode("mcTLS"),
                n_middleboxes=1,
                records=10,
                record_size=32,
                period_s=0.002,
                framing=framing,
                field_schemas=schemas,
            )
        )
        assert report["framing"] == framing
        assert report["load"]["completed"] == 10
        assert report["load"]["failed"] == 0
        lat = report["load"]["record_latency_s"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
