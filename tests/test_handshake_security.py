"""Adversarial handshake tests: active attacks a correct mcTLS session
must detect (and the one DoS-level gap the paper concedes)."""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.mctls import messages as mm
from repro.mctls import record as mrec
from repro.mctls.session import McTLSApplicationData
from repro.tls import messages as tls_msgs
from repro.tls.connection import TLSConfig, TLSError
from repro.tls.record import HANDSHAKE
from repro.transport import Chain

from tests.mctls_helpers import build_session


def ctx(ctx_id, perms=None):
    return ContextDefinition(ctx_id, f"ctx{ctx_id}", perms or {})


def records_of(wire: bytes):
    return list(mrec.split_records(bytearray(wire)))


class _TamperingRelay:
    """A malicious on-path attacker rewriting chosen handshake messages."""

    def __init__(self, inner, rewrite):
        self.inner = inner
        self.rewrite = rewrite  # fn(direction, msg_type, body) -> body | None

    def _filter(self, direction: str, data: bytes) -> bytes:
        out = bytearray()
        for content_type, context_id, fragment, raw in records_of(data):
            if content_type != HANDSHAKE:
                out += raw
                continue
            buf = tls_msgs.HandshakeBuffer()
            buf.feed(fragment)
            rebuilt = bytearray()
            while True:
                message = buf.next_message()
                if message is None:
                    break
                msg_type, body, msg_raw = message
                new_body = self.rewrite(direction, msg_type, body)
                if new_body is None:
                    rebuilt += msg_raw
                else:
                    rebuilt += tls_msgs.frame(msg_type, new_body)
            out += mrec.encode_header(HANDSHAKE, context_id, len(rebuilt)) + bytes(
                rebuilt
            )
        return bytes(out)

    def receive_from_client(self, data):
        return self.inner.receive_from_client(self._filter("c2s", data))

    def receive_from_server(self, data):
        return self.inner.receive_from_server(self._filter("s2c", data))

    def data_to_client(self):
        return self._filter("s2c-out", self.inner.data_to_client())

    def data_to_server(self):
        return self.inner.data_to_server()


def build_attacked_session(ca, server_identity, mbox_identity, rewrite):
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=[ctx(1, {1: Permission.READ})],
    )
    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
    )
    mbox = McTLSMiddlebox(
        mbox_identity.name,
        TLSConfig(
            identity=mbox_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
    )
    chain = Chain(client, [_TamperingRelay(mbox, rewrite)], server)
    client.start_handshake()
    return client, server, chain


class TestActiveAttacks:
    def test_server_dh_substitution_detected(self, ca, server_identity, mbox_identity):
        """Rewriting the server's DH public key breaks the SKE signature."""

        def rewrite(direction, msg_type, body):
            if direction == "s2c-out" and msg_type == tls_msgs.SERVER_KEY_EXCHANGE:
                kx = tls_msgs.ServerKeyExchange.decode(body)
                evil = GROUP_TEST_512.generate_keypair()
                kx.dh_public = evil.public_bytes
                return kx.encode()
            return None

        client, server, chain = build_attacked_session(
            ca, server_identity, mbox_identity, rewrite
        )
        with pytest.raises(TLSError, match="signature"):
            chain.pump()

    def test_middlebox_random_substitution_detected(
        self, ca, server_identity, mbox_identity
    ):
        """Rewriting the MiddleboxHello random desynchronises transcripts;
        at minimum Finished verification fails."""

        def rewrite(direction, msg_type, body):
            if direction == "s2c-out" and msg_type == tls_msgs.MIDDLEBOX_HELLO:
                hello = mm.MiddleboxHello.decode(body)
                return mm.MiddleboxHello(
                    mbox_id=hello.mbox_id, random=b"\x00" * 32
                ).encode()
            return None

        client, server, chain = build_attacked_session(
            ca, server_identity, mbox_identity, rewrite
        )
        with pytest.raises(TLSError):
            chain.pump()

    def test_permission_escalation_via_hello_rewrite_detected(
        self, ca, server_identity, mbox_identity
    ):
        """An attacker (or rogue middlebox) upgrading its permissions in
        the ClientHello is caught: the endpoints' transcripts disagree,
        so the client's Finished fails at the server."""

        def rewrite(direction, msg_type, body):
            if direction == "c2s" and msg_type == tls_msgs.CLIENT_HELLO:
                hello = tls_msgs.ClientHello.decode(body)
                topo = SessionTopology.decode(
                    hello.find_extension(tls_msgs.EXT_MIDDLEBOX_LIST)
                )
                escalated = SessionTopology(
                    middleboxes=topo.middleboxes,
                    contexts=[
                        ContextDefinition(
                            c.context_id,
                            c.purpose,
                            {m.mbox_id: Permission.WRITE for m in topo.middleboxes},
                        )
                        for c in topo.contexts
                    ],
                )
                hello.extensions = [
                    (t, v) if t != tls_msgs.EXT_MIDDLEBOX_LIST else (t, escalated.encode())
                    for t, v in hello.extensions
                ]
                return hello.encode()
            return None

        client, server, chain = build_attacked_session(
            ca, server_identity, mbox_identity, rewrite
        )
        with pytest.raises(TLSError):
            chain.pump()

    def test_mode_downgrade_detected(self, ca, server_identity, mbox_identity):
        """Flipping the server's mode extension (default → CKD) is caught
        by Finished verification (transcript mismatch)."""

        def rewrite(direction, msg_type, body):
            if direction == "s2c-out" and msg_type == tls_msgs.SERVER_HELLO:
                hello = tls_msgs.ServerHello.decode(body)
                hello.extensions = [
                    (t, bytes([mm.MODE_CLIENT_KEY_DIST]) if t == mm.EXT_MCTLS_MODE else v)
                    for t, v in hello.extensions
                ]
                return hello.encode()
            return None

        client, server, chain = build_attacked_session(
            ca, server_identity, mbox_identity, rewrite
        )
        with pytest.raises(TLSError):
            chain.pump()


class TestDynamicContexts:
    def test_context_switching_mid_session(self, ca, server_identity, mbox_identity):
        """§4.1: 'contexts can also be selected dynamically' — e.g. stop
        exposing images to the compression proxy after joining Wi-Fi."""
        seen = []
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [
                ctx(1, {1: Permission.READ}),  # compression-enabled
                ctx(2, {}),  # private
            ],
            observer=lambda d, c, data: seen.append(data),
        )
        # On 3G: images via the readable context.
        client.send_application_data(b"image-on-3g", context_id=1)
        chain.pump()
        # Wi-Fi joined mid-session: same kind of payload, private context.
        client.send_application_data(b"image-on-wifi", context_id=2)
        events = chain.pump()
        assert seen == [b"image-on-3g"]
        received = [e.data for e in events if isinstance(e, McTLSApplicationData)]
        assert received == [b"image-on-wifi"]
