"""Golden-vector generator for record-layer wire compatibility.

Freezes byte-exact encodings of protected TLS and mcTLS records (all
three mcTLS MAC slots, both directions) plus middlebox rebuild output,
with record-layer nonces made deterministic by patching the ``os`` name
inside ``repro.tls.ciphersuites`` (the only entropy source on the
record path).  The frozen JSON pins the wire format: any fast-path
rewrite of the record layers must reproduce these bytes bit-for-bit.

Run ``python tests/golden/gen_record_vectors.py`` to (re)generate
``record_vectors.json`` — only do that deliberately, for an intentional
wire-format change, never to make a failing test pass.

``tests/test_record_dataplane_golden.py`` imports :func:`build_vectors`
and compares its output against the frozen file.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.crypto.fastcipher import ShaCtrCipher
from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, Permission
from repro.mctls.record import (
    McTLSRecordLayer,
    MiddleboxRecordProcessor,
    _hmac_sha256,
    split_records,
)
from repro.tls import ciphersuites
from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
)
from repro.tls.record import APPLICATION_DATA, HANDSHAKE, RecordLayer

VECTORS_PATH = Path(__file__).resolve().parent / "record_vectors.json"

SUITES = {
    "shactr": SUITE_DHE_RSA_SHACTR_SHA256,
    "aes128-cbc": SUITE_DHE_RSA_AES128_CBC_SHA256,
}

SECRET, RC, RS = b"S" * 48, b"c" * 32, b"s" * 32

# Per-group payload set: empty, short text, block-boundary, patterned.
PAYLOADS = [
    b"",
    b"attack at dawn",
    bytes(64),
    bytes(range(256)) + b"golden" * 9,
]


class _DeterministicOs:
    """Drop-in replacement for the ``os`` module inside ``ciphersuites``.

    Each group of vectors resets the counter, so generation order within
    a group is the only thing that must stay fixed.
    """

    def __init__(self) -> None:
        self._counter = 0

    def urandom(self, n: int) -> bytes:
        self._counter += 1
        seed = b"mctls-golden-nonce" + self._counter.to_bytes(4, "big")
        out = b""
        while len(out) < n:
            out = out + hashlib.sha256(seed + len(out).to_bytes(2, "big")).digest()
        return out[:n]


class _patched_nonces:
    def __enter__(self):
        self._real_os = ciphersuites.os
        ciphersuites.os = _DeterministicOs()
        return self

    def __exit__(self, *exc):
        ciphersuites.os = self._real_os
        return False


def _mctls_layer(suite, is_client):
    layer = McTLSRecordLayer(is_client=is_client)
    layer.set_suite(suite)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(SECRET, RC, RS))
    layer.install_context_keys(1, mk.ckd_context_keys(SECRET, RC, RS, 1))
    layer.activate_write()
    layer.activate_read()
    return layer


def _tls_vectors(suite):
    enc_key = bytes(range(suite.key_length))
    mac_key = bytes(range(32))
    writer = RecordLayer()
    writer.write_state.activate(suite, suite.new_cipher(enc_key), mac_key)
    records = []
    for payload in PAYLOADS:
        wire = writer.encode(APPLICATION_DATA, payload)
        records.append({"payload": payload.hex(), "wire": wire.hex()})
    return {"enc_key": enc_key.hex(), "mac_key": mac_key.hex(), "records": records}


def _mctls_direction_vectors(suite, is_client):
    """Encoded records from one writer; every record carries all three
    MAC slots (endpoints, writers, readers) inside its protected body."""
    layer = _mctls_layer(suite, is_client)
    records = []
    for payload in PAYLOADS:
        wire = layer.encode(APPLICATION_DATA, payload, 1)
        records.append({"context_id": 1, "payload": payload.hex(), "wire": wire.hex()})
    control = layer.encode(HANDSHAKE, b"finished-ish", ENDPOINT_CONTEXT_ID)
    records.append(
        {
            "context_id": ENDPOINT_CONTEXT_ID,
            "content_type": HANDSHAKE,
            "payload": b"finished-ish".hex(),
            "wire": control.hex(),
        }
    )
    return {"records": records}


def _middlebox_rebuild_vectors(suite):
    """WRITE-middlebox rebuild output for original and modified payloads."""
    client = _mctls_layer(suite, True)
    proc = MiddleboxRecordProcessor(suite, mk.C2S)
    proc.install(1, Permission.WRITE, mk.ckd_context_keys(SECRET, RC, RS, 1))
    proc.activate()
    cases = []
    for original, replacement in [
        (b"attack at dawn", b"attack at dawn"),  # unmodified re-MAC
        (b"attack at dawn", b"ATTACK AT NOON, but longer"),
        (bytes(range(200)), b""),
    ]:
        wire = client.encode(APPLICATION_DATA, original, 1)
        content_type, ctx_id, fragment, _raw = next(split_records(bytearray(wire)))
        opened = proc.open_record(content_type, ctx_id, fragment)
        rebuilt = proc.rebuild_record(opened, replacement)
        cases.append(
            {
                "original_payload": original.hex(),
                "replacement_payload": replacement.hex(),
                "client_wire": wire.hex(),
                "rebuilt_wire": rebuilt.hex(),
            }
        )
    return {"cases": cases}


def _primitive_vectors():
    """Direct outputs of the hot primitives the fast path replaces."""
    key16, key32 = bytes(range(16)), bytes(range(32))
    nonce = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    big = bytes(200_000)
    shactr = ShaCtrCipher(key16)
    return {
        "hmac_sha256": {
            "key": key32.hex(),
            "data": b"golden hmac input".hex(),
            "mac": _hmac_sha256(key32, b"golden hmac input").hex(),
        },
        "suite_mac": {
            "key": key32.hex(),
            "data": b"golden suite mac".hex(),
            "mac": SUITE_DHE_RSA_SHACTR_SHA256.mac(key32, b"golden suite mac").hex(),
        },
        "shactr_xor": [
            {
                "key": key16.hex(),
                "nonce": nonce.hex(),
                "data": data.hex(),
                "out": shactr.xor(nonce, data).hex(),
            }
            for data in (b"", b"x", bytes(33), bytes(range(100)))
        ],
        "shactr_xor_big": {
            "key": key16.hex(),
            "nonce": nonce.hex(),
            "data_len": len(big),
            "out_sha256": hashlib.sha256(shactr.xor(nonce, big)).hexdigest(),
        },
    }


def build_vectors() -> dict:
    vectors = {"schema": "mctls-record-golden/1", "suites": {}}
    for name, suite in SUITES.items():
        with _patched_nonces():
            tls = _tls_vectors(suite)
        with _patched_nonces():
            c2s = _mctls_direction_vectors(suite, is_client=True)
        with _patched_nonces():
            s2c = _mctls_direction_vectors(suite, is_client=False)
        with _patched_nonces():
            rebuild = _middlebox_rebuild_vectors(suite)
        vectors["suites"][name] = {
            "tls": tls,
            "mctls_c2s": c2s,
            "mctls_s2c": s2c,
            "middlebox_rebuild": rebuild,
        }
    vectors["primitives"] = _primitive_vectors()
    return vectors


def main() -> int:
    vectors = build_vectors()
    VECTORS_PATH.write_text(json.dumps(vectors, indent=2, sort_keys=True) + "\n")
    print(f"wrote {VECTORS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
