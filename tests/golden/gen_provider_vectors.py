"""Golden-vector generator for the OpenSSL-provider cipher suites.

Freezes byte-exact sequential *and* batched wire output for the two
suites the OpenSSL provider adds (``DHE-RSA-AES128CTR-SHA256`` 0xFF68
and ``DHE-RSA-CHACHA20-SHA256`` 0xFF69) under the same deterministic
nonce schedule as :mod:`tests.golden.gen_record_vectors`.  The existing
``record_vectors.json`` / ``batched_vectors.json`` are NOT touched —
the pure-Python suites' wire bytes are pinned there and must never
change.

Sequential groups reuse the record-vector helpers (TLS records, both
mcTLS directions with all three MAC slots, middlebox rebuild cases);
batched groups reuse the batched-vector helpers, so the frozen TLS and
mcTLS bursts must equal the concatenation of the per-record wires in
the sequential groups (nonces are drawn in the same order either way).
``tests/test_provider.py`` asserts both the frozen bytes and that
cross-group identity.

Run ``python tests/golden/gen_provider_vectors.py`` to (re)generate
``provider_vectors.json`` — only for an intentional wire-format change,
never to make a failing test pass.  Requires ``cryptography``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.crypto.provider import OPENSSL
from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128CTR_SHA256,
    SUITE_DHE_RSA_CHACHA20_SHA256,
)

from tests.golden.gen_batched_vectors import (
    _mctls_burst,
    _rebuild_burst,
    _tls_burst,
)
from tests.golden.gen_record_vectors import (
    _mctls_direction_vectors,
    _middlebox_rebuild_vectors,
    _patched_nonces,
    _tls_vectors,
)

PROVIDER_VECTORS_PATH = Path(__file__).resolve().parent / "provider_vectors.json"

PROVIDER_SUITES = {
    "aes128-ctr": SUITE_DHE_RSA_AES128CTR_SHA256,
    "chacha20": SUITE_DHE_RSA_CHACHA20_SHA256,
}


def build_provider_vectors() -> dict:
    if not OPENSSL.available:  # pragma: no cover - generator guard
        raise RuntimeError("cryptography unavailable; cannot build provider vectors")
    vectors = {"schema": "mctls-record-provider-golden/1", "suites": {}}
    for name, suite in PROVIDER_SUITES.items():
        with _patched_nonces():
            tls = _tls_vectors(suite)
        with _patched_nonces():
            c2s = _mctls_direction_vectors(suite, is_client=True)
        with _patched_nonces():
            s2c = _mctls_direction_vectors(suite, is_client=False)
        with _patched_nonces():
            rebuild = _middlebox_rebuild_vectors(suite)
        with _patched_nonces():
            tls_burst = _tls_burst(suite)
        with _patched_nonces():
            c2s_burst = _mctls_burst(suite, is_client=True)
        with _patched_nonces():
            s2c_burst = _mctls_burst(suite, is_client=False)
        with _patched_nonces():
            rebuild_burst = _rebuild_burst(suite)
        vectors["suites"][name] = {
            "suite_id": suite.suite_id,
            "tls": tls,
            "mctls_c2s": c2s,
            "mctls_s2c": s2c,
            "middlebox_rebuild": rebuild,
            "tls_burst": tls_burst,
            "mctls_c2s_burst": c2s_burst,
            "mctls_s2c_burst": s2c_burst,
            "middlebox_rebuild_burst": rebuild_burst,
        }
    return vectors


def main() -> int:
    vectors = build_provider_vectors()
    PROVIDER_VECTORS_PATH.write_text(
        json.dumps(vectors, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {PROVIDER_VECTORS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
