"""Golden-vector generator for the compact (Madtls-style) record framing.

The compact framing is negotiated, never implied, so its wire format
gets its *own* frozen vectors — ``compact_vectors.json`` — while the
default framing stays pinned (byte-identical) by ``record_vectors.json``.
Same machinery as :mod:`tests.golden.gen_record_vectors`: deterministic
nonces, both directions, plus middlebox rebuild cases exercising the
per-field MAC trailer (a granted in-place field rewrite must re-verify
at the endpoint as a legal modification).

Run ``python tests/golden/gen_compact_vectors.py`` to (re)generate the
frozen file — only for an intentional wire-format change, never to make
a failing test pass.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.framing import MCTLS_COMPACT
from repro.mctls import keys as mk
from repro.mctls.contexts import (
    ENDPOINT_CONTEXT_ID,
    FieldDef,
    FieldSchema,
    Permission,
)
from repro.mctls.record import MiddleboxRecordProcessor, split_records
from repro.tls.record import APPLICATION_DATA, HANDSHAKE

from tests.golden.gen_record_vectors import (
    RC,
    RS,
    SECRET,
    SUITES,
    _mctls_layer,
    _patched_nonces,
)

COMPACT_VECTORS_PATH = Path(__file__).resolve().parent / "compact_vectors.json"

# The industrial two-field shape: an 8-byte header region a granted
# middlebox may rewrite, and a body region nobody in-path may touch.
SCHEMA = FieldSchema(
    context_id=1,
    fields=(FieldDef("hdr", 0, 8), FieldDef("body", 8, 64)),
    write_grants={"hdr": (1,)},
)

# Compact-framing regime: tiny periodic records, plus one payload that
# crosses the hdr/body field boundary and one past the schema's extent.
PAYLOADS = [
    b"",
    b"setpoint=42",
    bytes(64),
    bytes(range(200)),
]


def _compact_layer(suite, is_client):
    """An endpoint layer negotiated onto the compact framing.

    Endpoints hold every field key (derivation roots in the endpoint
    secret, which only they have).
    """
    layer = _mctls_layer(suite, is_client)
    field_keys = mk.derive_field_keys(SECRET, RC, RS, SCHEMA)
    layer.set_framing(MCTLS_COMPACT, (SCHEMA,), {1: field_keys})
    return layer


def _direction_vectors(suite, is_client):
    layer = _compact_layer(suite, is_client)
    records = []
    for payload in PAYLOADS:
        wire = layer.encode(APPLICATION_DATA, payload, 1)
        records.append({"context_id": 1, "payload": payload.hex(), "wire": wire.hex()})
    control = layer.encode(HANDSHAKE, b"finished-ish", ENDPOINT_CONTEXT_ID)
    records.append(
        {
            "context_id": ENDPOINT_CONTEXT_ID,
            "content_type": HANDSHAKE,
            "payload": b"finished-ish".hex(),
            "wire": control.hex(),
        }
    )
    return {"records": records}


def _rebuild_vectors(suite):
    """Rebuild output of a middlebox granted only the ``hdr`` field.

    The processor holds the ``hdr`` key and not the ``body`` key, so a
    rebuild recomputes the hdr MAC and forwards the body MAC untouched —
    which re-verifies at the endpoint exactly when the rewrite stayed
    inside the granted field.
    """
    client = _compact_layer(suite, True)
    proc = MiddleboxRecordProcessor(suite, mk.C2S)
    proc.install(1, Permission.WRITE, mk.ckd_context_keys(SECRET, RC, RS, 1))
    field_keys = mk.derive_field_keys(SECRET, RC, RS, SCHEMA)
    proc.set_framing(MCTLS_COMPACT, (SCHEMA,))
    proc.install_field_keys(1, {0: field_keys[0]})  # "hdr" only
    proc.activate()
    original = b"HDRhdrHD" + bytes(range(30))
    cases = []
    for replacement in [
        original,                           # unmodified re-MAC
        b"hdrHDRhd" + original[8:],         # granted: hdr-only rewrite
    ]:
        wire = client.encode(APPLICATION_DATA, original, 1)
        content_type, ctx_id, fragment, _raw = next(
            split_records(bytearray(wire), MCTLS_COMPACT)
        )
        opened = proc.open_record(content_type, ctx_id, fragment)
        rebuilt = proc.rebuild_record(opened, replacement)
        cases.append(
            {
                "original_payload": original.hex(),
                "replacement_payload": replacement.hex(),
                "client_wire": wire.hex(),
                "rebuilt_wire": rebuilt.hex(),
            }
        )
    return {"cases": cases}


def build_vectors() -> dict:
    vectors = {
        "schema": "mctls-compact-golden/1",
        "field_schema": SCHEMA.encode().hex(),
        "suites": {},
    }
    for name, suite in SUITES.items():
        with _patched_nonces():
            c2s = _direction_vectors(suite, is_client=True)
        with _patched_nonces():
            s2c = _direction_vectors(suite, is_client=False)
        with _patched_nonces():
            rebuild = _rebuild_vectors(suite)
        vectors["suites"][name] = {
            "compact_c2s": c2s,
            "compact_s2c": s2c,
            "middlebox_rebuild": rebuild,
        }
    return vectors


def main() -> int:
    vectors = build_vectors()
    COMPACT_VECTORS_PATH.write_text(json.dumps(vectors, indent=2, sort_keys=True) + "\n")
    print(f"wrote {COMPACT_VECTORS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
