"""The multi-process sharded runtime: crash isolation, graceful drain,
stats aggregation, and cross-worker stateless resumption.

Everything here runs real forked workers accepting on one loopback port,
driven by blocking-socket TLS clients from the parent.  Waits are
condition-based with deadlines (never bare sleeps), and ports are always
ephemeral (bind to port 0).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import time

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import TestBed
from repro.mp import ClusterEndpointServer, aggregate_snapshots
from repro.sockets import connect
from repro.tls import TicketKeyManager, TLSClient, TLSServer

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded runtime requires the fork start method",
)

LOOPBACK = "127.0.0.1"
ADDITIVE_KEYS = (
    "accepted",
    "handshakes_ok",
    "handshakes_failed",
    "resumed",
    "errors",
    "timeouts",
    "bytes_in",
    "bytes_out",
)


@pytest.fixture(scope="module")
def bed() -> TestBed:
    return TestBed(key_bits=512, dh_group=GROUP_TEST_512)


class _Store(dict):
    def put(self, key, value):
        self[key] = value


async def _echo(conn):
    while True:
        event = await conn.recv_app_data()
        await conn.send(event.data, context_id=event.context_id)


def _cluster(bed, manager=None, workers=2, **kwargs):
    def factory(session_cache=None):
        return TLSServer(
            bed.server_tls_config(),
            session_cache=session_cache,
            ticket_manager=manager,
        )

    return ClusterEndpointServer(
        (LOOPBACK, 0), factory, _echo, workers=workers, **kwargs
    ).start()


def _one_session(bed, port, store=None, payload=b"ping"):
    """One full client session against the cluster; returns resumed."""
    client = TLSClient(bed.client_tls_config(), ticket_store=store)
    sess = connect((LOOPBACK, port), client)
    try:
        sess.handshake()
        sess.send(payload)
        assert sess.recv_app_data().data == payload
        return client.resumed
    finally:
        sess.close()


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_start_reports_distinct_workers(bed):
    cluster = _cluster(bed, workers=2)
    try:
        pids = cluster.worker_pids
        assert len(pids) == 2 and len(set(pids)) == 2
        assert all(pid != os.getpid() for pid in pids)
        assert cluster.alive_workers() == pids
    finally:
        cluster.stop()
    assert cluster.alive_workers() == []


def test_aggregate_equals_per_worker_sums(bed):
    cluster = _cluster(bed, workers=2)
    try:
        for _ in range(8):
            _one_session(bed, cluster.port)
    finally:
        final = cluster.stop()
    assert final["accepted"] == 8
    assert final["handshakes_ok"] == 8
    per_worker = final["workers"]
    assert len(per_worker) == 2
    for key in ADDITIVE_KEYS:
        assert final[key] == sum(w.get(key, 0) for w in per_worker), key
    # The pure function agrees with what stop() reported.
    recomputed = aggregate_snapshots(per_worker)
    for key in ADDITIVE_KEYS:
        assert recomputed.get(key, 0) == final[key]


def test_worker_crash_is_isolated(bed):
    """SIGKILL one worker (it may hold half-open connections); the
    survivor keeps serving every subsequent connection and shutdown
    still reports coherent stats."""
    cluster = _cluster(bed, workers=2)
    try:
        victim = cluster.worker_pids[0]
        # Leave a connection mid-handshake pointed at the pool so the
        # kill lands on a worker that may be parsing a partial hello.
        probe = socket.create_connection((LOOPBACK, cluster.port))
        probe.sendall(b"\x16\x03\x03\x00\x40")  # record header, no body
        os.kill(victim, signal.SIGKILL)
        assert _wait_until(lambda: cluster.alive_workers() != cluster.worker_pids)
        assert len(cluster.alive_workers()) == 1
        probe.close()
        for _ in range(6):
            _one_session(bed, cluster.port, payload=b"survivor")
        snap = cluster.snapshot()
        assert snap["alive_workers"] == 1
        assert snap["handshakes_ok"] >= 6
    finally:
        final = cluster.stop()
    assert final["alive_workers"] == 0


def test_worker_crash_respawns_and_keeps_serving(bed):
    """With ``respawn=True`` a SIGKILLed worker is replaced: the cluster
    returns to N live workers, keeps serving, notes the restart in its
    stats, and the dead worker's counters survive into the aggregate.
    The budget is bounded: a second crash past ``max_respawns`` stays
    dead."""
    cluster = _cluster(
        bed, workers=2, respawn=True, max_respawns=1, respawn_poll_interval=0.02
    )
    try:
        original = list(cluster.worker_pids)
        _one_session(bed, cluster.port)
        cluster.snapshot()  # capture every worker's ledger pre-crash
        victim = original[0]
        os.kill(victim, signal.SIGKILL)

        assert _wait_until(
            lambda: len(cluster.alive_workers()) == 2
            and victim not in cluster.alive_workers()
        )
        replacement = [pid for pid in cluster.worker_pids if pid not in original]
        assert len(replacement) == 1  # the slot was refilled by a new fork
        for _ in range(6):
            _one_session(bed, cluster.port)
        snap = cluster.snapshot()
        assert snap["respawns"] == 1
        assert snap["alive_workers"] == 2
        # The victim's pre-crash ledger was retired into the aggregate.
        assert snap["accepted"] == 7

        # Budget exhausted: the next crash is isolated, never replaced.
        os.kill(replacement[0], signal.SIGKILL)
        assert _wait_until(lambda: len(cluster.alive_workers()) == 1)
        time.sleep(5 * cluster.respawn_poll_interval)
        assert len(cluster.alive_workers()) == 1
        _one_session(bed, cluster.port, payload=b"survivor")
    finally:
        final = cluster.stop()
    assert final["respawns"] == 1
    assert final["alive_workers"] == 0


def test_sigterm_drains_in_flight_sessions(bed):
    """SIGTERM closes the listener but lets the in-flight session finish
    its echo before the worker exits — the rolling-restart contract."""
    cluster = _cluster(bed, workers=1)
    stopped_cleanly = False
    try:
        [pid] = cluster.worker_pids
        client = TLSClient(bed.client_tls_config())
        sess = connect((LOOPBACK, cluster.port), client)
        sess.handshake()

        os.kill(pid, signal.SIGTERM)

        # Listener must close: new connections get refused (or accepted
        # by a dying backlog and immediately reset).
        def refused():
            try:
                with socket.create_connection((LOOPBACK, cluster.port), timeout=0.2):
                    return False
            except OSError:
                return True

        assert _wait_until(refused)

        # ...but the established session still round-trips.
        sess.send(b"drain-me")
        assert sess.recv_app_data().data == b"drain-me"
        sess.close()

        proc = next(rec.process for rec in cluster._records if rec.pid == pid)
        proc.join(timeout=10.0)
        assert not proc.is_alive()
        stopped_cleanly = True
    finally:
        final = cluster.stop()
    assert stopped_cleanly
    assert final["handshakes_ok"] == 1
    assert final["errors"] == 0


def test_ticket_resumption_crosses_worker_boundary(bed):
    """A ticket sealed by one worker resumes at the *other*: seed one
    full handshake, then reconnect until a worker that isn't the seeder
    reports a resumed session.  Fork-inherited keys are the only shared
    state — there is no cross-process session cache."""
    manager = TicketKeyManager()
    cluster = _cluster(bed, manager=manager, workers=2)
    store = _Store()
    try:
        assert _one_session(bed, cluster.port, store=store) is False
        assert store, "seeding handshake must deliver a ticket"
        seeder = next(
            w["pid"]
            for w in cluster.snapshot()["workers"]
            if w.get("accepted", 0) > 0
        )

        def other_worker_resumed():
            resumed = _one_session(bed, cluster.port, store=store)
            assert resumed, "every follow-up must resume via the ticket"
            return any(
                w["pid"] != seeder and w.get("resumed", 0) > 0
                for w in cluster.snapshot()["workers"]
            )

        # Kernel hashing spreads reconnects across workers; 40 attempts
        # make a same-worker-every-time streak a ~2^-40 event.
        crossed = False
        for _ in range(40):
            if other_worker_resumed():
                crossed = True
                break
        assert crossed, "ticket never resumed on a non-seeding worker"
    finally:
        cluster.stop()


def test_inherited_fd_fallback_serves(bed):
    """reuse_port=False forces the shared-accept-queue fallback; the
    pool still serves every connection and shuts down cleanly."""
    cluster = _cluster(bed, workers=2, reuse_port=False)
    assert cluster._reuse_port_active is False
    try:
        for _ in range(6):
            _one_session(bed, cluster.port, payload=b"fallback")
    finally:
        final = cluster.stop()
    assert final["accepted"] == 6
    assert final["handshakes_ok"] == 6
    assert final["errors"] == 0


def test_rolling_stop_returns_final_stats_once(bed):
    cluster = _cluster(bed, workers=2)
    _one_session(bed, cluster.port)
    first = cluster.stop()
    assert first["accepted"] == 1
    # Idempotent: a second stop reports the same final ledger.
    second = cluster.stop()
    assert second["accepted"] == 1
    assert cluster.alive_workers() == []
