"""Shared fixtures: a test CA and pre-generated identities.

RSA key generation is the slowest primitive, so identities are created
once per session with small (512-bit) keys — the protocol logic under
test is key-size independent.
"""

from __future__ import annotations

import pytest

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_TEST_512
from repro.tls.connection import TLSConfig

TEST_KEY_BITS = 512


@pytest.fixture(scope="session")
def ca() -> CertificateAuthority:
    return CertificateAuthority.create_root("Test Root CA", key_bits=TEST_KEY_BITS)


@pytest.fixture(scope="session")
def server_identity(ca) -> Identity:
    return Identity.issued_by(ca, "server.example", key_bits=TEST_KEY_BITS)


@pytest.fixture(scope="session")
def mbox_identity(ca) -> Identity:
    return Identity.issued_by(ca, "mbox1.example", key_bits=TEST_KEY_BITS)


@pytest.fixture(scope="session")
def mbox2_identity(ca) -> Identity:
    return Identity.issued_by(ca, "mbox2.example", key_bits=TEST_KEY_BITS)


@pytest.fixture(scope="session")
def mbox_identities(ca, mbox_identity, mbox2_identity):
    """Identities for up to four middleboxes, index 0 = nearest client."""
    extra = [
        Identity.issued_by(ca, f"mbox{i}.example", key_bits=TEST_KEY_BITS)
        for i in (3, 4)
    ]
    return [mbox_identity, mbox2_identity] + extra


@pytest.fixture()
def client_config(ca) -> TLSConfig:
    return TLSConfig(
        trusted_roots=[ca.certificate],
        server_name="server.example",
        dh_group=GROUP_TEST_512,
    )


@pytest.fixture()
def server_config(ca, server_identity) -> TLSConfig:
    return TLSConfig(
        identity=server_identity,
        trusted_roots=[ca.certificate],
        dh_group=GROUP_TEST_512,
    )


@pytest.fixture()
def mbox_config(ca, mbox_identity) -> TLSConfig:
    return TLSConfig(
        identity=mbox_identity,
        trusted_roots=[ca.certificate],
        dh_group=GROUP_TEST_512,
    )
