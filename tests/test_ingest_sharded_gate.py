"""The sharded-gate artifact ingest (benchmarks/ingest_sharded_gate.py).

Single-core hosts record the mp scaling gate as ``pass: null``; the CI
``sharded-gate`` job produces the judged >=4-core report.  The ingest
tool is the bridge — these tests pin its merge semantics: judged
verdicts replace the null one (with provenance), the measurements behind
the verdict travel along, everything else in the trajectory survives,
and artifacts that cannot honestly improve the verdict are refused.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import ingest_sharded_gate as ingest  # noqa: E402


def _artifact(passed=True, cores=4, ratio=2.61):
    entry = {
        "phase": "sharded",
        "mode": "mcTLS",
        "conn_per_s": 100.0 * (ratio if passed else 1.0),
        "completed": 200,
        "requested": 200,
        "failed": 0,
    }
    return {
        "schema": "mctls-conn-rate/1",
        "entries": {
            "sharded@mcTLS|0mb|mp|w1": dict(entry, conn_per_s=100.0, workers=1),
            "sharded@mcTLS|0mb|mp|w4": dict(entry, workers=4),
            "sharded@mcTLS|0mb|mp|w4|tickets": dict(entry, workers=4, resumed=60),
        },
        "sharded": {
            "workers": 4,
            "cpu_count": cores,
            "threshold": 2.0,
            "baseline_conn_per_s": 100.0,
            "sharded_conn_per_s": 100.0 * ratio,
            "ratio": ratio,
            "all_completed": True,
            "tickets_resumed": True,
            "pass": passed,
        },
        "updated": "2026-01-01T00:00:00+00:00",
    }


def _target():
    return {
        "schema": "mctls-conn-rate/1",
        "entries": {
            "full@mcTLS|0mb|async": {"phase": "full", "conn_per_s": 310.0},
            "sharded@mcTLS|0mb|mp|w4": {"phase": "sharded", "conn_per_s": 113.7},
        },
        "acceptance": {"pass": True},
        "sharded": {
            "workers": 4,
            "cpu_count": 1,
            "ratio": 0.894,
            "pass": None,
            "reason": "scaling gate needs >= 4 cores; host has 1",
        },
        "updated": "2026-01-01T00:00:00+00:00",
    }


@pytest.fixture
def paths(tmp_path):
    artifact = tmp_path / "sharded_gate_report.json"
    output = tmp_path / "BENCH_conn_rate.json"
    output.write_text(json.dumps(_target()))
    return artifact, output


def _run(paths, artifact_dict, extra=()):
    artifact, output = paths
    artifact.write_text(json.dumps(artifact_dict))
    code = ingest.main([str(artifact), "--output", str(output), *extra])
    return code, json.loads(output.read_text())


def test_judged_pass_replaces_null_verdict(paths):
    code, report = _run(paths, _artifact(passed=True))
    assert code == 0
    sharded = report["sharded"]
    assert sharded["pass"] is True
    assert sharded["cpu_count"] == 4
    assert sharded["source"] == "ci:sharded-gate"
    # The unjudged local reason does not linger under the judged verdict.
    assert "reason" not in sharded
    assert report["updated"] != "2026-01-01T00:00:00+00:00"


def test_measurements_travel_and_rest_survives(paths):
    code, report = _run(paths, _artifact(passed=True))
    assert code == 0
    # sharded@ entries are replaced by the artifact's measurements...
    assert report["entries"]["sharded@mcTLS|0mb|mp|w4"]["conn_per_s"] == 261.0
    assert "sharded@mcTLS|0mb|mp|w4|tickets" in report["entries"]
    # ...while full-phase entries and the acceptance block are untouched.
    assert report["entries"]["full@mcTLS|0mb|async"]["conn_per_s"] == 310.0
    assert report["acceptance"] == {"pass": True}


def test_judged_fail_is_ingested_but_exits_nonzero(paths):
    code, report = _run(paths, _artifact(passed=False, ratio=1.3))
    assert code == 1
    assert report["sharded"]["pass"] is False  # a real FAIL is still real


def _without(section_key):
    artifact = _artifact()
    del artifact["sharded"][section_key]
    return artifact


@pytest.mark.parametrize(
    "artifact_dict",
    [
        _artifact(passed=None),  # unjudged: no better than the local null
        _artifact(cores=2),  # premise unmet: too few cores
        dict(_artifact(), schema="something-else/1"),
        {"schema": "mctls-conn-rate/1", "entries": {}},  # wrong phase
        _without("ratio"),  # judged but measurement-less: refuse pre-merge
        _without("workers"),
    ],
    ids=["unjudged", "few-cores", "wrong-schema", "no-sharded", "no-ratio", "no-workers"],
)
def test_unusable_artifacts_are_refused(paths, artifact_dict):
    code, report = _run(paths, artifact_dict)
    assert code == 2
    # The tracked file keeps its honest local verdict, byte-for-byte.
    assert report == _target()


def test_source_label_is_configurable(paths):
    code, report = _run(
        paths, _artifact(), extra=("--source", "local:8-core-workstation")
    )
    assert code == 0
    assert report["sharded"]["source"] == "local:8-core-workstation"
