"""Integration: full HTTP exchanges over the simulated network, per mode."""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import (
    Mode,
    TestBed,
    build_links,
    build_path,
    is_app_data,
    is_handshake_complete,
)
from repro.http import FOUR_CONTEXT, HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.netsim import Simulator
from repro.netsim.profiles import controlled


@pytest.fixture(scope="module")
def bed():
    return TestBed(key_bits=512, dh_group=GROUP_TEST_512)


def http_exchange(bed, mode, targets, body_size=2000, nagle=True):
    """Run sequential HTTP requests over a simulated 2-hop path.

    Returns (responses, completion_time_s).
    """
    sim = Simulator()
    links = build_links(sim, controlled(hops=2, bandwidth_mbps=10.0))
    is_mctls = mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
    topology = bed.topology(1, n_contexts=4) if is_mctls else None
    strategy = FOUR_CONTEXT if is_mctls else None

    responses = []
    state = {}
    holder = []

    def handler(request):
        return HttpResponse(body=b"b" * body_size)

    def request_next():
        index = len(responses)
        state["client_session"].request(
            HttpRequest(target=targets[index], headers=[("Host", "server.example")]),
            on_response,
        )
        holder[0].client_node.flush()

    def on_response(response):
        responses.append(response)
        if len(responses) < len(targets):
            request_next()
        else:
            state["done_at"] = sim.now

    def client_event(event, now):
        if is_handshake_complete(event):
            request_next()
        elif is_app_data(event):
            state["client_session"].on_data(event.data)
            holder[0].client_node.flush()

    def server_event(event, now):
        if is_app_data(event):
            state["server_session"].on_data(event.data)
            holder[0].server_node.flush()

    # For mcTLS the contexts come from the strategy so ids line up.
    if is_mctls:
        from repro.mctls import Permission

        contexts = FOUR_CONTEXT.uniform_permissions([1], Permission.WRITE)
        topology = bed.topology(1, contexts=contexts)

    path = build_path(
        sim, bed, mode, links, topology=topology, nagle=nagle,
        client_on_event=client_event, server_on_event=server_event,
    )
    holder.append(path)
    state["client_session"] = HttpClientSession(path.client_node.connection, strategy)
    state["server_session"] = HttpServerSession(
        path.server_node.connection, handler, strategy
    )
    path.start()
    sim.run(until=120.0)
    assert len(responses) == len(targets), f"{mode}: incomplete exchange"
    return responses, state["done_at"]


@pytest.mark.parametrize(
    "mode",
    [Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS, Mode.SPLIT_TLS, Mode.E2E_TLS, Mode.NO_ENCRYPT],
)
def test_single_request_all_modes(bed, mode):
    responses, done = http_exchange(bed, mode, ["/index.html"])
    assert responses[0].status == 200
    assert len(responses[0].body) == 2000
    assert done < 2.0


@pytest.mark.parametrize("mode", [Mode.MCTLS, Mode.E2E_TLS])
def test_sequential_requests(bed, mode):
    targets = [f"/obj/{i}" for i in range(5)]
    responses, done = http_exchange(bed, mode, targets)
    assert len(responses) == 5
    assert all(r.status == 200 for r in responses)


def test_persistent_connection_amortizes_handshake(bed):
    """Five requests on one connection cost much less than five
    connections' worth of handshakes."""
    _, one = http_exchange(bed, Mode.MCTLS, ["/x"])
    _, five = http_exchange(bed, Mode.MCTLS, [f"/x{i}" for i in range(5)])
    # Each extra request adds ~1 total-RTT + body time, far below a full
    # connection setup (≈ 4 RTTs).
    assert five - one < 4 * (one * 0.75)


def test_large_body_transfer(bed):
    responses, done = http_exchange(bed, Mode.MCTLS, ["/big"], body_size=400_000)
    assert len(responses[0].body) == 400_000
    # 400 kB at 10 Mbps ≈ 0.32 s of pure serialization plus handshake.
    assert 0.4 < done < 3.0
