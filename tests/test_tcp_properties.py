"""Property-based tests for the TCP model: whatever the write pattern,
bytes arrive complete, in order, exactly once."""

from hypothesis import given, settings, strategies as st

from repro.experiments.stats import cdf_points, group_by, median, percentile, percentiles
from repro.netsim import Simulator, connect_tcp
from repro.netsim.link import duplex

import pytest


@given(
    writes=st.lists(st.binary(min_size=1, max_size=5000), min_size=1, max_size=12),
    nagle=st.booleans(),
    delayed_ack=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_arbitrary_write_patterns_deliver_in_order(writes, nagle, delayed_ack):
    sim = Simulator()
    fwd, rev = duplex(sim, 10e6, 0.005)
    client, server = connect_tcp(sim, fwd, rev, nagle=nagle, delayed_ack=delayed_ack)
    received = bytearray()
    server.on_data = received.extend

    def go():
        for chunk in writes:
            client.send(chunk)

    client.on_connected = go
    sim.run()
    assert bytes(received) == b"".join(writes)


@given(
    a_writes=st.lists(st.binary(min_size=1, max_size=2000), max_size=6),
    b_writes=st.lists(st.binary(min_size=1, max_size=2000), max_size=6),
)
@settings(max_examples=25, deadline=None)
def test_bidirectional_streams_independent(a_writes, b_writes):
    sim = Simulator()
    fwd, rev = duplex(sim, 10e6, 0.002)
    client, server = connect_tcp(sim, fwd, rev)
    got_at_server, got_at_client = bytearray(), bytearray()
    server.on_data = got_at_server.extend
    client.on_data = got_at_client.extend

    def client_go():
        for chunk in a_writes:
            client.send(chunk)

    def server_go():
        for chunk in b_writes:
            server.send(chunk)

    client.on_connected = client_go
    server.on_connected = server_go
    sim.run()
    assert bytes(got_at_server) == b"".join(a_writes)
    assert bytes(got_at_client) == b"".join(b_writes)


@given(bandwidth_mbps=st.sampled_from([1.0, 10.0, 100.0]),
       size_kb=st.sampled_from([10, 100, 500]))
@settings(max_examples=15, deadline=None)
def test_throughput_never_exceeds_link_rate(bandwidth_mbps, size_kb):
    sim = Simulator()
    fwd, rev = duplex(sim, bandwidth_mbps * 1e6, 0.001)
    client, server = connect_tcp(sim, fwd, rev)
    size = size_kb * 1000
    done = []
    got = [0]

    def on_data(data):
        got[0] += len(data)
        if got[0] >= size:
            done.append(sim.now)

    server.on_data = on_data
    client.on_connected = lambda: client.send(b"x" * size)
    sim.run()
    floor = size * 8 / (bandwidth_mbps * 1e6)  # pure serialization time
    assert done[0] >= floor


class TestStats:
    def test_percentile_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 0.5) == 6
        assert percentile(values, 1.0) == 10

    def test_percentiles_and_median(self):
        values = list(range(100))
        assert median(values) == 50
        assert percentiles(values, (0.1, 0.9)) == [10, 90]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            cdf_points([])

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_cdf_monotone(self):
        points = cdf_points([5, 1, 3, 2, 4], points=10)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[0] == 0.0 and ys[-1] == 1.0

    def test_group_by(self):
        class Row:
            def __init__(self, label, value):
                self.label = label
                self.value = value

        rows = [Row("a", 1), Row("b", 2), Row("a", 3)]
        grouped = group_by(rows, "label")
        assert sorted(grouped) == ["a", "b"]
        assert [r.value for r in grouped["a"]] == [1, 3]
