"""Tests for HTTP messages, the parser, context strategies and sessions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.http import (
    FOUR_CONTEXT,
    HttpClientSession,
    HttpParser,
    HttpRequest,
    HttpResponse,
    HttpServerSession,
    ONE_CONTEXT,
    context_per_header,
)
from repro.http.messages import HttpError
from repro.http.strategies import (
    CTX_REQUEST_BODY,
    CTX_REQUEST_HEADERS,
    CTX_RESPONSE_BODY,
    CTX_RESPONSE_HEADERS,
)
from repro.mctls.contexts import Permission


class TestMessages:
    def test_request_encode(self):
        request = HttpRequest(target="/x", headers=[("Host", "h")])
        wire = request.encode()
        assert wire.startswith(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n")

    def test_request_with_body_gets_content_length(self):
        request = HttpRequest(method="POST", body=b"12345")
        assert request.get_header("Content-Length") == "5"

    def test_response_always_has_content_length(self):
        assert HttpResponse().get_header("Content-Length") == "0"

    def test_header_lookup_case_insensitive(self):
        request = HttpRequest(headers=[("HOST", "h")])
        assert request.get_header("host") == "h"


class TestParser:
    def test_request_roundtrip(self):
        original = HttpRequest(
            method="POST",
            target="/submit",
            headers=[("Host", "example.com"), ("X-Thing", "1")],
            body=b"payload",
        )
        parsed = HttpParser("request").feed(original.encode())
        assert len(parsed) == 1
        assert parsed[0].method == "POST"
        assert parsed[0].body == b"payload"
        assert parsed[0].get_header("X-Thing") == "1"

    def test_response_roundtrip(self):
        original = HttpResponse(status=404, reason="Not Found", body=b"missing")
        parsed = HttpParser("response").feed(original.encode())
        assert parsed[0].status == 404
        assert parsed[0].body == b"missing"

    def test_incremental_feeding(self):
        wire = HttpRequest(body=b"abc").encode()
        parser = HttpParser("request")
        messages = []
        for i in range(len(wire)):
            messages += parser.feed(wire[i : i + 1])
        assert len(messages) == 1 and messages[0].body == b"abc"

    def test_pipelined_messages(self):
        wire = HttpRequest(target="/1").encode() + HttpRequest(target="/2").encode()
        parsed = HttpParser("request").feed(wire)
        assert [m.target for m in parsed] == ["/1", "/2"]

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            HttpParser("request").feed(b"garbage\r\n\r\n")

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            HttpParser("nonsense")

    @given(st.binary(max_size=300), st.integers(min_value=1, max_value=50))
    @settings(max_examples=30)
    def test_fragmented_body_roundtrip(self, body, chunk):
        wire = HttpResponse(body=body).encode()
        parser = HttpParser("response")
        messages = []
        for i in range(0, len(wire), chunk):
            messages += parser.feed(wire[i : i + chunk])
        assert len(messages) == 1 and messages[0].body == body


class TestStrategies:
    def test_one_context(self):
        request = HttpRequest(body=b"b")
        pieces = ONE_CONTEXT.split_request(request)
        assert len(pieces) == 1 and pieces[0][0] == 1
        assert pieces[0][1] == request.encode()

    def test_four_context_request(self):
        request = HttpRequest(method="POST", body=b"body!")
        pieces = FOUR_CONTEXT.split_request(request)
        assert [ctx for ctx, _ in pieces] == [CTX_REQUEST_HEADERS, CTX_REQUEST_BODY]
        assert b"".join(p for _, p in pieces) == request.encode()

    def test_four_context_response(self):
        response = HttpResponse(body=b"content")
        pieces = FOUR_CONTEXT.split_response(response)
        assert [ctx for ctx, _ in pieces] == [CTX_RESPONSE_HEADERS, CTX_RESPONSE_BODY]
        assert b"".join(p for _, p in pieces) == response.encode()

    def test_concatenation_reconstructs_message(self):
        """The crucial invariant: pieces in order == original bytes."""
        strategy = context_per_header(["Host", "Cookie"])
        request = HttpRequest(
            method="POST",
            headers=[("Host", "h"), ("Cookie", "c=1"), ("X-Other", "o")],
            body=b"data",
        )
        pieces = strategy.split_request(request)
        assert b"".join(p for _, p in pieces) == request.encode()
        response = HttpResponse(headers=[("Cookie", "c")], body=b"r")
        pieces = strategy.split_response(response)
        assert b"".join(p for _, p in pieces) == response.encode()

    def test_per_header_context_assignment(self):
        strategy = context_per_header(["Host", "Cookie"])
        request = HttpRequest(headers=[("Host", "h"), ("Cookie", "c"), ("New", "n")])
        pieces = strategy.split_request(request)
        host_ctx = [c for c, p in pieces if p.startswith(b"Host:")][0]
        cookie_ctx = [c for c, p in pieces if p.startswith(b"Cookie:")][0]
        other_ctx = [c for c, p in pieces if p.startswith(b"New:")][0]
        assert len({host_ctx, cookie_ctx, other_ctx}) == 3

    def test_contexts_and_permissions(self):
        contexts = FOUR_CONTEXT.uniform_permissions([1, 2], Permission.READ)
        assert len(contexts) == 4
        assert all(c.permission_for(1) is Permission.READ for c in contexts)

    def test_context_definitions_with_custom_permissions(self):
        contexts = FOUR_CONTEXT.contexts(
            {CTX_REQUEST_HEADERS: {1: Permission.WRITE}}
        )
        by_id = {c.context_id: c for c in contexts}
        assert by_id[CTX_REQUEST_HEADERS].permission_for(1) is Permission.WRITE
        assert by_id[CTX_RESPONSE_BODY].permission_for(1) is Permission.NONE


class _LoopbackConnection:
    """Send/receive loop for exercising sessions without a real stack."""

    def __init__(self):
        self.sent = []

    def send_application_data(self, data, context_id=1):
        self.sent.append((context_id, data))


class TestSessions:
    def test_client_session_splits_by_strategy(self):
        conn = _LoopbackConnection()
        session = HttpClientSession(conn, FOUR_CONTEXT)
        session.request(HttpRequest(method="POST", body=b"b"), lambda r: None)
        assert [ctx for ctx, _ in conn.sent] == [CTX_REQUEST_HEADERS, CTX_REQUEST_BODY]

    def test_client_session_without_strategy_sends_whole(self):
        conn = _LoopbackConnection()
        session = HttpClientSession(conn)
        request = HttpRequest()
        session.request(request, lambda r: None)
        assert conn.sent == [(1, request.encode())]

    def test_response_dispatch_fifo(self):
        conn = _LoopbackConnection()
        session = HttpClientSession(conn)
        got = []
        session.request(HttpRequest(target="/1"), lambda r: got.append(("1", r.status)))
        session.request(HttpRequest(target="/2"), lambda r: got.append(("2", r.status)))
        session.on_data(HttpResponse(status=200).encode())
        session.on_data(HttpResponse(status=404).encode())
        assert got == [("1", 200), ("2", 404)]
        assert session.idle

    def test_unexpected_response_raises(self):
        session = HttpClientSession(_LoopbackConnection())
        with pytest.raises(RuntimeError):
            session.on_data(HttpResponse().encode())

    def test_server_session_serves(self):
        conn = _LoopbackConnection()
        session = HttpServerSession(
            conn, lambda req: HttpResponse(body=req.target.encode()), FOUR_CONTEXT
        )
        session.on_data(HttpRequest(target="/hello").encode())
        assert session.requests_served == 1
        body_pieces = [p for ctx, p in conn.sent if ctx == CTX_RESPONSE_BODY]
        assert body_pieces == [b"/hello"]
