"""Tests for the wire-trace utility."""

from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import ContextDefinition, McTLSClient, Permission, SessionTopology
from repro.mctls.contexts import MiddleboxInfo
from repro.tls import TLSClient
from repro.tls.connection import TLSConfig
from repro.trace import describe_stream


class TestTraceTLS:
    def test_client_hello_line(self, client_config):
        client = TLSClient(client_config)
        client.start_handshake()
        lines = describe_stream(client.data_to_send(), mctls=False)
        assert len(lines) == 1
        assert "ClientHello" in lines[0]
        assert "suites=" in lines[0]

    def test_server_flight(self, client_config, server_config):
        from repro.tls import TLSServer

        client = TLSClient(client_config)
        server = TLSServer(server_config)
        client.start_handshake()
        server.receive_bytes(client.data_to_send())
        lines = describe_stream(server.data_to_send(), mctls=False)
        names = " ".join(lines)
        assert "ServerHello" in names
        assert "Certificate" in names and "server.example" in names
        assert "ServerKeyExchange" in names
        assert "ServerHelloDone" in names

    def test_post_ccs_finished_summarised(self, client_config, server_config):
        """The client's second flight: CKE plaintext, then CCS, then an
        encrypted Finished — which must be summarised, not parsed."""
        from repro.tls import TLSServer

        client = TLSClient(client_config)
        server = TLSServer(server_config)
        client.start_handshake()
        server.receive_data(client.data_to_send())
        client.receive_data(server.data_to_send())
        lines = describe_stream(client.data_to_send(), mctls=False)
        names = " ".join(lines)
        assert "ClientKeyExchange" in names
        assert "ChangeCipherSpec" in names
        # Client stream: no ServerHello seen, so no abbreviated-flow note.
        assert "abbreviated" not in names
        assert lines[-1].startswith("Handshake <")
        assert "B protected" in lines[-1]

    def test_resumption_flow_annotated(self, client_config, server_config):
        from repro.tls import TLSServer
        from repro.tls.sessioncache import ClientSessionStore, SessionCache
        from repro.transport import pump

        cache = SessionCache()
        store = ClientSessionStore()
        client = TLSClient(client_config, session_store=store)
        server = TLSServer(server_config, session_cache=cache)
        client.start_handshake()
        pump(client, server)
        assert client.handshake_complete

        client2 = TLSClient(client_config, session_store=store)
        server2 = TLSServer(server_config, session_cache=cache)
        client2.start_handshake()
        hello_bytes = client2.data_to_send()
        hello_lines = describe_stream(hello_bytes, mctls=False)
        assert "resumption offer" in hello_lines[0]

        server2.receive_data(hello_bytes)
        lines = describe_stream(server2.data_to_send(), mctls=False)
        names = " ".join(lines)
        assert "ServerHello" in names and "session_id=" in names
        assert "abbreviated handshake: resumption accepted" in names
        # The server's Finished follows its CCS and is encrypted.
        assert lines[-1].startswith("Handshake <")
        assert "B protected" in lines[-1]


class TestTraceMcTLS:
    def test_client_hello_shows_topology(self, ca):
        topology = SessionTopology(
            middleboxes=[MiddleboxInfo(1, "m1"), MiddleboxInfo(2, "m2")],
            contexts=[
                ContextDefinition(1, "a", {1: Permission.READ}),
                ContextDefinition(2, "b"),
            ],
        )
        client = McTLSClient(
            TLSConfig(trusted_roots=[ca.certificate], dh_group=GROUP_TEST_512),
            topology=topology,
        )
        client.start_handshake()
        lines = describe_stream(client.data_to_send())
        assert "middleboxes=2" in lines[0]
        assert "contexts=2" in lines[0]
        assert "ctx=0" in lines[0]

    def test_full_handshake_trace(self, ca, server_identity, mbox_identity):
        """Capture the server-bound bytes at the middlebox and trace them."""
        from tests.mctls_helpers import build_session

        captured = []

        # Wrap the middlebox's output by tracing after the handshake.
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ContextDefinition(1, "ctx", {1: Permission.READ})],
        )
        # Re-run a fresh client hello to capture a clean flight.
        fresh = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name=server_identity.name,
                dh_group=GROUP_TEST_512,
            ),
            topology=client.topology,
        )
        fresh.start_handshake()
        lines = describe_stream(fresh.data_to_send())
        assert any("ClientHello" in line for line in lines)

    def test_protected_records_summarised(self, ca, server_identity):
        from tests.mctls_helpers import build_session

        client, _, server, chain = build_session(
            ca, server_identity, [], [ContextDefinition(1, "ctx")]
        )
        client.send_application_data(b"secret", context_id=1)
        lines = describe_stream(client.data_to_send())
        assert len(lines) == 1
        assert lines[0].startswith("ApplicationData ctx=1 <")
        assert "B protected" in lines[0]
        # Contexts >= 1 carry the paper's three-MAC trailer.
        assert "MAC_endpoints || MAC_writers || MAC_readers" in lines[0]
        assert "secret" not in lines[0]

    def test_trailer_note_layouts(self):
        from repro.trace import _trailer_note

        # Context 0 (endpoint-reserved) carries a single MAC; contexts
        # >= 1 carry the three-MAC trailer; plain TLS has no note.
        assert _trailer_note(True, 0) == "; payload || MAC"
        assert "MAC_endpoints" in _trailer_note(True, 1)
        assert _trailer_note(False, 1) == ""
        assert _trailer_note(True, None) == ""

    def test_mixed_framing_capture_decodes(self, ca, server_identity):
        """One capture mixing default-framed handshake records with
        compact-framed protected records (the negotiated switch happens
        at the CCS boundary) must decode record by record, with the
        offered framing and field schema annotated on the ClientHello."""
        from repro.mctls.contexts import FieldDef, FieldSchema

        schema = FieldSchema(
            context_id=1,
            fields=(FieldDef("hdr", 0, 4), FieldDef("body", 4, 64)),
            write_grants={"hdr": (1,)},
        )
        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name=server_identity.name,
                dh_group=GROUP_TEST_512,
                framing="mctls-compact",
                field_schemas=(schema,),
            ),
            topology=SessionTopology(
                contexts=[ContextDefinition(1, "telemetry")]
            ),
        )
        from repro.mctls import McTLSServer
        from repro.tls.connection import TLSConfig as _Config

        server = McTLSServer(
            _Config(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            )
        )
        client.start_handshake()
        capture = b""
        for _ in range(10):
            out = client.data_to_send()
            capture += out
            if out:
                server.receive_data(out)
            back = server.data_to_send()
            if back:
                client.receive_data(back)
            if client.handshake_complete and server.handshake_complete:
                break
        assert client.handshake_complete
        assert client.negotiated_framing.name == "mctls-compact"
        client.send_application_data(b"temp=21.5;unit=C", context_id=1)
        capture += client.data_to_send()

        lines = describe_stream(capture)
        names = "\n".join(lines)
        # Default-framed plaintext handshake, annotated with the offer.
        assert "ClientHello" in names
        assert "framing=mctls-compact" in names
        assert "fields=ctx1:hdr[0:4],body[4:64]" in names
        assert "ChangeCipherSpec" in names
        # Compact-framed records after the CCS: truncated-MAC trailers.
        assert lines[-1].startswith("ApplicationData ctx=1 <")
        assert "MAC_endpoints8 || MAC_writers8 || MAC_readers8" in lines[-1]
        assert "field MACs" in lines[-1]
        assert "temp=21.5" not in names  # payloads stay opaque
        # The client's protected Finished is compact-framed too; it still
        # decodes as a summarised protected handshake record, ctx 0.
        assert any(
            line.startswith("Handshake ctx=0 <") and "B protected" in line
            for line in lines
        )
        assert not any(line.startswith("!!") for line in lines)

    def test_malformed_stream_reported(self):
        lines = describe_stream(b"\x99\x99\x99\x99\x99\x99\x99")
        assert lines[0].startswith("!! malformed")

    def test_incomplete_record_reported(self, ca):
        topology = SessionTopology(contexts=[ContextDefinition(1, "x")])
        client = McTLSClient(
            TLSConfig(trusted_roots=[ca.certificate], dh_group=GROUP_TEST_512),
            topology=topology,
        )
        client.start_handshake()
        data = client.data_to_send()
        lines = describe_stream(data[:-3])
        assert any("incomplete" in line for line in lines)

    def test_alert_decoding(self, ca, server_identity):
        from tests.mctls_helpers import build_session

        client, _, server, chain = build_session(
            ca, server_identity, [], [ContextDefinition(1, "x")]
        )
        # Pre-protection alert bytes (craft a plaintext alert record).
        from repro.mctls.record import encode_header
        from repro.tls.record import ALERT

        record = encode_header(ALERT, 0, 2) + bytes([1, 0])
        lines = describe_stream(record)
        assert lines == ["Alert ctx=0 warning code=0"]
