"""Full vs resumed handshake equivalence suite.

The tentpole proof for session resumption: for every mode (E2E-TLS,
mcTLS with 0/1/2 middleboxes, client-key-distribution), an abbreviated
handshake must yield a session *indistinguishable in function* from the
full handshake it resumed — byte-identical plaintext transfer, identical
per-context middlebox permissions — while doing strictly less public-key
work (zero at the server).  Negative paths pin the fallback behaviour:
anything that breaks the resumption preconditions must degrade to a full
handshake, never to a broken or over-privileged session.

All randomness is seeded (``random.Random(seed)``), parametrized over
two seeds, so runs are deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.harness import Mode, shared_testbed
from repro.experiments.throughput import measure_full_vs_resumed
from repro.mctls import ContextDefinition, McTLSApplicationData, Permission
from repro.mctls.session import HandshakeMode
from repro.tls.client import TLSClient
from repro.tls.connection import ApplicationData, TLSError
from repro.tls.sessioncache import ClientSessionStore, SessionCache, TLSSessionState
from repro.tls.server import TLSServer
from repro.transport import pump

from tests.mctls_helpers import build_session

SEEDS = (7, 4242)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _contexts(n_mbox: int):
    """Two contexts with asymmetric grants, filtered to existing boxes."""
    grants = [
        {1: Permission.WRITE, 2: Permission.READ},
        {1: Permission.READ, 2: Permission.NONE},
    ]
    return [
        ContextDefinition(
            i + 1,
            f"context-{i + 1}",
            {m: p for m, p in grant.items() if m <= n_mbox},
        )
        for i, grant in enumerate(grants)
    ]


def _payloads(seed: int, context_ids):
    rng = random.Random(seed)
    return {ctx: rng.randbytes(40 + rng.randrange(40)) for ctx in context_ids}


def _exchange_mctls(client, server, chain, payloads):
    """Send each payload client→server then server→client; return what
    each side actually received, keyed by context."""
    at_server = {}
    at_client = {}
    for ctx_id, data in payloads.items():
        client.send_application_data(data, context_id=ctx_id)
        for e in chain.pump():
            if isinstance(e, McTLSApplicationData):
                at_server[e.context_id] = e.data
    for ctx_id, data in payloads.items():
        server.send_application_data(data[::-1], context_id=ctx_id)
        for e in chain.pump():
            if isinstance(e, McTLSApplicationData):
                at_client[e.context_id] = e.data
    return at_server, at_client


MCTLS_CASES = [
    (HandshakeMode.DEFAULT, 0),
    (HandshakeMode.DEFAULT, 1),
    (HandshakeMode.DEFAULT, 2),
    (HandshakeMode.CLIENT_KEY_DIST, 2),
]


class TestEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_e2e_tls_resumed_transfers_identical_bytes(
        self, seed, client_config, server_config
    ):
        cache = SessionCache()
        store = ClientSessionStore()
        rng = random.Random(seed)
        request, response = rng.randbytes(64), rng.randbytes(64)

        transcripts = []
        for round_no in range(2):
            client = TLSClient(client_config, session_store=store)
            server = TLSServer(server_config, session_cache=cache)
            client.start_handshake()
            pump(client, server)
            assert client.handshake_complete and server.handshake_complete
            assert client.resumed == server.resumed == (round_no == 1)
            client.send_application_data(request)
            server.send_application_data(response)
            events = pump(client, server)
            got = [e.data for e in events if isinstance(e, ApplicationData)]
            transcripts.append(got)
        assert transcripts[0] == transcripts[1]
        assert sorted(transcripts[1]) == sorted([request, response])
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode,n_mbox", MCTLS_CASES)
    def test_mctls_resumed_equivalence(
        self, mode, n_mbox, seed, ca, server_identity, mbox_identities
    ):
        cache = SessionCache()
        store = ClientSessionStore()
        contexts = _contexts(n_mbox)
        payloads = _payloads(seed, [c.context_id for c in contexts])

        observed = []
        for round_no in range(2):
            client, mboxes, server, chain = build_session(
                ca,
                server_identity,
                mbox_identities[:n_mbox],
                contexts,
                mode=mode,
                session_store=store,
                session_cache=cache,
            )
            resumed = round_no == 1
            assert client.handshake_complete and server.handshake_complete
            assert client.resumed == server.resumed == resumed
            for mbox in mboxes:
                assert mbox.resumed == resumed
            at_server, at_client = _exchange_mctls(client, server, chain, payloads)
            observed.append(
                {
                    "at_server": at_server,
                    "at_client": at_client,
                    "permissions": [dict(m.permissions) for m in mboxes],
                }
            )

        full, res = observed
        # Byte-identical plaintexts in both directions, per context.
        assert res["at_server"] == full["at_server"] == payloads
        assert res["at_client"] == full["at_client"] == {
            c: d[::-1] for c, d in payloads.items()
        }
        # Identical per-context permissions at every middlebox.
        assert res["permissions"] == full["permissions"]
        assert cache.stats.hits == 1


PROFILE_CASES = [
    (Mode.E2E_TLS, 0),
    (Mode.MCTLS, 0),
    (Mode.MCTLS, 1),
    (Mode.MCTLS, 2),
    (Mode.MCTLS_CKD, 1),
    (Mode.MDTLS, 1),
]


class TestOperationCounts:
    @pytest.mark.parametrize("mode,n_mbox", PROFILE_CASES)
    def test_resumed_handshake_does_strictly_less_pubkey_work(self, mode, n_mbox):
        bed = shared_testbed(key_bits=512)
        result = measure_full_vs_resumed(bed, mode, n_contexts=2, n_middleboxes=n_mbox)
        if mode is Mode.MDTLS:
            # Delegation resumes statelessly by re-issuing session-bound
            # warrants and re-sealing key material, so the server's
            # public-key work shrinks but cannot reach zero — the
            # certificate and key-exchange flights are still gone.
            assert (
                0
                < result.pubkey_ops("resumed", "server")
                < result.pubkey_ops("full", "server")
            )
        else:
            # The server performs ZERO public-key operations when resuming —
            # the whole point of the abbreviated handshake.
            assert result.pubkey_ops("resumed", "server") == 0
            assert result.pubkey_ops("full", "server") > 0
        # Everyone else also does strictly less than in a full handshake —
        # except CKD middleboxes, which were already down to a single RSA
        # open per handshake and stay there.
        assert result.pubkey_ops("resumed", "client") < result.pubkey_ops("full", "client")
        for i in range(n_mbox):
            node = f"middlebox{i + 1}"
            if mode is Mode.MCTLS_CKD:
                assert result.pubkey_ops("resumed", node) <= result.pubkey_ops("full", node)
            else:
                assert result.pubkey_ops("resumed", node) < result.pubkey_ops("full", node)
        # The abbreviated flights are smaller on the wire: the server
        # sends no certificates or key exchange, and the path as a whole
        # shrinks even though a resuming client ships full context key
        # blocks to its middleboxes (CKD-style) instead of half-keys.
        assert result.resumed_bytes["server"] < result.full_bytes["server"]
        assert sum(result.resumed_bytes.values()) < sum(result.full_bytes.values())


class TestNegativePaths:
    def test_unknown_session_id_falls_back_to_full(self, client_config, server_config):
        """A proposed id the server has never seen → full handshake."""
        store = ClientSessionStore()
        suite_id = client_config.cipher_suites[0].suite_id
        store.put(
            "server.example",
            TLSSessionState(
                session_id=b"\x55" * 32,
                master_secret=b"m" * 48,
                cipher_suite_id=suite_id,
            ),
        )
        client = TLSClient(client_config, session_store=store)
        server = TLSServer(server_config, session_cache=SessionCache())
        client.start_handshake()
        events = pump(client, server)
        assert client.handshake_complete and server.handshake_complete
        assert not client.resumed and not server.resumed
        client.send_application_data(b"after fallback")
        events = pump(client, server)
        assert any(
            isinstance(e, ApplicationData) and e.data == b"after fallback"
            for e in events
        )

    def test_evicted_session_falls_back_to_full(
        self, ca, server_identity, mbox_identities
    ):
        cache = SessionCache(capacity=1)
        store = ClientSessionStore()
        contexts = _contexts(1)
        build_session(
            ca, server_identity, mbox_identities[:1], contexts,
            session_store=store, session_cache=cache,
        )
        assert cache.stats.stores == 1
        cache.put(b"squatter", object())  # capacity 1: evicts the session
        assert cache.stats.evictions == 1

        client, _, server, chain = build_session(
            ca, server_identity, mbox_identities[:1], contexts,
            session_store=store, session_cache=cache,
        )
        assert client.handshake_complete and server.handshake_complete
        assert not client.resumed and not server.resumed
        at_server, _ = _exchange_mctls(client, server, chain, {1: b"still works"})
        assert at_server == {1: b"still works"}

    def test_expired_session_falls_back_to_full(self, client_config, server_config):
        clock = FakeClock()
        cache = SessionCache(ttl=300.0, clock=clock)
        store = ClientSessionStore()
        client = TLSClient(client_config, session_store=store)
        server = TLSServer(server_config, session_cache=cache)
        client.start_handshake()
        pump(client, server)
        clock.now = 301.0

        client2 = TLSClient(client_config, session_store=store)
        server2 = TLSServer(server_config, session_cache=cache)
        client2.start_handshake()
        pump(client2, server2)
        assert client2.handshake_complete and server2.handshake_complete
        assert not client2.resumed and not server2.resumed
        assert cache.stats.expirations == 1

    def test_invalidated_session_falls_back_to_full(
        self, client_config, server_config
    ):
        cache = SessionCache()
        store = ClientSessionStore()
        client = TLSClient(client_config, session_store=store)
        server = TLSServer(server_config, session_cache=cache)
        client.start_handshake()
        pump(client, server)
        cached_id = store.get("server.example").session_id
        assert cache.invalidate(cached_id)

        client2 = TLSClient(client_config, session_store=store)
        server2 = TLSServer(server_config, session_cache=cache)
        client2.start_handshake()
        pump(client2, server2)
        assert client2.handshake_complete and server2.handshake_complete
        assert not client2.resumed and not server2.resumed

    def test_server_policy_change_blocks_resumption(
        self, ca, server_identity, mbox_identities
    ):
        """A server that stops granting the client's topology must not
        honor resumption — resuming would hand the middlebox keys the
        new policy denies."""
        from repro.mctls import restrict_topology

        cache = SessionCache()
        store = ClientSessionStore()
        contexts = _contexts(1)
        client, mboxes, _, _ = build_session(
            ca, server_identity, mbox_identities[:1], contexts,
            session_store=store, session_cache=cache,
        )
        assert client.resumed is False
        assert mboxes[0].permissions[1] is Permission.WRITE

        policy = lambda t: restrict_topology(t, {1: {1: Permission.READ}})
        client2, mboxes2, server2, _ = build_session(
            ca, server_identity, mbox_identities[:1], contexts,
            topology_policy=policy,
            session_store=store, session_cache=cache,
        )
        assert client2.handshake_complete and server2.handshake_complete
        assert not client2.resumed and not server2.resumed
        # The downgraded grant is in force — not the cached one.
        assert mboxes2[0].permissions[1] is Permission.READ
        # And a policy-restricting server never mints session ids at all.
        assert cache.stats.stores == 1  # only the first (unrestricted) session

    def test_restricting_server_never_issues_session_id(
        self, ca, server_identity, mbox_identities
    ):
        from repro.mctls import restrict_topology

        cache = SessionCache()
        store = ClientSessionStore()
        policy = lambda t: restrict_topology(t, {1: {1: Permission.READ}})
        build_session(
            ca, server_identity, mbox_identities[:1], _contexts(1),
            topology_policy=policy,
            session_store=store, session_cache=cache,
        )
        assert cache.stats.stores == 0
        assert store.get(("mctls", server_identity.name)) is None

    def test_client_topology_change_skips_resumption(
        self, ca, server_identity, mbox_identities
    ):
        """A client proposing a different topology must not offer the old
        session id (the cached keys encode the old grants)."""
        cache = SessionCache()
        store = ClientSessionStore()
        build_session(
            ca, server_identity, mbox_identities[:1], _contexts(1),
            session_store=store, session_cache=cache,
        )
        changed = [
            ContextDefinition(1, "context-1", {1: Permission.READ}),
            ContextDefinition(2, "context-2", {1: Permission.READ}),
        ]
        client2, _, server2, _ = build_session(
            ca, server_identity, mbox_identities[:1], changed,
            session_store=store, session_cache=cache,
        )
        assert client2.handshake_complete and server2.handshake_complete
        assert not client2.resumed and not server2.resumed
        assert cache.stats.hits == 0  # id was never even proposed

    def test_middlebox_replaying_old_context_keys_is_rejected(
        self, ca, server_identity, mbox_identities
    ):
        """Resumption re-keys every context; a middlebox that re-installs
        the previous session's keys cannot touch the resumed stream."""
        cache = SessionCache()
        store = ClientSessionStore()
        contexts = _contexts(1)
        _, old_mboxes, _, _ = build_session(
            ca, server_identity, mbox_identities[:1], contexts,
            session_store=store, session_cache=cache,
        )
        client, mboxes, server, chain = build_session(
            ca, server_identity, mbox_identities[:1], contexts,
            session_store=store, session_cache=cache,
        )
        assert client.resumed and server.resumed
        old_proc, new_proc = old_mboxes[0]._proc_c2s, mboxes[0]._proc_c2s
        # Fresh randoms produced fresh context keys.
        old_keys = old_proc.context_keys[1]
        new_keys = new_proc.context_keys[1]
        assert old_keys.readers.for_direction("c2s").enc != new_keys.readers.for_direction(
            "c2s"
        ).enc
        # Replay the stale keys into the resumed session's processors.
        mboxes[0]._proc_c2s.context_keys = dict(old_proc.context_keys)
        client.send_application_data(b"secret", context_id=1)
        with pytest.raises(TLSError, match="relay failure"):
            chain.pump()
