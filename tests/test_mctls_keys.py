"""Tests for the mcTLS key schedule: contributory keys, AuthEnc, carving."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mctls import keys as mk
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256, CipherError

SUITE = SUITE_DHE_RSA_SHACTR_SHA256
RC, RS = b"c" * 32, b"s" * 32


class TestPairwise:
    def test_deterministic(self):
        a = mk.derive_pairwise(b"premaster", RC, RS)
        b = mk.derive_pairwise(b"premaster", RC, RS)
        assert a == b

    def test_random_separation(self):
        a = mk.derive_pairwise(b"pm", RC, RS)
        b = mk.derive_pairwise(b"pm", RS, RC)
        assert a.secret != b.secret

    def test_key_lengths(self):
        keys = mk.derive_pairwise(b"pm", RC, RS)
        assert len(keys.secret) == 48
        assert len(keys.enc) == 16
        assert len(keys.mac) == 32


class TestContributoryKeys:
    def test_both_halves_required(self):
        """Different halves from either side give different final keys —
        the contributory property (R4)."""
        base = mk.combine_context_keys(b"c1" * 16, b"s1" * 16, b"cw" * 16, b"sw" * 16, RC, RS)
        diff_client = mk.combine_context_keys(b"XX" * 16, b"s1" * 16, b"cw" * 16, b"sw" * 16, RC, RS)
        diff_server = mk.combine_context_keys(b"c1" * 16, b"XX" * 16, b"cw" * 16, b"sw" * 16, RC, RS)
        assert base != diff_client
        assert base != diff_server

    def test_directional_keys_distinct(self):
        keys = mk.combine_context_keys(b"a" * 32, b"b" * 32, b"c" * 32, b"d" * 32, RC, RS)
        assert keys.readers.c2s.enc != keys.readers.s2c.enc
        assert keys.readers.c2s.mac != keys.readers.s2c.mac
        assert keys.writers.mac_c2s != keys.writers.mac_s2c

    def test_reader_and_writer_keys_independent(self):
        keys = mk.combine_context_keys(b"a" * 32, b"b" * 32, b"c" * 32, b"d" * 32, RC, RS)
        assert keys.readers.c2s.mac != keys.writers.mac_c2s

    def test_partial_keys_context_separated(self):
        secret = b"S" * 48
        assert mk.partial_reader_key(secret, RC, 1) != mk.partial_reader_key(secret, RC, 2)
        assert mk.partial_reader_key(secret, RC, 1) != mk.partial_writer_key(secret, RC, 1)


class TestCKDKeys:
    def test_deterministic_from_endpoint_secret(self):
        a = mk.ckd_context_keys(b"ms" * 24, RC, RS, 1)
        b = mk.ckd_context_keys(b"ms" * 24, RC, RS, 1)
        assert a == b

    def test_context_separation(self):
        a = mk.ckd_context_keys(b"ms" * 24, RC, RS, 1)
        b = mk.ckd_context_keys(b"ms" * 24, RC, RS, 2)
        assert a != b

    def test_block_serialization_roundtrip(self):
        keys = mk.ckd_context_keys(b"ms" * 24, RC, RS, 3)
        reader_block = mk.reader_block_bytes(keys.readers)
        writer_block = mk.writer_block_bytes(keys.writers)
        assert mk.reader_keys_from_block(reader_block) == keys.readers
        assert mk.writer_keys_from_block(writer_block) == keys.writers

    def test_bad_block_lengths_rejected(self):
        with pytest.raises(ValueError):
            mk.reader_keys_from_block(b"short")
        with pytest.raises(ValueError):
            mk.writer_keys_from_block(b"short")


class TestEndpointKeys:
    def test_directions_distinct(self):
        keys = mk.derive_endpoint_keys(b"S" * 48, RC, RS)
        assert keys.c2s != keys.s2c
        assert keys.for_direction(mk.C2S) is keys.c2s
        assert keys.for_direction(mk.S2C) is keys.s2c


class TestAuthEnc:
    def test_roundtrip(self):
        enc, mac = b"e" * 16, b"m" * 32
        sealed = mk.authenc_seal(SUITE, enc, mac, b"key material")
        assert mk.authenc_open(SUITE, enc, mac, sealed) == b"key material"

    def test_tamper_detected(self):
        enc, mac = b"e" * 16, b"m" * 32
        sealed = bytearray(mk.authenc_seal(SUITE, enc, mac, b"key material"))
        sealed[0] ^= 1
        with pytest.raises(CipherError):
            mk.authenc_open(SUITE, enc, mac, bytes(sealed))

    def test_wrong_mac_key_detected(self):
        enc = b"e" * 16
        sealed = mk.authenc_seal(SUITE, enc, b"m" * 32, b"data")
        with pytest.raises(CipherError):
            mk.authenc_open(SUITE, enc, b"x" * 32, sealed)

    def test_short_input_rejected(self):
        with pytest.raises(CipherError):
            mk.authenc_open(SUITE, b"e" * 16, b"m" * 32, b"tiny")

    @given(st.binary(max_size=500))
    @settings(max_examples=25)
    def test_roundtrip_random(self, payload):
        enc, mac = b"e" * 16, b"m" * 32
        assert mk.authenc_open(SUITE, enc, mac, mk.authenc_seal(SUITE, enc, mac, payload)) == payload
