"""Tests for the TLS record layer: framing, protection, tamper detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
    CipherError,
    suite_by_id,
)
from repro.tls.record import (
    ALERT,
    APPLICATION_DATA,
    HANDSHAKE,
    MAX_PLAINTEXT,
    RecordError,
    RecordLayer,
)

SUITE = SUITE_DHE_RSA_SHACTR_SHA256  # fast suite for bulk record tests


def protected_pair(suite=SUITE):
    """A sender/receiver record-layer pair sharing keys."""
    enc_key = bytes(suite.key_length)
    mac_key = b"m" * suite.mac_key_length
    sender = RecordLayer()
    receiver = RecordLayer()
    sender.write_state.activate(suite, suite.new_cipher(enc_key), mac_key)
    receiver.read_state.activate(suite, suite.new_cipher(enc_key), mac_key)
    return sender, receiver


class TestPlaintextRecords:
    def test_roundtrip(self):
        layer = RecordLayer()
        wire = layer.encode(HANDSHAKE, b"hello")
        peer = RecordLayer()
        peer.feed(wire)
        assert peer.read_record() == (HANDSHAKE, b"hello")

    def test_partial_delivery(self):
        layer = RecordLayer()
        wire = layer.encode(ALERT, b"\x01\x00")
        peer = RecordLayer()
        peer.feed(wire[:3])
        assert peer.read_record() is None
        peer.feed(wire[3:])
        assert peer.read_record() == (ALERT, b"\x01\x00")

    def test_fragmentation(self):
        layer = RecordLayer()
        payload = b"x" * (MAX_PLAINTEXT + 100)
        wire = layer.encode(APPLICATION_DATA, payload)
        peer = RecordLayer()
        peer.feed(wire)
        records = list(peer.read_all())
        assert len(records) == 2
        assert b"".join(p for _, p in records) == payload

    def test_invalid_content_type(self):
        layer = RecordLayer()
        layer.feed(b"\x63\x03\x03\x00\x01a")
        with pytest.raises(RecordError):
            layer.read_record()

    def test_invalid_version(self):
        layer = RecordLayer()
        layer.feed(b"\x16\x02\x00\x00\x01a")
        with pytest.raises(RecordError):
            layer.read_record()


class TestProtectedRecords:
    def test_roundtrip(self):
        sender, receiver = protected_pair()
        receiver.feed(sender.encode(APPLICATION_DATA, b"secret payload"))
        assert receiver.read_record() == (APPLICATION_DATA, b"secret payload")

    def test_ciphertext_differs_from_plaintext(self):
        sender, _ = protected_pair()
        wire = sender.encode(APPLICATION_DATA, b"secret payload")
        assert b"secret payload" not in wire

    def test_tampered_ciphertext_rejected(self):
        sender, receiver = protected_pair()
        wire = bytearray(sender.encode(APPLICATION_DATA, b"data"))
        wire[-1] ^= 1
        receiver.feed(bytes(wire))
        with pytest.raises(RecordError):
            receiver.read_record()

    def test_replayed_record_rejected(self):
        """Sequence numbers make replays fail the MAC."""
        sender, receiver = protected_pair()
        wire = sender.encode(APPLICATION_DATA, b"data")
        receiver.feed(wire)
        assert receiver.read_record() is not None
        receiver.feed(wire)
        with pytest.raises(RecordError):
            receiver.read_record()

    def test_reordered_records_rejected(self):
        sender, receiver = protected_pair()
        first = sender.encode(APPLICATION_DATA, b"one")
        second = sender.encode(APPLICATION_DATA, b"two")
        receiver.feed(second)
        with pytest.raises(RecordError):
            receiver.read_record()
        del first

    def test_aes_cbc_suite_roundtrip(self):
        sender, receiver = protected_pair(SUITE_DHE_RSA_AES128_CBC_SHA256)
        receiver.feed(sender.encode(APPLICATION_DATA, b"cbc data"))
        assert receiver.read_record() == (APPLICATION_DATA, b"cbc data")

    @given(st.binary(max_size=2000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random_payloads(self, payload):
        sender, receiver = protected_pair()
        receiver.feed(sender.encode(APPLICATION_DATA, payload))
        records = list(receiver.read_all())
        assert b"".join(p for _, p in records) == payload


class TestCipherSuites:
    def test_lookup(self):
        assert suite_by_id(0x0067) is SUITE_DHE_RSA_AES128_CBC_SHA256
        with pytest.raises(CipherError):
            suite_by_id(0x1234)

    def test_ciphertext_length_prediction(self):
        for suite in (SUITE_DHE_RSA_AES128_CBC_SHA256, SUITE_DHE_RSA_SHACTR_SHA256):
            cipher = suite.new_cipher(bytes(suite.key_length))
            for n in (0, 1, 15, 16, 17, 1000):
                assert len(cipher.encrypt(b"x" * n)) == cipher.ciphertext_length(n)

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ValueError):
            SUITE_DHE_RSA_AES128_CBC_SHA256.new_cipher(b"short")
