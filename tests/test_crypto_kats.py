"""Known-answer tests against published vectors (NIST / RFC)."""

import hashlib
import hmac

from repro.crypto.aes import AES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_xor


class TestAesDecryptKATs:
    """FIPS-197 Appendix C inverse-cipher checks."""

    def test_aes128_decrypt(self):
        cipher = AES(bytes(range(16)))
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert cipher.decrypt_block(ciphertext).hex() == "00112233445566778899aabbccddeeff"

    def test_aes192_decrypt(self):
        cipher = AES(bytes(range(24)))
        ciphertext = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert cipher.decrypt_block(ciphertext).hex() == "00112233445566778899aabbccddeeff"

    def test_aes256_decrypt(self):
        cipher = AES(bytes(range(32)))
        ciphertext = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert cipher.decrypt_block(ciphertext).hex() == "00112233445566778899aabbccddeeff"


class TestCbcKATs:
    """NIST SP 800-38A F.2.1 (CBC-AES128) vectors."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    PLAINTEXT = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710"
    )
    CIPHERTEXT = bytes.fromhex(
        "7649abac8119b246cee98e9b12e9197d"
        "5086cb9b507219ee95db113a917678b2"
        "73bed6b8e3c1743b7116e69e22229516"
        "3ff1caa1681fac09120eca307586e1a7"
    )

    def test_encrypt_vector(self):
        cipher = AES(self.KEY)
        assert cbc_encrypt(cipher, self.IV, self.PLAINTEXT) == self.CIPHERTEXT

    def test_decrypt_vector(self):
        cipher = AES(self.KEY)
        assert cbc_decrypt(cipher, self.IV, self.CIPHERTEXT) == self.PLAINTEXT


class TestCtrKAT:
    """NIST SP 800-38A F.5.1 (CTR-AES128), first block."""

    def test_ctr_vector(self):
        cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        nonce = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("874d6191b620e3261bef6864990db6ce")
        assert ctr_xor(cipher, nonce, plaintext) == expected


class TestHmacKATs:
    """RFC 4231 HMAC-SHA256 test cases 1 and 2 (our record MACs use the
    stdlib, but the vectors pin the dependency's behaviour)."""

    def test_case_1(self):
        mac = hmac.new(b"\x0b" * 20, b"Hi There", hashlib.sha256).hexdigest()
        assert mac == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_case_2(self):
        mac = hmac.new(b"Jefe", b"what do ya want for nothing?", hashlib.sha256)
        assert mac.hexdigest() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )
