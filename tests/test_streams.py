"""Tests for multiplexed streams over mcTLS contexts (HTTP/2 use case)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.http.streams import (
    FLAG_END_STREAM,
    StreamError,
    StreamEvent,
    StreamMultiplexer,
    encode_frame,
)
from repro.mctls import ContextDefinition, Permission
from repro.mctls.session import McTLSApplicationData

from tests.mctls_helpers import build_session


class _LoopbackConn:
    def __init__(self):
        self.sent = []

    def send_application_data(self, data, context_id=1):
        self.sent.append((context_id, data))


class TestFraming:
    def test_frame_roundtrip(self):
        mux = StreamMultiplexer(_LoopbackConn())
        frame = encode_frame(7, b"payload", end_stream=True)
        events = mux.on_application_data(1, frame)
        assert events == [
            StreamEvent(stream_id=7, context_id=1, data=b"payload", end_stream=True)
        ]

    def test_partial_frames_buffered(self):
        mux = StreamMultiplexer(_LoopbackConn())
        frame = encode_frame(1, b"hello world")
        assert mux.on_application_data(1, frame[:5]) == []
        events = mux.on_application_data(1, frame[5:])
        assert events[0].data == b"hello world"

    def test_multiple_frames_in_one_record(self):
        mux = StreamMultiplexer(_LoopbackConn())
        data = encode_frame(1, b"a") + encode_frame(3, b"b")
        events = mux.on_application_data(1, data)
        assert [(e.stream_id, e.data) for e in events] == [(1, b"a"), (3, b"b")]

    def test_oversized_frame_rejected(self):
        with pytest.raises(StreamError):
            encode_frame(1, b"x" * (1 << 24))

    @given(st.binary(max_size=200), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=30)
    def test_roundtrip_property(self, payload, stream_id):
        mux = StreamMultiplexer(_LoopbackConn())
        events = mux.on_application_data(2, encode_frame(stream_id, payload))
        assert events[0].data == payload
        assert events[0].stream_id == stream_id


class TestMultiplexer:
    def test_client_odd_server_even_ids(self):
        client = StreamMultiplexer(_LoopbackConn(), is_client=True)
        server = StreamMultiplexer(_LoopbackConn(), is_client=False)
        assert [client.open_stream(1) for _ in range(3)] == [1, 3, 5]
        assert [server.open_stream(1) for _ in range(3)] == [2, 4, 6]

    def test_send_routes_to_bound_context(self):
        conn = _LoopbackConn()
        mux = StreamMultiplexer(conn)
        api = mux.open_stream(context_id=2)
        images = mux.open_stream(context_id=3)
        mux.send(api, b"secret api call")
        mux.send(images, b"jpeg bytes")
        assert conn.sent[0][0] == 2
        assert conn.sent[1][0] == 3

    def test_unknown_stream_rejected(self):
        mux = StreamMultiplexer(_LoopbackConn())
        with pytest.raises(StreamError):
            mux.send(99, b"x")

    def test_duplicate_open_rejected(self):
        mux = StreamMultiplexer(_LoopbackConn())
        mux.open_stream(1, stream_id=5)
        with pytest.raises(StreamError):
            mux.open_stream(1, stream_id=5)

    def test_end_stream_closes_local_side(self):
        mux = StreamMultiplexer(_LoopbackConn())
        sid = mux.open_stream(1)
        mux.send(sid, b"last", end_stream=True)
        with pytest.raises(StreamError):
            mux.send(sid, b"more")

    def test_stream_cannot_change_contexts(self):
        mux = StreamMultiplexer(_LoopbackConn())
        mux.on_application_data(1, encode_frame(2, b"a"))
        with pytest.raises(StreamError):
            mux.on_application_data(3, encode_frame(2, b"b"))

    def test_data_after_remote_close_rejected(self):
        mux = StreamMultiplexer(_LoopbackConn())
        mux.on_application_data(1, encode_frame(2, b"bye", end_stream=True))
        with pytest.raises(StreamError):
            mux.on_application_data(1, encode_frame(2, b"zombie"))


class TestStreamsOverMcTLS:
    def test_per_stream_access_control(self, ca, server_identity, mbox_identity):
        """The §4.2 HTTP/2 scenario: image streams in a middlebox-readable
        context, API streams in an endpoint-only context, multiplexed over
        one session."""
        seen = []
        contexts = [
            ContextDefinition(1, "api", {}),
            ContextDefinition(2, "images", {1: Permission.READ}),
        ]
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            contexts,
            observer=lambda d, ctx, data: seen.append((ctx, data)),
        )
        client_mux = StreamMultiplexer(client, is_client=True)
        server_mux = StreamMultiplexer(server, is_client=False)

        api_stream = client_mux.open_stream(context_id=1)
        img_stream = client_mux.open_stream(context_id=2)
        client_mux.send(api_stream, b"GET /account/balance")
        client_mux.send(img_stream, b"GET /cat.jpg")
        events = chain.pump()

        received = []
        for event in events:
            if isinstance(event, McTLSApplicationData):
                received.extend(
                    server_mux.on_application_data(event.context_id, event.data)
                )
        by_stream = {e.stream_id: e.data for e in received}
        assert by_stream == {
            api_stream: b"GET /account/balance",
            img_stream: b"GET /cat.jpg",
        }
        # Middlebox saw the image stream's frame only.
        assert len(seen) == 1 and seen[0][0] == 2
        assert b"cat.jpg" in seen[0][1]
        assert not any(b"balance" in data for _, data in seen)
