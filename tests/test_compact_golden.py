"""Frozen wire vectors for the compact (Madtls-style) record framing.

Twin of ``tests/test_record_dataplane_golden.py`` for the negotiated
compact geometry: the generator must reproduce ``compact_vectors.json``
bit-for-bit, the frozen wires must decode on fresh receive-side layers
(field MACs verifying), and middlebox rebuilds that stayed inside the
granted field must re-verify as legal modifications.  The default-framing
goldens (``record_vectors.json``) are asserted byte-identical elsewhere —
adding a framing must not move a single default wire byte.
"""

from __future__ import annotations

import json

import pytest

from repro.framing import COMPACT_MARKER_BASE, MCTLS_COMPACT
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, FieldSchema
from repro.tls.record import APPLICATION_DATA, HANDSHAKE

from tests.golden.gen_compact_vectors import (
    COMPACT_VECTORS_PATH,
    PAYLOADS,
    SCHEMA,
    _compact_layer,
    build_vectors,
)
from tests.golden.gen_record_vectors import SUITES

FROZEN = json.loads(COMPACT_VECTORS_PATH.read_text())


def test_compact_generator_reproduces_frozen_vectors_bit_for_bit():
    assert build_vectors() == FROZEN


def test_frozen_field_schema_round_trips():
    schema = FieldSchema.decode(bytes.fromhex(FROZEN["field_schema"]))
    assert schema == SCHEMA


@pytest.mark.parametrize("suite_name", sorted(SUITES))
@pytest.mark.parametrize("direction", ["compact_c2s", "compact_s2c"])
def test_frozen_compact_wires_decode(suite_name, direction):
    suite = SUITES[suite_name]
    group = FROZEN["suites"][suite_name][direction]
    reader = _compact_layer(suite, is_client=(direction == "compact_s2c"))
    for vector in group["records"]:
        wire = bytes.fromhex(vector["wire"])
        # Compact header: marker(1) || context_id(1) || length(2).
        assert wire[0] & 0xFC == COMPACT_MARKER_BASE
        assert wire[1] == vector["context_id"]
        assert int.from_bytes(wire[2:4], "big") == len(wire) - MCTLS_COMPACT.header_len
        reader.feed(wire)
        record = reader.read_record()
        assert record is not None
        assert record.context_id == vector["context_id"]
        assert record.content_type == vector.get("content_type", APPLICATION_DATA)
        assert record.payload == bytes.fromhex(vector["payload"])
        assert record.legally_modified is False
    assert group["records"][-1]["context_id"] == ENDPOINT_CONTEXT_ID
    assert group["records"][-1]["content_type"] == HANDSHAKE


@pytest.mark.parametrize("suite_name", sorted(SUITES))
def test_frozen_compact_rebuilds_decode_with_modification_verdict(suite_name):
    """A hdr-granted middlebox rebuild re-verifies at the endpoint; the
    endpoint MAC flags exactly the case whose payload actually changed."""
    suite = SUITES[suite_name]
    cases = FROZEN["suites"][suite_name]["middlebox_rebuild"]["cases"]
    server = _compact_layer(suite, is_client=False)
    for case in cases:
        server.feed(bytes.fromhex(case["rebuilt_wire"]))
        record = server.read_record()
        assert record is not None
        assert record.payload == bytes.fromhex(case["replacement_payload"])
        modified = case["replacement_payload"] != case["original_payload"]
        assert record.legally_modified is modified


@pytest.mark.parametrize("suite_name", sorted(SUITES))
def test_compact_overhead_beats_default_on_small_records(suite_name):
    """Geometry check straight off the frozen bytes: at tiny payloads the
    compact trailer (3 x 8 B record MACs + 2 x 8 B field MACs + 4 B
    header) undercuts the default (3 x 32 B MACs + 6 B header)."""
    from tests.golden.gen_record_vectors import VECTORS_PATH

    default = json.loads(VECTORS_PATH.read_text())
    compact_records = FROZEN["suites"][suite_name]["compact_c2s"]["records"]
    default_records = default["suites"][suite_name]["mctls_c2s"]["records"]
    # Both vector sets start with the empty payload: pure overhead.
    compact_overhead = len(bytes.fromhex(compact_records[0]["wire"]))
    default_overhead = len(bytes.fromhex(default_records[0]["wire"]))
    assert compact_records[0]["payload"] == default_records[0]["payload"] == ""
    assert compact_overhead < default_overhead


def test_payload_set_covers_field_boundaries():
    sizes = sorted(len(p) for p in PAYLOADS)
    assert sizes[0] == 0
    assert any(0 < size < 64 for size in sizes)  # short: fields clamp to payload
    assert any(size == 64 for size in sizes)     # exactly the schema extent
    assert sizes[-1] > 64                        # past the schema extent
