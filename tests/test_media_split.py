"""Tests for the media-split strategy: the §4.2 image-compression refinement."""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.http import HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.http.strategies import (
    CTX_RESPONSE_BODY,
    CTX_RESPONSE_HEADERS,
    CTX_RESPONSE_MEDIA,
    MEDIA_SPLIT,
)
from repro.mctls import (
    McTLSClient,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.mctls.contexts import ContextDefinition
from repro.mctls.session import McTLSApplicationData
from repro.tls.connection import TLSConfig
from repro.transport import Chain


class TestSplitting:
    def test_image_body_routed_to_media_context(self):
        response = HttpResponse(
            headers=[("Content-Type", "image/jpeg")], body=b"jpegdata"
        )
        pieces = MEDIA_SPLIT.split_response(response)
        assert [ctx for ctx, _ in pieces] == [CTX_RESPONSE_HEADERS, CTX_RESPONSE_MEDIA]

    def test_html_body_stays_in_document_context(self):
        response = HttpResponse(
            headers=[("Content-Type", "text/html")], body=b"<html/>"
        )
        pieces = MEDIA_SPLIT.split_response(response)
        assert [ctx for ctx, _ in pieces] == [CTX_RESPONSE_HEADERS, CTX_RESPONSE_BODY]

    def test_concatenation_invariant_holds(self):
        for content_type in ("image/png", "text/css", "video/mp4"):
            response = HttpResponse(
                headers=[("Content-Type", content_type)], body=b"body"
            )
            pieces = MEDIA_SPLIT.split_response(response)
            assert b"".join(p for _, p in pieces) == response.encode()


class TestMediaProxySession:
    def test_proxy_sees_images_not_documents(self, ca, server_identity, mbox_identity):
        """Grant the proxy the media context only; HTML stays private."""
        permissions = {CTX_RESPONSE_MEDIA: {1: Permission.READ}}
        contexts = MEDIA_SPLIT.contexts(permissions)
        topology = SessionTopology(
            middleboxes=[MiddleboxInfo(1, mbox_identity.name)], contexts=contexts
        )
        seen = []

        from repro.mctls import McTLSMiddlebox

        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name=server_identity.name,
                dh_group=GROUP_TEST_512,
            ),
            topology=topology,
        )
        server = McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        proxy = McTLSMiddlebox(
            mbox_identity.name,
            TLSConfig(
                identity=mbox_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
            observer=lambda d, ctx, data: seen.append((ctx, data)),
        )

        def handler(request):
            if request.target.endswith(".jpg"):
                return HttpResponse(
                    headers=[("Content-Type", "image/jpeg")], body=b"IMAGE"
                )
            return HttpResponse(headers=[("Content-Type", "text/html")], body=b"HTML")

        client_session = HttpClientSession(client, MEDIA_SPLIT)
        server_session = HttpServerSession(server, handler, MEDIA_SPLIT)
        chain = Chain(client, [proxy], server)
        chain.on_client_event = (
            lambda e: client_session.on_data(e.data)
            if isinstance(e, McTLSApplicationData) else None
        )
        chain.on_server_event = (
            lambda e: server_session.on_data(e.data)
            if isinstance(e, McTLSApplicationData) else None
        )
        client.start_handshake()
        chain.pump()

        got = []
        client_session.request(HttpRequest(target="/photo.jpg"), got.append)
        chain.pump()
        client_session.request(HttpRequest(target="/index.html"), got.append)
        chain.pump()

        assert [r.body for r in got] == [b"IMAGE", b"HTML"]
        # The proxy observed the image bytes and nothing else.
        assert seen == [(CTX_RESPONSE_MEDIA, b"IMAGE")]
