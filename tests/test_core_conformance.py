"""Conformance battery: every protocol stack behind ``repro.core``.

The point of the sans-I/O refactor is that the six stacks (mcTLS,
mcTLS-CKD, mdTLS, SplitTLS, E2E-TLS, NoEncrypt) are interchangeable behind the
:class:`repro.core.Connection` / :class:`repro.core.RelayProcessor`
protocols, and that *both* runtimes (``repro.sockets`` threaded,
``repro.aio`` asyncio) drive them through that interface alone.  This
suite runs one behavioural battery — handshake+echo through a relay,
clean close, garbage-peer survival, server-initiated half-close —
parametrized over (runtime x mode), with zero per-mode branches in the
drivers beyond choosing a context id.

The asyncio runtime is driven through a synchronous facade (a private
event loop advanced by ``run_until_complete``) so both runtimes share
the exact same scenario code.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket

import pytest

import repro.aio as aio
import repro.sockets as sockets
from repro.core import Connection, DriveLoop, RelayProcessor
from repro.core.events import ApplicationData, HandshakeComplete, SessionClosed
from repro.core.instrument import Instruments
from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import Mode, TestBed

LOOPBACK = "127.0.0.1"
MODES = list(Mode)


@pytest.fixture(scope="module")
def bed() -> TestBed:
    return TestBed(key_bits=512, dh_group=GROUP_TEST_512)


def _context_id(mode: Mode) -> int:
    """mcTLS reserves context 0 for the endpoints' handshake channel."""
    return 1 if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS) else 0


# -- runtime drivers --------------------------------------------------------
#
# Each driver exposes: serve(bed, mode, n_relays, handler) -> None,
# connect() -> client facade with handshake/send/recv/close, plus
# endpoint_snapshot() and the runtime's SessionEnded type.  The facades
# are synchronous for both runtimes so scenarios are written once.


class ThreadedDriver:
    name = "threaded"
    SessionEnded = sockets.SessionEnded

    def __init__(self):
        self._servers = []
        self._bed = None
        self._mode = None
        self._topology = None
        self._endpoint = None
        self._dial_port = None

    def serve(self, bed, mode, n_relays, handler, instruments=None):
        self._bed, self._mode = bed, mode
        self._topology = (
            bed.topology(n_relays)
            if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
            else None
        )
        self._endpoint = sockets.EndpointServer(
            (LOOPBACK, 0),
            connection_factory=lambda: bed.make_endpoints(
                mode, topology=self._topology
            )[1],
            handler=handler,
            instruments=instruments,
        ).start()
        self._servers.append(self._endpoint)
        self._dial_port = self._endpoint.port
        for relay_obj in reversed(bed.make_relays(mode, n_relays)):
            relay = sockets.RelayServer(
                (LOOPBACK, 0),
                upstream_addr=(LOOPBACK, self._dial_port),
                relay_factory=lambda r=relay_obj: r,
                instruments=instruments,
            ).start()
            self._servers.append(relay)
            self._dial_port = relay.port

    def echo_handler(self, conn):
        while True:
            event = conn.recv_app_data()
            conn.send(event.data, context_id=event.context_id)

    def send_one_handler(self, payload, context_id):
        def handler(conn):
            conn.send(payload, context_id=context_id)

        return handler

    def connect(self):
        client = self._bed.make_endpoints(self._mode, topology=self._topology)[0]
        return sockets.connect((LOOPBACK, self._dial_port), client)

    def raw_probe(self, data: bytes) -> None:
        with socket.create_connection((LOOPBACK, self._dial_port)) as sock:
            sock.sendall(data)

    def endpoint_snapshot(self):
        return self._endpoint.snapshot()

    def tick(self):
        import time

        time.sleep(0.02)

    def stop(self):
        for server in reversed(self._servers):
            server.stop()


class _AioFacade:
    """Synchronous view of an :class:`repro.aio.AsyncConnection`."""

    def __init__(self, loop, conn):
        self._loop = loop
        self._conn = conn
        self.connection = conn.connection

    def handshake(self, timeout: float = 30.0):
        self._loop.run_until_complete(self._conn.handshake(timeout))

    def send(self, data, context_id=None):
        if context_id is None:
            self._loop.run_until_complete(self._conn.send(data))
        else:
            self._loop.run_until_complete(
                self._conn.send(data, context_id=context_id)
            )

    def recv_app_data(self, timeout: float = 30.0):
        return self._loop.run_until_complete(self._conn.recv_app_data(timeout))

    def flush(self):
        self._loop.run_until_complete(self._conn.flush())

    def close(self):
        self._loop.run_until_complete(self._conn.close())


class AioDriver:
    name = "aio"
    SessionEnded = aio.SessionEnded

    def __init__(self):
        self._loop = asyncio.new_event_loop()
        self._servers = []
        self._bed = None
        self._mode = None
        self._topology = None
        self._endpoint = None
        self._dial_port = None

    def serve(self, bed, mode, n_relays, handler, instruments=None):
        self._bed, self._mode = bed, mode
        self._topology = (
            bed.topology(n_relays)
            if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
            else None
        )
        self._endpoint = aio.AsyncEndpointServer(
            (LOOPBACK, 0),
            connection_factory=lambda: bed.make_endpoints(
                mode, topology=self._topology
            )[1],
            handler=handler,
            instruments=instruments,
        )
        self._loop.run_until_complete(self._endpoint.start())
        self._servers.append(self._endpoint)
        self._dial_port = self._endpoint.port
        for relay_obj in reversed(bed.make_relays(mode, n_relays)):
            relay = aio.AsyncRelayServer(
                (LOOPBACK, 0),
                upstream_addr=(LOOPBACK, self._dial_port),
                relay_factory=lambda r=relay_obj: r,
                instruments=instruments,
            )
            self._loop.run_until_complete(relay.start())
            self._servers.append(relay)
            self._dial_port = relay.port

    def echo_handler(self, conn):
        async def _run():
            while True:
                event = await conn.recv_app_data()
                await conn.send(event.data, context_id=event.context_id)

        return _run()

    def send_one_handler(self, payload, context_id):
        async def handler(conn):
            await conn.send(payload, context_id=context_id)

        return handler

    def connect(self):
        client = self._bed.make_endpoints(self._mode, topology=self._topology)[0]
        conn = self._loop.run_until_complete(
            aio.connect((LOOPBACK, self._dial_port), client)
        )
        return _AioFacade(self._loop, conn)

    def raw_probe(self, data: bytes) -> None:
        # A misbehaving peer doesn't use asyncio; a blocking socket from
        # the test thread is exactly what the server must survive.
        with socket.create_connection((LOOPBACK, self._dial_port)) as sock:
            sock.sendall(data)

    def endpoint_snapshot(self):
        return self._endpoint.snapshot()

    def tick(self):
        # The private loop only runs inside run_until_complete; give the
        # server tasks a slice so they can observe closes and unwind.
        self._loop.run_until_complete(asyncio.sleep(0.02))

    def stop(self):
        try:
            for server in reversed(self._servers):
                self._loop.run_until_complete(server.stop())
        finally:
            self._loop.close()


class MpDriver:
    """Third axis: the multi-process sharded runtime.

    The endpoint is a 2-worker :class:`repro.mp.ClusterEndpointServer`
    (forked children each running the asyncio server); relays run
    thread-per-connection in the parent, and the client facade is the
    same blocking-socket one as :class:`ThreadedDriver` — so the
    scenarios exercise a client whose connections land on whichever
    worker the kernel picks.
    """

    name = "mp"
    SessionEnded = sockets.SessionEnded

    def __init__(self):
        self._relays = []
        self._cluster = None
        self._bed = None
        self._mode = None
        self._topology = None
        self._dial_port = None

    def serve(self, bed, mode, n_relays, handler, instruments=None):
        from repro.mp import ClusterEndpointServer

        self._bed, self._mode = bed, mode
        self._topology = (
            bed.topology(n_relays)
            if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
            else None
        )
        # Fork first, thread later: the relay threads must not exist in
        # the parent when the workers fork off.
        self._cluster = ClusterEndpointServer(
            (LOOPBACK, 0),
            connection_factory=lambda: bed.make_endpoints(
                mode, topology=self._topology
            )[1],
            handler=handler,
            workers=2,
        ).start()
        self._dial_port = self._cluster.port
        for relay_obj in reversed(bed.make_relays(mode, n_relays)):
            relay = sockets.RelayServer(
                (LOOPBACK, 0),
                upstream_addr=(LOOPBACK, self._dial_port),
                relay_factory=lambda r=relay_obj: r,
                instruments=instruments,
            ).start()
            self._relays.append(relay)
            self._dial_port = relay.port

    def echo_handler(self, conn):
        async def _run():
            while True:
                event = await conn.recv_app_data()
                await conn.send(event.data, context_id=event.context_id)

        return _run()

    def send_one_handler(self, payload, context_id):
        async def handler(conn):
            await conn.send(payload, context_id=context_id)

        return handler

    def connect(self):
        client = self._bed.make_endpoints(self._mode, topology=self._topology)[0]
        return sockets.connect((LOOPBACK, self._dial_port), client)

    def raw_probe(self, data: bytes) -> None:
        with socket.create_connection((LOOPBACK, self._dial_port)) as sock:
            sock.sendall(data)

    def endpoint_snapshot(self):
        return self._cluster.snapshot()

    def tick(self):
        import time

        time.sleep(0.02)

    def stop(self):
        for relay in reversed(self._relays):
            relay.stop()
        if self._cluster is not None:
            self._cluster.stop()


DRIVERS = [ThreadedDriver, AioDriver, MpDriver]

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(params=DRIVERS, ids=lambda d: d.name)
def driver(request):
    if request.param is MpDriver and not HAS_FORK:
        pytest.skip("sharded runtime requires the fork start method")
    drv = request.param()
    yield drv
    drv.stop()


def _settled_snapshot(driver, ready, timeout: float = 5.0):
    """Poll the endpoint snapshot until ``ready(snap)`` or timeout.

    Server-side accounting lags the client's view of a close (the
    handler thread/task unwinds asynchronously in both runtimes).
    """
    import time

    deadline = time.monotonic() + timeout
    while True:
        snap = driver.endpoint_snapshot()
        if ready(snap) or time.monotonic() >= deadline:
            return snap
        driver.tick()


# -- the battery ------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
class TestConformance:
    def test_interface_and_echo_through_relay(self, driver, bed, mode):
        """Handshake + application echo through one in-path relay, with
        the endpoints checked against the formal protocol."""
        driver.serve(bed, mode, 1, driver.echo_handler)
        client = driver.connect()
        assert isinstance(client.connection, Connection)
        client.handshake()
        assert client.connection.handshake_complete
        ctx = _context_id(mode)
        client.send(b"conform-ping", context_id=ctx)
        event = client.recv_app_data()
        assert isinstance(event, ApplicationData)
        assert event.data == b"conform-ping"
        client.close()

    def test_clean_close_counts_no_errors(self, driver, bed, mode):
        driver.serve(bed, mode, 0, driver.echo_handler)
        client = driver.connect()
        client.handshake()
        client.send(b"x", context_id=_context_id(mode))
        assert client.recv_app_data().data == b"x"
        client.close()
        second = driver.connect()
        second.handshake()
        second.close()
        # The server-side handlers observe the closes asynchronously;
        # wait for both sessions to fully unwind before asserting.
        snap = _settled_snapshot(
            driver, lambda s: s["handshakes_ok"] == 2 and s["active"] == 0
        )
        assert snap["handshakes_ok"] == 2
        assert snap["errors"] == 0

    def test_survives_garbage_peer(self, driver, bed, mode):
        """A peer streaming junk must not take the server down; the next
        well-behaved session completes normally."""
        driver.serve(bed, mode, 0, driver.echo_handler)
        driver.raw_probe(b"\x99" * 256)
        client = driver.connect()
        client.handshake()
        ctx = _context_id(mode)
        client.send(b"still-alive", context_id=ctx)
        assert client.recv_app_data().data == b"still-alive"
        client.close()

    def test_batched_writer_single_flush(self, driver, bed, mode):
        """Batched-writer axis: queue a burst of records on the sans-I/O
        connection, then flush ONCE — the whole burst leaves in a single
        scatter-gather write and crosses a relay as one multi-record
        flight.  The echoed byte stream must come back intact and in
        order (record-framed stacks also preserve boundaries; NoEncrypt
        is a raw TCP stream, so the shared contract is the byte
        stream)."""
        driver.serve(bed, mode, 1, driver.echo_handler)
        client = driver.connect()
        client.handshake()
        ctx = _context_id(mode)
        payloads = [b"burst-%d" % i for i in range(6)]
        for payload in payloads:
            client.connection.send_application_data(payload, context_id=ctx)
        client.flush()
        expected = b"".join(payloads)
        got = b""
        while len(got) < len(expected):
            got += client.recv_app_data().data
        assert got == expected
        client.close()

    def test_server_half_close(self, driver, bed, mode):
        """Server sends one message and ends the session; the client
        reads the message, then the next read raises SessionEnded —
        identical behaviour on both runtimes (satellite fix)."""
        payload = b"parting-gift"
        driver.serve(
            bed, mode, 0,
            driver.send_one_handler(payload, _context_id(mode)),
        )
        client = driver.connect()
        client.handshake()
        assert client.recv_app_data().data == payload
        with pytest.raises(driver.SessionEnded):
            client.recv_app_data()


# -- compact-framing axis ---------------------------------------------------
#
# The same scenarios again on the stacks that negotiate record framing,
# with the client offering the compact framing plus a field schema.  The
# negotiated record geometry must be invisible to the runtimes: the
# drivers are byte-identical to the default-framing battery above.

COMPACT_MODES = [Mode.MCTLS, Mode.MCTLS_CKD]


@pytest.fixture(scope="module")
def compact_bed() -> TestBed:
    from repro.mctls.contexts import FieldDef, FieldSchema

    schema = FieldSchema(
        context_id=1,
        fields=(FieldDef("hdr", 0, 8), FieldDef("body", 8, 64)),
        write_grants={"hdr": (1,)},
    )
    return TestBed(
        key_bits=512,
        dh_group=GROUP_TEST_512,
        framing="mctls-compact",
        field_schemas=(schema,),
    )


@pytest.mark.parametrize("mode", COMPACT_MODES, ids=lambda m: m.value)
class TestCompactFramingConformance:
    def test_echo_through_relay_compact(self, driver, compact_bed, mode):
        driver.serve(compact_bed, mode, 1, driver.echo_handler)
        client = driver.connect()
        client.handshake()
        assert client.connection.negotiated_framing.name == "mctls-compact"
        client.send(b"compact-ping", context_id=1)
        assert client.recv_app_data().data == b"compact-ping"
        client.close()

    def test_batched_writer_single_flush_compact(self, driver, compact_bed, mode):
        driver.serve(compact_bed, mode, 1, driver.echo_handler)
        client = driver.connect()
        client.handshake()
        payloads = [b"compact-%d" % i for i in range(4)]
        for payload in payloads:
            client.connection.send_application_data(payload, context_id=1)
        client.flush()
        expected = b"".join(payloads)
        got = b""
        while len(got) < len(expected):
            got += client.recv_app_data().data
        assert got == expected
        client.close()


# -- cross-cutting checks (no parametrization) ------------------------------


def test_all_stacks_satisfy_protocols(bed):
    from repro.tools.check_interface import check_interfaces

    checked = check_interfaces(bed)
    # 6 modes x (client + server + relay) = 18 objects.
    assert len(checked) == 18


def test_instruments_aggregate_across_runtime(bed):
    instruments = Instruments()
    driver = ThreadedDriver()
    try:
        driver.serve(bed, Mode.MCTLS, 1, driver.echo_handler,
                     instruments=instruments)
        client = driver.connect()
        client.connection.instruments = instruments
        client.handshake()
        client.send(b"counted", context_id=1)
        client.recv_app_data()
        client.close()
    finally:
        driver.stop()
    snap = instruments.snapshot()
    assert snap.get("handshake.complete", 0) >= 2  # client + server
    assert snap.get("relay.records", 0) >= 1
    assert snap.get("context.1.bytes_out", 0) >= len(b"counted")


def test_driveloop_event_vocabulary(bed):
    """In-memory DriveLoop over the mcTLS stack produces the shared
    event vocabulary with the hop tap seeing both directions."""
    topology = bed.topology(1)
    client, server = bed.make_endpoints(Mode.MCTLS, topology=topology)
    relays = bed.make_relays(Mode.MCTLS, 1)
    hops = []
    loop = DriveLoop(
        client, relays, server,
        on_hop=lambda hop, direction, data: hops.append((hop, direction)),
    )
    client.start_handshake()
    events = loop.pump()
    assert any(isinstance(e, HandshakeComplete) for e in events)
    assert client.handshake_complete and server.handshake_complete

    client.send_application_data(b"vocab", context_id=1)
    events = loop.pump()
    data_events = [e for e in events if isinstance(e, ApplicationData)]
    assert data_events and data_events[0].data == b"vocab"
    assert data_events[0].context_id == 1

    client.close()
    events = loop.pump()
    assert any(isinstance(e, SessionClosed) for e in events)
    assert {(0, "c2s"), (0, "s2c"), (1, "c2s"), (1, "s2c")} <= set(hops)
