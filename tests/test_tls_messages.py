"""Codec tests for TLS and mcTLS handshake messages + the key schedule."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.certs import Certificate
from repro.mctls import messages as mm
from repro.tls import keyschedule as ks
from repro.tls import messages as msgs
from repro.wire import DecodeError


class TestClientHello:
    def test_roundtrip_with_extensions(self):
        hello = msgs.ClientHello(
            random=b"r" * 32,
            cipher_suites=[0x0067, 0xFF67],
            session_id=b"sess",
            extensions=[(0xFF01, b"topo-bytes"), (0xFF03, b"\x01")],
        )
        decoded = msgs.ClientHello.decode(hello.encode())
        assert decoded.random == hello.random
        assert decoded.cipher_suites == [0x0067, 0xFF67]
        assert decoded.session_id == b"sess"
        assert decoded.find_extension(0xFF01) == b"topo-bytes"
        assert decoded.find_extension(0xFF03) == b"\x01"
        assert decoded.find_extension(0x9999) is None

    def test_roundtrip_no_extensions(self):
        hello = msgs.ClientHello(random=b"r" * 32, cipher_suites=[1])
        decoded = msgs.ClientHello.decode(hello.encode())
        assert decoded.extensions == []

    def test_exact_reencoding(self):
        """Transcript hashing requires byte-exact round trips."""
        hello = msgs.ClientHello(
            random=b"x" * 32, cipher_suites=[7], extensions=[(1, b"a")]
        )
        assert msgs.ClientHello.decode(hello.encode()).encode() == hello.encode()

    def test_trailing_bytes_rejected(self):
        hello = msgs.ClientHello(random=b"r" * 32, cipher_suites=[1])
        with pytest.raises(DecodeError):
            msgs.ClientHello.decode(hello.encode() + b"\x00")


class TestServerMessages:
    def test_server_hello_roundtrip(self):
        hello = msgs.ServerHello(
            random=b"s" * 32, cipher_suite=0x0067, extensions=[(0xFF02, b"\x00")]
        )
        decoded = msgs.ServerHello.decode(hello.encode())
        assert decoded.cipher_suite == 0x0067
        assert decoded.find_extension(0xFF02) == b"\x00"

    def test_server_key_exchange_roundtrip(self):
        kx = msgs.ServerKeyExchange(
            dh_p=0xFFFF1, dh_g=2, dh_public=b"\x12" * 64, signature=b"\x34" * 64
        )
        decoded = msgs.ServerKeyExchange.decode(kx.encode())
        assert (decoded.dh_p, decoded.dh_g) == (0xFFFF1, 2)
        assert decoded.dh_public == kx.dh_public
        assert decoded.signature == kx.signature

    def test_hello_done_must_be_empty(self):
        assert msgs.ServerHelloDone.decode(b"") is not None
        with pytest.raises(DecodeError):
            msgs.ServerHelloDone.decode(b"\x00")

    def test_finished_length_check(self):
        assert msgs.Finished.decode(b"v" * 12).verify_data == b"v" * 12
        with pytest.raises(DecodeError):
            msgs.Finished.decode(b"v" * 13)


class TestHandshakeFraming:
    def test_frame_and_buffer(self):
        buffer = msgs.HandshakeBuffer()
        framed = msgs.frame(msgs.CLIENT_HELLO, b"body-bytes")
        buffer.feed(framed[:3])
        assert buffer.next_message() is None
        buffer.feed(framed[3:])
        msg_type, body, raw = buffer.next_message()
        assert (msg_type, body, raw) == (msgs.CLIENT_HELLO, b"body-bytes", framed)
        assert not buffer.has_partial

    def test_multiple_messages(self):
        buffer = msgs.HandshakeBuffer()
        buffer.feed(msgs.frame(1, b"a") + msgs.frame(2, b"bb"))
        assert buffer.next_message()[0] == 1
        assert buffer.next_message()[0] == 2
        assert buffer.next_message() is None

    def test_frame_too_long(self):
        with pytest.raises(ValueError):
            msgs.frame(1, b"x" * (1 << 24))


class TestMcTLSMessages:
    def test_middlebox_hello_roundtrip(self):
        hello = mm.MiddleboxHello(mbox_id=3, random=b"m" * 32)
        decoded = mm.MiddleboxHello.decode(hello.encode())
        assert (decoded.mbox_id, decoded.random) == (3, b"m" * 32)

    def test_key_exchange_roundtrip(self):
        ke = mm.MiddleboxKeyExchange(
            mbox_id=1, direction=mm.TOWARD_SERVER, dh_public=b"p" * 32, signature=b"s" * 16
        )
        decoded = mm.MiddleboxKeyExchange.decode(ke.encode())
        assert decoded.direction == mm.TOWARD_SERVER
        assert decoded.dh_public == b"p" * 32

    def test_key_exchange_invalid_direction(self):
        ke = mm.MiddleboxKeyExchange(
            mbox_id=1, direction=mm.TOWARD_CLIENT, dh_public=b"p", signature=b"s"
        )
        raw = bytearray(ke.encode())
        raw[1] = 9
        with pytest.raises(DecodeError):
            mm.MiddleboxKeyExchange.decode(bytes(raw))

    def test_signed_bytes_bind_direction_and_randoms(self):
        ke = mm.MiddleboxKeyExchange(
            mbox_id=1, direction=mm.TOWARD_CLIENT, dh_public=b"p" * 8, signature=b""
        )
        a = ke.signed_bytes(b"m" * 32, b"c" * 32)
        b = ke.signed_bytes(b"m" * 32, b"s" * 32)
        assert a != b

    def test_key_material_roundtrip(self):
        mkm = mm.MiddleboxKeyMaterial(sender=mm.SENDER_CLIENT, target=2, sealed=b"blob")
        decoded = mm.MiddleboxKeyMaterial.decode(mkm.encode())
        assert (decoded.sender, decoded.target, decoded.sealed) == (1, 2, b"blob")

    def test_key_material_invalid_sender(self):
        raw = bytearray(
            mm.MiddleboxKeyMaterial(sender=1, target=2, sealed=b"x").encode()
        )
        raw[0] = 9
        with pytest.raises(DecodeError):
            mm.MiddleboxKeyMaterial.decode(bytes(raw))

    def test_key_shares_roundtrip(self):
        shares = [
            mm.ContextKeyShare(context_id=1, reader_material=b"r" * 32),
            mm.ContextKeyShare(
                context_id=2, reader_material=b"R" * 32, writer_material=b"w" * 32
            ),
        ]
        decoded = mm.decode_key_shares(mm.encode_key_shares(shares))
        assert decoded == shares


class TestDecodeRobustness:
    """Random bytes must raise DecodeError, never crash differently."""

    CODECS = [
        msgs.ClientHello.decode,
        msgs.ServerHello.decode,
        msgs.CertificateMessage.decode,
        msgs.ServerKeyExchange.decode,
        msgs.ClientKeyExchange.decode,
        mm.MiddleboxHello.decode,
        mm.MiddleboxCertificateMessage.decode,
        mm.MiddleboxKeyExchange.decode,
        mm.MiddleboxKeyMaterial.decode,
        mm.decode_key_shares,
    ]

    @given(st.binary(max_size=200))
    @settings(max_examples=60)
    def test_fuzz_decoders(self, data):
        from repro.crypto.certs import CertificateError
        from repro.crypto.rsa import RSAError

        for decode in self.CODECS:
            try:
                decode(data)
            except (DecodeError, CertificateError, RSAError):
                pass  # structured rejection is the contract


class TestKeySchedule:
    def test_master_secret_is_48_bytes(self):
        secret = ks.master_secret(b"premaster", b"c" * 32, b"s" * 32)
        assert len(secret) == ks.MASTER_SECRET_LEN

    def test_key_block_partition(self):
        block = ks.derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32, 32, 16)
        keys = [
            block.client_mac_key,
            block.server_mac_key,
            block.client_enc_key,
            block.server_enc_key,
        ]
        assert [len(k) for k in keys] == [32, 32, 16, 16]
        assert len(set(keys)) == 4  # all distinct

    def test_seed_order_flip(self):
        """Key expansion seeds server||client (RFC 5246 §6.3), so swapping
        randoms changes the block."""
        a = ks.derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32, 32, 16)
        b = ks.derive_key_block(b"m" * 48, b"s" * 32, b"c" * 32, 32, 16)
        assert a != b

    def test_finished_labels_differ(self):
        client = ks.finished_verify_data(b"m" * 48, ks.LABEL_CLIENT_FINISHED, b"h" * 32)
        server = ks.finished_verify_data(b"m" * 48, ks.LABEL_SERVER_FINISHED, b"h" * 32)
        assert client != server and len(client) == 12


class TestServerHelloSessionId:
    """Wire-level regression: the ServerHello session_id is either empty,
    a freshly generated id, or (on resumption) an exact echo — never a
    reflection of whatever the client proposed (RFC 5246 §7.4.1.3)."""

    def _server_hello_from(self, wire: bytes) -> msgs.ServerHello:
        from repro.tls.record import HANDSHAKE, RecordLayer

        records = RecordLayer()
        records.feed(wire)
        buf = msgs.HandshakeBuffer()
        for content_type, payload in records.read_all():
            if content_type == HANDSHAKE:
                buf.feed(payload)
        while True:
            item = buf.next_message()
            assert item is not None, "no ServerHello in wire bytes"
            msg_type, body, _raw = item
            if msg_type == msgs.SERVER_HELLO:
                return msgs.ServerHello.decode(body)

    def _client_with_bogus_session(self, client_config, suite_id):
        from repro.tls.client import TLSClient
        from repro.tls.sessioncache import ClientSessionStore, TLSSessionState

        store = ClientSessionStore()
        store.put(
            "server.example",
            TLSSessionState(
                session_id=b"\x01" * 32,
                master_secret=b"m" * 48,
                cipher_suite_id=suite_id,
                server_name="server.example",
            ),
        )
        return TLSClient(client_config, session_store=store)

    def test_session_id_wire_roundtrip(self):
        for session_id in (b"", b"\xaa" * 32):
            hello = msgs.ServerHello(
                random=b"s" * 32, cipher_suite=0x0067, session_id=session_id
            )
            decoded = msgs.ServerHello.decode(hello.encode())
            assert decoded.session_id == session_id
            assert decoded.encode() == hello.encode()

    def test_cacheless_server_sends_empty_session_id(self, client_config, server_config):
        from repro.tls.server import TLSServer

        suite_id = client_config.cipher_suites[0].suite_id
        client = self._client_with_bogus_session(client_config, suite_id)
        client.start_handshake()
        server = TLSServer(server_config)
        server.receive_bytes(client.data_to_send())
        hello = self._server_hello_from(server.data_to_send())
        assert hello.session_id == b""

    def test_full_handshake_never_echoes_proposed_id(self, client_config, server_config):
        from repro.tls.server import TLSServer
        from repro.tls.sessioncache import SessionCache

        suite_id = client_config.cipher_suites[0].suite_id
        client = self._client_with_bogus_session(client_config, suite_id)
        client.start_handshake()
        server = TLSServer(server_config, session_cache=SessionCache())
        server.receive_bytes(client.data_to_send())
        hello = self._server_hello_from(server.data_to_send())
        # Unknown proposed id: the server issues a FRESH id, never an echo.
        assert len(hello.session_id) == 32
        assert hello.session_id != b"\x01" * 32

    def test_resumed_handshake_echoes_exactly(self, client_config, server_config):
        from repro.tls.client import TLSClient
        from repro.tls.server import TLSServer
        from repro.tls.sessioncache import ClientSessionStore, SessionCache
        from repro.transport import pump

        cache = SessionCache()
        store = ClientSessionStore()
        client = TLSClient(client_config, session_store=store)
        server = TLSServer(server_config, session_cache=cache)
        client.start_handshake()
        pump(client, server)
        assert client.handshake_complete and server.handshake_complete
        cached_id = store.get("server.example").session_id

        client2 = TLSClient(client_config, session_store=store)
        client2.start_handshake()
        server2 = TLSServer(server_config, session_cache=cache)
        server2.receive_bytes(client2.data_to_send())
        hello = self._server_hello_from(server2.data_to_send())
        assert hello.session_id == cached_id
