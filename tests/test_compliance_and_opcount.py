"""Tests for the Table 4 compliance data and the op-counter substrate."""

import threading

import pytest

from repro.crypto.opcount import (
    CATEGORIES,
    OpCounter,
    count_op,
    counting,
    current_counter,
)
from repro.mctls.compliance import (
    TABLE4,
    Compliance,
    compliance_matrix,
    mctls_meets_all_requirements,
)


class TestCompliance:
    def test_mctls_full_compliance(self):
        assert mctls_meets_all_requirements()

    def test_six_proposals(self):
        names = [row.name for row in TABLE4]
        assert names == [
            "mcTLS",
            "Custom Certificate",
            "Proxy Certificate Flag",
            "Session Key Out-of-Band",
            "Custom Browser",
            "Proxy Server Extension",
        ]

    def test_no_competitor_fully_compliant(self):
        for row in TABLE4[1:]:
            assert any(c is not Compliance.FULL for c in row.cells()), row.name

    def test_custom_certificate_fails_everything(self):
        row = next(r for r in TABLE4 if r.name == "Custom Certificate")
        assert all(c is Compliance.NONE for c in row.cells())

    def test_session_key_oob_matches_paper(self):
        """Paper: (3) satisfies R1 and R2 fully, R3 partially."""
        row = next(r for r in TABLE4 if r.name == "Session Key Out-of-Band")
        assert row.r1 is Compliance.FULL
        assert row.r2 is Compliance.FULL
        assert row.r3 is Compliance.PARTIAL
        assert row.r4 is Compliance.NONE

    def test_matrix_rendering(self):
        matrix = compliance_matrix()
        assert matrix["mcTLS"] == ["●"] * 5
        assert len(matrix) == 6

    def test_rationales_present(self):
        assert all(row.rationale for row in TABLE4)


class TestOpCounter:
    def test_counting_context(self):
        with counting() as counter:
            count_op("hash")
            count_op("key_gen", 3)
        assert counter.get("hash") == 1
        assert counter.get("key_gen") == 3

    def test_no_active_counter_is_noop(self):
        assert current_counter() is None
        count_op("hash")  # must not raise

    def test_nested_counters(self):
        with counting() as outer:
            count_op("hash")
            with counting() as inner:
                count_op("hash")
            count_op("hash")
        assert outer.get("hash") == 2
        assert inner.get("hash") == 1

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().add("nonsense")

    def test_subtraction(self):
        a, b = OpCounter(), OpCounter()
        a.add("hash", 5)
        b.add("hash", 2)
        assert (a - b).get("hash") == 3

    def test_reset_and_snapshot(self):
        counter = OpCounter()
        counter.add("sym_encrypt", 2)
        snap = counter.snapshot()
        counter.reset()
        assert snap["sym_encrypt"] == 2
        assert counter.get("sym_encrypt") == 0

    def test_thread_isolation(self):
        """Counters are thread-local: a worker thread's ops don't leak."""
        results = {}

        def worker():
            with counting() as counter:
                count_op("hash", 7)
                results["worker"] = counter.get("hash")

        with counting() as main_counter:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            count_op("hash")
        assert results["worker"] == 7
        assert main_counter.get("hash") == 1

    def test_primitives_report(self):
        """The crypto layer actually reports into the active counter."""
        from repro.crypto.dh import GROUP_TEST_512
        from repro.crypto.prf import prf

        keypair = GROUP_TEST_512.generate_keypair()
        peer = GROUP_TEST_512.generate_keypair()
        with counting() as counter:
            keypair.combine(peer.public)
            prf(b"s", b"l", b"seed", 32)
        assert counter.get("secret_comp") == 1
        assert counter.get("hash") == 1
