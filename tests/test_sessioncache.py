"""Seeded property tests for the bounded LRU session cache.

A reference model (plain list, oldest-first) replays the same random
operation sequence as the real :class:`SessionCache`; after every step
the two must agree on contents, lookup results and every counter.  Two
fixed seeds make the sequences deterministic yet varied.
"""

from __future__ import annotations

import random

import pytest

from repro.tls.sessioncache import (
    SESSION_ID_LEN,
    ClientSessionStore,
    SessionCache,
    TLSSessionState,
    new_session_id,
)

SEEDS = (1234, 98765)

CAPACITY = 4
TTL = 10.0


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class ModelCache:
    """Reference semantics: list of [key, value, stored_at], LRU first."""

    def __init__(self, capacity: float, ttl: float, clock: FakeClock) -> None:
        self.items: list = []
        self.capacity = capacity
        self.ttl = ttl
        self.clock = clock
        self.stats = {
            "hits": 0,
            "misses": 0,
            "expirations": 0,
            "evictions": 0,
            "stores": 0,
            "overwrites": 0,
            "invalidations": 0,
        }

    def _index(self, key):
        for i, (k, _, _) in enumerate(self.items):
            if k == key:
                return i
        return None

    def get(self, key):
        i = self._index(key)
        if i is None:
            self.stats["misses"] += 1
            return None
        k, v, t = self.items[i]
        if self.clock() - t > self.ttl:
            del self.items[i]
            self.stats["expirations"] += 1
            self.stats["misses"] += 1
            return None
        self.items.append(self.items.pop(i))
        self.stats["hits"] += 1
        return v

    def put(self, key, value):
        i = self._index(key)
        if i is not None:
            del self.items[i]
            self.stats["overwrites"] += 1
        self.items.append([key, value, self.clock()])
        self.stats["stores"] += 1
        while len(self.items) > self.capacity:
            self.items.pop(0)
            self.stats["evictions"] += 1

    def invalidate(self, key):
        i = self._index(key)
        if i is None:
            return False
        del self.items[i]
        self.stats["invalidations"] += 1
        return True

    def purge_expired(self):
        expired = [it for it in self.items if self.clock() - it[2] > self.ttl]
        for it in expired:
            self.items.remove(it)
            self.stats["expirations"] += 1
        return len(expired)

    def contains(self, key):
        i = self._index(key)
        return i is not None and self.clock() - self.items[i][2] <= self.ttl


def check_invariant(cache: SessionCache) -> None:
    s = cache.stats
    assert s.stores == (
        len(cache) + s.evictions + s.expirations + s.invalidations + s.overwrites
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_op_sequence_matches_model(seed):
    rng = random.Random(seed)
    clock = FakeClock()
    cache = SessionCache(capacity=CAPACITY, ttl=TTL, clock=clock)
    model = ModelCache(CAPACITY, TTL, clock)
    keys = [f"key-{i}" for i in range(8)]
    lookups = 0

    for step in range(600):
        op = rng.random()
        key = rng.choice(keys)
        if op < 0.40:
            value = f"value-{step}"
            cache.put(key, value)
            model.put(key, value)
        elif op < 0.70:
            assert cache.get(key) == model.get(key)
            lookups += 1
        elif op < 0.80:
            assert cache.invalidate(key) == model.invalidate(key)
        elif op < 0.95:
            clock.now += rng.uniform(0.0, TTL / 2)
        else:
            assert cache.purge_expired() == model.purge_expired()

        # LRU bound is never exceeded, even transiently observable.
        assert len(cache) <= CAPACITY
        assert len(cache) == len(model.items)
        assert cache.stats.snapshot() == model.stats
        assert cache.stats.lookups == lookups
        assert (key in cache) == model.contains(key)
        check_invariant(cache)


@pytest.mark.parametrize("seed", SEEDS)
def test_ttl_expiry_is_monotonic(seed):
    """Once an entry has expired it can never become resumable again."""
    rng = random.Random(seed)
    clock = FakeClock()
    cache = SessionCache(capacity=8, ttl=TTL, clock=clock)
    cache.put("k", "v")
    # Within the TTL: always a hit, regardless of how we step time.
    while clock.now <= TTL:
        assert cache.get("k") == "v"
        clock.now += rng.uniform(0.1, 2.0)
    # Past the TTL: a miss forever after.
    for _ in range(10):
        assert cache.get("k") is None
        clock.now += rng.uniform(0.0, 5.0)
    assert cache.stats.expirations == 1
    assert cache.stats.misses == 10
    check_invariant(cache)


def test_lru_eviction_order():
    clock = FakeClock()
    cache = SessionCache(capacity=2, ttl=TTL, clock=clock)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes recency: b is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats.evictions == 1
    check_invariant(cache)


def test_overwrite_refreshes_ttl():
    clock = FakeClock()
    cache = SessionCache(capacity=2, ttl=TTL, clock=clock)
    cache.put("k", "old")
    clock.now = TTL - 1
    cache.put("k", "new")
    clock.now = TTL + 5  # old entry would have expired; refreshed one has not
    assert cache.get("k") == "new"
    assert cache.stats.overwrites == 1
    check_invariant(cache)


def test_clear_counts_invalidations():
    cache = SessionCache(capacity=4, ttl=TTL, clock=FakeClock())
    for i in range(3):
        cache.put(i, i)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.invalidations == 3
    check_invariant(cache)


def test_constructor_validation():
    with pytest.raises(ValueError):
        SessionCache(capacity=0)
    with pytest.raises(ValueError):
        SessionCache(ttl=0)


def test_new_session_id_shape():
    ids = {new_session_id() for _ in range(8)}
    assert all(len(i) == SESSION_ID_LEN for i in ids)
    assert len(ids) == 8  # overwhelmingly unlikely to collide


def test_client_store_is_a_session_cache():
    store = ClientSessionStore(clock=FakeClock())
    state = TLSSessionState(
        session_id=b"\x02" * 32, master_secret=b"m" * 48, cipher_suite_id=0x67
    )
    store.put("server.example", state)
    assert store.get("server.example") is state
