"""The mdTLS delegation stack: warrants, handshake, resumption, traces.

mdTLS replaces mcTLS's per-middlebox key distribution with signed,
context-scoped **warrants**: each endpoint signs one warrant per
middlebox, the middlebox proves possession of the warranted key by
signing its key exchange, and context keys flow from the server alone,
sealed to the warranted certificate key.  These tests pin down:

* the delegation handshake end to end, with mixed per-context
  permissions clamped to the intersection of both warrants;
* the warrant codec and every verification failure class
  (forged / expired / widened / missing);
* "the server can say no" via ``topology_policy`` under delegation;
* resumption (stateful and stateless) sealing the warranted topology —
  including the **never-widen** property under deliberate ticket
  corruption, both at the client store and by an on-path tamperer;
* ``repro.tools.check_interface`` flagging a stack that drops part of
  the formal ``repro.core`` surface;
* :func:`repro.trace.describe_stream` annotating the new handshake
  messages.
"""

from __future__ import annotations

import pytest

from repro.crypto.certs import Identity
from repro.crypto.dh import GROUP_TEST_512
from repro.faults import TamperPlan, TamperProxy
from repro.faults.mutations import FlipHandshakeBit
from repro.mctls import (
    ContextDefinition,
    MiddleboxInfo,
    Permission,
    SessionTopology,
    restrict_topology,
)
from repro.mctls import keys as mk
from repro.mctls import session as ms
from repro.mctls.session import McTLSApplicationData
from repro.mdtls import MdTLSClient, MdTLSMiddlebox, MdTLSServer
from repro.mdtls import warrants as mdw
from repro.tls import messages as tls_msgs
from repro.tls.connection import TLSConfig, TLSError
from repro.tls.sessioncache import ClientSessionStore, SessionCache
from repro.tls.tickets import ClientTicket, TicketKeyManager
from repro.transport import Chain

RANDOM_A = bytes(range(32))
RANDOM_B = bytes(range(32, 64))


@pytest.fixture(scope="module")
def client_identity(ca) -> Identity:
    return Identity.issued_by(ca, "client.example", key_bits=512)


def _contexts_mixed():
    """Two contexts, two middleboxes, asymmetric grants."""
    return [
        ContextDefinition(1, "headers", {1: Permission.WRITE, 2: Permission.READ}),
        ContextDefinition(2, "body", {1: Permission.READ}),
    ]


def build_mdtls(
    ca,
    server_identity,
    client_identity,
    mbox_identities,
    contexts,
    *,
    topology_policy=None,
    session_store=None,
    session_cache=None,
    ticket_store=None,
    ticket_manager=None,
    extra_relays=(),
):
    """Wire a client ⇄ middleboxes ⇄ server mdTLS session and pump the
    handshake; mirrors :func:`tests.mctls_helpers.build_session`."""
    middleboxes = [
        MiddleboxInfo(i + 1, ident.name) for i, ident in enumerate(mbox_identities)
    ]
    topology = SessionTopology(middleboxes=middleboxes, contexts=contexts)
    client = MdTLSClient(
        TLSConfig(
            identity=client_identity,
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
        ),
        topology=topology,
        session_store=session_store,
        ticket_store=ticket_store,
    )
    server = MdTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
        topology_policy=topology_policy,
        session_cache=session_cache,
        ticket_manager=ticket_manager,
    )
    mboxes = [
        MdTLSMiddlebox(
            ident.name,
            TLSConfig(
                identity=ident,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        for ident in mbox_identities
    ]
    chain = Chain(client, list(mboxes) + list(extra_relays), server)
    client.start_handshake()
    chain.pump()
    return client, mboxes, server, chain


# -- the delegation handshake ----------------------------------------------


class TestDelegationHandshake:
    def test_mixed_permissions_end_to_end(
        self, ca, server_identity, client_identity, mbox_identity, mbox2_identity
    ):
        client, mboxes, server, chain = build_mdtls(
            ca,
            server_identity,
            client_identity,
            [mbox_identity, mbox2_identity],
            _contexts_mixed(),
        )
        assert client.handshake_complete and server.handshake_complete
        assert all(m.handshake_complete for m in mboxes)
        assert client.mode is ms.HandshakeMode.DELEGATION
        assert server.mode is ms.HandshakeMode.DELEGATION

        # Installed access is exactly the warranted grant per context.
        assert mboxes[0].permissions[1] is Permission.WRITE
        assert mboxes[0].permissions[2] is Permission.READ
        assert mboxes[1].permissions[1] is Permission.READ
        assert mboxes[1].permissions[2] is Permission.NONE

        events = []
        chain.on_server_event = events.append
        client.send_application_data(b"headers c2s", context_id=1)
        client.send_application_data(b"body c2s", context_id=2)
        chain.pump()
        app = [e for e in events if isinstance(e, McTLSApplicationData)]
        assert [(e.context_id, e.data) for e in app] == [
            (1, b"headers c2s"),
            (2, b"body c2s"),
        ]

        replies = []
        chain.on_client_event = replies.append
        server.send_application_data(b"reply s2c", context_id=1)
        chain.pump()
        app = [e for e in replies if isinstance(e, McTLSApplicationData)]
        assert [(e.context_id, e.data) for e in app] == [(1, b"reply s2c")]

    def test_no_middleboxes_degenerates_cleanly(
        self, ca, server_identity, client_identity
    ):
        client, _, server, chain = build_mdtls(
            ca,
            server_identity,
            client_identity,
            [],
            [ContextDefinition(1, "only")],
        )
        assert client.handshake_complete and server.handshake_complete
        events = []
        chain.on_server_event = events.append
        client.send_application_data(b"direct", context_id=1)
        chain.pump()
        assert [e.data for e in events if isinstance(e, McTLSApplicationData)] == [
            b"direct"
        ]

    def test_client_requires_identity(self, ca):
        with pytest.raises(TLSError, match="identity"):
            MdTLSClient(
                TLSConfig(trusted_roots=[ca.certificate], dh_group=GROUP_TEST_512),
                topology=SessionTopology(contexts=[ContextDefinition(1, "x")]),
            )

    def test_client_rejects_rsa_transport(self, ca, client_identity):
        with pytest.raises(TLSError, match="DHE"):
            MdTLSClient(
                TLSConfig(
                    identity=client_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                ),
                topology=SessionTopology(contexts=[ContextDefinition(1, "x")]),
                key_transport=ms.KeyTransport.RSA,
            )

    def test_server_rejects_other_modes(self, ca, server_identity):
        with pytest.raises(TLSError, match="delegation"):
            MdTLSServer(
                TLSConfig(
                    identity=server_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                ),
                mode=ms.HandshakeMode.DEFAULT,
            )

    def test_server_can_say_no_under_delegation(
        self, ca, server_identity, client_identity, mbox_identity
    ):
        """A policy-narrowed grant shows up as a narrower server warrant,
        and the middlebox installs only the intersection."""
        client, mboxes, server, chain = build_mdtls(
            ca,
            server_identity,
            client_identity,
            [mbox_identity],
            [ContextDefinition(1, "ctx", {1: Permission.WRITE})],
            topology_policy=lambda t: restrict_topology(t, {1: {1: Permission.READ}}),
        )
        assert client.handshake_complete and server.handshake_complete
        assert server._server_warrants[1].grants[1] is Permission.READ
        assert mboxes[0]._client_warrant.grants[1] is Permission.WRITE
        assert mboxes[0].permissions[1] is Permission.READ


# -- warrant unit tests ----------------------------------------------------


class TestWarrants:
    def _topology(self):
        return SessionTopology(
            middleboxes=[MiddleboxInfo(1, "mbox1.example")],
            contexts=[ContextDefinition(1, "ctx", {1: Permission.READ})],
        )

    def _warrant(self, key, **overrides):
        fields = dict(
            issuer_role=mdw.ISSUER_CLIENT,
            mbox_id=1,
            mbox_name="mbox1.example",
            grants={1: Permission.READ},
            not_before=1_000_000,
            not_after=2_000_000,
            client_random=RANDOM_A,
            server_random=RANDOM_B,
        )
        fields.update(overrides)
        return mdw.Warrant(**fields).sign(key)

    def _check(self, warrant, key, now_ms=1_500_000, topology=None):
        mdw.check_warrant(
            warrant,
            mdw.ISSUER_CLIENT,
            key.public_key,
            topology or self._topology(),
            RANDOM_A,
            RANDOM_B,
            now_ms,
            where="server",
        )

    def test_codec_roundtrip(self, client_identity):
        warrant = self._warrant(client_identity.key)
        decoded = mdw.Warrant.decode(warrant.encode())
        assert decoded == warrant
        assert decoded.verify_signature(client_identity.key.public_key)

    def test_valid_warrant_accepted(self, client_identity):
        self._check(self._warrant(client_identity.key), client_identity.key)

    def test_flipped_signature_is_forged(self, client_identity):
        warrant = self._warrant(client_identity.key)
        warrant.signature = bytes([warrant.signature[0] ^ 1]) + warrant.signature[1:]
        with pytest.raises(mdw.WarrantError) as excinfo:
            self._check(warrant, client_identity.key)
        assert (excinfo.value.where, excinfo.value.reason) == ("server", "forged")

    def test_wrong_session_randoms_are_forged(self, client_identity):
        warrant = self._warrant(client_identity.key, client_random=bytes(32))
        with pytest.raises(mdw.WarrantError) as excinfo:
            self._check(warrant, client_identity.key)
        assert excinfo.value.reason == "forged"

    def test_expired_window_rejected(self, client_identity):
        warrant = self._warrant(client_identity.key)
        with pytest.raises(mdw.WarrantError) as excinfo:
            self._check(warrant, client_identity.key, now_ms=3_000_000)
        assert excinfo.value.reason == "expired"

    def test_widened_grant_rejected(self, client_identity):
        warrant = self._warrant(client_identity.key, grants={1: Permission.WRITE})
        with pytest.raises(mdw.WarrantError) as excinfo:
            self._check(warrant, client_identity.key)
        assert excinfo.value.reason == "widened"

    def test_undeclared_middlebox_rejected(self, client_identity):
        warrant = self._warrant(client_identity.key, mbox_id=9, mbox_name="rogue")
        with pytest.raises(mdw.WarrantError) as excinfo:
            self._check(warrant, client_identity.key)
        assert excinfo.value.reason == "widened"

    def test_warrant_set_missing_and_duplicates(self, client_identity):
        warrant = self._warrant(client_identity.key)
        with pytest.raises(mdw.WarrantError) as excinfo:
            mdw.check_warrant_set(
                [],
                mdw.ISSUER_CLIENT,
                client_identity.key.public_key,
                self._topology(),
                RANDOM_A,
                RANDOM_B,
                1_500_000,
                where="middlebox",
            )
        assert excinfo.value.reason == "missing"
        with pytest.raises(mdw.WarrantError) as excinfo:
            mdw.check_warrant_set(
                [warrant, warrant],
                mdw.ISSUER_CLIENT,
                client_identity.key.public_key,
                self._topology(),
                RANDOM_A,
                RANDOM_B,
                1_500_000,
                where="middlebox",
            )
        assert excinfo.value.reason == "forged"

    def test_effective_permission_is_minimum(self, client_identity):
        wide = self._warrant(client_identity.key, grants={1: Permission.WRITE})
        narrow = self._warrant(
            client_identity.key, issuer_role=mdw.ISSUER_SERVER, grants={1: Permission.READ}
        )
        assert mdw.effective_permission(1, wide, narrow) is Permission.READ
        assert mdw.effective_permission(1, wide, None) is Permission.NONE
        assert mdw.effective_permission(2, wide, narrow) is Permission.NONE


# -- resumption and the never-widen property -------------------------------


class TestResumption:
    CONTEXTS = [ContextDefinition(1, "ctx", {1: Permission.READ})]
    STORE_KEY = ("mdtls", "server.example")

    def _first_and_resumed(self, ca, server_identity, client_identity, mbox_identity, **stores):
        first = build_mdtls(
            ca, server_identity, client_identity, [mbox_identity], self.CONTEXTS, **stores
        )
        second = build_mdtls(
            ca, server_identity, client_identity, [mbox_identity], self.CONTEXTS, **stores
        )
        return first, second

    def test_session_cache_resumption_preserves_grants(
        self, ca, server_identity, client_identity, mbox_identity
    ):
        stores = dict(session_store=ClientSessionStore(), session_cache=SessionCache())
        (c1, _, s1, _), (c2, mboxes2, s2, chain2) = self._first_and_resumed(
            ca, server_identity, client_identity, mbox_identity, **stores
        )
        assert c1.handshake_complete and not c1.resumed
        assert c2.handshake_complete and c2.resumed and s2.resumed
        assert mboxes2[0].permissions[1] is Permission.READ
        events = []
        chain2.on_server_event = events.append
        c2.send_application_data(b"resumed", context_id=1)
        chain2.pump()
        assert [e.data for e in events if isinstance(e, McTLSApplicationData)] == [
            b"resumed"
        ]

    def test_ticket_resumption_preserves_grants(
        self, ca, server_identity, client_identity, mbox_identity
    ):
        stores = dict(ticket_store=ClientSessionStore(), ticket_manager=TicketKeyManager())
        (c1, _, _, _), (c2, mboxes2, s2, _) = self._first_and_resumed(
            ca, server_identity, client_identity, mbox_identity, **stores
        )
        assert c1.handshake_complete and not c1.resumed
        assert c2.resumed and s2.resumed
        assert mboxes2[0].permissions[1] is Permission.READ

    def test_mdtls_ticket_never_accepted_by_mctls_namespace(
        self, ca, server_identity, client_identity, mbox_identity
    ):
        """The client stores mdTLS tickets under a separate key: an mcTLS
        client for the same server never sees them."""
        tstore = ClientSessionStore()
        build_mdtls(
            ca,
            server_identity,
            client_identity,
            [mbox_identity],
            self.CONTEXTS,
            ticket_store=tstore,
            ticket_manager=TicketKeyManager(),
        )
        assert tstore.get(self.STORE_KEY) is not None
        assert tstore.get("server.example") is None

    def test_tampered_ticket_never_widens(
        self, ca, server_identity, client_identity, mbox_identity
    ):
        """Deterministic bit flips across the stored ticket: every variant
        falls back to a full handshake (or fails outright) and the
        middlebox never ends up with more than the granted READ."""
        tstore = ClientSessionStore()
        manager = TicketKeyManager()
        build_mdtls(
            ca,
            server_identity,
            client_identity,
            [mbox_identity],
            self.CONTEXTS,
            ticket_store=tstore,
            ticket_manager=manager,
        )
        for flip_at in (0.0, 0.33, 0.66, 0.999):
            entry = tstore.get(self.STORE_KEY)
            assert entry is not None
            mutated = bytearray(entry.ticket)
            mutated[int(flip_at * len(mutated))] ^= 0x40
            tstore.put(
                self.STORE_KEY,
                ClientTicket(ticket=bytes(mutated), state=entry.state),
            )
            client, mboxes, server, _ = build_mdtls(
                ca,
                server_identity,
                client_identity,
                [mbox_identity],
                self.CONTEXTS,
                ticket_store=tstore,
                ticket_manager=manager,
            )
            assert client.handshake_complete and server.handshake_complete
            assert not client.resumed and not server.resumed
            for ctx_id, permission in mboxes[0].permissions.items():
                ceiling = {1: Permission.READ}.get(ctx_id, Permission.NONE)
                assert int(permission) <= int(ceiling)

    def test_onpath_ticket_bitflip_never_widens(
        self, ca, server_identity, client_identity, mbox_identity
    ):
        """An on-path tamperer flips a seeded bit in the plaintext
        NewSessionTicket itself; the corrupted ticket silently falls back
        to a full handshake on the next connection and access stays
        clamped to the warranted grants."""
        tstore = ClientSessionStore()
        manager = TicketKeyManager()
        proxy = TamperProxy(
            TamperPlan(
                seed=2015,
                handshake_mutator=FlipHandshakeBit(tls_msgs.NEW_SESSION_TICKET),
                direction=mk.S2C,
            )
        )
        client, _, server, _ = build_mdtls(
            ca,
            server_identity,
            client_identity,
            [mbox_identity],
            self.CONTEXTS,
            ticket_store=tstore,
            ticket_manager=manager,
            extra_relays=[proxy],
        )
        # The ticket is untagged (outside the Finished hashes), so the
        # handshake still completes — the corruption is latent.
        assert client.handshake_complete and server.handshake_complete
        assert proxy.log == [(mk.S2C, f"hs-flip-{tls_msgs.NEW_SESSION_TICKET}")]

        client2, mboxes2, server2, _ = build_mdtls(
            ca,
            server_identity,
            client_identity,
            [mbox_identity],
            self.CONTEXTS,
            ticket_store=tstore,
            ticket_manager=manager,
        )
        assert client2.handshake_complete and server2.handshake_complete
        assert not client2.resumed and not server2.resumed
        assert mboxes2[0].permissions[1] is Permission.READ
        assert all(
            int(p) <= int(Permission.READ) for p in mboxes2[0].permissions.values()
        )


# -- interface drift -------------------------------------------------------


class TestInterfaceDrift:
    def test_sixth_stack_passes_and_drift_is_flagged(self):
        from repro.experiments.harness import Mode, TestBed
        from repro.tools.check_interface import check_interfaces

        bed = TestBed(key_bits=512, dh_group=GROUP_TEST_512)
        checked = check_interfaces(bed)
        labels = [label for label, _ in checked]
        assert any(label.startswith("mdTLS client") for label in labels)
        assert any(label.startswith("mdTLS server") for label in labels)
        assert any(label.startswith("mdTLS relay") for label in labels)
        assert len(checked) == 18  # 6 modes x (client + server + relay)

        class _MissingMethod:
            """Proxy that hides one Connection method from the protocol."""

            def __init__(self, inner):
                self.__dict__["_inner"] = inner

            def __getattr__(self, name):
                if name == "send_application_data":
                    raise AttributeError(name)
                return getattr(self.__dict__["_inner"], name)

        real_make = bed.make_endpoints

        def crippled_make(mode, *args, **kwargs):
            client, server = real_make(mode, *args, **kwargs)
            if mode is Mode.MDTLS:
                server = _MissingMethod(server)
            return client, server

        bed.make_endpoints = crippled_make
        with pytest.raises(TypeError, match="mdTLS server"):
            check_interfaces(bed)


# -- wire traces -----------------------------------------------------------


class TestTraceAnnotations:
    def test_live_flight_names_warrant_issue(self, ca, server_identity, client_identity):
        from repro.trace import describe_stream

        client = MdTLSClient(
            TLSConfig(
                identity=client_identity,
                trusted_roots=[ca.certificate],
                server_name=server_identity.name,
                dh_group=GROUP_TEST_512,
            ),
            topology=SessionTopology(contexts=[ContextDefinition(1, "ctx")]),
        )
        server = MdTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            )
        )
        client.start_handshake()
        server.receive_data(client.data_to_send())
        lines = describe_stream(server.data_to_send())
        joined = " ".join(lines)
        assert "WarrantIssue" in joined
        assert "issuer=server" in joined

    def test_warrant_issue_detail_line(self, ca, client_identity):
        from repro.mdtls import messages as mdm
        from repro.trace import _describe_handshake_message

        warrant = mdw.Warrant(
            issuer_role=mdw.ISSUER_CLIENT,
            mbox_id=1,
            mbox_name="mbox1.example",
            grants={1: Permission.WRITE, 2: Permission.READ},
            not_before=0,
            not_after=1,
            client_random=RANDOM_A,
            server_random=RANDOM_B,
        ).sign(client_identity.key)
        issue = mdm.WarrantIssue(
            sender=1, issuer_chain=client_identity.chain, warrants=[warrant]
        )
        line = _describe_handshake_message(tls_msgs.WARRANT_ISSUE, issue.encode())
        assert line.startswith("WarrantIssue")
        assert "issuer=client" in line
        assert "mbox1:{1=write,2=read}" in line

    def test_delegated_key_material_detail_line(self):
        from repro.mdtls import messages as mdm
        from repro.trace import _describe_handshake_message

        dkm = mdm.DelegatedKeyMaterial(target=2, sealed=b"\x00" * 48)
        line = _describe_handshake_message(
            tls_msgs.DELEGATED_KEY_MATERIAL, dkm.encode()
        )
        assert line.startswith("DelegatedKeyMaterial")
        assert "to=mbox 2" in line
        assert "sealed=48B" in line

    def test_undecodable_warrant_body_is_flagged(self):
        from repro.trace import _describe_handshake_message

        line = _describe_handshake_message(tls_msgs.WARRANT_ISSUE, b"\xff")
        assert "(body undecodable)" in line
