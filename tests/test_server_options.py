"""Tests for server/middlebox configuration options not covered elsewhere."""

import pytest

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.mctls.session import HandshakeMode
from repro.tls.connection import TLSConfig, TLSError
from repro.transport import Chain


def build(ca, server_identity, mbox_identity, *, server_kwargs=None,
          client_kwargs=None, mbox_kwargs=None, mbox_ca=None):
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=[ContextDefinition(1, "ctx", {1: Permission.READ})],
    )
    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
        ),
        topology=topology,
        **(client_kwargs or {}),
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
        **(server_kwargs or {}),
    )
    mbox = McTLSMiddlebox(
        mbox_identity.name,
        TLSConfig(
            identity=mbox_identity,
            trusted_roots=[(mbox_ca or ca).certificate],
            dh_group=GROUP_TEST_512,
        ),
        **(mbox_kwargs or {}),
    )
    chain = Chain(client, [mbox], server)
    client.start_handshake()
    return client, mbox, server, chain


@pytest.fixture(scope="module")
def rogue():
    ca = CertificateAuthority.create_root("Rogue CA", key_bits=512)
    identity = Identity.issued_by(ca, "mbox1.example", key_bits=512)
    return ca, identity


class TestVerificationToggles:
    def test_server_skips_middlebox_verification(
        self, ca, server_identity, rogue
    ):
        """With verify_middleboxes=False on BOTH endpoints, a middlebox
        with an untrusted certificate is tolerated (the paper's 'servers
        may prefer not to' / unauthenticated-client knob)."""
        rogue_ca, rogue_identity = rogue
        client, mbox, server, chain = build(
            ca,
            server_identity,
            rogue_identity,
            server_kwargs={"verify_middleboxes": False},
            client_kwargs={"verify_middleboxes": False},
            mbox_ca=rogue_ca,
        )
        chain.pump()
        assert client.handshake_complete and server.handshake_complete

    def test_client_verification_alone_still_rejects(
        self, ca, server_identity, rogue
    ):
        rogue_ca, rogue_identity = rogue
        client, mbox, server, chain = build(
            ca,
            server_identity,
            rogue_identity,
            server_kwargs={"verify_middleboxes": False},
            mbox_ca=rogue_ca,
        )
        with pytest.raises(TLSError, match="certificate"):
            chain.pump()

    def test_middlebox_can_verify_server(self, ca, server_identity, mbox_identity):
        """The paper's 'n ≤ 1' middlebox verification: opt-in works."""
        client, mbox, server, chain = build(
            ca, server_identity, mbox_identity, mbox_kwargs={"verify_server": True}
        )
        chain.pump()
        assert mbox.handshake_complete

    def test_middlebox_server_verification_rejects_rogue(self, ca, mbox_identity):
        rogue_ca = CertificateAuthority.create_root("Rogue Web", key_bits=512)
        rogue_server = Identity.issued_by(rogue_ca, "server.example", key_bits=512)
        topology = SessionTopology(
            middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
            contexts=[ContextDefinition(1, "ctx", {1: Permission.READ})],
        )
        client = McTLSClient(
            TLSConfig(
                trusted_roots=[rogue_ca.certificate],  # fooled client
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            ),
            topology=topology,
            verify_middleboxes=False,
        )
        server = McTLSServer(
            TLSConfig(
                identity=rogue_server,
                trusted_roots=[rogue_ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        watchdog = McTLSMiddlebox(
            mbox_identity.name,
            TLSConfig(
                identity=mbox_identity,
                trusted_roots=[],  # trusts nothing ⇒ rejects everything
                dh_group=GROUP_TEST_512,
            ),
            verify_server=True,
        )
        # An empty trust store disables the middlebox check by design
        # (it has no roots to verify against) — so install a real root
        # that does NOT cover the rogue server.
        real_ca = CertificateAuthority.create_root("Real Web", key_bits=512)
        watchdog.config = TLSConfig(
            identity=mbox_identity,
            trusted_roots=[real_ca.certificate],
            dh_group=GROUP_TEST_512,
        )
        chain = Chain(client, [watchdog], server)
        client.start_handshake()
        with pytest.raises(TLSError, match="rejected by middlebox"):
            chain.pump()


class TestModeSelection:
    def test_server_chooses_mode(self, ca, server_identity, mbox_identity):
        for mode in (HandshakeMode.DEFAULT, HandshakeMode.CLIENT_KEY_DIST):
            client, mbox, server, chain = build(
                ca, server_identity, mbox_identity, server_kwargs={"mode": mode}
            )
            chain.pump()
            assert client.mode is mode
            assert mbox.mode is mode
