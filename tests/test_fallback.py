"""Tests for mcTLS → TLS fallback (§5.4)."""

import pytest

from repro.crypto.certs import CertificateAuthority
from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import SessionTopology
from repro.mctls.contexts import ContextDefinition
from repro.mctls.fallback import (
    FallbackClient,
    connect_with_fallback,
    is_negotiation_failure,
)
from repro.mctls.server import McTLSServer
from repro.tls.client import TLSClient
from repro.tls.connection import (
    ALERT_BAD_CERTIFICATE,
    TLSConfig,
    TLSError,
)
from repro.tls.server import TLSServer
from repro.transport import pump


@pytest.fixture()
def topology():
    return SessionTopology(contexts=[ContextDefinition(1, "all")])


def make_config(ca):
    return TLSConfig(
        trusted_roots=[ca.certificate],
        server_name="server.example",
        dh_group=GROUP_TEST_512,
    )


class TestClassification:
    def test_security_failures_never_fall_back(self):
        assert not is_negotiation_failure(
            TLSError("certificate verification failed", ALERT_BAD_CERTIFICATE)
        )

    def test_version_mismatch_falls_back(self):
        from repro.tls.connection import ALERT_BAD_RECORD_MAC

        assert is_negotiation_failure(
            TLSError("unsupported record version 0x0303", ALERT_BAD_RECORD_MAC)
        )

    def test_generic_handshake_failure_falls_back(self):
        assert is_negotiation_failure(TLSError("no mutually supported cipher suite"))


class TestFallbackFlow:
    def test_mctls_server_no_fallback_needed(self, ca, server_identity, topology):
        def dial():
            server = McTLSServer(
                TLSConfig(
                    identity=server_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                )
            )
            return server, pump

        client = connect_with_fallback(make_config(ca), topology, dial)
        assert client.handshake_complete
        assert hasattr(client, "topology")  # still the mcTLS client

    def test_plain_tls_server_triggers_fallback(self, ca, server_identity, topology):
        """Against a TLS-only server, the mcTLS attempt fails fast on the
        record version and the retry succeeds over plain TLS."""

        def dial():
            server = TLSServer(
                TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
            )
            return server, pump

        client = connect_with_fallback(make_config(ca), topology, dial)
        assert client.handshake_complete
        assert isinstance(client, TLSClient)
        assert not hasattr(client, "topology")

    def test_security_failure_not_downgraded(self, ca, topology):
        """A server with an untrusted certificate must NOT cause a silent
        downgrade to TLS — the error propagates."""
        rogue_ca = CertificateAuthority.create_root("Rogue", key_bits=512)
        from repro.crypto.certs import Identity

        rogue_identity = Identity.issued_by(rogue_ca, "server.example", key_bits=512)

        def dial():
            server = McTLSServer(
                TLSConfig(
                    identity=rogue_identity,
                    trusted_roots=[rogue_ca.certificate],
                    dh_group=GROUP_TEST_512,
                )
            )
            return server, pump

        with pytest.raises(TLSError, match="certificate"):
            connect_with_fallback(make_config(ca), topology, dial)

    def test_single_downgrade_only(self, ca, topology):
        fallback = FallbackClient(make_config(ca), topology)
        fallback.fall_back()
        with pytest.raises(TLSError, match="refusing"):
            fallback.fall_back()
        assert not fallback.should_fall_back(TLSError("anything"))

    def test_attempt_counting(self, ca, server_identity, topology):
        fallback = FallbackClient(make_config(ca), topology)
        assert fallback.attempts == 1
        fallback.fall_back()
        assert fallback.attempts == 2
        assert fallback.fell_back
