"""Tests for the high-level SessionBuilder (§5.4 deployability)."""

import pytest

from repro.builder import SessionBuilder
from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import Permission
from repro.mctls.contexts import restrict_topology
from repro.mctls.session import HandshakeMode, KeyTransport, McTLSApplicationData


def fast_builder(**kwargs):
    return SessionBuilder(key_bits=512, dh_group=GROUP_TEST_512, **kwargs)


def app_data(events):
    return [(e.context_id, e.data) for e in events if isinstance(e, McTLSApplicationData)]


class TestBuilder:
    def test_seventeen_line_client(self):
        """The whole point: a complete session in a handful of lines."""
        seen = []
        session = (
            fast_builder(server_name="shop.example")
            .middlebox("proxy.isp", observer=lambda d, c, data: seen.append(data))
            .context("headers", middleboxes={"proxy.isp": "read"})
            .context("payload")
            .build()
        )
        assert session.client.handshake_complete
        session.client.send_application_data(b"GET /", context_id=session.ctx("headers"))
        session.client.send_application_data(b"pin=1234", context_id=session.ctx("payload"))
        events = session.pump()
        assert app_data(events) == [
            (session.ctx("headers"), b"GET /"),
            (session.ctx("payload"), b"pin=1234"),
        ]
        assert seen == [b"GET /"]

    def test_no_contexts_gets_default(self):
        session = fast_builder().build()
        assert session.ctx("default") == 1
        session.server.send_application_data(b"hi", context_id=1)
        events = session.pump()
        assert app_data(events) == [(1, b"hi")]

    def test_writer_middlebox(self):
        session = (
            fast_builder()
            .middlebox("rewriter", transformer=lambda d, c, data: data.upper())
            .context("text", middleboxes={"rewriter": "write"})
            .build()
        )
        session.client.send_application_data(b"shout", context_id=1)
        events = session.pump()
        assert app_data(events) == [(1, b"SHOUT")]

    def test_modes_and_transports(self):
        for mode in HandshakeMode:
            for transport in KeyTransport:
                session = (
                    fast_builder(mode=mode, key_transport=transport)
                    .middlebox("m")
                    .context("c", middleboxes={"m": "read"})
                    .build()
                )
                assert session.client.handshake_complete
                assert session.middleboxes[0].permissions[1] is Permission.READ

    def test_server_policy_hook(self):
        session = (
            fast_builder()
            .middlebox("nosy")
            .context("private", middleboxes={"nosy": "read"})
            .server_policy(lambda t: restrict_topology(t, {1: {1: Permission.NONE}}))
            .build()
        )
        assert session.middleboxes[0].permissions[1] is Permission.NONE

    def test_declaration_errors(self):
        with pytest.raises(ValueError, match="twice"):
            fast_builder().middlebox("m").middlebox("m")
        with pytest.raises(ValueError, match="twice"):
            fast_builder().context("c").context("c")
        with pytest.raises(ValueError, match="undeclared"):
            fast_builder().context("c", middleboxes={"ghost": "read"}).build()
        with pytest.raises(ValueError, match="permission"):
            fast_builder().middlebox("m").context("c", middleboxes={"m": "admin"}).build()
