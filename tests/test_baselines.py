"""Tests for the SplitTLS / E2E-TLS / NoEncrypt baselines."""

import pytest

from repro.baselines import BlindRelay, PlainConnection, PlainRelay, SplitTLSRelay
from repro.crypto.certs import CertificateAuthority
from repro.crypto.dh import GROUP_TEST_512
from repro.tls import TLSClient, TLSConfig, TLSServer
from repro.tls.connection import ApplicationData, HandshakeComplete
from repro.transport import Chain


@pytest.fixture(scope="module")
def corp_ca():
    return CertificateAuthority.create_root("Corp Interception Root", key_bits=512)


def app_data(events):
    return [e.data for e in events if isinstance(e, ApplicationData)]


class TestBlindRelay:
    def test_e2e_tls_through_blind_relay(self, ca, server_identity):
        client = TLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            )
        )
        server = TLSServer(TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512))
        relay = BlindRelay()
        chain = Chain(client, [relay], server)
        client.start_handshake()
        events = chain.pump()
        assert sum(isinstance(e, HandshakeComplete) for e in events) == 2
        client.send_application_data(b"through the relay")
        events = chain.pump()
        assert app_data(events) == [b"through the relay"]
        assert relay.bytes_relayed > 0

    def test_blind_relay_sees_only_ciphertext(self, ca, server_identity):
        client = TLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            )
        )
        server = TLSServer(TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512))
        observed = bytearray()

        class SpyRelay(BlindRelay):
            def receive_from_client(self, data):
                observed.extend(data)
                return super().receive_from_client(data)

        chain = Chain(client, [SpyRelay()], server)
        client.start_handshake()
        chain.pump()
        client.send_application_data(b"plaintext-marker")
        chain.pump()
        assert b"plaintext-marker" not in bytes(observed)


class TestSplitTLS:
    def make_chain(self, ca, corp_ca, server_identity, **relay_kwargs):
        # Client trusts the corporate root (the interception precondition).
        client = TLSClient(
            TLSConfig(
                trusted_roots=[corp_ca.certificate],
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            )
        )
        server = TLSServer(TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512))
        relay = SplitTLSRelay(
            corp_ca,
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            ),
            "server.example",
            key_bits=512,
            **relay_kwargs,
        )
        return client, relay, server, Chain(client, [relay], server)

    def test_handshakes_complete(self, ca, corp_ca, server_identity):
        client, relay, server, chain = self.make_chain(ca, corp_ca, server_identity)
        client.start_handshake()
        chain.pump()
        assert client.handshake_complete
        assert server.handshake_complete
        # The client sees the forged certificate, not the server's.
        assert client.peer_certificate.issuer == "Corp Interception Root"

    def test_full_plaintext_visibility(self, ca, corp_ca, server_identity):
        """SplitTLS violates least privilege: the relay sees everything."""
        seen = []
        client, relay, server, chain = self.make_chain(
            ca, corp_ca, server_identity, observer=lambda d, p: seen.append((d, p))
        )
        client.start_handshake()
        chain.pump()
        client.send_application_data(b"confidential request")
        chain.pump()
        server.send_application_data(b"confidential response")
        chain.pump()
        assert ("c2s", b"confidential request") in seen
        assert ("s2c", b"confidential response") in seen

    def test_relay_can_rewrite_everything(self, ca, corp_ca, server_identity):
        client, relay, server, chain = self.make_chain(
            ca,
            corp_ca,
            server_identity,
            transformer=lambda d, p: p.replace(b"http", b"HTTP"),
        )
        client.start_handshake()
        chain.pump()
        client.send_application_data(b"http data")
        events = chain.pump()
        # The relay surfaces the original plaintext; the server receives
        # the rewritten copy.
        assert b"HTTP data" in app_data(events)

    def test_client_without_corp_root_rejects(self, ca, corp_ca, server_identity):
        """A client that does not trust the interception root detects the
        impersonation — the attack TLS is designed to stop."""
        from repro.tls.connection import TLSError

        client = TLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],  # only the real CA
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            )
        )
        server = TLSServer(TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512))
        relay = SplitTLSRelay(
            corp_ca,
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            ),
            "server.example",
            key_bits=512,
        )
        chain = Chain(client, [relay], server)
        client.start_handshake()
        with pytest.raises(TLSError, match="certificate"):
            chain.pump()


class TestNoEncrypt:
    def test_plain_connection_roundtrip(self):
        a, b = PlainConnection(), PlainConnection()
        a.start_handshake()
        assert a.handshake_complete
        a.send_application_data(b"clear")
        events = b.receive_bytes(a.data_to_send())
        assert app_data(events) == [b"clear"]

    def test_plain_relay_transform(self):
        relay = PlainRelay(transformer=lambda d, p: p.upper())
        relay.receive_from_client(b"shout")
        assert relay.data_to_server() == b"SHOUT"

    def test_plain_relay_observer(self):
        seen = []
        relay = PlainRelay(observer=lambda d, p: seen.append((d, p)))
        relay.receive_from_server(b"resp")
        assert relay.data_to_client() == b"resp"
        assert seen == [("s2c", b"resp")]
