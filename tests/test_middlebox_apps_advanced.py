"""Advanced middlebox-application scenarios: composition, pacing with a
simulated clock, chunking properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dh import GROUP_TEST_512
from repro.http import FOUR_CONTEXT, HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.mctls import McTLSClient, McTLSServer, MiddleboxInfo, Permission, SessionTopology
from repro.mctls.contexts import ContextDefinition
from repro.mctls.session import McTLSApplicationData
from repro.middleboxes import CompressionProxy, IntrusionDetectionSystem, PacketPacer, TrackerBlocker
from repro.middleboxes.wan_optimizer import chunk_boundaries
from repro.netsim import Simulator
from repro.tls.connection import TLSConfig
from repro.transport import Chain


def merge_context_definitions(*app_classes_with_ids):
    """Union of several apps' permission needs over the 4 contexts."""
    merged = {}
    for app_class, mbox_id in app_classes_with_ids:
        for ctx in app_class.context_definitions(mbox_id):
            if ctx.context_id not in merged:
                merged[ctx.context_id] = dict(ctx.permissions)
            else:
                merged[ctx.context_id].update(ctx.permissions)
    base = {c.context_id: c for app, _ in app_classes_with_ids for c in app.context_definitions(1)}
    return [
        ContextDefinition(ctx_id, base[ctx_id].purpose, perms)
        for ctx_id, perms in sorted(merged.items())
    ]


class TestAppComposition:
    def test_ids_then_compression_chain(self, ca, server_identity, mbox_identities):
        """An IDS (read-only) in front of a compression proxy (response
        writer): the IDS scans what the *client sent*, the proxy rewrites
        what the *server responds*, all in one session."""
        ids_identity, comp_identity = mbox_identities[:2]
        ids = IntrusionDetectionSystem(
            ids_identity.name,
            TLSConfig(identity=ids_identity, trusted_roots=[ca.certificate]),
        )
        comp = CompressionProxy(
            comp_identity.name,
            TLSConfig(identity=comp_identity, trusted_roots=[ca.certificate]),
        )
        contexts = merge_context_definitions(
            (IntrusionDetectionSystem, 1), (CompressionProxy, 2)
        )
        topology = SessionTopology(
            middleboxes=[
                MiddleboxInfo(1, ids_identity.name),
                MiddleboxInfo(2, comp_identity.name),
            ],
            contexts=contexts,
        )
        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name=server_identity.name,
                dh_group=GROUP_TEST_512,
            ),
            topology=topology,
        )
        server = McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        body = b"<html>" + b"repetitive filler " * 400 + b"</html>"
        client_session = HttpClientSession(client, FOUR_CONTEXT)
        server_session = HttpServerSession(
            server, lambda req: HttpResponse(body=body), FOUR_CONTEXT
        )
        chain = Chain(client, [ids.middlebox, comp.middlebox], server)
        chain.on_client_event = (
            lambda e: client_session.on_data(e.data)
            if isinstance(e, McTLSApplicationData) else None
        )
        chain.on_server_event = (
            lambda e: server_session.on_data(e.data)
            if isinstance(e, McTLSApplicationData) else None
        )
        client.start_handshake()
        chain.pump()

        responses = []
        client_session.request(
            HttpRequest(target="/page", body=b"q=' OR 1=1", method="POST"),
            responses.append,
        )
        chain.pump()

        assert responses[0].body == body  # inflated transparently
        assert comp.responses_compressed == 1
        assert any(a.signature == b"' OR 1=1" for a in ids.alerts)
        # Least privilege held: the IDS saw the request; the compression
        # proxy's permissions exclude request contexts entirely.
        assert comp.middlebox.permissions[1] is Permission.NONE
        assert ids.middlebox.permissions[4] is Permission.READ

    def test_tracker_blocker_before_ids(self, ca, server_identity, mbox_identities):
        """Path order matters: the blocker strips cookies *before* the
        IDS sees the request — the IDS never observes the cookie."""
        tb_identity, ids_identity = mbox_identities[:2]
        blocker = TrackerBlocker(
            tb_identity.name,
            TLSConfig(identity=tb_identity, trusted_roots=[ca.certificate]),
        )
        ids = IntrusionDetectionSystem(
            ids_identity.name,
            TLSConfig(identity=ids_identity, trusted_roots=[ca.certificate]),
            signatures=(b"tracking-cookie",),
        )
        contexts = merge_context_definitions((TrackerBlocker, 1), (IntrusionDetectionSystem, 2))
        topology = SessionTopology(
            middleboxes=[MiddleboxInfo(1, tb_identity.name), MiddleboxInfo(2, ids_identity.name)],
            contexts=contexts,
        )
        client = McTLSClient(
            TLSConfig(trusted_roots=[ca.certificate], server_name=server_identity.name,
                      dh_group=GROUP_TEST_512),
            topology=topology,
        )
        server = McTLSServer(
            TLSConfig(identity=server_identity, trusted_roots=[ca.certificate],
                      dh_group=GROUP_TEST_512),
        )
        client_session = HttpClientSession(client, FOUR_CONTEXT)
        server_session = HttpServerSession(server, lambda r: HttpResponse(), FOUR_CONTEXT)
        chain = Chain(client, [blocker.middlebox, ids.middlebox], server)
        chain.on_client_event = (
            lambda e: client_session.on_data(e.data)
            if isinstance(e, McTLSApplicationData) else None
        )
        chain.on_server_event = (
            lambda e: server_session.on_data(e.data)
            if isinstance(e, McTLSApplicationData) else None
        )
        client.start_handshake()
        chain.pump()
        client_session.request(
            HttpRequest(target="/", headers=[("Host", "h"), ("Cookie", "tracking-cookie")]),
            lambda r: None,
        )
        chain.pump()
        assert blocker.headers_stripped == 1
        assert not ids.alarmed  # cookie was gone before the IDS looked


class TestPacerWithSimClock:
    def test_pacing_schedule_follows_sim_time(self, mbox_config):
        sim = Simulator()
        pacer = PacketPacer(
            "pacer", mbox_config, target_rate_bps=80_000, clock=lambda: sim.now
        )
        # Two bursts 0.05 s apart in simulated time.
        sim.schedule(0.0, lambda: pacer.observe_response_body(b"x" * 1000))
        sim.schedule(0.05, lambda: pacer.observe_response_body(b"x" * 1000))
        sim.run()
        (t0, release0, _), (t1, release1, _) = pacer.schedule
        assert (t0, release0) == (0.0, 0.0)
        # 1000 B at 80 kbps = 0.1 s; the second burst (arriving at 0.05)
        # is held until the first finishes.
        assert t1 == pytest.approx(0.05)
        assert release1 == pytest.approx(0.1)
        assert pacer.total_injected_delay == pytest.approx(0.05)

    def test_idle_gap_resets_pacing(self, mbox_config):
        sim = Simulator()
        pacer = PacketPacer(
            "pacer", mbox_config, target_rate_bps=80_000, clock=lambda: sim.now
        )
        sim.schedule(0.0, lambda: pacer.observe_response_body(b"x" * 1000))
        sim.schedule(5.0, lambda: pacer.observe_response_body(b"x" * 1000))
        sim.run()
        _, release1, _ = pacer.schedule[1]
        assert release1 == pytest.approx(5.0)  # no carry-over delay


class TestChunking:
    @given(st.binary(min_size=0, max_size=5000))
    @settings(max_examples=40)
    def test_boundaries_partition_data(self, data):
        boundaries = list(chunk_boundaries(data))
        if not data:
            assert boundaries == []
            return
        assert boundaries[-1] == len(data)
        assert boundaries == sorted(set(boundaries))

    @given(st.binary(min_size=100, max_size=2000), st.integers(0, 50))
    @settings(max_examples=25)
    def test_content_defined_stability(self, data, shift):
        """Chunk boundaries after a prefix shift re-align — the property
        dedup relies on (allowing for the min-chunk constraint)."""
        prefix = b"P" * shift
        plain = list(chunk_boundaries(data))
        shifted = list(chunk_boundaries(prefix + data))
        # Boundaries well past the shift should re-synchronise for data
        # with enough entropy; we assert the weaker structural property
        # that chunk sizes respect the configured bounds.
        for start, end in zip([0] + plain, plain):
            assert 1 <= end - start <= 1024
        for start, end in zip([0] + shifted, shifted):
            assert 1 <= end - start <= 1024
