"""Unit tests for the data-plane fast-path building blocks.

Covers the pieces the record layers now lean on per record:
:class:`repro.recbuf.RecordBuffer` (cursor-based receive buffer),
:class:`repro.crypto.hmaccache.CachedHmacSha256` (precomputed HMAC key
schedule), the :class:`repro.crypto.fastcipher.ShaCtrCipher` keystream
(chunk boundaries, memoryview inputs, memoization), and — critically —
that every per-key cache is invalidated on re-key.
"""

from __future__ import annotations

import hashlib
import hmac

import pytest

from repro.crypto import fastcipher
from repro.crypto.fastcipher import ShaCtrCipher, clear_keystream_cache
from repro.crypto.hmaccache import CachedHmacSha256, hmac_sha256
from repro.mctls import keys as mk
from repro.mctls.contexts import Permission
from repro.mctls.record import (
    APPLICATION_DATA,
    McTLSRecordError,
    McTLSRecordLayer,
    MiddleboxRecordProcessor,
    split_records,
)
from repro.recbuf import RecordBuffer
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256 as SUITE

SECRET, RC, RS = b"S" * 48, b"c" * 32, b"s" * 32


# -- RecordBuffer ------------------------------------------------------------


class TestRecordBuffer:
    def test_append_len_bool(self):
        buf = RecordBuffer()
        assert len(buf) == 0 and not buf
        buf.append(b"abc")
        buf.append(b"defg")
        assert len(buf) == 7 and buf

    def test_take_and_consume_advance_the_cursor(self):
        buf = RecordBuffer()
        buf.append(b"hello world")
        buf.consume(6)
        assert buf.take(5) == b"world"
        assert len(buf) == 0

    def test_take_copies_are_independent(self):
        buf = RecordBuffer()
        buf.append(bytearray(b"xyz"))
        out = buf.take(3)
        buf.append(b"123")
        assert out == b"xyz"
        assert bytes(out) == out  # immutable copy, safe to retain

    def test_unpack_from_view(self):
        from struct import Struct

        header = Struct(">BH")
        buf = RecordBuffer()
        buf.append(b"\x00" + header.pack(7, 513) + b"rest")
        buf.consume(1)
        assert header.unpack_from(buf.data, buf.pos) == (7, 513)

    def test_fully_consumed_buffer_resets_on_append(self):
        buf = RecordBuffer()
        buf.append(b"abcd")
        buf.take(4)
        buf.append(b"ef")
        assert buf.pos == 0 and bytes(buf.data) == b"ef"

    def test_large_consumed_prefix_is_compacted(self):
        buf = RecordBuffer()
        buf.append(b"x" * (1 << 17))
        buf.consume((1 << 17) - 3)
        buf.append(b"yz")
        assert buf.take(5) == b"xxxyz"
        assert buf.pos <= 5  # the 128 KiB prefix was reclaimed

    def test_clear(self):
        buf = RecordBuffer()
        buf.append(b"junk")
        buf.clear()
        assert len(buf) == 0 and buf.pos == 0

    def test_interleaved_appends_and_reads(self):
        buf = RecordBuffer()
        expected = b""
        out = b""
        for i in range(50):
            chunk = bytes([i]) * (i % 7 + 1)
            buf.append(chunk)
            expected += chunk
            if i % 3 == 0:
                out += buf.take(min(len(buf), i % 5 + 1))
        out += buf.take(len(buf))
        assert out == expected


# -- CachedHmacSha256 --------------------------------------------------------


class TestCachedHmac:
    @pytest.mark.parametrize(
        "key", [b"", b"k", b"k" * 32, b"k" * 64, b"key longer than the block" * 4]
    )
    def test_matches_stdlib_hmac(self, key):
        data = b"the quick brown fox"
        expected = hmac.new(key, data, hashlib.sha256).digest()
        assert CachedHmacSha256(key).digest(data) == expected
        assert hmac_sha256(key, data) == expected

    def test_multi_part_digest_equals_concatenation(self):
        ctx = CachedHmacSha256(b"k" * 32)
        parts = (b"seq-and-header", b"payload bytes", b"")
        assert ctx.digest(*parts) == ctx.digest(b"".join(parts))

    def test_context_is_reusable(self):
        ctx = CachedHmacSha256(b"k" * 32)
        first = ctx.digest(b"one")
        second = ctx.digest(b"two")
        assert first == ctx.digest(b"one")
        assert second != first

    def test_keyed_cache_stays_bounded(self):
        from repro.crypto import hmaccache

        for i in range(hmaccache._MAX_CACHED_KEYS + 10):
            hmac_sha256(i.to_bytes(4, "big"), b"data")
        assert len(hmaccache._contexts) <= hmaccache._MAX_CACHED_KEYS + 10


# -- ShaCtrCipher ------------------------------------------------------------


def _naive_shactr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Reference implementation: block i = SHA256(key || nonce || i)."""
    stream = b""
    for i in range((len(data) + 31) // 32):
        stream += hashlib.sha256(key + nonce + i.to_bytes(8, "big")).digest()
    return bytes(a ^ b for a, b in zip(data, stream))


class TestShaCtr:
    KEY = bytes(range(16))
    NONCE = bytes(range(16, 32))

    @pytest.mark.parametrize(
        "size",
        [0, 1, 31, 32, 33, 352, 4095, 4096, 4097, 65535, 65536, 65537, 131073],
    )
    def test_matches_reference_across_chunk_boundaries(self, size):
        clear_keystream_cache()
        data = bytes((i * 37 + 11) & 0xFF for i in range(size))
        cipher = ShaCtrCipher(self.KEY)
        assert cipher.xor(self.NONCE, data) == _naive_shactr(self.KEY, self.NONCE, data)

    def test_xor_is_an_involution(self):
        cipher = ShaCtrCipher(self.KEY)
        data = b"round trip" * 100
        assert cipher.xor(self.NONCE, cipher.xor(self.NONCE, data)) == data

    def test_memoryview_inputs_match_bytes(self):
        cipher = ShaCtrCipher(self.KEY)
        data = bytes(range(256)) * 3
        assert cipher.xor(memoryview(self.NONCE), memoryview(data)) == cipher.xor(
            self.NONCE, data
        )

    def test_keystream_memo_hit_equals_recompute(self):
        clear_keystream_cache()
        data = b"z" * 300
        hit = ShaCtrCipher(self.KEY).xor(self.NONCE, data)  # miss: fills memo
        again = ShaCtrCipher(self.KEY).xor(self.NONCE, data)  # hit: same bytes
        clear_keystream_cache()
        fresh = ShaCtrCipher(self.KEY).xor(self.NONCE, data)
        assert hit == again == fresh

    def test_keystream_memo_distinguishes_keys_and_nonces(self):
        clear_keystream_cache()
        data = bytes(64)
        a = ShaCtrCipher(self.KEY).xor(self.NONCE, data)
        b = ShaCtrCipher(bytes(16)).xor(self.NONCE, data)
        c = ShaCtrCipher(self.KEY).xor(bytes(16), data)
        assert len({a, b, c}) == 3

    def test_keystream_memo_stays_bounded(self):
        clear_keystream_cache()
        cipher = ShaCtrCipher(self.KEY)
        for i in range(fastcipher._KEYSTREAM_CACHE_MAX + 50):
            cipher.xor(i.to_bytes(16, "big"), b"x")
        assert len(fastcipher._keystream_cache) <= fastcipher._KEYSTREAM_CACHE_MAX

    def test_oversized_streams_are_not_cached(self):
        clear_keystream_cache()
        ShaCtrCipher(self.KEY).xor(self.NONCE, bytes(fastcipher._CACHEABLE_BYTES + 1))
        assert not fastcipher._keystream_cache


# -- cache invalidation on re-key -------------------------------------------


def _layer(is_client: bool, secret: bytes = SECRET) -> McTLSRecordLayer:
    layer = McTLSRecordLayer(is_client=is_client)
    layer.set_suite(SUITE)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(secret, RC, RS))
    layer.install_context_keys(1, mk.ckd_context_keys(secret, RC, RS, 1))
    layer.activate_write()
    layer.activate_read()
    return layer


def _roundtrip(client: McTLSRecordLayer, server: McTLSRecordLayer, payload: bytes):
    server.feed(client.encode(APPLICATION_DATA, payload, 1))
    return server.read_record()


class TestRekeyInvalidation:
    def test_install_context_keys_drops_cached_state(self):
        client, server = _layer(True), _layer(False)
        assert _roundtrip(client, server, b"before rekey").payload == b"before rekey"
        new_keys = mk.ckd_context_keys(b"T" * 48, RC, RS, 1)
        client.install_context_keys(1, new_keys)
        server.install_context_keys(1, new_keys)
        record = _roundtrip(client, server, b"after rekey")
        assert record.payload == b"after rekey"
        assert record.legally_modified is False

    def test_set_endpoint_keys_drops_cached_state(self):
        client, server = _layer(True), _layer(False)
        _roundtrip(client, server, b"warm the caches")
        new_ep = mk.derive_endpoint_keys(b"U" * 48, RC, RS)
        client.set_endpoint_keys(new_ep)
        server.set_endpoint_keys(new_ep)
        # Endpoint keys feed the MAC_endpoints slot of every context, so
        # the context-1 state must have been rebuilt on both sides.
        record = _roundtrip(client, server, b"after endpoint rekey")
        assert record.payload == b"after endpoint rekey"
        assert record.legally_modified is False

    def test_processor_install_drops_cached_state(self):
        client = _layer(True)
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(1, Permission.WRITE, mk.ckd_context_keys(SECRET, RC, RS, 1))
        proc.activate()
        wire = client.encode(APPLICATION_DATA, b"first", 1)
        ct, cid, frag, _ = next(split_records(bytearray(wire)))
        assert proc.open_record(ct, cid, frag).payload == b"first"

        new_secret = b"V" * 48
        client2 = _layer(True, secret=new_secret)
        proc.install(1, Permission.WRITE, mk.ckd_context_keys(new_secret, RC, RS, 1))
        proc.seq = 0  # fresh session on the rekeyed keys
        wire = client2.encode(APPLICATION_DATA, b"second", 1)
        ct, cid, frag, _ = next(split_records(bytearray(wire)))
        assert proc.open_record(ct, cid, frag).payload == b"second"

    def test_processor_opaque_contexts_are_cached_but_rekeyable(self):
        client = _layer(True)
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(1, Permission.NONE, None)
        proc.activate()
        wire = client.encode(APPLICATION_DATA, b"hidden", 1)
        ct, cid, frag, raw = next(split_records(bytearray(wire)))
        opened = proc.open_record(ct, cid, frag)
        assert opened.payload is None
        assert opened.permission is Permission.NONE
        # Granting keys later must bust the cached "opaque" verdict.
        proc.install(1, Permission.READ, mk.ckd_context_keys(SECRET, RC, RS, 1))
        proc.seq = 1  # continue the same sequence space
        wire = client.encode(APPLICATION_DATA, b"visible", 1)
        ct, cid, frag, _ = next(split_records(bytearray(wire)))
        assert proc.open_record(ct, cid, frag).payload == b"visible"

    def test_rebuild_without_write_permission_is_rejected(self):
        client = _layer(True)
        proc = MiddleboxRecordProcessor(SUITE, mk.C2S)
        proc.install(1, Permission.READ, mk.ckd_context_keys(SECRET, RC, RS, 1))
        proc.activate()
        wire = client.encode(APPLICATION_DATA, b"read only", 1)
        ct, cid, frag, _ = next(split_records(bytearray(wire)))
        opened = proc.open_record(ct, cid, frag)
        with pytest.raises(McTLSRecordError, match="lacks write permission"):
            proc.rebuild_record(opened, b"tampered")
