"""Tests for McTLSMiddlebox relay internals: ordering, alerts, chains."""

import pytest

from repro.mctls import ContextDefinition, Permission
from repro.mctls.session import McTLSApplicationData
from repro.tls.connection import AlertReceived, ConnectionClosed, TLSError

from tests.mctls_helpers import build_session


def ctx(ctx_id, perms=None):
    return ContextDefinition(ctx_id, f"ctx{ctx_id}", perms or {})


def app_events(events):
    return [e for e in events if isinstance(e, McTLSApplicationData)]


class TestDataPlumbing:
    def test_many_records_in_order(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1, {1: Permission.READ})]
        )
        for i in range(50):
            client.send_application_data(f"msg-{i:02d}".encode(), context_id=1)
        events = chain.pump()
        received = [e.data for e in app_events(events)]
        assert received == [f"msg-{i:02d}".encode() for i in range(50)]

    def test_large_payload_through_writer(self, ca, server_identity, mbox_identity):
        """Multi-record payloads survive a transforming writer."""
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ctx(1, {1: Permission.WRITE})],
            transformer=lambda d, c, data: data.replace(b"a", b"b"),
        )
        payload = b"a" * 40_000  # 3 records
        client.send_application_data(payload, context_id=1)
        events = chain.pump()
        received = b"".join(e.data for e in app_events(events))
        assert received == b"b" * 40_000
        assert all(e.legally_modified for e in app_events(events))

    def test_bidirectional_interleaving(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1), ctx(2)]
        )
        client.send_application_data(b"up-1", context_id=1)
        server.send_application_data(b"down-1", context_id=2)
        client.send_application_data(b"up-2", context_id=2)
        server.send_application_data(b"down-2", context_id=1)
        events = chain.pump()
        datas = {e.data for e in app_events(events)}
        assert datas == {b"up-1", b"up-2", b"down-1", b"down-2"}

    def test_transformer_exception_propagates(self, ca, server_identity, mbox_identity):
        def bad_transformer(d, c, data):
            raise ValueError("middlebox application bug")

        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ctx(1, {1: Permission.WRITE})],
            transformer=bad_transformer,
        )
        client.send_application_data(b"boom", context_id=1)
        with pytest.raises(ValueError):
            chain.pump()


class TestChainsOfMiddleboxes:
    def test_two_writers_compose(self, ca, server_identity, mbox_identities):
        """Both middleboxes transform in path order."""
        from repro.crypto.dh import GROUP_TEST_512
        from repro.mctls import McTLSClient, McTLSMiddlebox, McTLSServer, MiddleboxInfo, SessionTopology
        from repro.tls.connection import TLSConfig
        from repro.transport import Chain

        ids = mbox_identities[:2]
        topo = SessionTopology(
            middleboxes=[MiddleboxInfo(i + 1, ident.name) for i, ident in enumerate(ids)],
            contexts=[ctx(1, {1: Permission.WRITE, 2: Permission.WRITE})],
        )
        client = McTLSClient(
            TLSConfig(trusted_roots=[ca.certificate], server_name=server_identity.name,
                      dh_group=GROUP_TEST_512),
            topology=topo,
        )
        server = McTLSServer(
            TLSConfig(identity=server_identity, trusted_roots=[ca.certificate],
                      dh_group=GROUP_TEST_512),
        )
        m1 = McTLSMiddlebox(ids[0].name, TLSConfig(identity=ids[0], trusted_roots=[ca.certificate]),
                            transformer=lambda d, c, data: data + b"+m1")
        m2 = McTLSMiddlebox(ids[1].name, TLSConfig(identity=ids[1], trusted_roots=[ca.certificate]),
                            transformer=lambda d, c, data: data + b"+m2")
        chain = Chain(client, [m1, m2], server)
        client.start_handshake()
        chain.pump()
        client.send_application_data(b"base", context_id=1)
        events = chain.pump()
        assert app_events(events)[0].data == b"base+m1+m2"
        # And the reverse direction composes the other way.
        server.send_application_data(b"resp", context_id=1)
        events = chain.pump()
        assert app_events(events)[0].data == b"resp+m2+m1"

    def test_mixed_permissions_along_path(self, ca, server_identity, mbox_identities):
        """Reader + no-access middleboxes coexist on one path."""
        from repro.crypto.dh import GROUP_TEST_512
        from repro.mctls import McTLSClient, McTLSMiddlebox, McTLSServer, MiddleboxInfo, SessionTopology
        from repro.tls.connection import TLSConfig
        from repro.transport import Chain

        ids = mbox_identities[:2]
        topo = SessionTopology(
            middleboxes=[MiddleboxInfo(i + 1, ident.name) for i, ident in enumerate(ids)],
            contexts=[ctx(1, {1: Permission.READ})],  # m2 gets nothing
        )
        seen1, seen2 = [], []
        client = McTLSClient(
            TLSConfig(trusted_roots=[ca.certificate], server_name=server_identity.name,
                      dh_group=GROUP_TEST_512),
            topology=topo,
        )
        server = McTLSServer(
            TLSConfig(identity=server_identity, trusted_roots=[ca.certificate],
                      dh_group=GROUP_TEST_512),
        )
        m1 = McTLSMiddlebox(ids[0].name, TLSConfig(identity=ids[0], trusted_roots=[ca.certificate]),
                            observer=lambda d, c, data: seen1.append(data))
        m2 = McTLSMiddlebox(ids[1].name, TLSConfig(identity=ids[1], trusted_roots=[ca.certificate]),
                            observer=lambda d, c, data: seen2.append(data))
        chain = Chain(client, [m1, m2], server)
        client.start_handshake()
        chain.pump()
        client.send_application_data(b"peek", context_id=1)
        events = chain.pump()
        assert app_events(events)[0].data == b"peek"
        assert seen1 == [b"peek"]
        assert seen2 == []


class TestAlertsAndClose:
    def test_close_notify_traverses_middlebox(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1)]
        )
        client.close()
        events = chain.pump()
        assert any(isinstance(e, ConnectionClosed) for e in events)
        assert any(
            isinstance(e, AlertReceived) and e.description == 0 for e in events
        )
        assert server.closed

    def test_send_after_close_rejected(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1)]
        )
        client.close()
        chain.pump()
        with pytest.raises(TLSError):
            client.send_application_data(b"late", context_id=1)

    def test_closed_middlebox_stops_relaying(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1)]
        )
        mboxes[0].closed = True
        client.send_application_data(b"dropped", context_id=1)
        events = chain.pump()
        assert app_events(events) == []
