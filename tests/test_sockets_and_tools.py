"""Integration tests: real localhost sockets and the s_time tool."""

import socket
import threading

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import Mode
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.sockets import (
    EndpointServer,
    RelayServer,
    SessionEnded,
    SocketConnection,
    connect,
)
from repro.tls import TLSClient, TLSServer
from repro.tls.connection import TLSConfig
from repro.tls.sessioncache import ClientSessionStore, SessionCache
from repro.tools.s_time import MODE_NAMES, run_s_time


@pytest.fixture()
def topology(mbox_identity):
    return SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=[
            ContextDefinition(1, "request", {1: Permission.READ}),
            ContextDefinition(2, "response", {1: Permission.READ}),
        ],
    )


class TestLiveTLS:
    def test_tls_over_loopback(self, ca, server_identity):
        def handle(conn):
            conn.handshake()
            event = conn.recv_app_data()
            conn.send(b"pong:" + event.data)

        server = EndpointServer(
            ("127.0.0.1", 0),
            connection_factory=lambda: TLSServer(
                TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
            ),
            handler=handle,
        ).start()
        try:
            client = connect(
                ("127.0.0.1", server.port),
                TLSClient(
                    TLSConfig(
                        trusted_roots=[ca.certificate],
                        server_name="server.example",
                        dh_group=GROUP_TEST_512,
                    )
                ),
            )
            client.handshake()
            client.send(b"ping")
            reply = client.recv_app_data()
            assert reply.data == b"pong:ping"
            client.close()
        finally:
            server.stop()


class TestLiveMcTLS:
    def test_mctls_through_relay_over_loopback(
        self, ca, server_identity, mbox_identity, topology
    ):
        observed = []

        def handle(conn):
            conn.handshake()
            event = conn.recv_app_data()
            conn.send(b"echo:" + event.data, context_id=2)

        server = EndpointServer(
            ("127.0.0.1", 0),
            connection_factory=lambda: McTLSServer(
                TLSConfig(
                    identity=server_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                )
            ),
            handler=handle,
        ).start()
        relay = RelayServer(
            ("127.0.0.1", 0),
            upstream_addr=("127.0.0.1", server.port),
            relay_factory=lambda: McTLSMiddlebox(
                mbox_identity.name,
                TLSConfig(
                    identity=mbox_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                ),
                observer=lambda d, ctx, data: observed.append((ctx, data)),
            ),
        ).start()
        try:
            client = connect(
                ("127.0.0.1", relay.port),
                McTLSClient(
                    TLSConfig(
                        trusted_roots=[ca.certificate],
                        server_name="server.example",
                        dh_group=GROUP_TEST_512,
                    ),
                    topology=topology,
                ),
            )
            client.handshake()
            client.send(b"live!", context_id=1)
            reply = client.recv_app_data()
            assert reply.data == b"echo:live!"
            assert reply.context_id == 2
            assert (1, b"live!") in observed
            client.close()
        finally:
            relay.stop()
            server.stop()

    def test_concurrent_sessions_through_one_relay(
        self, ca, server_identity, mbox_identity, topology
    ):
        def handle(conn):
            conn.handshake()
            event = conn.recv_app_data()
            conn.send(event.data.upper(), context_id=2)

        server = EndpointServer(
            ("127.0.0.1", 0),
            connection_factory=lambda: McTLSServer(
                TLSConfig(
                    identity=server_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                )
            ),
            handler=handle,
        ).start()
        relay = RelayServer(
            ("127.0.0.1", 0),
            upstream_addr=("127.0.0.1", server.port),
            relay_factory=lambda: McTLSMiddlebox(
                mbox_identity.name,
                TLSConfig(
                    identity=mbox_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                ),
            ),
        ).start()

        results = {}

        def run_client(tag):
            client = connect(
                ("127.0.0.1", relay.port),
                McTLSClient(
                    TLSConfig(
                        trusted_roots=[ca.certificate],
                        server_name="server.example",
                        dh_group=GROUP_TEST_512,
                    ),
                    topology=topology,
                ),
            )
            client.handshake()
            client.send(tag.encode(), context_id=1)
            results[tag] = client.recv_app_data().data
            client.close()

        try:
            threads = [
                threading.Thread(target=run_client, args=(f"client-{i}",))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert results == {
                f"client-{i}": f"CLIENT-{i}".encode() for i in range(3)
            }
        finally:
            relay.stop()
            server.stop()


class _Sink:
    """A sans-I/O stand-in that consumes anything and never progresses."""

    def __init__(self, handshake_complete=True):
        self.handshake_complete = handshake_complete
        self.closed = False
        self.resumed = False

    def start_handshake(self):
        pass

    def receive_data(self, data):
        return []

    def data_to_send(self):
        return b""

    def send_application_data(self, data, context_id=0):
        pass

    def close(self):
        self.closed = True


class TestSocketRobustness:
    def test_pump_until_bounds_garbage_stream(self):
        """A peer streaming junk forever trips the byte bound instead of
        pinning the pump loop."""
        left, right = socket.socketpair()
        stop = threading.Event()

        def stream():
            junk = b"\xaa" * 65536
            while not stop.is_set():
                try:
                    left.sendall(junk)
                except OSError:
                    return

        thread = threading.Thread(target=stream, daemon=True)
        thread.start()
        try:
            conn = SocketConnection(_Sink(), right)
            with pytest.raises(ConnectionError, match="without progress"):
                conn.pump_until(
                    lambda: False, timeout=10.0, max_bytes=256 * 1024
                )
        finally:
            stop.set()
            right.close()
            left.close()
            thread.join(timeout=5)

    def test_half_close_after_handshake_is_session_ended(self):
        left, right = socket.socketpair()
        try:
            conn = SocketConnection(_Sink(handshake_complete=True), right)
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(SessionEnded):
                conn.recv_app_data(timeout=5.0)
        finally:
            right.close()
            left.close()

    def test_eof_mid_handshake_is_a_plain_connection_error(self):
        left, right = socket.socketpair()
        try:
            conn = SocketConnection(_Sink(handshake_complete=False), right)
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(ConnectionError) as excinfo:
                conn.pump_until(lambda: False, timeout=5.0)
            assert not isinstance(excinfo.value, SessionEnded)
        finally:
            right.close()
            left.close()

    def test_session_cache_threaded_through_endpoint_server(
        self, ca, server_identity, client_config
    ):
        """A cache handed to EndpointServer reaches every per-connection
        protocol object, so a client with a session store resumes."""
        cache = SessionCache(capacity=8)

        def handle(conn):
            conn.handshake()
            event = conn.recv_app_data()
            conn.send(event.data)

        server = EndpointServer(
            ("127.0.0.1", 0),
            connection_factory=lambda session_cache: TLSServer(
                TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512),
                session_cache=session_cache,
            ),
            handler=handle,
            session_cache=cache,
        ).start()
        store = ClientSessionStore(capacity=8)

        def one_session():
            client = connect(
                ("127.0.0.1", server.port),
                TLSClient(client_config, session_store=store),
            )
            client.handshake()
            resumed = client.connection.resumed
            client.send(b"hi")
            assert client.recv_app_data().data == b"hi"
            client.close()
            return resumed

        try:
            assert one_session() is False  # full handshake seeds the cache
            assert one_session() is True  # abbreviated handshake
            assert cache.stats.hits == 1
            assert len(cache) >= 1
        finally:
            server.stop()


class TestSTime:
    def test_run_s_time_counts_handshakes(self):
        stats = run_s_time(
            Mode.NO_ENCRYPT, seconds=0.2, n_middleboxes=0, key_bits=512
        )
        assert stats["connections"] > 0
        assert stats["connections_per_second"] > 0

    def test_mode_names_complete(self):
        assert set(MODE_NAMES.values()) == set(Mode)

    def test_cli_main(self, capsys):
        from repro.tools.s_time import main

        assert main(["--mode", "plain", "--seconds", "0.1", "--middleboxes", "0",
                     "--key-bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "connections/sec" in out

    def test_cli_async_drives_load_generator(self, capsys):
        from repro.tools.s_time import main

        assert main(["--mode", "plain", "--async", "--connections", "6",
                     "--concurrency", "3", "--middleboxes", "0",
                     "--key-bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "connections/sec" in out
        assert "p50=" in out
        assert "0 failed" in out
