"""Integration tests: real localhost sockets and the s_time tool."""

import threading

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import Mode
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.sockets import EndpointServer, RelayServer, connect
from repro.tls import TLSClient, TLSServer
from repro.tls.connection import TLSConfig
from repro.tools.s_time import MODE_NAMES, run_s_time


@pytest.fixture()
def topology(mbox_identity):
    return SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=[
            ContextDefinition(1, "request", {1: Permission.READ}),
            ContextDefinition(2, "response", {1: Permission.READ}),
        ],
    )


class TestLiveTLS:
    def test_tls_over_loopback(self, ca, server_identity):
        def handle(conn):
            conn.handshake()
            event = conn.recv_app_data()
            conn.send(b"pong:" + event.data)

        server = EndpointServer(
            ("127.0.0.1", 0),
            connection_factory=lambda: TLSServer(
                TLSConfig(identity=server_identity, dh_group=GROUP_TEST_512)
            ),
            handler=handle,
        ).start()
        try:
            client = connect(
                ("127.0.0.1", server.port),
                TLSClient(
                    TLSConfig(
                        trusted_roots=[ca.certificate],
                        server_name="server.example",
                        dh_group=GROUP_TEST_512,
                    )
                ),
            )
            client.handshake()
            client.send(b"ping")
            reply = client.recv_app_data()
            assert reply.data == b"pong:ping"
            client.close()
        finally:
            server.stop()


class TestLiveMcTLS:
    def test_mctls_through_relay_over_loopback(
        self, ca, server_identity, mbox_identity, topology
    ):
        observed = []

        def handle(conn):
            conn.handshake()
            event = conn.recv_app_data()
            conn.send(b"echo:" + event.data, context_id=2)

        server = EndpointServer(
            ("127.0.0.1", 0),
            connection_factory=lambda: McTLSServer(
                TLSConfig(
                    identity=server_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                )
            ),
            handler=handle,
        ).start()
        relay = RelayServer(
            ("127.0.0.1", 0),
            upstream_addr=("127.0.0.1", server.port),
            relay_factory=lambda: McTLSMiddlebox(
                mbox_identity.name,
                TLSConfig(
                    identity=mbox_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                ),
                observer=lambda d, ctx, data: observed.append((ctx, data)),
            ),
        ).start()
        try:
            client = connect(
                ("127.0.0.1", relay.port),
                McTLSClient(
                    TLSConfig(
                        trusted_roots=[ca.certificate],
                        server_name="server.example",
                        dh_group=GROUP_TEST_512,
                    ),
                    topology=topology,
                ),
            )
            client.handshake()
            client.send(b"live!", context_id=1)
            reply = client.recv_app_data()
            assert reply.data == b"echo:live!"
            assert reply.context_id == 2
            assert (1, b"live!") in observed
            client.close()
        finally:
            relay.stop()
            server.stop()

    def test_concurrent_sessions_through_one_relay(
        self, ca, server_identity, mbox_identity, topology
    ):
        def handle(conn):
            conn.handshake()
            event = conn.recv_app_data()
            conn.send(event.data.upper(), context_id=2)

        server = EndpointServer(
            ("127.0.0.1", 0),
            connection_factory=lambda: McTLSServer(
                TLSConfig(
                    identity=server_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                )
            ),
            handler=handle,
        ).start()
        relay = RelayServer(
            ("127.0.0.1", 0),
            upstream_addr=("127.0.0.1", server.port),
            relay_factory=lambda: McTLSMiddlebox(
                mbox_identity.name,
                TLSConfig(
                    identity=mbox_identity,
                    trusted_roots=[ca.certificate],
                    dh_group=GROUP_TEST_512,
                ),
            ),
        ).start()

        results = {}

        def run_client(tag):
            client = connect(
                ("127.0.0.1", relay.port),
                McTLSClient(
                    TLSConfig(
                        trusted_roots=[ca.certificate],
                        server_name="server.example",
                        dh_group=GROUP_TEST_512,
                    ),
                    topology=topology,
                ),
            )
            client.handshake()
            client.send(tag.encode(), context_id=1)
            results[tag] = client.recv_app_data().data
            client.close()

        try:
            threads = [
                threading.Thread(target=run_client, args=(f"client-{i}",))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert results == {
                f"client-{i}": f"CLIENT-{i}".encode() for i in range(3)
            }
        finally:
            relay.stop()
            server.stop()


class TestSTime:
    def test_run_s_time_counts_handshakes(self):
        stats = run_s_time(
            Mode.NO_ENCRYPT, seconds=0.2, n_middleboxes=0, key_bits=512
        )
        assert stats["connections"] > 0
        assert stats["connections_per_second"] > 0

    def test_mode_names_complete(self):
        assert set(MODE_NAMES.values()) == set(Mode)

    def test_cli_main(self, capsys):
        from repro.tools.s_time import main

        assert main(["--mode", "plain", "--seconds", "0.1", "--middleboxes", "0",
                     "--key-bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "connections/sec" in out
