"""Cross-suite negotiation: offering {SHA-CTR, AES-CTR, ChaCha20} in
every order, server policy picking each, clean mismatch failure, and the
no-silent-suite-switch guarantees on both resumption paths.

The provider suites are negotiated like any other suite — by id in the
ClientHello, sealed into tickets and session caches — so these tests
drive real handshakes end to end, seeded for determinism.  The
OpenSSL-dependent cases skip when ``cryptography`` is absent; the
never-switch guarantees are also exercised pure-vs-pure so they hold
everywhere.
"""

from __future__ import annotations

import dataclasses
import itertools
import random

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.crypto.provider import OPENSSL
from repro.mctls import (
    ContextDefinition,
    McTLSApplicationData,
    McTLSClient,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
    SUITES,
)
from repro.tls.client import TLSClient
from repro.tls.connection import ApplicationData, TLSConfig, TLSError
from repro.tls.server import TLSServer
from repro.tls.sessioncache import SessionCache
from repro.tls.tickets import TicketKeyManager
from repro.transport import Chain, pump

needs_openssl = pytest.mark.skipif(
    not OPENSSL.available, reason="cryptography package not importable"
)


class _Store(dict):
    """Minimal get/put client-side store (sessions or tickets)."""

    def put(self, key, value):
        self[key] = value

SEEDS = (11, 2718)

STREAM_SUITE_IDS = (0xFF67, 0xFF68, 0xFF69)  # SHA-CTR, AES-CTR, ChaCha20


def _stream_suites():
    return [SUITES[sid] for sid in STREAM_SUITE_IDS]


def _client_config(ca, suites, server_name="server.example"):
    return TLSConfig(
        trusted_roots=[ca.certificate],
        server_name=server_name,
        dh_group=GROUP_TEST_512,
        cipher_suites=tuple(suites),
    )


def _server_config(ca, server_identity, suites):
    return TLSConfig(
        identity=server_identity,
        trusted_roots=[ca.certificate],
        dh_group=GROUP_TEST_512,
        cipher_suites=tuple(suites),
    )


def _run_tls(client, server, payload):
    client.start_handshake()
    pump(client, server)
    assert client.handshake_complete and server.handshake_complete
    client.send_application_data(payload)
    server.send_application_data(payload[::-1])
    events = pump(client, server)
    data = [e.data for e in events if isinstance(e, ApplicationData)]
    assert sorted(data) == sorted([payload, payload[::-1]])


# -- offer-order / policy matrix ----------------------------------------------


@needs_openssl
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("order", list(itertools.permutations(range(3))))
def test_server_picks_first_offered_supported_suite(
    ca, server_identity, seed, order
):
    """The server picks the first client-offered suite it supports, so
    client preference order decides whenever the server allows all."""
    suites = _stream_suites()
    offered = [suites[i] for i in order]
    client = TLSClient(_client_config(ca, offered))
    server = TLSServer(_server_config(ca, server_identity, suites))
    _run_tls(client, server, random.Random(seed).randbytes(80))
    assert client.negotiated_suite.suite_id == offered[0].suite_id
    assert server.negotiated_suite.suite_id == offered[0].suite_id


@needs_openssl
@pytest.mark.parametrize("picked_id", STREAM_SUITE_IDS)
def test_server_policy_forces_each_suite(ca, server_identity, picked_id):
    """A server restricted to one suite steers any offer order to it."""
    client = TLSClient(_client_config(ca, _stream_suites()))
    server = TLSServer(_server_config(ca, server_identity, [SUITES[picked_id]]))
    _run_tls(client, server, b"policy-pick")
    assert client.negotiated_suite.suite_id == picked_id
    assert server.negotiated_suite.suite_id == picked_id


@needs_openssl
@pytest.mark.parametrize("picked_id", STREAM_SUITE_IDS)
def test_mctls_negotiates_each_suite_through_middlebox(
    ca, server_identity, mbox_identity, picked_id
):
    """Full mcTLS handshake + data through one READ middlebox under each
    stream suite: the suite id propagates to every hop's record layer."""
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=[ContextDefinition(1, "c1", {1: Permission.READ})],
    )
    from repro.mctls import McTLSMiddlebox

    client = McTLSClient(
        _client_config(ca, [SUITES[picked_id]], server_name=server_identity.name),
        topology=topology,
    )
    server = McTLSServer(_server_config(ca, server_identity, _stream_suites()))
    mbox = McTLSMiddlebox(
        mbox_identity.name,
        TLSConfig(
            identity=mbox_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
            cipher_suites=tuple(_stream_suites()),
        ),
    )
    chain = Chain(client, [mbox], server)
    got = []
    chain.on_server_event = got.append
    client.start_handshake()
    chain.pump()
    assert client.handshake_complete and server.handshake_complete
    assert client.negotiated_suite.suite_id == picked_id
    assert server.negotiated_suite.suite_id == picked_id
    client.send_application_data(b"through the middlebox", context_id=1)
    chain.pump()
    app = [e for e in got if isinstance(e, McTLSApplicationData)]
    assert app and app[0].data == b"through the middlebox"


def test_no_mutually_supported_suite_fails_cleanly(ca, server_identity):
    client = TLSClient(_client_config(ca, [SUITE_DHE_RSA_SHACTR_SHA256]))
    server = TLSServer(
        _server_config(ca, server_identity, [SUITE_DHE_RSA_AES128_CBC_SHA256])
    )
    client.start_handshake()
    with pytest.raises(TLSError, match="no mutually supported cipher suite"):
        pump(client, server)


@needs_openssl
def test_unknown_selected_suite_rejected_by_client(ca, server_identity):
    """A server picking a suite the client never offered must abort the
    client, not install it."""
    client = TLSClient(_client_config(ca, [SUITE_DHE_RSA_SHACTR_SHA256]))
    server = TLSServer(
        _server_config(
            ca, server_identity, [SUITES[0xFF68], SUITE_DHE_RSA_SHACTR_SHA256]
        )
    )
    # Hostile server: claim support for everything the client offered,
    # then select AES-CTR anyway by rewriting the config between hello
    # processing and selection is not reachable from outside; instead
    # present a client that never offered what the server must pick.
    server.config = _server_config(ca, server_identity, [SUITES[0xFF68]])
    client.start_handshake()
    with pytest.raises(TLSError):
        pump(client, server)
    assert not client.handshake_complete


# -- resumption can never switch suites ---------------------------------------


def _resume_pair(ca, server_identity, client_suites, server_suites, store, cache):
    client = TLSClient(_client_config(ca, client_suites), session_store=store)
    server = TLSServer(
        _server_config(ca, server_identity, server_suites), session_cache=cache
    )
    return client, server


@needs_openssl
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("picked_id", STREAM_SUITE_IDS)
def test_session_cache_resumption_keeps_suite(ca, server_identity, seed, picked_id):
    store, cache = _Store(), SessionCache()
    payload = random.Random(seed).randbytes(60)
    for round_no in range(2):
        client, server = _resume_pair(
            ca,
            server_identity,
            [SUITES[picked_id]] + _stream_suites(),
            _stream_suites(),
            store,
            cache,
        )
        _run_tls(client, server, payload)
        assert client.resumed == server.resumed == (round_no == 1)
        assert client.negotiated_suite.suite_id == picked_id
        assert server.negotiated_suite.suite_id == picked_id


def test_resumption_dropped_when_suite_no_longer_offered(ca, server_identity):
    """Round 2 removes the original suite from the client's offer: the
    cached session must be skipped (full handshake), never resumed under
    a different suite."""
    store, cache = _Store(), SessionCache()
    client, server = _resume_pair(
        ca,
        server_identity,
        [SUITE_DHE_RSA_SHACTR_SHA256],
        [SUITE_DHE_RSA_SHACTR_SHA256, SUITE_DHE_RSA_AES128_CBC_SHA256],
        store,
        cache,
    )
    _run_tls(client, server, b"first")
    client, server = _resume_pair(
        ca,
        server_identity,
        [SUITE_DHE_RSA_AES128_CBC_SHA256],
        [SUITE_DHE_RSA_SHACTR_SHA256, SUITE_DHE_RSA_AES128_CBC_SHA256],
        store,
        cache,
    )
    _run_tls(client, server, b"second")
    assert not client.resumed and not server.resumed
    assert client.negotiated_suite.suite_id == 0x0067


def test_tampered_cached_suite_aborts_resumption(ca, server_identity):
    """Poisoned client store: the cached state claims a different suite
    than the server sealed.  The server resumes under the original; the
    client must abort — a resumed session can never switch suites."""
    store, cache = _Store(), SessionCache()
    client, server = _resume_pair(
        ca,
        server_identity,
        [SUITE_DHE_RSA_SHACTR_SHA256, SUITE_DHE_RSA_AES128_CBC_SHA256],
        [SUITE_DHE_RSA_SHACTR_SHA256, SUITE_DHE_RSA_AES128_CBC_SHA256],
        store,
        cache,
    )
    _run_tls(client, server, b"seed round")
    # Flip the sealed suite id in the client's cached state.
    state_key, state = next(
        (k, v) for k, v in store.items() if v.cipher_suite_id == 0xFF67
    )
    store.put(state_key, dataclasses.replace(state, cipher_suite_id=0x0067))
    client, server = _resume_pair(
        ca,
        server_identity,
        [SUITE_DHE_RSA_SHACTR_SHA256, SUITE_DHE_RSA_AES128_CBC_SHA256],
        [SUITE_DHE_RSA_SHACTR_SHA256, SUITE_DHE_RSA_AES128_CBC_SHA256],
        store,
        cache,
    )
    client.start_handshake()
    with pytest.raises(TLSError, match="original cipher suite"):
        pump(client, server)
    assert not client.handshake_complete


@needs_openssl
@pytest.mark.parametrize("picked_id", STREAM_SUITE_IDS)
def test_ticket_resumption_keeps_suite(ca, server_identity, picked_id):
    manager = TicketKeyManager()
    tickets = _Store()
    for round_no in range(2):
        client = TLSClient(
            _client_config(ca, [SUITES[picked_id]] + _stream_suites()),
            ticket_store=tickets,
        )
        server = TLSServer(
            _server_config(ca, server_identity, _stream_suites()),
            ticket_manager=manager,
        )
        _run_tls(client, server, b"ticketed")
        assert client.resumed == server.resumed == (round_no == 1)
        assert client.negotiated_suite.suite_id == picked_id


def test_bitflipped_ticket_refuses_resumption(ca, server_identity):
    """Every byte of the sealed ticket is covered by its MAC: flipping
    the sealed suite byte (or any other) must fall back to a full
    handshake — never resume, never switch suites silently."""
    manager = TicketKeyManager()
    tickets = _Store()
    client = TLSClient(
        _client_config(ca, [SUITE_DHE_RSA_SHACTR_SHA256]), ticket_store=tickets
    )
    server = TLSServer(
        _server_config(ca, server_identity, [SUITE_DHE_RSA_SHACTR_SHA256]),
        ticket_manager=manager,
    )
    _run_tls(client, server, b"issue me a ticket")

    assert tickets, "client holds no ticket after full handshake"
    key, ticket = next(iter(tickets.items()))
    blob = bytearray(ticket.ticket)
    # The sealed TLS payload is master_secret || suite_id || name; flip a
    # byte in the suite-id region (and implicitly break the MAC).
    flip_at = len(blob) - 3
    blob[flip_at] ^= 0x01
    tickets.put(key, dataclasses.replace(ticket, ticket=bytes(blob)))

    client = TLSClient(
        _client_config(ca, [SUITE_DHE_RSA_SHACTR_SHA256]), ticket_store=tickets
    )
    server = TLSServer(
        _server_config(ca, server_identity, [SUITE_DHE_RSA_SHACTR_SHA256]),
        ticket_manager=manager,
    )
    _run_tls(client, server, b"tampered ticket round")
    assert not client.resumed and not server.resumed
    assert client.negotiated_suite.suite_id == 0xFF67
