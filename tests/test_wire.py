"""Unit and property tests for the wire-format reader/writer."""

import pytest
from hypothesis import given, strategies as st

from repro.wire import DecodeError, Reader, Writer


class TestWriter:
    def test_fixed_width_integers(self):
        data = Writer().u8(1).u16(2).u24(3).u32(4).u64(5).bytes()
        r = Reader(data)
        assert (r.u8(), r.u16(), r.u24(), r.u32(), r.u64()) == (1, 2, 3, 4, 5)
        assert r.exhausted

    def test_integer_overflow_rejected(self):
        with pytest.raises(ValueError):
            Writer().u8(256)
        with pytest.raises(ValueError):
            Writer().u16(1 << 16)
        with pytest.raises(ValueError):
            Writer().u24(1 << 24)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Writer().u8(-1)

    def test_vector_length_prefixes(self):
        data = Writer().vec8(b"ab").vec16(b"cd").vec24(b"ef").bytes()
        assert data == b"\x02ab\x00\x02cd\x00\x00\x02ef"

    def test_vector_too_long(self):
        with pytest.raises(ValueError):
            Writer().vec8(b"x" * 256)

    def test_strings_are_utf8(self):
        data = Writer().string8("héllo").bytes()
        assert Reader(data).string8() == "héllo"

    def test_len(self):
        w = Writer().u16(5).raw(b"abc")
        assert len(w) == 5


class TestReader:
    def test_truncated_read_raises(self):
        with pytest.raises(DecodeError):
            Reader(b"\x01").u16()

    def test_truncated_vector_raises(self):
        with pytest.raises(DecodeError):
            Reader(b"\x05ab").vec8()

    def test_expect_end(self):
        r = Reader(b"\x01\x02")
        r.u8()
        with pytest.raises(DecodeError):
            r.expect_end()
        r.u8()
        r.expect_end()

    def test_rest(self):
        r = Reader(b"abcdef")
        r.raw(2)
        assert r.rest() == b"cdef"
        assert r.exhausted

    def test_invalid_utf8_raises(self):
        data = Writer().vec8(b"\xff\xfe").bytes()
        with pytest.raises(DecodeError):
            Reader(data).string8()


@given(st.binary(max_size=300))
def test_vec16_roundtrip(data):
    assert Reader(Writer().vec16(data).bytes()).vec16() == data


@given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=20))
def test_u16_sequence_roundtrip(values):
    w = Writer()
    for v in values:
        w.u16(v)
    r = Reader(w.bytes())
    assert [r.u16() for _ in values] == values
    assert r.exhausted


@given(st.binary(max_size=64), st.binary(max_size=64), st.text(max_size=30))
def test_mixed_roundtrip(a, b, s):
    data = Writer().vec8(a).vec24(b).string16(s).bytes()
    r = Reader(data)
    assert r.vec8() == a
    assert r.vec24() == b
    assert r.string16() == s
    r.expect_end()
