"""Unit tests for the pluggable record-framing seam (``repro.framing``).

The framing instances are pure wire geometry — header pack/parse, MAC
prefix layout, trailer slot widths, vectorized scan patterns — so these
tests pin each geometry fact directly, independent of the record layers
built on top.
"""

from __future__ import annotations

import pytest

from repro import framing as frm
from repro.framing import (
    ALERT,
    APPLICATION_DATA,
    CHANGE_CIPHER_SPEC,
    COMPACT_MARKER_BASE,
    CONTENT_TYPES,
    HANDSHAKE,
    MAX_FRAGMENT,
    MAX_PLAINTEXT,
    MCTLS_COMPACT,
    MCTLS_COMPACT_VERSION,
    MCTLS_DEFAULT,
    MCTLS_VERSION,
    TLS_DEFAULT,
    TLS_VERSION,
    FramingError,
)

ALL = (TLS_DEFAULT, MCTLS_DEFAULT, MCTLS_COMPACT)


# -- registry ---------------------------------------------------------------


def test_registry_is_consistent():
    assert frm.FRAMINGS == ALL
    for f in ALL:
        assert frm.framing_by_id(f.framing_id) is f
        assert frm.framing_by_name(f.name) is f
        assert frm.FRAMING_BY_ID[f.framing_id] is f
        assert frm.FRAMING_BY_NAME[f.name] is f
    assert len({f.framing_id for f in ALL}) == len(ALL)
    assert len({f.name for f in ALL}) == len(ALL)


def test_unknown_lookups_raise_framing_error():
    with pytest.raises(FramingError):
        frm.framing_by_id(77)
    with pytest.raises(FramingError):
        frm.framing_by_name("mctls-imaginary")


def test_geometry_attributes():
    assert (TLS_DEFAULT.header_len, TLS_DEFAULT.mac_len) == (5, 32)
    assert (MCTLS_DEFAULT.header_len, MCTLS_DEFAULT.mac_len) == (6, 32)
    assert (MCTLS_COMPACT.header_len, MCTLS_COMPACT.mac_len) == (4, 8)
    assert not TLS_DEFAULT.carries_context_id
    assert MCTLS_DEFAULT.carries_context_id and MCTLS_COMPACT.carries_context_id
    assert MCTLS_COMPACT.field_macs
    assert not TLS_DEFAULT.field_macs and not MCTLS_DEFAULT.field_macs
    # The compact framing has no wire version bytes; the version it binds
    # into MACs is its own (domain separation between framings).
    assert MCTLS_COMPACT.wire_version is None
    assert MCTLS_COMPACT.mac_version == MCTLS_COMPACT_VERSION
    assert MCTLS_DEFAULT.mac_version == MCTLS_VERSION
    assert TLS_DEFAULT.mac_version == TLS_VERSION
    for f in ALL:
        assert f.nonce_len == 16
        assert f.max_fragment == MAX_FRAGMENT == MAX_PLAINTEXT + 2048


# -- header pack / parse ----------------------------------------------------


@pytest.mark.parametrize("f", ALL, ids=lambda f: f.name)
@pytest.mark.parametrize("content_type", CONTENT_TYPES)
def test_header_round_trip(f, content_type):
    for context_id, length in [(0, 0), (3, 1), (0 if not f.carries_context_id else 255, 0xFFFF)]:
        header = f.pack_header(content_type, context_id, length)
        assert len(header) == f.header_len
        assert header[0] == f.type_byte(content_type)
        got = f.parse_header(header)
        expected_ctx = context_id if f.carries_context_id else 0
        assert got == (content_type, expected_ctx, length)


def test_parse_header_honors_pos():
    header = MCTLS_COMPACT.pack_header(APPLICATION_DATA, 2, 7)
    assert MCTLS_COMPACT.parse_header(b"\xAA\xBB" + header, pos=2) == (
        APPLICATION_DATA,
        2,
        7,
    )


def test_type_bytes():
    assert TLS_DEFAULT.type_byte(HANDSHAKE) == HANDSHAKE
    assert MCTLS_DEFAULT.type_byte(HANDSHAKE) == HANDSHAKE
    # Compact markers 0xD0..0xD3 are disjoint from content types 20..23.
    markers = {MCTLS_COMPACT.type_byte(ct) for ct in CONTENT_TYPES}
    assert markers == {0xD0, 0xD1, 0xD2, 0xD3}
    assert markers.isdisjoint(set(CONTENT_TYPES))
    assert MCTLS_COMPACT.type_byte(CHANGE_CIPHER_SPEC) == COMPACT_MARKER_BASE


def test_parse_rejects_bad_content_type():
    bad_tls = bytes([99]) + TLS_DEFAULT.pack_header(ALERT, 0, 1)[1:]
    with pytest.raises(FramingError):
        TLS_DEFAULT.parse_header(bad_tls)
    bad_mctls = bytes([99]) + MCTLS_DEFAULT.pack_header(ALERT, 0, 1)[1:]
    with pytest.raises(FramingError):
        MCTLS_DEFAULT.parse_header(bad_mctls)


def test_parse_rejects_bad_version():
    tls = bytearray(TLS_DEFAULT.pack_header(HANDSHAKE, 0, 1))
    tls[1] ^= 0xFF
    with pytest.raises(FramingError):
        TLS_DEFAULT.parse_header(bytes(tls))
    mctls = bytearray(MCTLS_DEFAULT.pack_header(HANDSHAKE, 0, 1))
    mctls[2] ^= 0xFF
    with pytest.raises(FramingError):
        MCTLS_DEFAULT.parse_header(bytes(mctls))


def test_compact_parse_rejects_bad_marker():
    header = bytearray(MCTLS_COMPACT.pack_header(APPLICATION_DATA, 1, 5))
    header[0] = APPLICATION_DATA  # a default-framing first byte
    with pytest.raises(FramingError):
        MCTLS_COMPACT.parse_header(bytes(header))


def test_compact_pack_rejects_bad_content_type():
    with pytest.raises(FramingError):
        MCTLS_COMPACT.pack_header(42, 1, 5)


# -- MAC geometry -----------------------------------------------------------


def test_mac_prefix_domain_separation():
    """Identical record coordinates MAC differently under each framing —
    a compact record can never replay into a default-framed session."""
    coords = (7, APPLICATION_DATA, 1, 64)
    prefixes = {f.name: f.pack_mac_prefix(*coords) for f in ALL}
    assert len(set(prefixes.values())) == 3
    # mcTLS prefixes share a shape; only the bound version differs.
    assert len(prefixes["mctls-default"]) == len(prefixes["mctls-compact"]) == 14
    default, compact = prefixes["mctls-default"], prefixes["mctls-compact"]
    assert default[9:11] == MCTLS_VERSION.to_bytes(2, "big")
    assert compact[9:11] == MCTLS_COMPACT_VERSION.to_bytes(2, "big")
    assert default[:9] == compact[:9] and default[11:] == compact[11:]


def test_truncate_mac():
    digest = bytes(range(32))
    assert TLS_DEFAULT.truncate_mac(digest) == digest
    assert MCTLS_DEFAULT.truncate_mac(digest) == digest
    assert MCTLS_COMPACT.truncate_mac(digest) == digest[:8]


# -- vectorized scan geometry ----------------------------------------------


@pytest.mark.parametrize("f", ALL, ids=lambda f: f.name)
def test_scan_pattern_matches_packed_header(f):
    """The strided-scan byte pattern must agree with pack_header for every
    header byte except the context id slot."""
    context_id = 5 if f.carries_context_id else 0
    header = f.pack_header(APPLICATION_DATA, context_id, 0x1234)
    offsets, values = f.scan_pattern(APPLICATION_DATA, 0x1234)
    assert len(offsets) == len(values)
    for offset, value in zip(offsets, values):
        assert header[offset] == value
    # Every header byte is covered by scan offsets + the context id slot.
    covered = set(offsets)
    if f.context_id_offset is not None:
        assert f.context_id_offset not in covered
        covered.add(f.context_id_offset)
    assert covered == set(range(f.header_len))


@pytest.mark.parametrize("f", ALL, ids=lambda f: f.name)
def test_grid_pattern_pins_context_id_and_skips_version(f):
    context_id = 9 if f.carries_context_id else 0
    header = f.pack_header(HANDSHAKE, context_id, 0x00FF)
    offsets, values = f.grid_pattern(HANDSHAKE, context_id, 0x00FF)
    for offset, value in zip(offsets, values):
        assert header[offset] == value
    if f.context_id_offset is not None:
        assert f.context_id_offset in offsets


# -- framing detection ------------------------------------------------------


def test_detect_mctls_framing():
    for ct in CONTENT_TYPES:
        assert frm.detect_mctls_framing(ct) is MCTLS_DEFAULT
        assert (
            frm.detect_mctls_framing(MCTLS_COMPACT.type_byte(ct)) is MCTLS_COMPACT
        )
    # Unrecognized bytes report as default so its parser raises precisely.
    assert frm.detect_mctls_framing(0x00) is MCTLS_DEFAULT
    assert frm.detect_mctls_framing(0xD4) is MCTLS_DEFAULT
    assert frm.detect_mctls_framing(0xCF) is MCTLS_DEFAULT
    assert frm.detect_mctls_framing(0xFF) is MCTLS_DEFAULT
