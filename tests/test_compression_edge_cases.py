"""Edge cases for the compression proxy's buffer-and-reemit rewrite.

The core constraint (module docstring of repro.middleboxes.compression):
a writer cannot change the record count, so a buffered rewrite must fit
one record.  These tests pin the guard and the multi-record paths.
"""

import os
import zlib

import pytest

from repro.http import FOUR_CONTEXT, HttpClientSession, HttpRequest, HttpResponse, HttpServerSession
from repro.middleboxes import CompressionProxy
from repro.mctls.session import McTLSApplicationData
from repro.tls.connection import TLSConfig
from repro.transport import Chain

from tests.test_middlebox_apps import run_app_session


class TestSizeGuard:
    def test_large_response_passes_through_uncompressed(
        self, ca, server_identity, mbox_identity
    ):
        """A 100 kB body exceeds the one-record rewrite budget: the proxy
        must not intercept it (and the transfer must still succeed)."""
        body = b"compressible words " * 6000  # ~114 kB, multi-record
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(body=body),
        )
        response = issue(HttpRequest(target="/huge"))
        assert response.body == body
        assert response.get_header("Content-Encoding") is None
        assert app.responses_compressed == 0
        assert app.responses_passed_through == 1

    def test_borderline_response_compressed(self, ca, server_identity, mbox_identity):
        """Just under the budget: buffered across records and compressed."""
        body = b"repetitive content block " * 500  # 12.5 kB < MAX_BUFFERABLE
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(body=body),
        )
        response = issue(HttpRequest(target="/mid"))
        assert response.body == body
        assert app.responses_compressed == 1

    def test_custom_budget(self, ca, server_identity, mbox_identity):
        body = b"x" * 3000
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(body=body),
            max_bufferable=1000,
        )
        response = issue(HttpRequest(target="/limited"))
        assert response.body == body
        assert app.responses_passed_through == 1


class TestStreams:
    def test_pipelined_responses(self, ca, server_identity, mbox_identity):
        """Alternating compressible / incompressible / large responses on
        one connection keep per-response state straight."""
        compressible = b"text block " * 300
        incompressible = os.urandom(2000)
        huge = b"huge block " * 5000

        def handler(req):
            if req.target == "/text":
                return HttpResponse(body=compressible)
            if req.target == "/noise":
                return HttpResponse(body=incompressible)
            return HttpResponse(body=huge)

        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy, handler
        )
        assert issue(HttpRequest(target="/text")).body == compressible
        assert issue(HttpRequest(target="/huge")).body == huge
        assert issue(HttpRequest(target="/noise")).body == incompressible
        assert issue(HttpRequest(target="/text")).body == compressible
        assert app.responses_compressed == 2
        assert app.responses_passed_through == 1  # the huge one
        # The incompressible one was buffered but re-emitted unchanged.

    def test_zero_length_body(self, ca, server_identity, mbox_identity):
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(body=b""),
        )
        response = issue(HttpRequest(target="/empty"))
        assert response.body == b""
        assert app.responses_compressed == 0

    def test_already_encoded_response_untouched(
        self, ca, server_identity, mbox_identity
    ):
        body = zlib.compress(b"pre-compressed " * 100)
        app, session, chain, issue = run_app_session(
            ca, server_identity, mbox_identity, CompressionProxy,
            lambda req: HttpResponse(
                headers=[("Content-Encoding", "deflate")], body=body
            ),
        )
        response = issue(HttpRequest(target="/pre"))
        # The client session inflates it (Content-Encoding survives).
        assert response.body == b"pre-compressed " * 100
        assert app.responses_compressed == 0
