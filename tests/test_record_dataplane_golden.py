"""Wire-compatibility tests for the record data-plane fast path.

``tests/golden/record_vectors.json`` was frozen from the record layers
*before* the fast-path rewrite (per-key HMAC/cipher caching, cursor
buffers, keystream memoization).  These tests prove the optimisations
changed no wire byte:

* :func:`build_vectors` re-encodes every vector group with today's code
  under the same deterministic nonces and must reproduce the frozen
  JSON exactly;
* the frozen wires must still *decode* on fresh receive-side layers,
  including middlebox-rebuilt records and their ``legally_modified``
  endpoint verdicts.
"""

from __future__ import annotations

import json

import pytest

from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID
from repro.tls.record import APPLICATION_DATA, HANDSHAKE, RecordLayer

from tests.golden.gen_record_vectors import (
    PAYLOADS,
    SUITES,
    VECTORS_PATH,
    _mctls_layer,
    _patched_nonces,
    build_vectors,
)

FROZEN = json.loads(VECTORS_PATH.read_text())


def test_fast_path_reproduces_frozen_vectors_bit_for_bit():
    """The whole generator output must equal the frozen JSON exactly."""
    assert build_vectors() == FROZEN


@pytest.mark.parametrize("suite_name", sorted(SUITES))
def test_frozen_tls_wires_decode(suite_name):
    suite = SUITES[suite_name]
    group = FROZEN["suites"][suite_name]["tls"]
    enc_key = bytes.fromhex(group["enc_key"])
    mac_key = bytes.fromhex(group["mac_key"])
    reader = RecordLayer()
    reader.read_state.activate(suite, suite.new_cipher(enc_key), mac_key)
    for vector in group["records"]:
        reader.feed(bytes.fromhex(vector["wire"]))
        content_type, payload = reader.read_record()
        assert content_type == APPLICATION_DATA
        assert payload == bytes.fromhex(vector["payload"])


@pytest.mark.parametrize("suite_name", sorted(SUITES))
@pytest.mark.parametrize("direction", ["mctls_c2s", "mctls_s2c"])
def test_frozen_mctls_wires_decode(suite_name, direction):
    suite = SUITES[suite_name]
    group = FROZEN["suites"][suite_name][direction]
    # The reader for client-written records is the server and vice versa.
    reader = _mctls_layer(suite, is_client=(direction == "mctls_s2c"))
    for vector in group["records"]:
        reader.feed(bytes.fromhex(vector["wire"]))
        record = reader.read_record()
        assert record is not None
        assert record.context_id == vector["context_id"]
        assert record.content_type == vector.get("content_type", APPLICATION_DATA)
        assert record.payload == bytes.fromhex(vector["payload"])
        assert record.legally_modified is False
    assert group["records"][-1]["context_id"] == ENDPOINT_CONTEXT_ID
    assert group["records"][-1]["content_type"] == HANDSHAKE


@pytest.mark.parametrize("suite_name", sorted(SUITES))
def test_frozen_rebuilt_wires_decode_with_modification_verdict(suite_name):
    """Middlebox-rebuilt records still verify at the endpoint.

    The writer MAC must accept every rebuild (it came from an authorised
    writer); the endpoint MAC must flag exactly the rebuilds whose
    payload actually changed (§3.4 "legal modification").
    """
    suite = SUITES[suite_name]
    cases = FROZEN["suites"][suite_name]["middlebox_rebuild"]["cases"]
    # All cases were produced by one client / one processor, so their
    # sequence numbers are 0, 1, 2...; one server must read them in order.
    server = _mctls_layer(suite, is_client=False)
    for case in cases:
        server.feed(bytes.fromhex(case["rebuilt_wire"]))
        record = server.read_record()
        assert record is not None
        assert record.payload == bytes.fromhex(case["replacement_payload"])
        modified = case["replacement_payload"] != case["original_payload"]
        assert record.legally_modified is modified


@pytest.mark.parametrize("suite_name", sorted(SUITES))
def test_payload_set_covers_boundaries(suite_name):
    """Guard the generator's coverage: empty, text, block-aligned, >256 B."""
    sizes = sorted(len(p) for p in PAYLOADS)
    assert sizes[0] == 0
    assert any(size % 32 == 0 and size for size in sizes)
    assert sizes[-1] > 256
    group = FROZEN["suites"][suite_name]["mctls_c2s"]
    assert len(group["records"]) == len(PAYLOADS) + 1  # + control record


def test_primitive_vectors_unchanged():
    from repro.crypto.fastcipher import ShaCtrCipher
    from repro.mctls.record import _hmac_sha256
    from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256

    prim = FROZEN["primitives"]
    key32 = bytes.fromhex(prim["hmac_sha256"]["key"])
    assert (
        _hmac_sha256(key32, bytes.fromhex(prim["hmac_sha256"]["data"])).hex()
        == prim["hmac_sha256"]["mac"]
    )
    assert (
        SUITE_DHE_RSA_SHACTR_SHA256.mac(
            key32, bytes.fromhex(prim["suite_mac"]["data"])
        ).hex()
        == prim["suite_mac"]["mac"]
    )
    for vector in prim["shactr_xor"]:
        cipher = ShaCtrCipher(bytes.fromhex(vector["key"]))
        out = cipher.xor(
            bytes.fromhex(vector["nonce"]), bytes.fromhex(vector["data"])
        )
        assert out.hex() == vector["out"]


def test_deterministic_nonce_patch_is_scoped():
    """The os patch used for vector generation must not leak."""
    import os as real_os

    from repro.tls import ciphersuites

    with _patched_nonces():
        assert ciphersuites.os is not real_os
    assert ciphersuites.os is real_os
