"""Tests for AES, modes, number theory, DH, PRF and the fast cipher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.dh import DHError, GROUP_MODP_1024, GROUP_MODP_2048, GROUP_TEST_512
from repro.crypto.fastcipher import ShaCtrCipher
from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    ctr_xor,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.numtheory import (
    bytes_to_int,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    modinv,
)
from repro.crypto.prf import p_sha256, prf


class TestAES:
    """FIPS 197 appendix C known-answer vectors."""

    def test_aes128_fips_vector(self):
        cipher = AES(bytes(range(16)))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert cipher.encrypt_block(plaintext).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192_fips_vector(self):
        cipher = AES(bytes(range(24)))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert cipher.encrypt_block(plaintext).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256_fips_vector(self):
        cipher = AES(bytes(range(32)))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert cipher.encrypt_block(plaintext).hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_zero_key_vector(self):
        assert (
            AES(bytes(16)).encrypt_block(bytes(16)).hex()
            == "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )

    def test_invalid_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_invalid_block_length(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(b"tiny")

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestModes:
    def test_pkcs7_always_pads(self):
        assert pkcs7_pad(b"") == bytes([16]) * 16
        assert pkcs7_pad(b"x" * 16)[-1] == 16

    def test_pkcs7_roundtrip(self):
        for n in range(33):
            data = bytes(range(n % 256))[:n]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_pkcs7_bad_padding_rejected(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 15 + b"\x02")
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"")
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 16 + b"\x11" * 16)

    @given(st.binary(max_size=100), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_cbc_roundtrip(self, data, iv):
        cipher = AES(b"0123456789abcdef")
        padded = pkcs7_pad(data)
        assert pkcs7_unpad(cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, padded))) == data

    def test_cbc_requires_alignment(self):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cbc_encrypt(cipher, bytes(16), b"unaligned")

    def test_ctr_is_involution(self):
        cipher = AES(bytes(16))
        data = b"stream cipher data" * 3
        once = ctr_xor(cipher, bytes(16), data)
        assert once != data
        assert ctr_xor(cipher, bytes(16), once) == data


class TestNumTheory:
    def test_small_primes(self):
        primes = [2, 3, 5, 7, 11, 101, 7919]
        composites = [1, 0, 4, 9, 561, 7917]  # 561 is a Carmichael number
        assert all(is_probable_prime(p) for p in primes)
        assert not any(is_probable_prime(c) for c in composites)

    def test_generate_prime_has_exact_bits(self):
        p = generate_prime(64)
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_modinv(self):
        assert (3 * modinv(3, 11)) % 11 == 1
        with pytest.raises(ValueError):
            modinv(2, 4)

    @given(st.integers(min_value=0, max_value=1 << 128))
    def test_int_bytes_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_int_to_bytes_fixed_length(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"
        assert int_to_bytes(0) == b"\x00"


class TestDH:
    def test_groups_use_safe_primes(self):
        for group in (GROUP_TEST_512,):
            assert is_probable_prime(group.p)
            assert is_probable_prime((group.p - 1) // 2)

    def test_standard_group_sizes(self):
        assert GROUP_MODP_2048.p.bit_length() == 2048
        assert GROUP_MODP_1024.p.bit_length() == 1024

    def test_shared_secret_agreement(self):
        a = GROUP_TEST_512.generate_keypair()
        b = GROUP_TEST_512.generate_keypair()
        assert a.combine(b.public) == b.combine(a.public)

    def test_degenerate_public_rejected(self):
        kp = GROUP_TEST_512.generate_keypair()
        for bad in (0, 1, GROUP_TEST_512.p - 1, GROUP_TEST_512.p):
            with pytest.raises(DHError):
                kp.combine(bad)

    def test_public_bytes_roundtrip(self):
        kp = GROUP_TEST_512.generate_keypair()
        assert GROUP_TEST_512.public_from_bytes(kp.public_bytes) == kp.public

    def test_wrong_length_public_rejected(self):
        with pytest.raises(DHError):
            GROUP_TEST_512.public_from_bytes(b"\x02" * 10)


class TestPRF:
    def test_rfc5246_style_expansion_deterministic(self):
        a = prf(b"secret", b"label", b"seed", 48)
        b = prf(b"secret", b"label", b"seed", 48)
        assert a == b and len(a) == 48

    def test_label_separation(self):
        assert prf(b"s", b"l1", b"seed", 32) != prf(b"s", b"l2", b"seed", 32)

    def test_p_sha256_known_vector(self):
        # Published P_SHA256 test vector (from the TLS community test set).
        out = p_sha256(
            bytes.fromhex("9bbe436ba940f017b17652849a71db35"),
            b"test label" + bytes.fromhex("a0ba9f936cda311827a6f796ffd5198c"),
            100,
        )
        assert out.hex().startswith("e3f229ba727be17b8d122620557cd453")

    @given(st.integers(min_value=1, max_value=200))
    def test_expansion_length(self, n):
        assert len(p_sha256(b"k", b"seed", n)) == n

    def test_prefix_property(self):
        long = p_sha256(b"k", b"seed", 64)
        short = p_sha256(b"k", b"seed", 32)
        assert long[:32] == short


class TestShaCtr:
    def test_involution(self):
        cipher = ShaCtrCipher(bytes(16))
        data = b"some data" * 100
        assert cipher.xor(b"n1", cipher.xor(b"n1", data)) == data

    def test_nonce_separation(self):
        cipher = ShaCtrCipher(bytes(16))
        assert cipher.xor(b"n1", b"hello") != cipher.xor(b"n2", b"hello")

    def test_empty_data(self):
        assert ShaCtrCipher(bytes(16)).xor(b"n", b"") == b""

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            ShaCtrCipher(b"short")

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_roundtrip_any_length(self, data):
        cipher = ShaCtrCipher(b"k" * 32)
        assert cipher.xor(b"nonce", cipher.xor(b"nonce", data)) == data
