"""Helpers for building wired mcTLS sessions in tests."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    SessionTopology,
)
from repro.mctls.session import HandshakeMode
from repro.tls.connection import TLSConfig
from repro.transport import Chain


def build_session(
    ca,
    server_identity,
    mbox_identities: Sequence,
    contexts: Sequence[ContextDefinition],
    mode: HandshakeMode = HandshakeMode.DEFAULT,
    topology_policy=None,
    transformer=None,
    observer=None,
    key_transport=None,
    session_store=None,
    session_cache=None,
    ticket_store=None,
    ticket_manager=None,
    framing: str = "mctls-default",
    field_schemas: Sequence = (),
):
    """Wire a client ⇄ N middleboxes ⇄ server session; returns
    (client, middleboxes, server, chain) with the handshake already pumped.

    Pass the same ``session_store`` (client side) and ``session_cache``
    (server side) across two calls to exercise session resumption — or
    ``ticket_store`` (client) with ``ticket_manager`` (server) for the
    stateless-ticket kind."""
    middleboxes = [
        MiddleboxInfo(i + 1, identity.name) for i, identity in enumerate(mbox_identities)
    ]
    topology = SessionTopology(middleboxes=middleboxes, contexts=contexts)

    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
            framing=framing,
            field_schemas=field_schemas,
        ),
        topology=topology,
        key_transport=key_transport,
        session_store=session_store,
        ticket_store=ticket_store,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
        mode=mode,
        topology_policy=topology_policy,
        session_cache=session_cache,
        ticket_manager=ticket_manager,
    )
    mboxes = [
        McTLSMiddlebox(
            identity.name,
            TLSConfig(
                identity=identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
            transformer=transformer,
            observer=observer,
        )
        for identity in mbox_identities
    ]
    chain = Chain(client, mboxes, server)
    client.start_handshake()
    chain.pump()
    return client, mboxes, server, chain
