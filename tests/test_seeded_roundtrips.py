"""Seeded property-based encode/decode round-trips.

Random-but-reproducible inputs (``random.Random`` with fixed seeds — no
new dependencies) exercise ``repro.wire`` and the mcTLS handshake
message codecs far beyond the hand-written cases: arbitrary op
sequences, boundary-sized vectors, and truncation negatives.
"""

import random

import pytest

from repro.mctls import messages as mm
from repro.mctls.contexts import (
    ContextDefinition,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.wire import DecodeError, Reader, Writer

SEED = 0xC0FFEE
N_CASES = 30


def _rng(name: str) -> random.Random:
    return random.Random(f"{SEED}:{name}")


def _rand_bytes(rng: random.Random, max_len: int) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(rng.randrange(max_len + 1)))


def _rand_text(rng: random.Random, max_len: int) -> str:
    return "".join(
        chr(rng.choice((rng.randrange(32, 127), rng.randrange(0xA0, 0x2FF))))
        for _ in range(rng.randrange(max_len + 1))
    )


# -- repro.wire ---------------------------------------------------------------

_UINT_BITS = {"u8": 8, "u16": 16, "u24": 24, "u32": 32, "u64": 64}
_OPS = tuple(_UINT_BITS) + ("vec8", "vec16", "vec24", "string8", "string16")


def _random_ops(rng: random.Random):
    ops = []
    for _ in range(rng.randrange(1, 13)):
        op = rng.choice(_OPS)
        if op in _UINT_BITS:
            bits = _UINT_BITS[op]
            # Mix arbitrary values with the boundary ones.
            value = rng.choice(
                (rng.randrange(1 << bits), 0, (1 << bits) - 1)
            )
            ops.append((op, value))
        elif op.startswith("vec"):
            ops.append((op, _rand_bytes(rng, 64)))
        else:
            ops.append((op, _rand_text(rng, 24)))
    return ops


def test_wire_op_sequences_roundtrip():
    rng = _rng("wire")
    for _ in range(N_CASES):
        ops = _random_ops(rng)
        w = Writer()
        for op, value in ops:
            getattr(w, op)(value)
        encoded = w.bytes()
        assert len(w) == len(encoded)
        r = Reader(encoded)
        decoded = [(op, getattr(r, op)()) for op, _ in ops]
        r.expect_end()
        assert decoded == ops


def test_wire_truncation_raises():
    rng = _rng("wire-truncate")
    for _ in range(N_CASES):
        data = _rand_bytes(rng, 64) + b"x"  # never empty
        encoded = Writer().vec16(data).bytes()
        cut = rng.randrange(1, len(encoded))
        with pytest.raises(DecodeError):
            Reader(encoded[:cut]).vec16()


def test_wire_trailing_bytes_raise():
    encoded = Writer().u16(7).bytes() + b"\x00"
    r = Reader(encoded)
    r.u16()
    with pytest.raises(DecodeError):
        r.expect_end()


# -- repro.mctls.messages ------------------------------------------------------


def test_middlebox_hello_roundtrip():
    rng = _rng("hello")
    for _ in range(N_CASES):
        msg = mm.MiddleboxHello(
            mbox_id=rng.randrange(1, 255),
            random=bytes(rng.getrandbits(8) for _ in range(32)),
        )
        assert mm.MiddleboxHello.decode(msg.encode()) == msg


def test_middlebox_key_exchange_roundtrip():
    rng = _rng("kx")
    for _ in range(N_CASES):
        msg = mm.MiddleboxKeyExchange(
            mbox_id=rng.randrange(1, 255),
            direction=rng.choice((mm.TOWARD_CLIENT, mm.TOWARD_SERVER)),
            dh_public=_rand_bytes(rng, 256),
            signature=_rand_bytes(rng, 256),
        )
        assert mm.MiddleboxKeyExchange.decode(msg.encode()) == msg


def test_middlebox_key_exchange_rejects_bad_direction():
    msg = mm.MiddleboxKeyExchange(
        mbox_id=1, direction=mm.TOWARD_CLIENT, dh_public=b"p", signature=b"s"
    )
    encoded = bytearray(msg.encode())
    encoded[1] = 9  # invalid direction tag
    with pytest.raises(DecodeError, match="direction"):
        mm.MiddleboxKeyExchange.decode(bytes(encoded))


def test_middlebox_key_material_roundtrip():
    rng = _rng("mkm")
    for _ in range(N_CASES):
        msg = mm.MiddleboxKeyMaterial(
            sender=rng.choice((mm.SENDER_CLIENT, mm.SENDER_SERVER)),
            target=rng.choice((rng.randrange(1, 255), 0xFF)),
            sealed=_rand_bytes(rng, 512),
        )
        assert mm.MiddleboxKeyMaterial.decode(msg.encode()) == msg


def test_middlebox_key_material_rejects_bad_sender():
    encoded = bytearray(
        mm.MiddleboxKeyMaterial(sender=mm.SENDER_CLIENT, target=1, sealed=b"x").encode()
    )
    encoded[0] = 0
    with pytest.raises(DecodeError, match="sender"):
        mm.MiddleboxKeyMaterial.decode(bytes(encoded))


def test_key_shares_roundtrip():
    rng = _rng("shares")
    for _ in range(N_CASES):
        shares = [
            mm.ContextKeyShare(
                context_id=ctx_id,
                reader_material=_rand_bytes(rng, 64),
                writer_material=_rand_bytes(rng, 64),
            )
            for ctx_id in rng.sample(range(1, 256), rng.randrange(0, 6))
        ]
        assert mm.decode_key_shares(mm.encode_key_shares(shares)) == shares


def test_key_shares_truncation_raises():
    shares = [mm.ContextKeyShare(context_id=1, reader_material=b"r" * 32)]
    encoded = mm.encode_key_shares(shares)
    with pytest.raises(DecodeError):
        mm.decode_key_shares(encoded[:-1])


def test_session_topology_roundtrip():
    rng = _rng("topology")
    for _ in range(N_CASES):
        n_mboxes = rng.randrange(0, 5)
        middleboxes = tuple(
            MiddleboxInfo(
                mbox_id=i + 1,
                name=f"mbox{i + 1}.example",
                address=_rand_text(rng, 12),
            )
            for i in range(n_mboxes)
        )
        contexts = tuple(
            ContextDefinition(
                context_id=ctx_id,
                purpose=_rand_text(rng, 16),
                permissions={
                    m.mbox_id: perm
                    for m in middleboxes
                    # Codec treats NONE as "no entry"; mirror that here.
                    if (perm := rng.choice(tuple(Permission)))
                    is not Permission.NONE
                },
            )
            for ctx_id in sorted(rng.sample(range(1, 256), rng.randrange(1, 5)))
        )
        topology = SessionTopology(middleboxes=middleboxes, contexts=contexts)
        assert SessionTopology.decode(topology.encode()) == topology


def _rand_field_schema(rng: random.Random):
    from repro.mctls.contexts import FieldDef, FieldSchema

    n_fields = rng.randrange(0, 6)
    names = rng.sample(
        ["hdr", "body", "crc", "unit", "setpoint", "seqno", "aux"], n_fields
    )
    fields = []
    for name in names:
        start = rng.randrange(0, 128)
        end = start + rng.randrange(0, 128)
        fields.append(FieldDef(name=name, start=start, end=end))
    write_grants = {
        f.name: tuple(sorted(rng.sample(range(1, 9), rng.randrange(1, 4))))
        for f in fields
        # Codec treats an empty grant list as "no entry"; mirror that.
        if rng.random() < 0.7
    }
    return FieldSchema(
        context_id=rng.randrange(1, 256),
        fields=tuple(fields),
        write_grants=write_grants,
    )


def test_field_schema_roundtrip():
    from repro.mctls.contexts import FieldSchema

    rng = _rng("field-schema")
    for _ in range(N_CASES):
        schema = _rand_field_schema(rng)
        assert FieldSchema.decode(schema.encode()) == schema


def test_field_schema_truncation_raises():
    rng = _rng("field-schema-truncate")
    for _ in range(N_CASES):
        schema = _rand_field_schema(rng)
        encoded = schema.encode()
        if len(encoded) < 3:
            continue
        cut = rng.randrange(1, len(encoded))
        with pytest.raises(DecodeError):
            from repro.mctls.contexts import FieldSchema

            FieldSchema.decode(encoded[:cut])


def test_framing_offer_roundtrip():
    rng = _rng("framing-offer")
    for _ in range(N_CASES):
        framing_id = rng.randrange(0, 3)
        n_schemas = rng.randrange(0, 4)
        schemas, used = [], set()
        while len(schemas) < n_schemas:
            schema = _rand_field_schema(rng)
            if schema.context_id in used:
                continue
            used.add(schema.context_id)
            schemas.append(schema)
        encoded = mm.encode_framing_offer(framing_id, tuple(schemas))
        got_id, got_schemas = mm.decode_framing_offer(encoded)
        assert got_id == framing_id
        assert got_schemas == tuple(schemas)


def test_framing_offer_rejects_duplicate_context_ids():
    from repro.mctls.contexts import FieldDef, FieldSchema

    schema = FieldSchema(context_id=1, fields=(FieldDef("hdr", 0, 8),))
    encoded = mm.encode_framing_offer(2, (schema, schema))
    with pytest.raises(DecodeError, match="duplicate"):
        mm.decode_framing_offer(encoded)


def test_key_shares_with_field_keys_roundtrip():
    from repro.mctls.keys import FieldKeys

    rng = _rng("field-keys")
    for _ in range(N_CASES):
        shares = [
            mm.ContextKeyShare(
                context_id=ctx_id,
                reader_material=_rand_bytes(rng, 64),
                writer_material=_rand_bytes(rng, 64),
            )
            for ctx_id in rng.sample(range(1, 256), rng.randrange(0, 4))
        ]
        field_keys = {
            ctx_id: {
                index: FieldKeys(
                    mac_c2s=bytes(rng.getrandbits(8) for _ in range(32)),
                    mac_s2c=bytes(rng.getrandbits(8) for _ in range(32)),
                )
                for index in rng.sample(range(8), rng.randrange(1, 4))
            }
            for ctx_id in rng.sample(range(1, 256), rng.randrange(0, 3))
        }
        encoded = mm.encode_key_shares(shares, field_keys)
        got_shares, got_field_keys = mm.decode_key_shares_ex(encoded)
        assert got_shares == shares
        assert got_field_keys == field_keys
        # The compat accessor still returns just the shares.
        assert mm.decode_key_shares(encoded) == shares


def test_key_shares_rejects_bad_trailer_marker():
    from repro.mctls.keys import FieldKeys

    field_keys = {1: {0: FieldKeys(mac_c2s=b"c" * 32, mac_s2c=b"s" * 32)}}
    encoded = bytearray(mm.encode_key_shares([], field_keys))
    encoded[1] = 0x42  # corrupt the FIELD_KEY_BLOCK marker
    with pytest.raises(DecodeError, match="trailer marker"):
        mm.decode_key_shares_ex(bytes(encoded))


def test_session_topology_rejects_bad_permission():
    topology = SessionTopology(
        middleboxes=(MiddleboxInfo(1, "m.example"),),
        contexts=(ContextDefinition(1, "data", {1: Permission.READ}),),
    )
    encoded = bytearray(topology.encode())
    encoded[-1] = 7  # permission byte is last for a single mbox/context
    with pytest.raises(DecodeError, match="permission"):
        SessionTopology.decode(bytes(encoded))
