"""Tests for RSA and the certificate infrastructure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.certs import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    Identity,
    verify_chain,
)
from repro.crypto.rsa import RSAError, RSAPublicKey, generate_rsa_key


@pytest.fixture(scope="module")
def key():
    return generate_rsa_key(512)


class TestRSA:
    def test_modulus_size(self, key):
        assert key.n.bit_length() == 512
        assert key.byte_length == 64

    def test_sign_verify(self, key):
        signature = key.sign(b"message")
        assert key.public_key.verify(b"message", signature)

    def test_verify_rejects_wrong_message(self, key):
        signature = key.sign(b"message")
        assert not key.public_key.verify(b"other", signature)

    def test_verify_rejects_tampered_signature(self, key):
        signature = bytearray(key.sign(b"message"))
        signature[0] ^= 1
        assert not key.public_key.verify(b"message", bytes(signature))

    def test_verify_rejects_wrong_length(self, key):
        assert not key.public_key.verify(b"message", b"short")

    def test_encrypt_decrypt(self, key):
        ciphertext = key.public_key.encrypt(b"premaster")
        assert key.decrypt(ciphertext) == b"premaster"

    def test_decrypt_rejects_tampering(self, key):
        ciphertext = bytearray(key.public_key.encrypt(b"secret"))
        ciphertext[-1] ^= 0xFF
        with pytest.raises(RSAError):
            key.decrypt(bytes(ciphertext))

    def test_plaintext_too_long(self, key):
        with pytest.raises(RSAError):
            key.public_key.encrypt(b"x" * (key.byte_length - 10))

    def test_public_key_serialization(self, key):
        data = key.public_key.to_bytes()
        assert RSAPublicKey.from_bytes(data) == key.public_key

    def test_public_key_trailing_bytes_rejected(self, key):
        with pytest.raises(RSAError):
            RSAPublicKey.from_bytes(key.public_key.to_bytes() + b"x")

    @given(st.binary(max_size=40))
    @settings(max_examples=10, deadline=None)
    def test_sign_verify_random_messages(self, key, message):
        assert key.public_key.verify(message, key.sign(message))

    @given(st.binary(min_size=1, max_size=20))
    @settings(max_examples=10, deadline=None)
    def test_encrypt_roundtrip_random(self, key, message):
        assert key.decrypt(key.public_key.encrypt(message)) == message


class TestCertificates:
    def test_root_is_self_signed(self, ca):
        assert ca.certificate.is_self_signed
        assert ca.certificate.verify_signature(ca.key.public_key)

    def test_issue_and_verify_leaf(self, ca, server_identity):
        leaf = verify_chain(server_identity.chain, [ca.certificate], "server.example")
        assert leaf.subject == "server.example"

    def test_subject_mismatch_rejected(self, ca, server_identity):
        with pytest.raises(CertificateError):
            verify_chain(server_identity.chain, [ca.certificate], "evil.example")

    def test_untrusted_root_rejected(self, server_identity):
        other = CertificateAuthority.create_root("Other Root", key_bits=512)
        with pytest.raises(CertificateError):
            verify_chain(server_identity.chain, [other.certificate], "server.example")

    def test_empty_chain_rejected(self, ca):
        with pytest.raises(CertificateError):
            verify_chain([], [ca.certificate])

    def test_intermediate_chain(self, ca):
        intermediate = ca.issue_intermediate("Intermediate CA", key_bits=512)
        identity = Identity.issued_by(intermediate, "deep.example", key_bits=512)
        assert len(identity.chain) == 2
        leaf = verify_chain(identity.chain, [ca.certificate], "deep.example")
        assert leaf.subject == "deep.example"

    def test_non_ca_intermediate_rejected(self, ca):
        # A leaf certificate must not be usable as an issuer.
        leaf_key = generate_rsa_key(512)
        leaf_cert = ca.issue("leaf.example", leaf_key.public_key, is_ca=False)
        fake = CertificateAuthority(
            name="leaf.example", key=leaf_key, certificate=leaf_cert
        )
        victim = Identity.issued_by(fake, "victim.example", key_bits=512)
        with pytest.raises(CertificateError):
            verify_chain(victim.chain, [ca.certificate], "victim.example")

    def test_certificate_serialization_roundtrip(self, ca, server_identity):
        cert = server_identity.certificate
        decoded = Certificate.from_bytes(cert.to_bytes())
        assert decoded == cert

    def test_tampered_certificate_rejected(self, ca, server_identity):
        cert = server_identity.certificate
        forged = Certificate(
            subject="evil.example",
            issuer=cert.issuer,
            public_key=cert.public_key,
            serial=cert.serial,
            is_ca=cert.is_ca,
            signature=cert.signature,
        )
        with pytest.raises(CertificateError):
            verify_chain([forged], [ca.certificate], "evil.example")

    def test_truncated_certificate_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.from_bytes(b"\x00\x05ab")
