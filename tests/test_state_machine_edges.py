"""State-machine edge cases: out-of-order and malformed protocol events."""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import ContextDefinition, McTLSClient, McTLSServer, SessionTopology
from repro.mctls.record import encode_header
from repro.tls import TLSClient, TLSServer
from repro.tls import messages as msgs
from repro.tls.connection import TLSConfig, TLSError
from repro.tls.record import ALERT, APPLICATION_DATA, CHANGE_CIPHER_SPEC, HANDSHAKE
from repro.transport import pump


def tls_pair(client_config, server_config):
    client = TLSClient(client_config)
    server = TLSServer(server_config)
    client.start_handshake()
    return client, server


def mctls_pair(ca, server_identity):
    topology = SessionTopology(contexts=[ContextDefinition(1, "x")])
    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
    )
    client.start_handshake()
    return client, server


class TestTLSStateMachine:
    def test_premature_server_hello(self, client_config, server_config):
        """A ServerHello before the client sends anything... the server
        never does this; simulate an attacker pushing one at the server."""
        client, server = tls_pair(client_config, server_config)
        raw = msgs.frame(msgs.SERVER_HELLO, msgs.ServerHello(
            random=b"r" * 32, cipher_suite=0x0067
        ).encode())
        from repro.tls.record import RecordLayer

        wire = RecordLayer().encode(HANDSHAKE, raw)
        with pytest.raises(TLSError, match="unexpected"):
            server.receive_bytes(wire)

    def test_premature_ccs_at_server(self, client_config, server_config):
        client, server = tls_pair(client_config, server_config)
        from repro.tls.record import RecordLayer

        wire = RecordLayer().encode(CHANGE_CIPHER_SPEC, b"\x01")
        with pytest.raises(TLSError, match="ChangeCipherSpec"):
            server.receive_bytes(wire)

    def test_malformed_ccs_payload(self, client_config, server_config):
        client, server = tls_pair(client_config, server_config)
        from repro.tls.record import RecordLayer

        wire = RecordLayer().encode(CHANGE_CIPHER_SPEC, b"\x02")
        with pytest.raises(TLSError, match="malformed"):
            server.receive_bytes(wire)

    def test_app_data_before_handshake(self, client_config, server_config):
        client, server = tls_pair(client_config, server_config)
        from repro.tls.record import RecordLayer

        wire = RecordLayer().encode(APPLICATION_DATA, b"early")
        with pytest.raises(TLSError, match="before handshake"):
            server.receive_bytes(wire)

    def test_malformed_alert_length(self, client_config, server_config):
        client, server = tls_pair(client_config, server_config)
        pump(client, server)
        # Hand-craft an unprotected alert record with a bad length and
        # feed it to a fresh (unprotected) server.
        fresh_client, fresh_server = tls_pair(client_config, server_config)
        from repro.tls.record import RecordLayer

        wire = RecordLayer().encode(ALERT, b"\x01")
        with pytest.raises(TLSError, match="malformed alert"):
            fresh_server.receive_bytes(wire)

    def test_double_start_rejected(self, client_config):
        client = TLSClient(client_config)
        client.start_handshake()
        with pytest.raises(TLSError, match="already started"):
            client.start_handshake()

    def test_bad_client_finished(self, client_config, server_config):
        """Corrupting the client's CCS-protected flight fails at the server."""
        client, server = tls_pair(client_config, server_config)
        server.receive_bytes(client.data_to_send())
        client.receive_bytes(server.data_to_send())
        flight = bytearray(client.data_to_send())
        flight[-1] ^= 0x01  # corrupt the encrypted Finished
        with pytest.raises(TLSError):
            server.receive_bytes(bytes(flight))


class TestMcTLSStateMachine:
    def test_double_start_rejected(self, ca, server_identity):
        client, server = mctls_pair(ca, server_identity)
        with pytest.raises(TLSError, match="already started"):
            client.start_handshake()

    def test_premature_ccs(self, ca, server_identity):
        client, server = mctls_pair(ca, server_identity)
        wire = encode_header(CHANGE_CIPHER_SPEC, 0, 1) + b"\x01"
        with pytest.raises(TLSError, match="ChangeCipherSpec"):
            server.receive_bytes(wire)

    def test_app_data_before_completion(self, ca, server_identity):
        client, server = mctls_pair(ca, server_identity)
        wire = encode_header(APPLICATION_DATA, 1, 4) + b"data"
        with pytest.raises(TLSError, match="before handshake"):
            server.receive_bytes(wire)

    def test_unexpected_message_type_in_flight(self, ca, server_identity):
        client, server = mctls_pair(ca, server_identity)
        server.receive_bytes(client.data_to_send())
        client.receive_bytes(server.data_to_send())
        # Replay the ClientHello at the server mid-flight.
        raw = msgs.frame(
            msgs.CLIENT_HELLO,
            msgs.ClientHello(random=b"r" * 32, cipher_suites=[0x0067]).encode(),
        )
        wire = encode_header(HANDSHAKE, 0, len(raw)) + raw
        with pytest.raises(TLSError, match="unexpected"):
            server.receive_bytes(wire)

    def test_mctls_client_rejects_missing_mode(self, ca, server_identity):
        """A ServerHello without the mode extension is not mcTLS."""
        client, _ = mctls_pair(ca, server_identity)
        raw = msgs.frame(
            msgs.SERVER_HELLO,
            msgs.ServerHello(random=b"r" * 32, cipher_suite=0x0067).encode(),
        )
        wire = encode_header(HANDSHAKE, 0, len(raw)) + raw
        with pytest.raises(TLSError, match="mode"):
            client.receive_bytes(wire)

    def test_handshake_completion_flags_consistent(self, ca, server_identity):
        client, server = mctls_pair(ca, server_identity)
        assert not client.handshake_complete and not server.handshake_complete
        pump(client, server)
        assert client.handshake_complete and server.handshake_complete
