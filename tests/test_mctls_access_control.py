"""Security-property tests for mcTLS access control (§3.4).

The paper claims three properties:

1. endpoints can limit read access to writers and readers only;
2. endpoints can detect legal and illegal modifications;
3. writers can detect illegal modifications.

Plus R4 (both endpoints must consent to a middlebox's access) and the
documented limitation that readers cannot police other readers.
"""

import pytest

from repro.mctls import ContextDefinition, Permission
from repro.mctls import keys as mk
from repro.mctls import record as mrec
from repro.mctls.contexts import restrict_topology
from repro.mctls.record import MiddleboxRecordProcessor, McTLSRecordError
from repro.mctls.session import McTLSApplicationData
from repro.tls.connection import TLSError
from repro.tls.record import APPLICATION_DATA

from tests.mctls_helpers import build_session


def ctx(ctx_id, perms):
    return ContextDefinition(ctx_id, f"ctx{ctx_id}", perms)


def app_events(events):
    return [e for e in events if isinstance(e, McTLSApplicationData)]


class TestReadAccess:
    """Property 1: read access limited to readers and writers."""

    def test_no_access_middlebox_sees_nothing(self, ca, server_identity, mbox_identity):
        seen = []
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ctx(1, {})],
            observer=lambda d, c, data: seen.append(data),
        )
        client.send_application_data(b"private", context_id=1)
        events = chain.pump()
        # Endpoint got the data; the middlebox observed nothing.
        assert app_events(events)[0].data == b"private"
        assert seen == []
        assert mboxes[0].permissions[1] is Permission.NONE

    def test_plaintext_never_on_wire_without_access(
        self, ca, server_identity, mbox_identity
    ):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1, {})]
        )
        client.send_application_data(b"very-secret-payload", context_id=1)
        wire = client.data_to_send()
        assert b"very-secret-payload" not in wire
        # Push it along manually so the chain stays consistent.
        mboxes[0].receive_from_client(wire)
        forwarded = mboxes[0].data_to_server()
        assert b"very-secret-payload" not in forwarded
        server.receive_bytes(forwarded)

    def test_reader_sees_but_cannot_modify(self, ca, server_identity, mbox_identity):
        """A read-only middlebox that tries to rewrite a record corrupts
        the session (it cannot forge the writer MAC)."""
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ctx(1, {1: Permission.READ})],
            transformer=lambda d, c, data: data.replace(b"cat", b"dog"),
        )
        # The middlebox class itself refuses: transformer only runs for
        # writable contexts. Sending read-only data passes through intact.
        client.send_application_data(b"a cat", context_id=1)
        events = chain.pump()
        assert app_events(events)[0].data == b"a cat"
        assert app_events(events)[0].legally_modified is False


class TestModificationDetection:
    """Properties 2 and 3."""

    def test_legal_modification_flagged_to_endpoint(
        self, ca, server_identity, mbox_identity
    ):
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ctx(1, {1: Permission.WRITE})],
            transformer=lambda d, c, data: data.upper(),
        )
        client.send_application_data(b"modify me", context_id=1)
        events = chain.pump()
        event = app_events(events)[0]
        assert event.data == b"MODIFY ME"
        assert event.legally_modified is True

    def test_unmodified_data_not_flagged(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1, {1: Permission.WRITE})]
        )
        client.send_application_data(b"unchanged", context_id=1)
        events = chain.pump()
        assert app_events(events)[0].legally_modified is False

    def test_third_party_tamper_detected_at_endpoint(
        self, ca, server_identity, mbox_identity
    ):
        """An attacker between middlebox and server flips ciphertext bits."""
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1, {1: Permission.READ})]
        )
        client.send_application_data(b"integrity", context_id=1)
        mboxes[0].receive_from_client(client.data_to_send())
        record = bytearray(mboxes[0].data_to_server())
        record[-1] ^= 0x01
        with pytest.raises(TLSError):
            server.receive_bytes(bytes(record))

    def test_third_party_tamper_detected_at_reader_middlebox(
        self, ca, server_identity, mbox_identity
    ):
        """A reader verifies the readers MAC and catches tampering."""
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1, {1: Permission.READ})]
        )
        client.send_application_data(b"integrity", context_id=1)
        record = bytearray(client.data_to_send())
        record[-1] ^= 0x01
        with pytest.raises(TLSError, match="relay failure"):
            mboxes[0].receive_from_client(bytes(record))

    def test_record_deletion_detected(self, ca, server_identity, mbox_identity):
        """Dropping an entire record desynchronises the global sequence
        numbers and breaks the next record's MACs."""
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1, {})]
        )
        client.send_application_data(b"first", context_id=1)
        client.data_to_send()  # attacker drops the record entirely
        client.send_application_data(b"second", context_id=1)
        with pytest.raises(TLSError):
            mboxes[0].receive_from_client(client.data_to_send())
            server.receive_bytes(mboxes[0].data_to_server())

    def test_record_reorder_detected(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], [ctx(1, {})]
        )
        client.send_application_data(b"first", context_id=1)
        first = client.data_to_send()
        client.send_application_data(b"second", context_id=1)
        second = client.data_to_send()
        # The no-access middlebox forwards opaquely; the endpoint detects.
        mboxes[0].receive_from_client(second + first)
        with pytest.raises(TLSError):
            server.receive_bytes(mboxes[0].data_to_server())


class TestContributoryAccess:
    """R4: both endpoints must consent before a middlebox gains access."""

    def test_server_denial_blocks_access(self, ca, server_identity, mbox_identity):
        seen = []
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ctx(1, {1: Permission.READ}), ctx(2, {1: Permission.READ})],
            topology_policy=lambda t: restrict_topology(t, {1: {2: Permission.NONE}}),
            observer=lambda d, c, data: seen.append((c, data)),
        )
        assert mboxes[0].permissions[1] is Permission.READ
        assert mboxes[0].permissions[2] is Permission.NONE
        client.send_application_data(b"allowed", context_id=1)
        client.send_application_data(b"denied", context_id=2)
        events = chain.pump()
        assert {e.data for e in app_events(events)} == {b"allowed", b"denied"}
        assert seen == [(1, b"allowed")]

    def test_server_write_downgrade(self, ca, server_identity, mbox_identity):
        """Client grants WRITE, server grants READ → effective READ."""
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            [ctx(1, {1: Permission.WRITE})],
            topology_policy=lambda t: restrict_topology(t, {1: {1: Permission.READ}}),
            transformer=lambda d, c, data: b"HACKED",
        )
        assert mboxes[0].permissions[1] is Permission.READ
        client.send_application_data(b"read only", context_id=1)
        events = chain.pump()
        assert app_events(events)[0].data == b"read only"


class TestReaderLimitation:
    """The documented gap: readers cannot police other readers (§3.4)."""

    def test_reader_forged_writer_mac_not_detected_by_reader(self):
        """Built directly on record processors: a rogue reader rewrites a
        record using the reader keys; a second reader accepts it, but an
        endpoint (checking the writer MAC) rejects it."""
        from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256 as SUITE

        keys = mk.combine_context_keys(b"a" * 32, b"b" * 32, b"c" * 32, b"d" * 32, b"r" * 32, b"s" * 32)

        sender = mrec.McTLSRecordLayer(is_client=True)
        sender.set_suite(SUITE)
        sender.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"r" * 32, b"s" * 32))
        sender.install_context_keys(1, keys)
        sender.activate_write()
        wire = sender.encode(APPLICATION_DATA, b"original", context_id=1)

        # Rogue reader: decrypt with reader keys, rewrite the payload and
        # regenerate ONLY the readers MAC (it has no writer key).
        rogue = MiddleboxRecordProcessor(SUITE, mk.C2S)
        rogue.install(1, Permission.READ, keys)
        rogue.activate()
        _, ctx_id, fragment, _ = next(mrec.split_records(bytearray(wire)))
        opened = rogue.open_record(APPLICATION_DATA, ctx_id, fragment)
        reader_dir = keys.readers.for_direction(mk.C2S)
        new_payload = b"FORGERY!"
        covered = mrec.mac_input(opened.seq, APPLICATION_DATA, 1, new_payload)
        import hashlib
        import hmac

        reader_mac = hmac.new(reader_dir.mac, covered, hashlib.sha256).digest()
        # Keep the old endpoint+writer MACs (now stale) and forge readers'.
        forged_plain = new_payload + opened.endpoint_mac + b"\x00" * 32 + reader_mac
        forged_fragment = SUITE.new_cipher(reader_dir.enc).encrypt(forged_plain)
        forged_record = (
            mrec.encode_header(APPLICATION_DATA, 1, len(forged_fragment)) + forged_fragment
        )

        # A second reader accepts the forgery (the limitation)...
        second_reader = MiddleboxRecordProcessor(SUITE, mk.C2S)
        second_reader.install(1, Permission.READ, keys)
        second_reader.activate()
        _, _, fragment2, _ = next(mrec.split_records(bytearray(forged_record)))
        opened2 = second_reader.open_record(APPLICATION_DATA, 1, fragment2)
        assert opened2.payload == b"FORGERY!"  # undetected, as the paper admits

        # ...but the endpoint catches it via the writer MAC.
        receiver = mrec.McTLSRecordLayer(is_client=False)
        receiver.set_suite(SUITE)
        receiver.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"r" * 32, b"s" * 32))
        receiver.install_context_keys(1, keys)
        receiver.activate_read()
        receiver.feed(forged_record)
        with pytest.raises(McTLSRecordError, match="writer MAC"):
            receiver.read_record()
