"""Smoke and shape tests for the experiment harness and every experiment.

These run scaled-down versions of the paper's experiments and assert the
*qualitative* results the paper reports — the benchmarks print the full
tables; these tests guard the shapes in CI.
"""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.handshake_size import figure8, measure_handshake_size
from repro.experiments.handshake_time import measure_ttfb
from repro.experiments.harness import Mode, TestBed, build_links, build_path
from repro.experiments.opcounts import measure_opcounts
from repro.experiments.overhead import record_overhead
from repro.experiments.page_load import load_page
from repro.experiments.throughput import measure_handshake_throughput
from repro.experiments.transfer import measure_transfer
from repro.netsim.profiles import controlled
from repro.workloads import generate_corpus


@pytest.fixture(scope="module")
def bed():
    return TestBed(key_bits=512, dh_group=GROUP_TEST_512)


class TestTTFB:
    def test_noencrypt_two_rtts(self, bed):
        result = measure_ttfb(bed, Mode.NO_ENCRYPT)
        assert result.rtts == pytest.approx(2.0, abs=0.15)

    def test_encrypted_protocols_four_rtts(self, bed):
        for mode in (Mode.E2E_TLS, Mode.SPLIT_TLS, Mode.MCTLS):
            result = measure_ttfb(bed, mode, n_contexts=1)
            assert result.rtts == pytest.approx(4.0, abs=0.35), mode

    def test_nagle_cliff_appears_and_nodelay_removes_it(self, bed):
        """At high context counts, Nagle adds at least one hop-RTT."""
        on = measure_ttfb(bed, Mode.MCTLS, n_contexts=12)
        off = measure_ttfb(bed, Mode.MCTLS, n_contexts=12, nagle=False)
        assert on.ttfb_s - off.ttfb_s > 0.035  # ≥ one 40 ms hop-RTT
        assert off.rtts < 4.3

    def test_middleboxes_add_linear_delay(self, bed):
        one = measure_ttfb(bed, Mode.E2E_TLS, n_middleboxes=1)
        three = measure_ttfb(bed, Mode.E2E_TLS, n_middleboxes=3)
        # Two more 20 ms hops → 4 RTT over an extra 80 ms ≈ +320 ms.
        assert three.ttfb_s - one.ttfb_s == pytest.approx(0.32, abs=0.05)

    def test_mctls_ckd_mode_works_in_sim(self, bed):
        result = measure_ttfb(bed, Mode.MCTLS_CKD, n_contexts=2)
        assert result.rtts == pytest.approx(4.0, abs=0.4)


class TestTransfer:
    def test_small_file_handshake_dominated(self, bed):
        profile = controlled(2, 1.0)
        plain = measure_transfer(bed, Mode.NO_ENCRYPT, 500, profile)
        mctls = measure_transfer(bed, Mode.MCTLS, 500, profile)
        # Encrypted handshake costs ~2 extra total-RTTs (~160 ms).
        assert 0.1 < mctls.download_time_s - plain.download_time_s < 0.35

    def test_large_file_bandwidth_bound(self, bed):
        profile = controlled(2, 1.0)
        size = 1_000_000
        plain = measure_transfer(bed, Mode.NO_ENCRYPT, size, profile)
        mctls = measure_transfer(bed, Mode.MCTLS, size, profile)
        # Protocol overhead is a small fraction for MB-scale transfers.
        assert mctls.download_time_s / plain.download_time_s < 1.10
        # And the transfer time is roughly size/bandwidth.
        assert plain.download_time_s == pytest.approx(size * 8 / 1e6, rel=0.25)

    def test_all_modes_complete(self, bed):
        profile = controlled(2, 10.0)
        for mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.SPLIT_TLS, Mode.E2E_TLS, Mode.NO_ENCRYPT):
            result = measure_transfer(bed, mode, 10_000, profile)
            assert result.download_time_s > 0


class TestHandshakeSize:
    def test_mctls_larger_than_tls(self, bed):
        mctls = measure_handshake_size(bed, Mode.MCTLS, 1, 0)
        e2e = measure_handshake_size(bed, Mode.E2E_TLS, 1, 0)
        assert mctls.bytes_total > e2e.bytes_total

    def test_grows_with_contexts(self, bed):
        sizes = [
            measure_handshake_size(bed, Mode.MCTLS, n, 0).bytes_total
            for n in (1, 4, 8)
        ]
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]

    def test_grows_with_middleboxes(self, bed):
        zero = measure_handshake_size(bed, Mode.MCTLS, 4, 0).bytes_total
        one = measure_handshake_size(bed, Mode.MCTLS, 4, 1).bytes_total
        two = measure_handshake_size(bed, Mode.MCTLS, 4, 2).bytes_total
        assert zero < one < two

    def test_baselines_flat(self, bed):
        for mode in (Mode.SPLIT_TLS, Mode.E2E_TLS):
            a = measure_handshake_size(bed, mode, 1, 0).bytes_total
            b = measure_handshake_size(bed, mode, 8, 0).bytes_total
            assert a == b


class TestThroughput:
    def test_e2e_middlebox_nearly_free(self, bed):
        e2e = measure_handshake_throughput(bed, Mode.E2E_TLS, 1, 1, repetitions=2)
        split = measure_handshake_throughput(bed, Mode.SPLIT_TLS, 1, 1, repetitions=2)
        assert e2e.middlebox_cps > 10 * split.middlebox_cps

    def test_mctls_middlebox_beats_split(self, bed):
        mctls = measure_handshake_throughput(bed, Mode.MCTLS, 1, 1, repetitions=3)
        split = measure_handshake_throughput(bed, Mode.SPLIT_TLS, 1, 1, repetitions=3)
        assert mctls.middlebox_cps > split.middlebox_cps

    def test_server_cost_grows_with_contexts(self, bed):
        few = measure_handshake_throughput(bed, Mode.MCTLS, 1, 1, repetitions=3)
        many = measure_handshake_throughput(bed, Mode.MCTLS, 16, 1, repetitions=3)
        assert many.server_cps < few.server_cps


class TestOpCounts:
    def test_mctls_key_gen_formula(self, bed):
        """Client key_gen = 4K + N + 1 — an exact match by construction."""
        result = measure_opcounts(bed, Mode.MCTLS, n_contexts=4, n_middleboxes=1)
        assert result.counts["client"]["key_gen"] == 4 * 4 + 1 + 1
        assert result.counts["server"]["key_gen"] == 4 * 4 + 1 + 1

    def test_ckd_halves_client_key_gen(self, bed):
        default = measure_opcounts(bed, Mode.MCTLS, 4, 1)
        ckd = measure_opcounts(bed, Mode.MCTLS_CKD, 4, 1)
        assert ckd.counts["client"]["key_gen"] == 2 * 4 + 1 + 1
        assert ckd.counts["client"]["key_gen"] < default.counts["client"]["key_gen"]

    def test_ckd_server_skips_verification(self, bed):
        ckd = measure_opcounts(bed, Mode.MCTLS_CKD, 4, 1)
        assert ckd.counts["server"]["asym_verify"] == 0

    def test_sym_ops_match_paper(self, bed):
        result = measure_opcounts(bed, Mode.MCTLS, 4, 1)
        # N+2 encrypts (N MKMs + endpoint MKM + Finished), 2 decrypts.
        assert result.counts["client"]["sym_encrypt"] == 3
        assert result.counts["client"]["sym_decrypt"] == 2
        assert result.counts["middlebox"]["sym_decrypt"] == 2

    def test_split_tls_middlebox_double_work(self, bed):
        result = measure_opcounts(bed, Mode.SPLIT_TLS, 1, 1)
        mbox = result.counts["middlebox"]
        client = result.counts["client"]
        assert mbox["secret_comp"] == 2 * client["secret_comp"]
        assert mbox["sym_encrypt"] == 2 * client["sym_encrypt"]


class TestOverhead:
    def test_mctls_roughly_triples_tls_overhead(self):
        corpus = generate_corpus(n_pages=30, seed=5)
        results = record_overhead(corpus, max_pages=30)
        split = results["SplitTLS"].median_overhead_pct
        mctls = results["mcTLS"].median_overhead_pct
        assert 0.3 < split < 1.2  # paper: 0.6%
        assert 2.0 < mctls / split < 4.0  # paper: 3x


class TestPageLoad:
    @pytest.fixture(scope="class")
    def page(self):
        return generate_corpus(n_pages=3, seed=9).pages[1]

    def test_all_modes_load(self, bed, page):
        results = {}
        for mode in (Mode.NO_ENCRYPT, Mode.E2E_TLS, Mode.MCTLS):
            results[mode] = load_page(bed, mode, page, nagle=False).plt_s
        assert results[Mode.NO_ENCRYPT] < results[Mode.E2E_TLS]
        # mcTLS without Nagle tracks E2E-TLS closely.
        assert results[Mode.MCTLS] / results[Mode.E2E_TLS] < 1.2

    def test_nagle_hurts_mctls(self, bed, page):
        on = load_page(bed, Mode.MCTLS, page, nagle=True).plt_s
        off = load_page(bed, Mode.MCTLS, page, nagle=False).plt_s
        assert on >= off
