"""Tests for middlebox discovery (§6.1)."""

import pytest

from repro.mctls.discovery import (
    ContentProviderPolicy,
    DiscoveredMiddlebox,
    NetworkPolicy,
    ServiceRegistry,
    StaticProvider,
    discover,
)


def mbox(name, service="", address=""):
    return DiscoveredMiddlebox(name=name, service=service, address=address)


class TestServiceRegistry:
    def test_advertise_and_find(self):
        registry = ServiceRegistry()
        registry.advertise("compression", "proxy1.isp.net", "10.0.0.1:443")
        registry.advertise("compression", "proxy2.isp.net")
        registry.advertise("ids", "ids.isp.net")
        found = registry.find("compression")
        assert [m.name for m in found] == ["proxy1.isp.net", "proxy2.isp.net"]
        assert found[0].address == "10.0.0.1:443"
        assert registry.find("nonexistent") == []

    def test_withdraw(self):
        registry = ServiceRegistry()
        registry.advertise("filter", "f1")
        registry.advertise("filter", "f2")
        registry.withdraw("filter", "f1")
        assert [m.name for m in registry.find("filter")] == ["f2"]


class TestContentProviderPolicy:
    def test_exact_lookup(self):
        policy = ContentProviderPolicy()
        policy.publish("video.example", [mbox("cdn-opt.example")])
        assert [m.name for m in policy.lookup("video.example")] == ["cdn-opt.example"]
        assert policy.lookup("other.example") == []

    def test_wildcard_lookup(self):
        policy = ContentProviderPolicy()
        policy.publish("*.example.com", [mbox("edge.example.com")])
        assert [m.name for m in policy.lookup("www.example.com")] == ["edge.example.com"]
        assert [m.name for m in policy.lookup("a.b.example.com")] == ["edge.example.com"]
        assert policy.lookup("example.org") == []

    def test_exact_beats_wildcard(self):
        policy = ContentProviderPolicy()
        policy.publish("*.example.com", [mbox("generic")])
        policy.publish("www.example.com", [mbox("specific")])
        assert [m.name for m in policy.lookup("www.example.com")] == ["specific"]


class TestDiscover:
    def test_path_order(self):
        """Operator boxes first, then user, then content provider."""
        network = NetworkPolicy(required=[mbox("virus-scan.corp")])
        user = [mbox("compress.isp.net")]
        policy = ContentProviderPolicy()
        policy.publish("shop.example", [mbox("waf.shop.example")])
        result = discover(
            "shop.example", network=network, user=user, content_provider=policy
        )
        assert [m.name for m in result] == [
            "virus-scan.corp",
            "compress.isp.net",
            "waf.shop.example",
        ]
        assert [m.mbox_id for m in result] == [1, 2, 3]

    def test_duplicates_collapsed(self):
        network = NetworkPolicy(required=[mbox("shared.example")])
        result = discover(
            "s.example", network=network, user=[mbox("shared.example")]
        )
        assert len(result) == 1

    def test_empty_sources(self):
        assert discover("s.example") == []

    def test_static_provider(self):
        provider = StaticProvider([mbox("a"), mbox("b")])
        assert [m.name for m in provider.lookup("anything")] == ["a", "b"]

    def test_discovered_list_builds_valid_topology(self):
        from repro.mctls.contexts import ContextDefinition, Permission, SessionTopology

        middleboxes = discover(
            "s.example", user=[mbox("m1.example"), mbox("m2.example")]
        )
        topology = SessionTopology(
            middleboxes=middleboxes,
            contexts=[
                ContextDefinition(1, "ctx", {m.mbox_id: Permission.READ for m in middleboxes})
            ],
        )
        assert topology.middlebox_ids == [1, 2]
