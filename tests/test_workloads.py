"""Tests for the synthetic workload generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.alexa import (
    PageCorpus,
    generate_corpus,
    object_size_quantile,
)
from repro.workloads.filesizes import PAPER_FILE_SIZES


class TestQuantileFunction:
    def test_paper_anchor_percentiles(self):
        """P10/P50/P99 hit the paper's published values exactly."""
        assert object_size_quantile(0.10) == 500
        assert object_size_quantile(0.50) == 4_900
        assert object_size_quantile(0.99) == 185_600

    def test_monotonic(self):
        values = [object_size_quantile(q / 100) for q in range(101)]
        assert values == sorted(values)

    def test_bounds(self):
        assert object_size_quantile(0.0) >= 1
        assert object_size_quantile(1.0) == 2_000_000

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            object_size_quantile(-0.1)
        with pytest.raises(ValueError):
            object_size_quantile(1.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_always_positive_int(self, q):
        size = object_size_quantile(q)
        assert isinstance(size, int) and size >= 1


class TestCorpus:
    def test_deterministic(self):
        a = generate_corpus(n_pages=20, seed=42)
        b = generate_corpus(n_pages=20, seed=42)
        assert [p.connections for p in a] == [p.connections for p in b]

    def test_seed_changes_corpus(self):
        a = generate_corpus(n_pages=20, seed=1)
        b = generate_corpus(n_pages=20, seed=2)
        assert [p.connections for p in a] != [p.connections for p in b]

    def test_page_structure(self):
        corpus = generate_corpus(n_pages=50, seed=7)
        assert len(corpus) == 50
        for page in corpus:
            assert page.object_count >= 1
            assert 1 <= len(page.connections) <= 32
            assert all(all(size >= 1 for size in conn) for conn in page.connections)
            assert page.total_bytes == sum(sum(c) for c in page.connections)

    def test_size_distribution_matches_anchors(self):
        """Sampled sizes land near the paper's percentiles."""
        corpus = generate_corpus(n_pages=300, seed=11)
        p50 = corpus.size_percentile(0.50)
        assert 3_000 < p50 < 8_000  # paper: 4.9 kB
        p10 = corpus.size_percentile(0.10)
        assert 300 < p10 < 900  # paper: 0.5 kB

    def test_median_objects_per_page(self):
        corpus = generate_corpus(n_pages=200, seed=3)
        counts = sorted(p.object_count for p in corpus)
        median = counts[len(counts) // 2]
        assert 25 <= median <= 60  # target ≈ 40

    def test_empty_corpus_percentile_raises(self):
        with pytest.raises(ValueError):
            PageCorpus(pages=(), seed=0).size_percentile(0.5)


class TestFileSizes:
    def test_paper_values(self):
        assert PAPER_FILE_SIZES["p10"] == 500
        assert PAPER_FILE_SIZES["p50"] == 4_900
        assert PAPER_FILE_SIZES["p99"] == 185_600
        assert PAPER_FILE_SIZES["large"] == 10 * 1024 * 1024
