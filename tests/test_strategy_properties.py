"""Property tests on context strategies: the reassembly invariant.

Every strategy must satisfy: concatenating its pieces in order
reproduces the encoded message byte-for-byte — that is what lets the
receiver parse HTTP by feeding application data in arrival order,
whatever the context assignment.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.http import HttpRequest, HttpResponse
from repro.http.strategies import (
    CONTEXT_PER_HEADER,
    FOUR_CONTEXT,
    MEDIA_SPLIT,
    ONE_CONTEXT,
    context_per_header,
)

ALL_STRATEGIES = [ONE_CONTEXT, FOUR_CONTEXT, CONTEXT_PER_HEADER, MEDIA_SPLIT]

header_names = st.sampled_from(
    ["Host", "User-Agent", "Accept", "Cookie", "Cache-Control", "X-Custom", "Content-Type"]
)
header_values = st.text(
    alphabet=string.ascii_letters + string.digits + "-_./;= ", min_size=1, max_size=30
).map(str.strip).filter(bool)
headers = st.lists(st.tuples(header_names, header_values), max_size=6)


@st.composite
def requests(draw):
    return HttpRequest(
        method=draw(st.sampled_from(["GET", "POST", "PUT"])),
        target="/" + draw(st.text(alphabet=string.ascii_lowercase + "/", max_size=20)),
        headers=draw(headers),
        body=draw(st.binary(max_size=500)),
    )


@st.composite
def responses(draw):
    return HttpResponse(
        status=draw(st.sampled_from([200, 204, 301, 404, 500])),
        reason="X",
        headers=draw(headers),
        body=draw(st.binary(max_size=500)),
    )


@given(requests())
@settings(max_examples=40)
def test_request_pieces_concatenate_to_encoding(request):
    for strategy in ALL_STRATEGIES:
        pieces = strategy.split_request(request)
        assert b"".join(p for _, p in pieces) == request.encode(), strategy.name
        assert all(ctx in strategy.context_purposes for ctx, _ in pieces), strategy.name


@given(responses())
@settings(max_examples=40)
def test_response_pieces_concatenate_to_encoding(response):
    for strategy in ALL_STRATEGIES:
        pieces = strategy.split_response(response)
        assert b"".join(p for _, p in pieces) == response.encode(), strategy.name
        assert all(ctx in strategy.context_purposes for ctx, _ in pieces), strategy.name


@given(requests(), responses())
@settings(max_examples=25)
def test_roundtrip_through_parser(request, response):
    """Pieces fed to a parser in order reconstruct the message."""
    from repro.http.messages import HttpParser

    for strategy in ALL_STRATEGIES:
        parser = HttpParser("request")
        messages = []
        for _, piece in strategy.split_request(request):
            messages += parser.feed(piece)
        assert len(messages) == 1
        assert messages[0].encode() == request.encode()

        parser = HttpParser("response")
        messages = []
        for _, piece in strategy.split_response(response):
            messages += parser.feed(piece)
        assert len(messages) == 1
        assert messages[0].encode() == response.encode()


@given(st.lists(header_names, min_size=1, max_size=8, unique=True))
@settings(max_examples=20)
def test_context_per_header_deduplicates(names):
    strategy = context_per_header(list(names) + [n.lower() for n in names])
    # One context per unique (case-insensitive) header name + 5 fixed.
    assert len(strategy.context_purposes) == len({n.lower() for n in names}) + 5
