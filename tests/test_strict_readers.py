"""Tests for the optional strict-reader modes (§3.4's two fixes)."""

import pytest

from repro.crypto.rsa import generate_rsa_key
from repro.mctls.record import McTLSRecordError
from repro.mctls.strict_readers import PairwiseReaderMACs, WriterSignatures
from repro.tls.record import APPLICATION_DATA


@pytest.fixture(scope="module")
def signing_key():
    return generate_rsa_key(512)


class TestPairwiseReaderMACs:
    def make(self, n_readers=3):
        return PairwiseReaderMACs(
            reader_keys={i: bytes([i]) * 32 for i in range(1, n_readers + 1)}
        )

    def test_each_reader_verifies_its_own_mac(self):
        scheme = self.make()
        protected = scheme.protect(0, APPLICATION_DATA, 1, b"payload")
        for reader_id in (1, 2, 3):
            assert scheme.verify(reader_id, 0, APPLICATION_DATA, 1, protected) == b"payload"

    def test_reader_forgery_detected_by_other_readers(self):
        """The fix in action: reader 1 rewrites the record and can forge
        only its own MAC — reader 2's verification fails."""
        scheme = self.make(n_readers=2)
        original = scheme.protect(0, APPLICATION_DATA, 1, b"original")

        # Reader 1 forges: recompute its own MAC over new payload, keep
        # reader 2's MAC stale.
        forger = PairwiseReaderMACs(reader_keys={1: bytes([1]) * 32})
        partial = forger.protect(0, APPLICATION_DATA, 1, b"FORGED!!")
        mac1 = partial[-32:]
        stale_mac2 = original[-32:]
        forged = b"FORGED!!" + mac1 + stale_mac2

        assert scheme.verify(1, 0, APPLICATION_DATA, 1, forged) == b"FORGED!!"
        with pytest.raises(McTLSRecordError):
            scheme.verify(2, 0, APPLICATION_DATA, 1, forged)

    def test_sequence_binding(self):
        scheme = self.make()
        protected = scheme.protect(5, APPLICATION_DATA, 1, b"payload")
        with pytest.raises(McTLSRecordError):
            scheme.verify(1, 6, APPLICATION_DATA, 1, protected)

    def test_overhead_scales_with_readers(self):
        assert self.make(2).overhead_bytes() == 64
        assert self.make(5).overhead_bytes() == 160

    def test_truncated_record_rejected(self):
        scheme = self.make()
        with pytest.raises(McTLSRecordError):
            scheme.verify(1, 0, APPLICATION_DATA, 1, b"short")


class TestWriterSignatures:
    def test_sign_verify_roundtrip(self, signing_key):
        scheme = WriterSignatures(signing_key=signing_key)
        protected = scheme.protect(0, APPLICATION_DATA, 1, b"payload")
        payload = WriterSignatures.verify(
            [signing_key.public_key], 0, APPLICATION_DATA, 1, protected
        )
        assert payload == b"payload"

    def test_reader_cannot_forge(self, signing_key):
        """A reader holds only public keys; rewriting the payload breaks
        the signature for every verifier."""
        scheme = WriterSignatures(signing_key=signing_key)
        protected = bytearray(scheme.protect(0, APPLICATION_DATA, 1, b"payload"))
        protected[0] ^= 1  # flip a payload bit
        with pytest.raises(McTLSRecordError):
            WriterSignatures.verify(
                [signing_key.public_key], 0, APPLICATION_DATA, 1, bytes(protected)
            )

    def test_multiple_authorized_writers(self, signing_key):
        other = generate_rsa_key(512)
        scheme = WriterSignatures(signing_key=other)
        protected = scheme.protect(0, APPLICATION_DATA, 1, b"payload")
        payload = WriterSignatures.verify(
            [signing_key.public_key, other.public_key], 0, APPLICATION_DATA, 1, protected
        )
        assert payload == b"payload"

    def test_unauthorized_writer_rejected(self, signing_key):
        rogue = generate_rsa_key(512)
        scheme = WriterSignatures(signing_key=rogue)
        protected = scheme.protect(0, APPLICATION_DATA, 1, b"payload")
        with pytest.raises(McTLSRecordError):
            WriterSignatures.verify(
                [signing_key.public_key], 0, APPLICATION_DATA, 1, protected
            )

    def test_overhead(self, signing_key):
        scheme = WriterSignatures(signing_key=signing_key)
        assert scheme.overhead_bytes() == 2 + signing_key.byte_length

    def test_truncated_rejected(self, signing_key):
        with pytest.raises(McTLSRecordError):
            WriterSignatures.verify(
                [signing_key.public_key], 0, APPLICATION_DATA, 1, b"x"
            )
