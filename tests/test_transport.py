"""Tests for the in-memory transports (pump, Chain) and event routing."""

import pytest

from repro.baselines import BlindRelay, PlainConnection, PlainRelay
from repro.tls.connection import ApplicationData
from repro.transport import Chain, pump


class _Echo:
    """Minimal sans-I/O object echoing bytes back, for transport tests."""

    def __init__(self, reply_prefix=b""):
        self._out = bytearray()
        self.reply_prefix = reply_prefix
        self.received = []

    def data_to_send(self):
        out = bytes(self._out)
        self._out.clear()
        return out

    def receive_data(self, data):
        self.received.append(bytes(data))
        if self.reply_prefix:
            self._out += self.reply_prefix + data
        return [ApplicationData(data=bytes(data))]

    def send(self, data):
        self._out += data


class TestPump:
    def test_bidirectional_until_quiet(self):
        a, b = _Echo(), _Echo(reply_prefix=b"re:")
        a.send(b"hello")
        events = pump(a, b)
        assert b.received == [b"hello"]
        assert a.received == [b"re:hello"]
        assert len(events) == 2

    def test_nonconvergent_raises(self):
        a, b = _Echo(reply_prefix=b"x"), _Echo(reply_prefix=b"y")
        a.send(b"ping")
        with pytest.raises(RuntimeError, match="converge"):
            pump(a, b, max_rounds=5)


class TestChain:
    def test_multi_relay_delivery(self):
        a, b = PlainConnection(), PlainConnection()
        a.start_handshake()
        b.start_handshake()
        chain = Chain(a, [BlindRelay(), BlindRelay(), BlindRelay()], b)
        a.send_application_data(b"through three relays")
        events = chain.pump()
        assert any(
            isinstance(e, ApplicationData) and e.data == b"through three relays"
            for e in events
        )

    def test_event_sinks(self):
        a, b = PlainConnection(), PlainConnection()
        a.start_handshake()
        b.start_handshake()
        chain = Chain(a, [PlainRelay()], b)
        client_events, server_events = [], []
        chain.on_client_event = client_events.append
        chain.on_server_event = server_events.append
        a.send_application_data(b"to-server")
        chain.pump()
        b.send_application_data(b"to-client")
        chain.pump()
        assert any(getattr(e, "data", None) == b"to-server" for e in server_events)
        assert any(getattr(e, "data", None) == b"to-client" for e in client_events)
        # Events are routed to the correct side only.
        assert not any(getattr(e, "data", None) == b"to-server" for e in client_events)

    def test_zero_relays(self):
        a, b = PlainConnection(), PlainConnection()
        a.start_handshake()
        b.start_handshake()
        chain = Chain(a, [], b)
        a.send_application_data(b"direct")
        events = chain.pump()
        assert any(getattr(e, "data", None) == b"direct" for e in events)

    def test_events_accumulate(self):
        a, b = PlainConnection(), PlainConnection()
        a.start_handshake()
        b.start_handshake()
        chain = Chain(a, [], b)
        a.send_application_data(b"one")
        chain.pump()
        b.send_application_data(b"two")
        chain.pump()
        datas = [getattr(e, "data", None) for e in chain.events]
        assert b"one" in datas and b"two" in datas
