"""Integration tests for the mcTLS handshake (both modes, 0–4 middleboxes)."""

import pytest

from repro.crypto.certs import CertificateAuthority
from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSServer,
    Permission,
    SessionTopology,
)
from repro.mctls.session import (
    HandshakeMode,
    McTLSApplicationData,
    McTLSHandshakeComplete,
)
from repro.tls.connection import TLSConfig, TLSError
from repro.transport import Chain, pump

from tests.mctls_helpers import build_session


def rw_contexts(n_mbox, n_ctx=2):
    """Contexts granting every middlebox read/write (the paper's worst case)."""
    grant = {m: Permission.WRITE for m in range(1, n_mbox + 1)}
    return [ContextDefinition(i + 1, f"ctx{i + 1}", dict(grant)) for i in range(n_ctx)]


class TestHandshakeCompletion:
    def test_zero_middleboxes(self, ca, server_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [], rw_contexts(0)
        )
        assert client.handshake_complete and server.handshake_complete

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_n_middleboxes(self, ca, server_identity, mbox_identities, n):
        client, mboxes, server, chain = build_session(
            ca, server_identity, mbox_identities[:n], rw_contexts(n)
        )
        assert client.handshake_complete and server.handshake_complete
        assert all(m.handshake_complete for m in mboxes)

    def test_client_key_dist_mode(self, ca, server_identity, mbox_identities):
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            mbox_identities[:2],
            rw_contexts(2),
            mode=HandshakeMode.CLIENT_KEY_DIST,
        )
        assert client.mode is HandshakeMode.CLIENT_KEY_DIST
        assert all(m.handshake_complete for m in mboxes)
        client.send_application_data(b"ckd data", context_id=1)
        events = chain.pump()
        assert any(
            isinstance(e, McTLSApplicationData) and e.data == b"ckd data" for e in events
        )

    def test_handshake_events_carry_topology(self, ca, server_identity, mbox_identity):
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], rw_contexts(1)
        )
        events = [e for e in chain.events if isinstance(e, McTLSHandshakeComplete)]
        assert len(events) == 2
        assert all(e.topology.middlebox_ids == [1] for e in events)

    def test_many_contexts(self, ca, server_identity, mbox_identity):
        contexts = rw_contexts(1, n_ctx=12)
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], contexts
        )
        for ctx_id in range(1, 13):
            client.send_application_data(f"ctx{ctx_id}".encode(), context_id=ctx_id)
        events = chain.pump()
        payloads = {e.context_id: e.data for e in events if isinstance(e, McTLSApplicationData)}
        assert payloads == {i: f"ctx{i}".encode() for i in range(1, 13)}


class TestHandshakeFailures:
    def test_undeclared_middlebox_rejects_session(self, ca, server_identity, mbox_config):
        """A middlebox not in the client's list refuses to participate."""
        from repro.mctls import McTLSMiddlebox

        topology = SessionTopology(contexts=[ContextDefinition(1, "only")])
        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            ),
            topology=topology,
        )
        mbox = McTLSMiddlebox("mbox1.example", mbox_config)
        client.start_handshake()
        with pytest.raises(TLSError, match="middlebox list"):
            mbox.receive_from_client(client.data_to_send())

    def test_untrusted_middlebox_certificate_rejected(
        self, ca, server_identity, mbox_identities
    ):
        """A middlebox with a certificate from an unknown CA fails client
        authentication (R1)."""
        from repro.crypto.certs import Identity
        from repro.mctls import McTLSMiddlebox, MiddleboxInfo

        rogue_ca = CertificateAuthority.create_root("Rogue CA", key_bits=512)
        rogue_identity = Identity.issued_by(rogue_ca, "mbox1.example", key_bits=512)

        topology = SessionTopology(
            middleboxes=[MiddleboxInfo(1, "mbox1.example")],
            contexts=[ContextDefinition(1, "ctx", {1: Permission.READ})],
        )
        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="server.example",
                dh_group=GROUP_TEST_512,
            ),
            topology=topology,
        )
        server = McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        mbox = McTLSMiddlebox(
            "mbox1.example",
            TLSConfig(
                identity=rogue_identity,
                trusted_roots=[rogue_ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        chain = Chain(client, [mbox], server)
        client.start_handshake()
        with pytest.raises(TLSError, match="certificate"):
            chain.pump()

    def test_wrong_server_name_rejected(self, ca, server_identity):
        topology = SessionTopology(contexts=[ContextDefinition(1, "ctx")])
        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name="impostor.example",
                dh_group=GROUP_TEST_512,
            ),
            topology=topology,
        )
        server = McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        client.start_handshake()
        with pytest.raises(TLSError, match="certificate"):
            pump(client, server)

    def test_context_zero_send_rejected(self, ca, server_identity):
        client, _, server, chain = build_session(ca, server_identity, [], rw_contexts(0))
        with pytest.raises(TLSError, match="reserved"):
            client.send_application_data(b"x", context_id=0)

    def test_server_requires_extension(self, ca, server_identity, client_config):
        """A plain TLS ClientHello is rejected by an mcTLS server."""
        from repro.tls.client import TLSClient

        tls_client = TLSClient(client_config)
        server = McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=GROUP_TEST_512,
            ),
        )
        tls_client.start_handshake()
        # The plain client does not speak the mcTLS record format.
        with pytest.raises(TLSError):
            server.receive_bytes(tls_client.data_to_send())
