"""The §3.4 detection guarantees as an executable fault matrix.

Every (attacker role × detecting party × mutation) cell of the paper's
Table 1 runs as a live mcTLS session through ``repro.faults``: an
on-path :class:`TamperProxy` (or a malicious reader / writer middlebox)
injects the mutation mid-session, and the harness asserts the *right*
party detects it via the *right* MAC — and that legal writer
modifications are flagged-but-accepted rather than rejected.
"""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import Mode, TestBed, build_path
from repro.faults import TamperPlan, TamperProxy, failure_info, standard_record_mutators
from repro.faults import matrix as fm
from repro.mctls import keys as mk
from repro.mctls.record import MacVerificationError
from repro.mctls.session import McTLSApplicationData
from repro.netsim import Simulator
from repro.netsim.link import duplex
from repro.tls.connection import TLSError

CELLS = fm.all_cells()
EXPECTED = fm.expected_matrix()


@pytest.fixture(scope="module")
def matrix_results():
    return fm.run_matrix(fm.SEED)


@pytest.fixture(scope="module")
def matrix_results_burst():
    """The same 39 cells with three records pumped as one flight and the
    tampering aimed mid-burst (record_index=1) — the mutation lands
    inside the relays' batched ``_relay_app_burst`` path."""
    return fm.run_matrix(fm.SEED, burst=True)


def _cell_id(spec):
    return f"{spec.attacker}|{spec.detector}|{spec.mutation}"


@pytest.mark.parametrize("spec", CELLS, ids=_cell_id)
def test_table1_cell(spec, matrix_results):
    """Each cell produces exactly the Table 1 outcome."""
    expected = EXPECTED[spec]
    result = matrix_results[spec]
    assert expected.matches(result), (
        f"{_cell_id(spec)}: expected {expected}, got {result}"
    )


@pytest.mark.parametrize("spec", CELLS, ids=_cell_id)
def test_table1_cell_mid_burst(spec, matrix_results, matrix_results_burst):
    """Table 1 attribution is path-independent: tampering injected into
    the middle of a batched three-record flight yields the same outcome,
    MAC slot, and detecting party as the lone-record run."""
    expected = EXPECTED[spec]
    result = matrix_results_burst[spec]
    assert expected.matches(result), (
        f"{_cell_id(spec)} (burst): expected {expected}, got {result}"
    )
    sequential = matrix_results[spec]
    assert (result.outcome, result.mac, result.detected_by) == (
        sequential.outcome,
        sequential.mac,
        sequential.detected_by,
    ), f"{_cell_id(spec)}: burst attribution diverged from sequential"


def test_matrix_is_deterministic(matrix_results):
    """Two consecutive runs with the same seed: identical outcomes."""
    assert fm.run_matrix(fm.SEED) == matrix_results


@pytest.fixture(scope="module")
def matrix_results_openssl():
    from repro.crypto.provider import OPENSSL
    from repro.tls.ciphersuites import SUITE_DHE_RSA_AES128CTR_SHA256

    if not OPENSSL.available:
        pytest.skip("cryptography package not importable")
    return fm.run_matrix(fm.SEED, suite=SUITE_DHE_RSA_AES128CTR_SHA256)


@pytest.mark.parametrize("spec", CELLS, ids=_cell_id)
def test_table1_cell_under_openssl_provider(
    spec, matrix_results, matrix_results_openssl
):
    """Table 1 attribution is provider-independent: the full matrix
    re-run under the OpenSSL AES-CTR suite yields the same outcome, MAC
    slot, and detecting party cell for cell — detection rides on the
    three HMAC-SHA256 record MACs, never on the bulk cipher backend."""
    expected = EXPECTED[spec]
    result = matrix_results_openssl[spec]
    assert expected.matches(result), (
        f"{_cell_id(spec)} (openssl): expected {expected}, got {result}"
    )
    sequential = matrix_results[spec]
    assert (result.outcome, result.mac, result.detected_by) == (
        sequential.outcome,
        sequential.mac,
        sequential.detected_by,
    ), f"{_cell_id(spec)}: openssl attribution diverged from pure provider"


def test_matrix_covers_every_mutation_class():
    """The cell list spans all mutators and all detecting parties."""
    mutations = {spec.mutation for spec in CELLS}
    assert set(standard_record_mutators()) <= mutations
    assert {"forge", "transform"} <= mutations  # reader / writer attackers
    assert any(spec.mutation.startswith("hs-") for spec in CELLS)
    assert {spec.detector for spec in CELLS} == {
        "endpoint",
        "reader-mbox",
        "writer-mbox",
        "handshake",
        # mdTLS warrant rows attribute detection per party:
        "client",
        "server",
        "middlebox",
    }
    warrant_cells = [spec for spec in CELLS if spec.attacker == "warrant"]
    assert {EXPECTED[spec].reason for spec in warrant_cells} == {
        "forged",
        "expired",
        "widened",
    }


def test_passthrough_proxy_is_invisible():
    """An idle TamperProxy forwards everything byte-identically."""
    spec = fm.CellSpec("third-party", "endpoint", "delete")
    client, relays, server, chain = fm._build_session(spec, fm.SEED)
    proxy = relays[0]
    proxy.plan = TamperPlan()  # no mutations planned
    events = []
    chain.on_server_event = events.append

    client.start_handshake()
    chain.pump()
    assert client.handshake_complete and server.handshake_complete
    client.send_application_data(b"untouched payload", context_id=1)
    chain.pump()

    app = [e for e in events if isinstance(e, McTLSApplicationData)]
    assert [e.data for e in app] == [b"untouched payload"]
    assert app[0].legally_modified is False
    assert proxy.log == []


def test_deletion_detected_across_contexts():
    """Deleting a context-1 record is caught by the *context-2* record
    that follows it — sequence numbers are global per direction."""
    spec = fm.CellSpec("third-party", "endpoint", "delete")
    client, relays, server, chain = fm._build_session(spec, fm.SEED)

    client.start_handshake()
    chain.pump()
    client.send_application_data(b"doomed context-1 record", context_id=1)
    chain.pump()  # the proxy silently drops it — nothing to detect yet
    client.send_application_data(b"context-2 record", context_id=2)
    with pytest.raises(TLSError) as excinfo:
        chain.pump()

    info = failure_info(excinfo.value)
    assert isinstance(info, MacVerificationError)
    assert info.mac == "writers"
    assert info.where == "endpoint"
    assert info.context_id == 2  # detection fired on the other context


def test_attacker_node_in_netsim_path():
    """The attacker splices into a simulated network path and the
    tampering is detected mid-simulation by the first verifying party."""
    bed = TestBed(key_bits=512, dh_group=GROUP_TEST_512)
    sim = Simulator()
    links = [duplex(sim, 8e6, 0.01, name="hop0"), duplex(sim, 8e6, 0.01, name="hop1")]
    proxy = TamperProxy(
        TamperPlan(
            seed=fm.SEED,
            record_mutator=standard_record_mutators()["flip-payload"],
            direction=mk.C2S,
        )
    )

    path_box = {}

    def on_client_event(event, now):
        if type(event).__name__ == "McTLSHandshakeComplete":
            path_box["path"].client_node.send_application_data(
                b"netsim fault payload", context_id=1
            )

    path_box["path"] = build_path(
        sim,
        bed,
        Mode.MCTLS,
        links,
        topology=bed.topology(1),  # one WRITE middlebox
        attacker=proxy,
        attacker_hop=0,
        client_on_event=on_client_event,
    )
    path_box["path"].start()
    with pytest.raises(TLSError) as excinfo:
        sim.run()

    info = failure_info(excinfo.value)
    assert (info.mac, info.where) == ("writers", "middlebox")
    assert proxy.log == [(mk.C2S, "flip-payload")]
