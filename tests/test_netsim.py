"""Tests for the discrete-event engine, links, ByteQueue and TCP model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import Simulator, connect_tcp
from repro.netsim.bytequeue import ByteQueue
from repro.netsim.link import Link, duplex
from repro.netsim.profiles import controlled, wide_area_3g, wide_area_fiber
from repro.netsim.tcp import HEADER, MSS


class TestEngine:
    def test_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_tie_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=2.0)
        assert fired == [] and sim.now == 2.0
        sim.run()
        assert fired == [1]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []
        def outer():
            times.append(sim.now)
            sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 2.0]


class TestLink:
    def test_propagation_delay(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=None, delay_s=0.05)
        arrivals = []
        link.send(1000, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [0.05]

    def test_serialization_time(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8000, delay_s=0.0)  # 1000 bytes/sec
        arrivals = []
        link.send(500, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.5)]

    def test_fifo_serialization(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8000, delay_s=0.0)
        arrivals = []
        link.send(500, lambda: arrivals.append(("a", sim.now)))
        link.send(500, lambda: arrivals.append(("b", sim.now)))
        sim.run()
        assert arrivals == [("a", pytest.approx(0.5)), ("b", pytest.approx(1.0))]

    def test_stats(self):
        sim = Simulator()
        link = Link(sim, None, 0.0)
        link.send(100, lambda: None)
        link.send(200, lambda: None)
        sim.run()
        assert link.bytes_carried == 300 and link.packets_carried == 2


class TestByteQueue:
    def test_basics(self):
        q = ByteQueue()
        q.append(b"hello")
        q.append(b" world")
        assert len(q) == 11
        assert q.peek(5) == b"hello"
        assert q.take(6) == b"hello "
        assert q.take(100) == b"world"
        assert len(q) == 0

    def test_advance_past_end_rejected(self):
        q = ByteQueue()
        q.append(b"ab")
        with pytest.raises(ValueError):
            q.advance(3)

    @given(st.lists(st.binary(max_size=50), max_size=20), st.integers(1, 17))
    @settings(max_examples=50)
    def test_matches_reference(self, chunks, step):
        q = ByteQueue()
        reference = b"".join(chunks)
        for chunk in chunks:
            q.append(chunk)
        out = bytearray()
        while len(q):
            out += q.take(step)
        assert bytes(out) == reference


class TestTCP:
    def _echo_pair(self, sim, bandwidth=None, delay=0.01, **kwargs):
        fwd, rev = duplex(sim, bandwidth, delay)
        return connect_tcp(sim, fwd, rev, **kwargs)

    def test_handshake_takes_one_rtt(self):
        sim = Simulator()
        client, server = self._echo_pair(sim, delay=0.02)
        connected = []
        client.on_connected = lambda: connected.append(sim.now)
        sim.run()
        assert connected[0] == pytest.approx(0.04, rel=0.01)

    def test_data_delivery(self):
        sim = Simulator()
        client, server = self._echo_pair(sim)
        received = bytearray()
        server.on_data = received.extend
        client.on_connected = lambda: client.send(b"hello tcp")
        sim.run()
        assert bytes(received) == b"hello tcp"

    def test_large_transfer_integrity(self):
        sim = Simulator()
        client, server = self._echo_pair(sim, bandwidth=10e6, delay=0.005)
        payload = bytes(range(256)) * 2000  # 512 kB
        received = bytearray()
        server.on_data = received.extend
        client.on_connected = lambda: client.send(payload)
        sim.run()
        assert bytes(received) == payload

    def test_transfer_time_bandwidth_bound(self):
        """A 1 MB transfer at 8 Mbps takes ≈ 1 second."""
        sim = Simulator()
        client, server = self._echo_pair(sim, bandwidth=8e6, delay=0.001)
        done = []
        total = 1_000_000
        got = [0]
        def on_data(data):
            got[0] += len(data)
            if got[0] >= total:
                done.append(sim.now)
        server.on_data = on_data
        client.on_connected = lambda: client.send(b"x" * total)
        sim.run()
        assert 0.9 < done[0] < 1.4

    def test_nagle_delays_small_second_write(self):
        """Two small writes: with Nagle the second waits a full RTT."""
        def run(nagle):
            sim = Simulator()
            client, server = self._echo_pair(sim, delay=0.05, nagle=nagle)
            arrivals = []
            server.on_data = lambda data: arrivals.append((sim.now, bytes(data)))
            def go():
                client.send(b"a" * 100)
                client.send(b"b" * 100)
            client.on_connected = go
            sim.run()
            return arrivals
        with_nagle = run(True)
        without = run(False)
        # Without Nagle both chunks arrive together (same serialization
        # instant); with Nagle the second waits for the first's ACK (1 RTT).
        assert len(with_nagle) == 2
        gap_nagle = with_nagle[1][0] - with_nagle[0][0]
        assert gap_nagle == pytest.approx(0.1, rel=0.05)  # 1 RTT = 100 ms
        gap_plain = without[-1][0] - without[0][0]
        assert gap_plain < 0.01

    def test_nagle_flight_over_one_mss(self):
        """A flight > 1 MSS stalls after the first full segment."""
        sim = Simulator()
        client, server = self._echo_pair(sim, delay=0.05, nagle=True)
        arrivals = []
        server.on_data = lambda data: arrivals.append(sim.now)
        client.on_connected = lambda: client.send(b"x" * (MSS + 200))
        sim.run()
        assert len(arrivals) == 2
        assert arrivals[1] - arrivals[0] == pytest.approx(0.1, rel=0.05)

    def test_full_mss_flights_not_stalled(self):
        """Exactly 2 MSS: both segments are full, Nagle never engages."""
        sim = Simulator()
        client, server = self._echo_pair(sim, delay=0.05, nagle=True)
        arrivals = []
        server.on_data = lambda data: arrivals.append(sim.now)
        client.on_connected = lambda: client.send(b"x" * (2 * MSS))
        sim.run()
        assert len(arrivals) == 2
        assert arrivals[1] - arrivals[0] < 0.01

    def test_delayed_ack(self):
        """With delayed ACKs a lone segment is acknowledged after 40 ms."""
        sim = Simulator()
        client, server = self._echo_pair(sim, delay=0.001, delayed_ack=True)
        sent = []
        client.on_connected = lambda: (client.send(b"a" * 10), client.send(b"b" * 10))
        arrivals = []
        server.on_data = lambda data: arrivals.append(sim.now)
        sim.run()
        assert len(arrivals) == 2
        # Second small write waits for the delayed ACK (~40 ms), not 1 RTT.
        assert 0.035 < arrivals[1] - arrivals[0] < 0.06

    def test_fin_close(self):
        sim = Simulator()
        client, server = self._echo_pair(sim)
        closed = []
        server.on_peer_closed = lambda: closed.append(sim.now)
        client.on_connected = lambda: (client.send(b"bye"), client.close())
        sim.run()
        assert closed


class TestProfiles:
    def test_controlled_profile(self):
        profile = controlled(hops=2, bandwidth_mbps=10, hop_delay_ms=20)
        assert profile.hops == 2
        assert profile.total_rtt_s == pytest.approx(0.08)

    def test_wide_area_profiles(self):
        assert wide_area_fiber().hops == 2
        assert wide_area_3g().total_rtt_s > wide_area_fiber().total_rtt_s

    def test_mismatched_lists_rejected(self):
        from repro.netsim.profiles import LinkProfile

        with pytest.raises(ValueError):
            LinkProfile("bad", (0.01,), (1e6, 1e6))
