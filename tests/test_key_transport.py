"""Tests for the two key-transport variants (DHE design vs RSA prototype)."""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.crypto.rsa import generate_rsa_key
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.mctls import keys as mk
from repro.mctls.session import HandshakeMode, KeyTransport, McTLSApplicationData
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256 as SUITE, CipherError
from repro.tls.connection import TLSConfig
from repro.transport import Chain


@pytest.fixture(scope="module")
def rsa_key():
    return generate_rsa_key(512)


class TestHybridSeal:
    def test_roundtrip(self, rsa_key):
        sealed = mk.rsa_hybrid_seal(SUITE, rsa_key.public_key, b"key material")
        assert mk.rsa_hybrid_open(SUITE, rsa_key, sealed) == b"key material"

    def test_large_payload(self, rsa_key):
        """Hybrid wrapping handles payloads beyond the RSA modulus size."""
        payload = b"x" * 5000
        sealed = mk.rsa_hybrid_seal(SUITE, rsa_key.public_key, payload)
        assert mk.rsa_hybrid_open(SUITE, rsa_key, sealed) == payload

    def test_tamper_detected(self, rsa_key):
        sealed = bytearray(mk.rsa_hybrid_seal(SUITE, rsa_key.public_key, b"km"))
        sealed[-1] ^= 1
        with pytest.raises(CipherError):
            mk.rsa_hybrid_open(SUITE, rsa_key, bytes(sealed))

    def test_wrong_key_rejected(self, rsa_key):
        other = generate_rsa_key(512)
        sealed = mk.rsa_hybrid_seal(SUITE, rsa_key.public_key, b"km")
        with pytest.raises(CipherError):
            mk.rsa_hybrid_open(SUITE, other, sealed)

    def test_truncated_rejected(self, rsa_key):
        with pytest.raises(CipherError):
            mk.rsa_hybrid_open(SUITE, rsa_key, b"\x00")


def build_rsa_session(ca, server_identity, mbox_identity, mode=HandshakeMode.DEFAULT):
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=[ContextDefinition(1, "ctx", {1: Permission.WRITE})],
    )
    client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
        ),
        topology=topology,
        key_transport=KeyTransport.RSA,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
        mode=mode,
    )
    mbox = McTLSMiddlebox(
        mbox_identity.name,
        TLSConfig(
            identity=mbox_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        ),
    )
    chain = Chain(client, [mbox], server)
    client.start_handshake()
    chain.pump()
    return client, mbox, server, chain


class TestRSATransportSessions:
    def test_handshake_and_data(self, ca, server_identity, mbox_identity):
        client, mbox, server, chain = build_rsa_session(ca, server_identity, mbox_identity)
        assert client.handshake_complete and server.handshake_complete
        assert mbox.key_transport is KeyTransport.RSA
        client.send_application_data(b"via rsa", context_id=1)
        events = chain.pump()
        assert any(
            isinstance(e, McTLSApplicationData) and e.data == b"via rsa" for e in events
        )

    def test_ckd_mode(self, ca, server_identity, mbox_identity):
        client, mbox, server, chain = build_rsa_session(
            ca, server_identity, mbox_identity, mode=HandshakeMode.CLIENT_KEY_DIST
        )
        assert mbox.permissions[1] is Permission.WRITE
        server.send_application_data(b"down", context_id=1)
        events = chain.pump()
        assert any(
            isinstance(e, McTLSApplicationData) and e.data == b"down" for e in events
        )

    def test_middlebox_sends_no_key_exchanges(self, ca, server_identity, mbox_identity):
        """RSA transport: middlebox flights are hello + certificate only."""
        client, mbox, server, chain = build_rsa_session(ca, server_identity, mbox_identity)
        assert mbox._dh_to_client is None
        assert mbox._dh_to_server is None
        assert len(mbox._flight) == 2  # hello + certificate

    def test_dhe_transport_middlebox_has_key_exchanges(
        self, ca, server_identity, mbox_identity
    ):
        from tests.mctls_helpers import build_session

        contexts = [ContextDefinition(1, "ctx", {1: Permission.READ})]
        client, mboxes, server, chain = build_session(
            ca, server_identity, [mbox_identity], contexts
        )
        assert mboxes[0]._dh_to_client is not None
        assert len(mboxes[0]._flight) == 4  # hello + cert + two signed KEs
