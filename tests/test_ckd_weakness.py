"""The documented trade-off of client-key-distribution mode (§3.6).

"This reduces the server load, but it has the disadvantage that
agreement about middlebox permissions is not enforced."

In default mode the server's topology policy is binding (it withholds
its key halves).  In CKD mode the client alone distributes full keys, so
the same policy is toothless — these tests pin down both sides of that
contrast, since the whole point of the mode is that the server *chose*
to give up the control.
"""

import pytest

from repro.mctls import ContextDefinition, Permission
from repro.mctls.contexts import restrict_topology
from repro.mctls.session import HandshakeMode, McTLSApplicationData

from tests.mctls_helpers import build_session


def deny_all_policy(topology):
    grants = {
        mbox.mbox_id: {ctx.context_id: Permission.NONE for ctx in topology.contexts}
        for mbox in topology.middleboxes
    }
    return restrict_topology(topology, grants)


CONTEXTS = [ContextDefinition(1, "sensitive", {1: Permission.READ})]


class TestPolicyEnforcement:
    def test_default_mode_policy_binds(self, ca, server_identity, mbox_identity):
        seen = []
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            CONTEXTS,
            mode=HandshakeMode.DEFAULT,
            topology_policy=deny_all_policy,
            observer=lambda d, c, data: seen.append(data),
        )
        client.send_application_data(b"secret", context_id=1)
        chain.pump()
        assert mboxes[0].permissions[1] is Permission.NONE
        assert seen == []

    def test_ckd_mode_policy_is_toothless(self, ca, server_identity, mbox_identity):
        """The same deny-all policy cannot stop a client grant in CKD
        mode: the middlebox reads the context anyway."""
        seen = []
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            CONTEXTS,
            mode=HandshakeMode.CLIENT_KEY_DIST,
            topology_policy=deny_all_policy,
            observer=lambda d, c, data: seen.append(data),
        )
        client.send_application_data(b"secret", context_id=1)
        chain.pump()
        assert mboxes[0].permissions[1] is Permission.READ
        assert seen == [b"secret"]  # the §3.6 disadvantage, demonstrated

    def test_servers_needing_control_use_default_mode(
        self, ca, server_identity, mbox_identity
    ):
        """The banking server's mitigation: simply don't offer CKD."""
        seen = []
        client, mboxes, server, chain = build_session(
            ca,
            server_identity,
            [mbox_identity],
            CONTEXTS,
            mode=HandshakeMode.DEFAULT,  # the bank's choice
            topology_policy=deny_all_policy,
            observer=lambda d, c, data: seen.append(data),
        )
        server.send_application_data(b"balance: 42", context_id=1)
        events = chain.pump()
        delivered = [e.data for e in events if isinstance(e, McTLSApplicationData)]
        assert delivered == [b"balance: 42"]  # client still gets the data
        assert seen == []  # the middlebox does not
