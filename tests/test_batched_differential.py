"""Seeded differential suite: batched paths == sequential paths, bit for bit.

The batched record data plane (``encode_batch`` / ``read_burst`` /
``open_burst`` / ``rebuild_burst`` and the scatter-gather ``*_views``
drains) is an optimisation, not a protocol change.  This suite proves it
three ways:

* **wire differentials** — seeded random bursts encoded/decoded through
  the batched and the sequential paths on twin layers with identical
  keys and a deterministic nonce schedule must produce identical bytes,
  identical decoded records, and identical failure positions when a
  record mid-burst is tampered;
* **batched golden vectors** — ``tests/golden/batched_vectors.json``
  pins the batched writers' bytes, and (because nonces draw in record
  order on both paths) those frozen bursts must equal the concatenation
  of the per-record wires frozen *before* this PR in
  ``record_vectors.json``;
* **full-stack event streams** — on every protocol stack, a burst
  pumped through a live client → relay → server chain in one flight
  must deliver the same application byte stream as the same payloads
  sent record by record, and draining the client via
  ``data_to_send_views()`` must be equivalent to the joined drain.

Plus the satellite checks: the bounded keystream pool's hit/miss/evict
accounting (and its ``Instruments`` publication), and the
``RecordBuffer.snapshot`` reclamation-hazard regression.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.instrument import Instruments
from repro.crypto.dh import GROUP_TEST_512
from repro.crypto.fastcipher import KEYSTREAM_POOL, KeystreamPool, ShaCtrCipher
from repro.experiments.harness import Mode, TestBed
from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, Permission
from repro.mctls.record import (
    MCTLS_HEADER_LEN,
    MacVerificationError,
    McTLSRecordError,
    McTLSRecordLayer,
    MiddleboxRecordProcessor,
    split_burst,
    split_records,
)
from repro.recbuf import RecordBuffer
from repro.tls.record import APPLICATION_DATA, HANDSHAKE, RecordLayer
from repro.transport import Chain

from tests.golden.gen_batched_vectors import (
    BATCHED_VECTORS_PATH,
    REBUILD_CASES,
    build_batched_vectors,
)
from tests.golden.gen_record_vectors import (
    PAYLOADS,
    RC,
    RS,
    SECRET,
    SUITES,
    VECTORS_PATH,
    _mctls_layer,
    _patched_nonces,
)

SEED = 0xD1FF
FROZEN = json.loads(VECTORS_PATH.read_text())
FROZEN_BATCHED = json.loads(BATCHED_VECTORS_PATH.read_text())

SUITE_NAMES = sorted(SUITES)

# The live (non-golden) differentials also run under the OpenSSL
# provider suites when available — byte-identity of batched vs
# sequential must hold for every provider, not just the pure one.
from repro.crypto.provider import OPENSSL  # noqa: E402

ALL_SUITES = dict(SUITES)
if OPENSSL.available:
    from tests.golden.gen_provider_vectors import PROVIDER_SUITES

    ALL_SUITES.update(PROVIDER_SUITES)
ALL_SUITE_NAMES = sorted(ALL_SUITES)


def _rng(name: str) -> random.Random:
    return random.Random(f"{SEED}:{name}")


def _random_payloads(rng: random.Random, count: int = 12, max_len: int = 600):
    """A seeded mix of sizes: empty, tiny, block-aligned, big."""
    payloads = [b"", b"x", bytes(32), bytes(range(256))]
    while len(payloads) < count:
        payloads.append(bytes(rng.getrandbits(8) for _ in range(rng.randrange(max_len))))
    rng.shuffle(payloads)
    return payloads


def _tls_writer(suite) -> RecordLayer:
    layer = RecordLayer()
    layer.write_state.activate(
        suite, suite.new_cipher(bytes(range(suite.key_length))), bytes(range(32))
    )
    return layer


def _tls_reader(suite) -> RecordLayer:
    layer = RecordLayer()
    layer.read_state.activate(
        suite, suite.new_cipher(bytes(range(suite.key_length))), bytes(range(32))
    )
    return layer


def _mctls_two_context_layer(suite, is_client: bool) -> McTLSRecordLayer:
    """Like the golden generator's layer, plus a second app context so
    bursts can interleave records from different contexts."""
    layer = McTLSRecordLayer(is_client=is_client)
    layer.set_suite(suite)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(SECRET, RC, RS))
    layer.install_context_keys(1, mk.ckd_context_keys(SECRET, RC, RS, 1))
    layer.install_context_keys(2, mk.ckd_context_keys(SECRET, RC, RS, 2))
    layer.activate_write()
    layer.activate_read()
    return layer


def _mixed_mctls_items(rng: random.Random):
    """(content_type, payload, context_id) triples interleaving two app
    contexts with a control record mid-burst (which legally breaks any
    batch plan — state may change while the consumer handles it)."""
    items = [
        (APPLICATION_DATA, payload, rng.choice((1, 2)))
        for payload in _random_payloads(rng)
    ]
    items.insert(len(items) // 2, (HANDSHAKE, b"mid-burst control", ENDPOINT_CONTEXT_ID))
    return items


# -- batched golden vectors ---------------------------------------------------


def test_batched_generator_reproduces_frozen_vectors():
    """The batched writers must reproduce the frozen JSON exactly."""
    assert build_batched_vectors() == FROZEN_BATCHED


@pytest.mark.parametrize("suite_name", SUITE_NAMES)
def test_frozen_batched_bursts_equal_joined_sequential_wires(suite_name):
    """Cross-file identity: one ``encode_batch`` burst == the
    concatenation of the per-record wires frozen before this PR."""
    batched = FROZEN_BATCHED["suites"][suite_name]
    sequential = FROZEN["suites"][suite_name]
    assert batched["tls_burst"] == "".join(
        vector["wire"] for vector in sequential["tls"]["records"]
    )
    for direction in ("c2s", "s2c"):
        assert batched[f"mctls_{direction}_burst"] == "".join(
            vector["wire"]
            for vector in sequential[f"mctls_{direction}"]["records"]
        )


@pytest.mark.parametrize("suite_name", SUITE_NAMES)
def test_frozen_batched_bursts_decode(suite_name):
    """The frozen bursts decode on fresh receive-side layers via the
    batched readers."""
    suite = ALL_SUITES[suite_name]
    group = FROZEN_BATCHED["suites"][suite_name]

    reader = _tls_reader(suite)
    reader.feed(bytes.fromhex(group["tls_burst"]))
    decoded = list(reader.read_burst())
    assert [payload for _, payload in decoded] == PAYLOADS

    server = _mctls_layer(suite, is_client=False)
    server.feed(bytes.fromhex(group["mctls_c2s_burst"]))
    records = list(server.read_burst())
    assert [r.payload for r in records[:-1]] == PAYLOADS
    assert records[-1].content_type == HANDSHAKE
    assert records[-1].context_id == ENDPOINT_CONTEXT_ID


@pytest.mark.parametrize("suite_name", SUITE_NAMES)
def test_frozen_rebuilt_burst_decodes_with_modification_verdicts(suite_name):
    """The WRITE middlebox's ``rebuild_burst`` output verifies at the
    endpoint, with §3.4 legal-modification verdicts per record."""
    suite = ALL_SUITES[suite_name]
    group = FROZEN_BATCHED["suites"][suite_name]["middlebox_rebuild_burst"]
    server = _mctls_layer(suite, is_client=False)
    server.feed(bytes.fromhex(group["rebuilt_burst"]))
    records = list(server.read_burst())
    assert len(records) == len(REBUILD_CASES)
    for record, (original, replacement) in zip(records, REBUILD_CASES):
        assert record.payload == replacement
        assert record.legally_modified is (original != replacement)


# -- seeded wire differentials ------------------------------------------------


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
def test_tls_encode_batch_matches_sequential(suite_name):
    suite = ALL_SUITES[suite_name]
    items = [(APPLICATION_DATA, p) for p in _random_payloads(_rng("tls-enc"))]
    with _patched_nonces():
        batched = _tls_writer(suite).encode_batch(items)
    with _patched_nonces():
        writer = _tls_writer(suite)
        sequential = b"".join(writer.encode(ct, p) for ct, p in items)
    assert batched == sequential


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
def test_tls_read_burst_matches_read_all(suite_name):
    suite = ALL_SUITES[suite_name]
    items = [(APPLICATION_DATA, p) for p in _random_payloads(_rng("tls-dec"))]
    with _patched_nonces():
        wire = _tls_writer(suite).encode_batch(items)
    burst_reader, seq_reader = _tls_reader(suite), _tls_reader(suite)
    burst_reader.feed(wire)
    seq_reader.feed(wire)
    assert list(burst_reader.read_burst()) == list(seq_reader.read_all())


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
def test_mctls_encode_batch_matches_sequential(suite_name):
    """Multi-context burst with a mid-burst control record: identical
    bytes, because seqs, MAC slots, and nonces advance in record order
    on both paths."""
    suite = ALL_SUITES[suite_name]
    items = _mixed_mctls_items(_rng("mctls-enc"))
    with _patched_nonces():
        batched = _mctls_two_context_layer(suite, True).encode_batch(items)
    with _patched_nonces():
        layer = _mctls_two_context_layer(suite, True)
        sequential = b"".join(layer.encode(ct, p, cid) for ct, p, cid in items)
    assert batched == sequential


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
def test_mctls_read_burst_matches_read_all(suite_name):
    suite = ALL_SUITES[suite_name]
    items = _mixed_mctls_items(_rng("mctls-dec"))
    with _patched_nonces():
        wire = _mctls_two_context_layer(suite, True).encode_batch(items)
    burst_reader = _mctls_two_context_layer(suite, False)
    seq_reader = _mctls_two_context_layer(suite, False)
    burst_reader.feed(wire)
    seq_reader.feed(wire)
    batched = [
        (r.content_type, r.context_id, r.payload, r.legally_modified)
        for r in burst_reader.read_burst()
    ]
    sequential = [
        (r.content_type, r.context_id, r.payload, r.legally_modified)
        for r in seq_reader.read_all()
    ]
    assert batched == sequential


def _processor(suite, permission: Permission) -> MiddleboxRecordProcessor:
    proc = MiddleboxRecordProcessor(suite, mk.C2S)
    if permission is not Permission.NONE:
        proc.install(1, permission, mk.ckd_context_keys(SECRET, RC, RS, 1))
    proc.activate()
    return proc


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
@pytest.mark.parametrize(
    "permission", [Permission.NONE, Permission.READ, Permission.WRITE],
    ids=lambda p: p.name.lower(),
)
def test_middlebox_burst_matches_sequential(suite_name, permission):
    """Forwarded bytes, opened payloads, and the post-burst sequence
    number are identical whether a flight is processed record by record
    or as one burst (the ``_relay_app_burst`` shape)."""
    suite = ALL_SUITES[suite_name]
    rng = _rng(f"mbox-{permission.name}")
    payloads = [p for p in _random_payloads(rng) ]
    with _patched_nonces():
        client = _mctls_layer(suite, True)
        wire = client.encode_batch([(APPLICATION_DATA, p, 1) for p in payloads])

    rebuild = permission is Permission.WRITE
    # Sequential twin.
    with _patched_nonces():
        seq_proc = _processor(suite, permission)
        seq_out = []
        seq_opened = []
        for ct, cid, fragment, raw in split_records(bytearray(wire)):
            opened = seq_proc.open_record(ct, cid, fragment)
            if opened.payload is not None:
                seq_opened.append(bytes(opened.payload))
            if rebuild and opened.payload is not None:
                seq_out.append(seq_proc.rebuild_record(opened, opened.payload))
            else:
                seq_out.append(bytes(raw))
    # Batched twin (nonce schedule: opens draw none, rebuilds draw in
    # record order — same total order as the sequential loop).
    with _patched_nonces():
        burst_proc = _processor(suite, permission)
        burst, entries, error = split_burst(bytearray(wire))
        assert error is None
        batched_out = []
        batched_opened = []
        if burst_proc.opaque:
            burst_proc.skip_burst(len(entries))
            batched_out.append(burst[entries[0][2] : entries[-1][3]])
        else:
            view = memoryview(burst)
            recs = [
                (ct, cid, view[start + MCTLS_HEADER_LEN : end])
                for ct, cid, start, end in entries
            ]
            opened_records = []
            for (ct, cid, start, end), opened in zip(
                entries, burst_proc.open_burst(recs)
            ):
                if opened is None:
                    batched_out.append(burst[start:end])
                    continue
                batched_opened.append(bytes(opened.payload))
                if rebuild:
                    opened_records.append(opened)
                else:
                    batched_out.append(burst[start:end])
            if rebuild:
                batched_out.extend(
                    burst_proc.rebuild_burst(
                        [(o, o.payload) for o in opened_records]
                    )
                )
    assert b"".join(batched_out) == b"".join(seq_out)
    if permission is Permission.READ:
        assert batched_opened == seq_opened
    assert burst_proc.seq == seq_proc.seq


def test_endpoint_tamper_mid_burst_fails_at_same_record():
    """Flip a byte mid-burst: the batched reader yields exactly the
    records before the bad one, then raises the same MAC failure the
    sequential reader does."""
    suite = SUITES["shactr"]
    payloads = [b"tamper-target-%d" % i * 3 for i in range(8)]
    with _patched_nonces():
        wire = bytearray(
            _mctls_layer(suite, True).encode_batch(
                [(APPLICATION_DATA, p, 1) for p in payloads]
            )
        )
    # Corrupt a payload byte of record 5 (first ciphertext byte after
    # the 16-byte nonce) — an illegal modification MAC_writers catches.
    entries = split_burst(bytearray(wire))[1]
    wire[entries[5][2] + MCTLS_HEADER_LEN + 16] ^= 0x40

    outcomes = []
    for reader_method in ("read_burst", "read_all"):
        reader = _mctls_layer(suite, False)
        reader.feed(bytes(wire))
        yielded = []
        with pytest.raises(MacVerificationError) as excinfo:
            for record in getattr(reader, reader_method)():
                yielded.append(record.payload)
        outcomes.append((yielded, excinfo.value.mac, excinfo.value.context_id))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == payloads[:5]


def test_middlebox_tamper_mid_burst_fails_at_same_record():
    """Same property for a READ middlebox's ``open_burst``."""
    suite = SUITES["shactr"]
    payloads = _random_payloads(_rng("tamper-mbox"), count=8)
    with _patched_nonces():
        wire = bytearray(
            _mctls_layer(suite, True).encode_batch(
                [(APPLICATION_DATA, p, 1) for p in payloads]
            )
        )
    entries = split_burst(bytearray(wire))[1]
    wire[entries[5][3] - 1] ^= 0x40

    outcomes = []
    # Sequential.
    proc = _processor(suite, Permission.READ)
    yielded = []
    with pytest.raises(MacVerificationError) as excinfo:
        for ct, cid, fragment, _raw in split_records(bytearray(wire)):
            yielded.append(bytes(proc.open_record(ct, cid, fragment).payload))
    outcomes.append((yielded, excinfo.value.mac))
    # Batched.
    proc = _processor(suite, Permission.READ)
    burst, entries, error = split_burst(bytearray(wire))
    assert error is None
    view = memoryview(burst)
    recs = [
        (ct, cid, view[start + MCTLS_HEADER_LEN : end])
        for ct, cid, start, end in entries
    ]
    yielded = []
    with pytest.raises(MacVerificationError) as excinfo:
        for opened in proc.open_burst(recs):
            yielded.append(bytes(opened.payload))
    outcomes.append((yielded, excinfo.value.mac))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == payloads[:5]


# -- compact-framing differentials --------------------------------------------
#
# The batched==sequential identity must hold under the negotiated
# compact framing too: shorter headers, truncated MACs, and per-field
# MAC trailers change the geometry the burst paths slice, not the
# record-order nonce/seq schedule.

from repro.framing import MCTLS_COMPACT  # noqa: E402

from tests.golden.gen_compact_vectors import SCHEMA as COMPACT_SCHEMA  # noqa: E402


def _compact_two_context_layer(suite, is_client: bool) -> McTLSRecordLayer:
    layer = _mctls_two_context_layer(suite, is_client)
    field_keys = mk.derive_field_keys(SECRET, RC, RS, COMPACT_SCHEMA)
    layer.set_framing(MCTLS_COMPACT, (COMPACT_SCHEMA,), {1: field_keys})
    return layer


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
def test_compact_encode_batch_matches_sequential(suite_name):
    suite = ALL_SUITES[suite_name]
    items = _mixed_mctls_items(_rng("compact-enc"))
    with _patched_nonces():
        batched = _compact_two_context_layer(suite, True).encode_batch(items)
    with _patched_nonces():
        layer = _compact_two_context_layer(suite, True)
        sequential = b"".join(layer.encode(ct, p, cid) for ct, p, cid in items)
    assert batched == sequential


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
def test_compact_read_burst_matches_read_all(suite_name):
    suite = ALL_SUITES[suite_name]
    items = _mixed_mctls_items(_rng("compact-dec"))
    with _patched_nonces():
        wire = _compact_two_context_layer(suite, True).encode_batch(items)
    burst_reader = _compact_two_context_layer(suite, False)
    seq_reader = _compact_two_context_layer(suite, False)
    burst_reader.feed(wire)
    seq_reader.feed(wire)
    batched = [
        (r.content_type, r.context_id, r.payload, r.legally_modified)
        for r in burst_reader.read_burst()
    ]
    sequential = [
        (r.content_type, r.context_id, r.payload, r.legally_modified)
        for r in seq_reader.read_all()
    ]
    assert batched == sequential
    assert [p for _, _, p, _ in batched] == [p for _, p, _ in items]


@pytest.mark.parametrize("suite_name", ALL_SUITE_NAMES)
@pytest.mark.parametrize(
    "permission", [Permission.NONE, Permission.READ, Permission.WRITE],
    ids=lambda p: p.name.lower(),
)
def test_compact_middlebox_burst_matches_sequential(suite_name, permission):
    """The middlebox burst grid under compact geometry: 4-byte headers,
    8-byte MAC slots, field-MAC trailers forwarded or recomputed — same
    bytes, opened payloads and post-burst seq as the sequential loop."""
    suite = ALL_SUITES[suite_name]
    rng = _rng(f"compact-mbox-{permission.name}")
    payloads = _random_payloads(rng)
    with _patched_nonces():
        client = _compact_two_context_layer(suite, True)
        wire = client.encode_batch([(APPLICATION_DATA, p, 1) for p in payloads])
    field_keys = mk.derive_field_keys(SECRET, RC, RS, COMPACT_SCHEMA)

    def _compact_processor():
        proc = _processor(suite, permission)
        proc.set_framing(MCTLS_COMPACT, (COMPACT_SCHEMA,))
        if permission is Permission.WRITE:
            proc.install_field_keys(1, {0: field_keys[0]})  # "hdr" grant
        return proc

    rebuild = permission is Permission.WRITE
    header_len = MCTLS_COMPACT.header_len
    with _patched_nonces():
        seq_proc = _compact_processor()
        seq_out, seq_opened = [], []
        for ct, cid, fragment, raw in split_records(bytearray(wire), MCTLS_COMPACT):
            opened = seq_proc.open_record(ct, cid, fragment)
            if opened.payload is not None:
                seq_opened.append(bytes(opened.payload))
            if rebuild and opened.payload is not None:
                seq_out.append(seq_proc.rebuild_record(opened, opened.payload))
            else:
                seq_out.append(bytes(raw))
    with _patched_nonces():
        burst_proc = _compact_processor()
        burst, entries, error = split_burst(bytearray(wire), MCTLS_COMPACT)
        assert error is None
        batched_out, batched_opened = [], []
        if burst_proc.opaque:
            burst_proc.skip_burst(len(entries))
            batched_out.append(burst[entries[0][2] : entries[-1][3]])
        else:
            view = memoryview(burst)
            recs = [
                (ct, cid, view[start + header_len : end])
                for ct, cid, start, end in entries
            ]
            opened_records = []
            for (ct, cid, start, end), opened in zip(
                entries, burst_proc.open_burst(recs)
            ):
                if opened is None:
                    batched_out.append(burst[start:end])
                    continue
                batched_opened.append(bytes(opened.payload))
                if rebuild:
                    opened_records.append(opened)
                else:
                    batched_out.append(burst[start:end])
            if rebuild:
                batched_out.extend(
                    burst_proc.rebuild_burst([(o, o.payload) for o in opened_records])
                )
    assert b"".join(batched_out) == b"".join(seq_out)
    if permission is Permission.READ:
        assert batched_opened == seq_opened
    assert burst_proc.seq == seq_proc.seq


def test_compact_endpoint_tamper_mid_burst_fails_at_same_record():
    """Mid-burst tamper under compact framing: batched and sequential
    readers fail at the same record with the same MAC attribution."""
    suite = SUITES["shactr"]
    payloads = [b"tamper-target-%d" % i * 3 for i in range(8)]
    with _patched_nonces():
        wire = bytearray(
            _compact_two_context_layer(suite, True).encode_batch(
                [(APPLICATION_DATA, p, 1) for p in payloads]
            )
        )
    entries = split_burst(bytearray(wire), MCTLS_COMPACT)[1]
    wire[entries[5][2] + MCTLS_COMPACT.header_len + 16] ^= 0x40

    outcomes = []
    for reader_method in ("read_burst", "read_all"):
        reader = _compact_two_context_layer(suite, False)
        reader.feed(bytes(wire))
        yielded = []
        with pytest.raises(MacVerificationError) as excinfo:
            for record in getattr(reader, reader_method)():
                yielded.append(record.payload)
        outcomes.append((yielded, excinfo.value.mac, excinfo.value.context_id))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == payloads[:5]


# -- full-stack event-stream equivalence --------------------------------------


@pytest.fixture(scope="module")
def bed() -> TestBed:
    return TestBed(key_bits=512, dh_group=GROUP_TEST_512)


def _app_events(events):
    return [
        event
        for event in events
        if type(event).__name__.endswith("ApplicationData")
    ]


def _build_chain(bed, mode):
    topology = (
        bed.topology(1) if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS) else None
    )
    client, server = bed.make_endpoints(mode, topology=topology)
    relays = bed.make_relays(mode, 1)
    chain = Chain(client, relays, server)
    client.start_handshake()
    chain.pump()
    assert client.handshake_complete
    # Plain TCP has no handshake bytes: the server side completes on
    # its first received data, not during the pump above.
    if mode is not Mode.NO_ENCRYPT:
        assert server.handshake_complete
    return client, relays, server, chain


@pytest.mark.parametrize("mode", list(Mode), ids=lambda m: m.value)
def test_burst_flight_delivers_same_stream_as_sequential(bed, mode):
    """One live session per stack: N payloads sent record by record,
    then N more queued and pumped as ONE multi-record flight through the
    relay.  Both phases must deliver the same application byte stream
    (framed stacks also preserve per-record boundaries)."""
    client, relays, server, chain = _build_chain(bed, mode)
    server_events = []
    chain.on_server_event = server_events.append
    ctx = 1 if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS) else 0
    payloads = _random_payloads(_rng(f"stack-{mode.value}"), count=6, max_len=200)
    payloads = [p for p in payloads if p]  # empty app data is a no-op on plain TCP

    sequential = []
    for payload in payloads:
        client.send_application_data(payload, context_id=ctx)
        chain.pump()
        sequential.extend(e.data for e in _app_events(server_events))
        server_events.clear()

    for payload in payloads:
        client.send_application_data(payload, context_id=ctx)
    chain.pump()
    burst = [e.data for e in _app_events(server_events)]
    server_events.clear()

    assert b"".join(burst) == b"".join(sequential) == b"".join(payloads)
    if mode is not Mode.NO_ENCRYPT:  # record-framed stacks keep boundaries
        assert burst == sequential == payloads


@pytest.mark.parametrize("mode", list(Mode), ids=lambda m: m.value)
def test_views_drain_equivalent_to_joined_drain(bed, mode):
    """`data_to_send_views()` drains the same queue as `data_to_send()`:
    injecting the joined views into the relay delivers the identical
    stream, and the joined drain afterwards is empty."""
    client, relays, server, chain = _build_chain(bed, mode)
    server_events = []
    chain.on_server_event = server_events.append
    ctx = 1 if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS) else 0
    payloads = [p for p in _random_payloads(_rng(f"views-{mode.value}"), 6, 200) if p]

    for payload in payloads:
        client.send_application_data(payload, context_id=ctx)
    views = client.data_to_send_views()
    assert client.data_to_send() == b""  # the views drained the queue
    relays[0].receive_from_client(b"".join(views))
    chain.pump()
    delivered = [e.data for e in _app_events(server_events)]
    assert b"".join(delivered) == b"".join(payloads)


# -- keystream pool accounting ------------------------------------------------


class TestKeystreamPool:
    def test_hit_miss_accounting_via_stream_for(self):
        cipher = ShaCtrCipher(b"K" * 16)
        nonce = b"pool-nonce-00001"
        hits0, misses0 = KEYSTREAM_POOL.hits, KEYSTREAM_POOL.misses
        first = cipher.stream_for(nonce, 100)
        assert KEYSTREAM_POOL.misses == misses0 + 1
        second = cipher.stream_for(nonce, 100)
        assert KEYSTREAM_POOL.hits == hits0 + 1
        assert first == second

    def test_bounded_fifo_evicts_oldest(self):
        pool = KeystreamPool(max_entries=2, cacheable_bytes=64)
        pool.put(("k", b"n1", 1), b"s1", 32)
        pool.put(("k", b"n2", 1), b"s2", 32)
        assert len(pool) == 2 and pool.evictions == 0
        pool.put(("k", b"n3", 1), b"s3", 32)
        assert len(pool) == 2 and pool.evictions == 1
        pool.put(("k", b"huge", 9), b"s", 65)  # over the admission cutoff
        assert len(pool) == 2  # not admitted, nothing evicted
        assert pool.evictions == 1

    def test_size_to_workload_rebounds_pool(self):
        pool = KeystreamPool()
        default_entries = pool.max_entries
        pool.size_to_workload([256] * 100, budget_bytes=1 << 23)
        small_records = pool.max_entries
        assert pool.cacheable_bytes >= 256
        pool.size_to_workload([4096] * 100, budget_bytes=1 << 23)
        assert pool.max_entries < small_records  # bigger records, fewer entries
        assert (small_records, pool.max_entries) != (default_entries,) * 2

    def test_publish_to_instruments_is_delta_based(self):
        pool = KeystreamPool(max_entries=1, cacheable_bytes=64)
        pool.hits, pool.misses = 3, 2
        pool.put(("k", b"n1", 1), b"s", 32)
        pool.put(("k", b"n2", 1), b"s", 32)  # evicts n1
        instruments = Instruments()
        pool.publish_to(instruments)
        snap = instruments.snapshot()
        assert snap["keystream.pool.hit"] == 3
        assert snap["keystream.pool.miss"] == 2
        assert snap["keystream.pool.evict"] == 1
        pool.hits += 1
        pool.publish_to(instruments)
        snap = instruments.snapshot()
        assert snap["keystream.pool.hit"] == 4  # only the delta was added
        assert snap["keystream.pool.miss"] == 2


# -- RecordBuffer reclamation regression --------------------------------------


class TestRecordBufferSnapshot:
    def test_snapshot_survives_compaction_on_later_append(self, monkeypatch):
        """The hazard: burst offsets parsed against ``data``/``pos``
        held across an ``append`` whose reclamation shifts the buffer.
        ``snapshot`` copies the span out atomically, so a compacting
        append afterwards must not disturb it or the cursor."""
        import repro.recbuf as recbuf

        monkeypatch.setattr(recbuf, "_COMPACT_BYTES", 8)
        buf = RecordBuffer()
        buf.append(b"AAAABBBBCCCCDDDD")
        first = buf.snapshot(12)  # cursor now well past the tiny threshold
        assert first == b"AAAABBBBCCCC"
        buf.append(b"EEEE")  # triggers reclamation of the consumed prefix
        assert buf.pos == 0  # the dead prefix was compacted away
        assert first == b"AAAABBBBCCCC"  # the snapshot is self-contained
        assert buf.snapshot(8) == b"DDDDEEEE"
        assert len(buf) == 0

    def test_interleaved_feed_and_read_at_fragment_boundaries(self):
        """Feed a protected mcTLS stream in chunks that straddle record
        boundaries, reading between feeds — every record must come out
        intact, whichever side of a fragment boundary the feed stops
        on."""
        suite = SUITES["shactr"]
        payloads = _random_payloads(_rng("recbuf"), count=10, max_len=300)
        with _patched_nonces():
            writer = _mctls_layer(suite, True)
            wires = [writer.encode(APPLICATION_DATA, p, 1) for p in payloads]
        stream = b"".join(wires)
        boundaries = []
        offset = 0
        for wire in wires:
            offset += len(wire)
            boundaries.append(offset)
        # Chunk edges at, just before, and just after record boundaries,
        # plus mid-fragment cuts.
        cuts = sorted(
            {0, len(stream)}
            | {b for b in boundaries}
            | {max(0, b - 1) for b in boundaries}
            | {min(len(stream), b + 1) for b in boundaries}
            | {b - len(w) // 2 for b, w in zip(boundaries, wires) if len(w) > 1}
        )
        reader = _mctls_layer(suite, False)
        got = []
        for start, end in zip(cuts, cuts[1:]):
            reader.feed(stream[start:end])
            got.extend(record.payload for record in reader.read_burst())
        assert got == payloads
