"""The paper's on-path claim (§5.1): "if middleboxes lie directly on the
data path (which often happens), then the only additional overhead is
processing time."

We compare TTFB with an *off-path* middlebox (adds a 20 ms detour hop,
the Figure 3 setup) against an *on-path* one (same end-to-end delay
budget split across the two hops): the on-path session costs only the
extra TLS-style round trips, not extra propagation.
"""

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.handshake_time import measure_ttfb
from repro.experiments.harness import Mode, TestBed


@pytest.fixture(scope="module")
def bed():
    return TestBed(key_bits=512, dh_group=GROUP_TEST_512)


def test_onpath_middlebox_adds_no_propagation(bed):
    # Baseline: no middlebox, one 40 ms-RTT path.
    direct = measure_ttfb(bed, Mode.MCTLS, n_middleboxes=0, hop_delay_ms=20.0)
    # On-path middlebox: same 40 ms end-to-end RTT, split 10+10 per hop.
    onpath = measure_ttfb(bed, Mode.MCTLS, n_middleboxes=1, hop_delay_ms=10.0)
    # Off-path middlebox: the detour doubles the end-to-end RTT.
    offpath = measure_ttfb(bed, Mode.MCTLS, n_middleboxes=1, hop_delay_ms=20.0)

    # On-path ≈ direct (the claim); off-path ≈ 2× (the detour).
    assert onpath.ttfb_s == pytest.approx(direct.ttfb_s, rel=0.10)
    assert offpath.ttfb_s == pytest.approx(2 * direct.ttfb_s, rel=0.10)


def test_onpath_holds_for_baselines_too(bed):
    for mode in (Mode.E2E_TLS, Mode.SPLIT_TLS):
        direct = measure_ttfb(bed, mode, n_middleboxes=0, hop_delay_ms=20.0)
        onpath = measure_ttfb(bed, mode, n_middleboxes=1, hop_delay_ms=10.0)
        assert onpath.ttfb_s == pytest.approx(direct.ttfb_s, rel=0.10), mode
