"""TCP dynamics tests: slow start, receive-window capping, queueing."""

import pytest

from repro.netsim import Simulator, connect_tcp
from repro.netsim.link import duplex
from repro.netsim.tcp import INITIAL_CWND_SEGMENTS, MSS


def run_transfer(size, bandwidth=100e6, delay=0.025, rwnd=1 << 20):
    sim = Simulator()
    fwd, rev = duplex(sim, bandwidth, delay)
    client, server = connect_tcp(sim, fwd, rev, rwnd=rwnd)
    done = []
    got = [0]

    def on_data(data):
        got[0] += len(data)
        if got[0] >= size:
            done.append(sim.now)

    server.on_data = on_data
    client.on_connected = lambda: client.send(b"x" * size)
    sim.run()
    assert done, "transfer did not complete"
    return done[0]


class TestSlowStart:
    def test_initial_window_is_iw10(self):
        """The first RTT delivers at most 10 MSS."""
        sim = Simulator()
        fwd, rev = duplex(sim, None, 0.05)  # infinite bandwidth, 100 ms RTT
        client, server = connect_tcp(sim, fwd, rev)
        arrivals = []
        server.on_data = lambda data: arrivals.append((sim.now, len(data)))
        client.on_connected = lambda: client.send(b"x" * (40 * MSS))
        sim.run()
        # First burst lands ~0.15 s (handshake RTT + one-way delay).
        first_burst = [n for t, n in arrivals if t < 0.16]
        assert sum(first_burst) == INITIAL_CWND_SEGMENTS * MSS

    def test_window_doubles_per_rtt(self):
        """Second-round delivery is ~2× the first (exponential growth)."""
        sim = Simulator()
        fwd, rev = duplex(sim, None, 0.05)
        client, server = connect_tcp(sim, fwd, rev)
        arrivals = []
        server.on_data = lambda data: arrivals.append((sim.now, len(data)))
        client.on_connected = lambda: client.send(b"x" * (120 * MSS))
        sim.run()
        round1 = sum(n for t, n in arrivals if t < 0.16)
        round2 = sum(n for t, n in arrivals if 0.16 <= t < 0.26)
        assert round2 == pytest.approx(2 * round1, rel=0.15)

    def test_high_bdp_transfer_slower_than_line_rate(self):
        """On a long fat pipe, slow start dominates a mid-size transfer:
        the same bytes take longer at 100 ms RTT than at 2 ms RTT."""
        fast_rtt = run_transfer(500_000, bandwidth=1e9, delay=0.001)
        slow_rtt = run_transfer(500_000, bandwidth=1e9, delay=0.05)
        assert slow_rtt > 3 * fast_rtt


class TestReceiveWindow:
    def test_rwnd_caps_inflight(self):
        """With a tiny receive window the sender stalls per window."""
        small = run_transfer(200_000, bandwidth=1e9, delay=0.01, rwnd=20_000)
        large = run_transfer(200_000, bandwidth=1e9, delay=0.01, rwnd=1 << 20)
        # 200 kB over 20 kB windows needs ≥ 10 window-RTTs.
        assert small > large
        assert small >= 0.01 * 2 * (200_000 // 20_000) * 0.8


class TestQueueing:
    def test_two_flows_share_a_link(self):
        """Two simultaneous transfers on one link take ~2× one transfer."""
        sim = Simulator()
        fwd, rev = duplex(sim, 10e6, 0.005)
        done = []
        size = 500_000

        for flow in range(2):
            client, server = connect_tcp(sim, fwd, rev)
            got = [0]

            def on_data(data, got=got):
                got[0] += len(data)
                if got[0] >= size:
                    done.append(sim.now)

            server.on_data = on_data
            client.on_connected = (lambda c=client: c.send(b"x" * size))
        sim.run()
        assert len(done) == 2
        solo = size * 8 / 10e6
        assert max(done) == pytest.approx(2 * solo, rel=0.2)
