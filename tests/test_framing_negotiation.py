"""Record-framing negotiation: offered in the ClientHello, echoed by the
server, armed at the CCS boundary — and never implied.

The default framing produces bit-identical legacy handshakes (no
extension at all); the compact framing must be explicitly offered and
echoed; abbreviated (resumed) handshakes always fall back to the default
framing because field keys travel in the full handshake's key-material
flight, which resumption skips.
"""

from __future__ import annotations

import pytest

from repro.crypto.dh import GROUP_TEST_512
from repro.mctls import messages as mm
from repro.mctls.contexts import (
    ContextDefinition,
    FieldDef,
    FieldSchema,
    Permission,
)
from repro.tls.connection import TLSConfig, TLSError
from repro.tls.sessioncache import ClientSessionStore, SessionCache

from tests.mctls_helpers import build_session

SCHEMA = FieldSchema(
    context_id=1,
    fields=(FieldDef("hdr", 0, 8), FieldDef("body", 8, 64)),
    write_grants={"hdr": (1,)},
)


def _contexts(with_mbox: bool = False):
    permissions = {1: Permission.WRITE} if with_mbox else {}
    return [ContextDefinition(1, "telemetry", permissions)]


def test_default_framing_sends_no_extension(ca, server_identity):
    from repro.mctls import McTLSClient, SessionTopology
    from repro.tls import messages as tls_msgs

    client = McTLSClient(
        TLSConfig(trusted_roots=[ca.certificate], dh_group=GROUP_TEST_512),
        topology=SessionTopology(contexts=tuple(_contexts())),
    )
    client.start_handshake()
    wire = client.data_to_send()
    # Parse the ClientHello out of the first record and check extensions.
    from repro.tls.messages import HandshakeBuffer

    hs = HandshakeBuffer()
    hs.feed(wire[6:])  # skip the 6-byte mcTLS record header
    msg_type, body, _ = hs.next_message()
    assert msg_type == tls_msgs.CLIENT_HELLO
    hello = tls_msgs.ClientHello.decode(body)
    assert hello.find_extension(mm.EXT_MCTLS_FRAMING) is None


def test_compact_negotiates_on_both_endpoints_through_middlebox(
    ca, server_identity, mbox_identity
):
    client, mboxes, server, chain = build_session(
        ca,
        server_identity,
        [mbox_identity],
        _contexts(with_mbox=True),
        framing="mctls-compact",
        field_schemas=(SCHEMA,),
    )
    assert client.handshake_complete and server.handshake_complete
    assert client.negotiated_framing.name == "mctls-compact"
    assert server.negotiated_framing.name == "mctls-compact"

    # Application data crosses the middlebox in both directions.
    client.send_application_data(b"temp=21.5;unit=C" + bytes(16), context_id=1)
    events = chain.pump()
    received = [e for e in events if type(e).__name__.endswith("ApplicationData")]
    assert received and received[-1].data.startswith(b"temp=21.5")
    server.send_application_data(b"ack" + bytes(29), context_id=1)
    events = chain.pump()
    received = [e for e in events if type(e).__name__.endswith("ApplicationData")]
    assert received and received[-1].data.startswith(b"ack")


def test_default_sessions_stay_on_default_framing(ca, server_identity):
    client, _, server, chain = build_session(ca, server_identity, [], _contexts())
    assert client.negotiated_framing.name == "mctls-default"
    assert server.negotiated_framing.name == "mctls-default"


def test_resumption_falls_back_to_default_framing(ca, server_identity):
    """A resumed session never negotiates a framing: the field-key flight
    only exists in full handshakes, so the abbreviated session falls back
    to the default framing even though the client offered compact."""
    store, cache = ClientSessionStore(), SessionCache()
    client, _, server, chain = build_session(
        ca,
        server_identity,
        [],
        _contexts(),
        session_store=store,
        session_cache=cache,
        framing="mctls-compact",
        field_schemas=(SCHEMA,),
    )
    assert client.negotiated_framing.name == "mctls-compact"

    resumed_client, _, resumed_server, chain2 = build_session(
        ca,
        server_identity,
        [],
        _contexts(),
        session_store=store,
        session_cache=cache,
        framing="mctls-compact",
        field_schemas=(SCHEMA,),
    )
    assert resumed_client.handshake_complete and resumed_server.handshake_complete
    assert resumed_client.resumed and resumed_server.resumed
    assert resumed_client.negotiated_framing.name == "mctls-default"
    assert resumed_server.negotiated_framing.name == "mctls-default"
    # The fallen-back session still moves data.
    resumed_client.send_application_data(b"after-resume", context_id=1)
    events = chain2.pump()
    received = [e for e in events if type(e).__name__.endswith("ApplicationData")]
    assert received and received[-1].data == b"after-resume"


def test_unsolicited_framing_echo_raises(ca, server_identity):
    """A ServerHello echoing a framing offer the client never made is a
    negotiation violation: cross-wire a compact session's server flight
    into a default-framing client."""
    from repro.mctls import McTLSClient, McTLSServer, SessionTopology

    topology = SessionTopology(contexts=tuple(_contexts()))
    compact_client = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
            framing="mctls-compact",
            field_schemas=(SCHEMA,),
        ),
        topology=topology,
    )
    server = McTLSServer(
        TLSConfig(
            identity=server_identity,
            trusted_roots=[ca.certificate],
            dh_group=GROUP_TEST_512,
        )
    )
    compact_client.start_handshake()
    server.receive_data(compact_client.data_to_send())
    echoing_flight = server.data_to_send()

    victim = McTLSClient(
        TLSConfig(
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            dh_group=GROUP_TEST_512,
        ),
        topology=topology,
    )
    victim.start_handshake()
    victim.data_to_send()
    with pytest.raises(TLSError, match="framing offer we did not make"):
        victim.receive_data(echoing_flight)
