"""A from-scratch, sans-I/O TLS 1.2 subset.

This package implements enough of TLS 1.2 (RFC 5246) to act as the
substrate the mcTLS extension builds on, and as the protocol for the
SplitTLS / E2E-TLS baselines the paper compares against:

* the record protocol with MAC-then-encrypt CBC protection,
* the DHE-RSA handshake (ClientHello → ServerHello/Certificate/
  ServerKeyExchange/ServerHelloDone → ClientKeyExchange/CCS/Finished →
  CCS/Finished),
* alerts and transcript (Finished) verification.

All protocol objects are sans-I/O state machines implementing the
``repro.core.Connection`` protocol: feed received bytes with
``receive_data()``, drain output with ``data_to_send()``, observe progress
through returned events.  The same code runs over in-memory pipes, real
sockets and the discrete-event network simulator.
"""

from repro.tls.ciphersuites import (
    CipherSuite,
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
)
from repro.tls.client import TLSClient
from repro.tls.connection import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    HandshakeComplete,
    TLSConfig,
    TLSError,
)
from repro.tls.server import TLSServer
from repro.tls.sessioncache import (
    ClientSessionStore,
    SessionCache,
    TLSSessionState,
    new_session_id,
)
from repro.tls.tickets import (
    ClientTicket,
    TicketError,
    TicketKeyManager,
)

__all__ = [
    "ClientTicket",
    "TicketError",
    "TicketKeyManager",
    "AlertReceived",
    "ApplicationData",
    "CipherSuite",
    "ClientSessionStore",
    "ConnectionClosed",
    "HandshakeComplete",
    "SessionCache",
    "SUITE_DHE_RSA_AES128_CBC_SHA256",
    "SUITE_DHE_RSA_SHACTR_SHA256",
    "TLSClient",
    "TLSConfig",
    "TLSError",
    "TLSServer",
    "TLSSessionState",
    "new_session_id",
]
