"""The TLS 1.2 record protocol (RFC 5246 §6).

Records are ``type(1) || version(2) || length(2) || fragment``.  Once a
direction is protected, fragments are MAC-then-encrypt: the MAC is computed
over ``seq(8) || type(1) || version(2) || plaintext_length(2) || plaintext``
and appended to the plaintext before encryption.

:class:`RecordLayer` holds both directions of one connection endpoint:
``encode()`` frames and protects outgoing payloads, ``feed()`` +
``read_record()`` de-frame and unprotect incoming bytes.

The data plane is on the fast path of every experiment: the receive
side parses straight out of a cursor buffer (:class:`repro.recbuf.RecordBuffer`)
with one fragment copy per record, the MAC key schedule is precomputed
per direction (the suite provider's cached HMAC context), and
headers/MAC prefixes are packed with :class:`struct.Struct`.  Wire bytes
are pinned by the golden-vector tests.
"""

from __future__ import annotations

import hmac as _hmac
from typing import Iterator, Optional, Tuple

from repro.framing import (
    ALERT,
    APPLICATION_DATA,
    CHANGE_CIPHER_SPEC,
    CONTENT_TYPES,
    HANDSHAKE,
    MAX_FRAGMENT,
    MAX_PLAINTEXT,
    TLS_DEFAULT,
    TLS_VERSION,
)
from repro.recbuf import RecordBuffer
from repro.tls.ciphersuites import (
    BulkCipher,
    CipherError,
    CipherSuite,
    StreamRecordCipher,
)

# The wire geometry is the default TLS instance of the pluggable framing
# seam (:mod:`repro.framing`); these aliases keep this module the
# canonical import surface for TLS record constants.
RECORD_HEADER_LEN = TLS_DEFAULT.header_len

# type(1) || version(2) || length(2)
_WIRE_HEADER = TLS_DEFAULT.header
# seq(8) || type(1) || version(2) || plaintext_length(2)
_MAC_PREFIX = TLS_DEFAULT.mac_prefix_struct


class RecordError(Exception):
    """Raised on malformed records or failed record protection."""


class DirectionState:
    """Protection state for one direction (null until ChangeCipherSpec)."""

    def __init__(self) -> None:
        self.cipher: Optional[BulkCipher] = None
        self.mac_key: bytes = b""
        self.suite: Optional[CipherSuite] = None
        self.seq: int = 0
        self._mac_ctx = None

    @property
    def protected(self) -> bool:
        return self.cipher is not None

    def activate(self, suite: CipherSuite, cipher: BulkCipher, mac_key: bytes) -> None:
        self.suite = suite
        self.cipher = cipher
        self.mac_key = mac_key
        self.seq = 0
        self._mac_ctx = suite.mac_context(mac_key)

    def next_seq(self) -> int:
        seq = self.seq
        self.seq += 1
        return seq

    def record_mac(self, seq: int, content_type: int, plaintext) -> bytes:
        """MAC over ``mac_input(seq, content_type, plaintext)``."""
        return self._mac_ctx.digest(
            _MAC_PREFIX.pack(seq, content_type, TLS_VERSION, len(plaintext)),
            plaintext,
        )


def mac_input(seq: int, content_type: int, plaintext: bytes) -> bytes:
    """The bytes a TLS record MAC covers."""
    return _MAC_PREFIX.pack(seq, content_type, TLS_VERSION, len(plaintext)) + plaintext


class RecordLayer:
    """Sans-I/O record framing and protection for one connection end."""

    def __init__(self) -> None:
        self.read_state = DirectionState()
        self.write_state = DirectionState()
        self._inbuf = RecordBuffer()

    # -- outgoing ------------------------------------------------------

    def encode(self, content_type: int, payload: bytes) -> bytes:
        """Frame (and fragment / protect) an outgoing payload."""
        if content_type not in CONTENT_TYPES:
            raise RecordError(f"invalid content type {content_type}")
        if len(payload) <= MAX_PLAINTEXT:
            return self._encode_one(content_type, payload)
        view = memoryview(payload)
        out = bytearray()
        for offset in range(0, len(payload), MAX_PLAINTEXT):
            out += self._encode_one(content_type, view[offset : offset + MAX_PLAINTEXT])
        return bytes(out)

    def _encode_one(self, content_type: int, plaintext) -> bytes:
        state = self.write_state
        if state.cipher is not None:
            seq = state.seq
            state.seq = seq + 1
            mac = state.record_mac(seq, content_type, plaintext)
            fragment = state.cipher.encrypt(b"".join((plaintext, mac)))
        else:
            fragment = plaintext
        if len(fragment) > MAX_FRAGMENT:
            raise RecordError("record fragment too long")
        return _WIRE_HEADER.pack(content_type, TLS_VERSION, len(fragment)) + fragment

    def encode_batch(self, items) -> bytes:
        """Frame a burst of ``(content_type, payload)`` pairs.

        Byte-identical to ``b"".join(encode(ct, p) for ct, p in items)``:
        sequence numbers and record MACs advance in record order, and the
        bulk cipher's :meth:`~BulkCipher.encrypt_batch` draws per-record
        nonces in the same order the sequential path would.  The win is
        one fused XOR pass over the whole burst (SHA-CTR suite) and one
        output join instead of per-record bytearray growth.
        """
        state = self.write_state
        pending = []
        for content_type, payload in items:
            if content_type not in CONTENT_TYPES:
                raise RecordError(f"invalid content type {content_type}")
            if len(payload) <= MAX_PLAINTEXT:
                pending.append((content_type, payload))
            else:
                view = memoryview(payload)
                for offset in range(0, len(payload), MAX_PLAINTEXT):
                    pending.append(
                        (content_type, view[offset : offset + MAX_PLAINTEXT])
                    )
        parts = []
        if state.cipher is None:
            for content_type, plaintext in pending:
                parts.append(
                    _WIRE_HEADER.pack(content_type, TLS_VERSION, len(plaintext))
                )
                parts.append(plaintext)
            return b"".join(parts)
        plaintext_and_macs = []
        for content_type, plaintext in pending:
            seq = state.seq
            state.seq = seq + 1
            mac = state.record_mac(seq, content_type, plaintext)
            plaintext_and_macs.append(b"".join((plaintext, mac)))
        fragments = state.cipher.encrypt_batch(plaintext_and_macs)
        for (content_type, _), fragment in zip(pending, fragments):
            if len(fragment) > MAX_FRAGMENT:
                raise RecordError("record fragment too long")
            parts.append(_WIRE_HEADER.pack(content_type, TLS_VERSION, len(fragment)))
            parts.append(fragment)
        return b"".join(parts)

    # -- incoming ------------------------------------------------------

    def feed(self, data: bytes) -> None:
        self._inbuf.append(data)

    def read_record(self) -> Optional[Tuple[int, bytes]]:
        """Return the next (content_type, plaintext) or None if incomplete."""
        buf = self._inbuf
        if len(buf) < RECORD_HEADER_LEN:
            return None
        content_type, version, length = _WIRE_HEADER.unpack_from(buf.data, buf.pos)
        if content_type not in CONTENT_TYPES:
            raise RecordError(f"invalid content type {content_type}")
        if version != TLS_VERSION:
            raise RecordError(f"unsupported record version 0x{version:04x}")
        if length > MAX_FRAGMENT:
            raise RecordError("record fragment too long")
        if len(buf) < RECORD_HEADER_LEN + length:
            return None
        buf.consume(RECORD_HEADER_LEN)
        fragment = buf.take(length)
        return content_type, self._unprotect(content_type, fragment)

    def read_all(self) -> Iterator[Tuple[int, bytes]]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record

    def read_burst(self) -> Iterator[Tuple[int, bytes]]:
        """Yield every complete buffered record, batching decryption.

        Sequentially equivalent to :meth:`read_all`: records come out in
        order, and any error raises at the same record position *after*
        the records before it were yielded.  When the read direction runs
        a stream suite, the whole burst is decrypted in one fused XOR
        pass; other states (unprotected, AES-CBC) take the sequential
        path record by record, and the eligibility check re-runs between
        records so protection activated mid-burst (the consumer handles a
        ChangeCipherSpec between yields) upgrades the rest of the burst.
        """
        while True:
            if isinstance(self.read_state.cipher, StreamRecordCipher):
                plan = self._plan_burst()
                if plan is not None:
                    yield from self._read_planned_burst(plan)
                    continue
            record = self.read_record()
            if record is None:
                return
            yield record

    def _plan_burst(self):
        """Parse all complete buffered records; consume them atomically.

        Returns ``(burst, entries, deferred_error)`` — one immutable
        snapshot of the parsed span, ``(content_type, start, end)``
        fragment offsets into it, and a framing error to re-raise after
        the caller has yielded the records preceding it — or ``None``
        when fewer than two records are buffered (the sequential path
        handles those without batch overhead).  Snapshot-and-consume in
        one step means later :meth:`feed` calls can compact the receive
        buffer without invalidating the parsed offsets.
        """
        buf = self._inbuf
        data, start = buf.data, buf.pos
        total = len(data)
        pos = start
        entries = []
        error = None
        while total - pos >= RECORD_HEADER_LEN:
            content_type, version, length = _WIRE_HEADER.unpack_from(data, pos)
            if content_type not in CONTENT_TYPES:
                error = RecordError(f"invalid content type {content_type}")
                break
            if content_type != APPLICATION_DATA:
                # Control records (handshake, alert, CCS) may change
                # connection state when the consumer handles them between
                # yields; batching across one would decrypt later records
                # against pre-transition state.  They end the plan and
                # take the sequential path.
                break
            if version != TLS_VERSION:
                error = RecordError(f"unsupported record version 0x{version:04x}")
                break
            if length > MAX_FRAGMENT:
                error = RecordError("record fragment too long")
                break
            end = pos + RECORD_HEADER_LEN + length
            if end > total:
                break
            entries.append((content_type, pos + RECORD_HEADER_LEN - start, end - start))
            pos = end
        if len(entries) < 2:
            return None
        burst = buf.snapshot(pos - start)
        return burst, entries, error

    def _read_planned_burst(self, plan) -> Iterator[Tuple[int, bytes]]:
        burst, entries, error = plan
        view = memoryview(burst)
        state = self.read_state
        # A too-short fragment fails decryption at its record position;
        # batch-decrypt the good prefix and re-raise there, mirroring the
        # sequential loop's failure order.
        short_error: Optional[CipherError] = None
        n = len(entries)
        for i, (_, frag_start, frag_end) in enumerate(entries):
            if frag_end - frag_start < 16:
                short_error = CipherError("ciphertext shorter than nonce")
                n = i
                break
        plaintext_and_macs = state.cipher.decrypt_batch(
            [view[frag_start:frag_end] for _, frag_start, frag_end in entries[:n]]
        )
        for (content_type, _, _), plaintext_and_mac in zip(entries, plaintext_and_macs):
            yield content_type, self._finish_unprotect(content_type, plaintext_and_mac)
        if short_error is not None:
            raise RecordError(f"record decryption failed: {short_error}") from short_error
        if error is not None:
            raise error

    def _unprotect(self, content_type: int, fragment: bytes) -> bytes:
        state = self.read_state
        if state.cipher is None:
            return fragment
        try:
            plaintext_and_mac = state.cipher.decrypt(fragment)
        except CipherError as exc:
            raise RecordError(f"record decryption failed: {exc}") from exc
        return self._finish_unprotect(content_type, plaintext_and_mac)

    def _finish_unprotect(self, content_type: int, plaintext_and_mac: bytes) -> bytes:
        """Split MAC from plaintext, consume a sequence number, verify.

        Shared by the sequential and batched read paths so the two can
        never drift in MAC coverage or error attribution.
        """
        state = self.read_state
        mac_len = state.suite.mac_length
        if len(plaintext_and_mac) < mac_len:
            raise RecordError("decrypted record shorter than MAC")
        plaintext = plaintext_and_mac[:-mac_len]
        mac = plaintext_and_mac[-mac_len:]
        seq = state.next_seq()
        expected = state.record_mac(seq, content_type, plaintext)
        if not _constant_time_eq(mac, expected):
            raise RecordError("record MAC verification failed")
        return plaintext


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    return _hmac.compare_digest(a, b)
