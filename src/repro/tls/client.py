"""The TLS 1.2 client state machine (DHE-RSA)."""

from __future__ import annotations

import dataclasses
from enum import Enum, auto
from typing import Optional

from repro.crypto.certs import verify_chain
from repro.crypto.dh import DHGroup, DHKeyPair
from repro.crypto.numtheory import bytes_to_int
from repro.tls import keyschedule as ks
from repro.tls import messages as msgs
from repro.tls.connection import (
    ALERT_BAD_CERTIFICATE,
    ALERT_DECRYPT_ERROR,
    ALERT_UNEXPECTED_MESSAGE,
    HandshakeComplete,
    TLSConfig,
    TLSConnectionBase,
    TLSError,
    make_random,
)
from repro.tls.sessioncache import ClientSessionStore, TLSSessionState, new_session_id
from repro.tls.tickets import ClientTicket


class _State(Enum):
    START = auto()
    WAIT_SERVER_HELLO = auto()
    WAIT_CERTIFICATE = auto()
    WAIT_SERVER_KEY_EXCHANGE = auto()
    WAIT_SERVER_HELLO_DONE = auto()
    WAIT_CCS = auto()
    WAIT_FINISHED = auto()
    CONNECTED = auto()


class TLSClient(TLSConnectionBase):
    """A sans-I/O TLS 1.2 client.

    Usage::

        client = TLSClient(TLSConfig(trusted_roots=[...], server_name="s"))
        client.start_handshake()
        transport.write(client.data_to_send())
        events = client.receive_data(transport.read())
    """

    def __init__(
        self,
        config: TLSConfig,
        session_store: Optional[ClientSessionStore] = None,
        ticket_store: Optional[ClientSessionStore] = None,
    ):
        super().__init__(config)
        self._state = _State.START
        self._client_random = make_random()
        self._server_random: Optional[bytes] = None
        self._dh_keypair: Optional[DHKeyPair] = None
        self._server_dh_public: Optional[int] = None
        self._server_kx_group: Optional[DHGroup] = None
        self._master_secret: Optional[bytes] = None
        self._session_store = session_store
        self._ticket_store = ticket_store
        self._offered_session: Optional[TLSSessionState] = None
        self._offered_ticket: Optional[ClientTicket] = None
        self._received_ticket: Optional[msgs.NewSessionTicket] = None
        self._pending_session_id = b""
        self.resumed = False

    # -- driving the handshake -------------------------------------------

    def start_handshake(self) -> None:
        if self._state is not _State.START:
            raise TLSError("handshake already started")
        hello = msgs.ClientHello(
            random=self._client_random,
            session_id=self._resumable_session_id(),
            cipher_suites=self.config.suite_ids(),
            extensions=self._hello_extensions(),
        )
        self._send_handshake(hello)
        self._state = _State.WAIT_SERVER_HELLO

    def _session_store_key(self) -> str:
        return self.config.server_name or ""

    def _resumable_session_id(self) -> bytes:
        """Offer a cached ticket or session for this endpoint, if held.

        A ticket offer goes out with a *fresh random* session id (RFC
        5077 §3.4): the server signals acceptance by echoing it — which
        lets the existing session-id comparison in ``_on_server_hello``
        drive the abbreviated flow unchanged.
        """
        ticket = self._resumable_ticket()
        if ticket is not None:
            self._offered_ticket = ticket
            accept_id = new_session_id()
            self._offered_session = dataclasses.replace(
                ticket.state, session_id=accept_id
            )
            return accept_id
        if self._session_store is None:
            return b""
        cached = self._session_store.get(self._session_store_key())
        if not isinstance(cached, TLSSessionState):
            return b""
        if cached.cipher_suite_id not in self.config.suite_ids():
            return b""  # local config changed; the old suite is gone
        self._offered_session = cached
        return cached.session_id

    def _resumable_ticket(self) -> Optional[ClientTicket]:
        if self._ticket_store is None:
            return None
        cached = self._ticket_store.get(self._session_store_key())
        if not isinstance(cached, ClientTicket) or not isinstance(
            cached.state, TLSSessionState
        ):
            return None
        if cached.state.cipher_suite_id not in self.config.suite_ids():
            return None
        return cached

    def _hello_extensions(self):
        """Hook: subclasses (mcTLS) add extensions to the ClientHello."""
        exts = []
        if self._ticket_store is not None:
            # Present even when empty: "I support tickets, issue me one".
            exts.append(
                (
                    msgs.EXT_SESSION_TICKET,
                    self._offered_ticket.ticket if self._offered_ticket else b"",
                )
            )
        return exts

    # -- message handling ---------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        self._transcript.append(raw)
        if msg_type == msgs.SERVER_HELLO and self._state is _State.WAIT_SERVER_HELLO:
            self._on_server_hello(msgs.ServerHello.decode(body))
        elif msg_type == msgs.CERTIFICATE and self._state is _State.WAIT_CERTIFICATE:
            self._on_certificate(msgs.CertificateMessage.decode(body))
        elif (
            msg_type == msgs.SERVER_KEY_EXCHANGE
            and self._state is _State.WAIT_SERVER_KEY_EXCHANGE
        ):
            self._on_server_key_exchange(msgs.ServerKeyExchange.decode(body), body)
        elif (
            msg_type == msgs.SERVER_HELLO_DONE
            and self._state is _State.WAIT_SERVER_HELLO_DONE
        ):
            msgs.ServerHelloDone.decode(body)
            self._on_server_hello_done()
        elif (
            msg_type == msgs.NEW_SESSION_TICKET and self._state is _State.WAIT_CCS
        ):
            # Full-handshake servers deliver the ticket between our flight
            # and their CCS; it stays in the transcript (both sides hash it).
            self._received_ticket = msgs.NewSessionTicket.decode(body)
        elif msg_type == msgs.FINISHED and self._state is _State.WAIT_FINISHED:
            self._on_finished(msgs.Finished.decode(body), raw)
        else:
            raise TLSError(
                f"unexpected handshake message {msg_type} in state {self._state.name}",
                ALERT_UNEXPECTED_MESSAGE,
            )

    def _on_server_hello(self, hello: msgs.ServerHello) -> None:
        suite = self.config.suite_for_id(hello.cipher_suite)
        if suite is None:
            raise TLSError("server selected a cipher suite we did not offer")
        self.negotiated_suite = suite
        self._server_random = hello.random
        if (
            self._offered_session is not None
            and hello.session_id == self._offered_session.session_id
        ):
            self._begin_resumption(hello, suite)
            return
        # Full handshake: remember a server-issued id so we can cache the
        # session once it completes (an empty id means "not resumable").
        self._pending_session_id = hello.session_id
        self._state = _State.WAIT_CERTIFICATE

    def _begin_resumption(self, hello: msgs.ServerHello, suite) -> None:
        """Server echoed our cached session id: abbreviated handshake."""
        cached = self._offered_session
        if hello.cipher_suite != cached.cipher_suite_id:
            raise TLSError("resumed session must keep its original cipher suite")
        self.resumed = True
        self._master_secret = cached.master_secret
        self._key_block = ks.resume_key_block(
            self._master_secret, self._client_random, self._server_random, suite
        )
        # Server sends CCS + Finished next; our own flight goes out after
        # we verify it (see _on_finished).
        self._state = _State.WAIT_CCS

    def _on_certificate(self, message: msgs.CertificateMessage) -> None:
        if not message.chain:
            raise TLSError("server sent an empty certificate chain", ALERT_BAD_CERTIFICATE)
        if self.config.verify_certificates:
            try:
                verify_chain(
                    message.chain,
                    self.config.trusted_roots,
                    expected_subject=self.config.server_name,
                )
            except Exception as exc:
                raise TLSError(
                    f"certificate verification failed: {exc}", ALERT_BAD_CERTIFICATE
                ) from exc
        self.peer_certificate = message.chain[0]
        self._state = _State.WAIT_SERVER_KEY_EXCHANGE

    def _on_server_key_exchange(self, kx: msgs.ServerKeyExchange, body: bytes) -> None:
        assert self.peer_certificate is not None and self._server_random is not None
        signed = self._client_random + self._server_random + kx.params_bytes()
        if self.config.verify_certificates:
            if not self.peer_certificate.public_key.verify(signed, kx.signature):
                raise TLSError("ServerKeyExchange signature invalid", ALERT_DECRYPT_ERROR)
        group = DHGroup(name="negotiated", p=kx.dh_p, g=kx.dh_g)
        self._server_kx_group = group
        self._server_dh_public = group.public_from_bytes(kx.dh_public)
        self._state = _State.WAIT_SERVER_HELLO_DONE

    def _on_server_hello_done(self) -> None:
        assert self._server_kx_group is not None and self._server_dh_public is not None
        self._dh_keypair = self._server_kx_group.generate_keypair()
        self._send_handshake(msgs.ClientKeyExchange(dh_public=self._dh_keypair.public_bytes))

        premaster = self._dh_keypair.combine(self._server_dh_public)
        self._master_secret = ks.master_secret(
            premaster, self._client_random, self._server_random
        )
        self._after_key_exchange()

        self._activate_write_protection()
        self._send_finished()
        self._state = _State.WAIT_CCS

    def _after_key_exchange(self) -> None:
        """Hook: mcTLS distributes middlebox key material here."""

    def _activate_write_protection(self) -> None:
        suite = self.negotiated_suite
        block = ks.derive_key_block(
            self._master_secret,
            self._client_random,
            self._server_random,
            suite.mac_key_length,
            suite.key_length,
        )
        self._key_block = block
        self._send_change_cipher_spec()
        self.records.write_state.activate(
            suite, suite.new_cipher(block.client_enc_key), block.client_mac_key
        )

    def _send_finished(self) -> None:
        verify = ks.finished_verify_data(
            self._master_secret, ks.LABEL_CLIENT_FINISHED, self._transcript_hash()
        )
        self._send_handshake(msgs.Finished(verify_data=verify))

    def _handle_change_cipher_spec(self) -> None:
        if self._state is not _State.WAIT_CCS:
            raise TLSError("unexpected ChangeCipherSpec", ALERT_UNEXPECTED_MESSAGE)
        suite = self.negotiated_suite
        block = self._key_block
        self.records.read_state.activate(
            suite, suite.new_cipher(block.server_enc_key), block.server_mac_key
        )
        self._state = _State.WAIT_FINISHED

    def _on_finished(self, finished: msgs.Finished, raw: bytes) -> None:
        # The transcript for the server's Finished includes everything up to
        # but not including that Finished; it was appended by the generic
        # handler, so hash without the final entry.
        transcript = self._transcript[:-1]
        import hashlib

        expected = ks.finished_verify_data(
            self._master_secret,
            ks.LABEL_SERVER_FINISHED,
            hashlib.sha256(b"".join(transcript)).digest(),
        )
        if finished.verify_data != expected:
            raise TLSError("server Finished verification failed", ALERT_DECRYPT_ERROR)
        if self.resumed:
            # Abbreviated flow: the server finishes first; now we send our
            # CCS + Finished (covering the server's Finished as well).
            self._activate_write_protection()
            self._send_finished()
        self._state = _State.CONNECTED
        self.handshake_complete = True
        self._store_session()
        self._store_ticket()
        self._emit(
            HandshakeComplete(
                cipher_suite=self.negotiated_suite.name,
                peer_certificate=self.peer_certificate,
                resumed=self.resumed,
            )
        )

    def _store_ticket(self) -> None:
        """Remember a freshly issued ticket (full handshakes only; a
        ticket-resumed session keeps its still-valid old ticket)."""
        if self._ticket_store is None or self._received_ticket is None:
            return
        self._ticket_store.put(
            self._session_store_key(),
            ClientTicket(
                ticket=self._received_ticket.ticket,
                state=TLSSessionState(
                    session_id=b"",
                    master_secret=self._master_secret,
                    cipher_suite_id=self.negotiated_suite.suite_id,
                    server_name=self.config.server_name or "",
                ),
            ),
        )

    def _store_session(self) -> None:
        """Remember a full handshake's session for later resumption."""
        if self._session_store is None or self.resumed:
            return
        if not self._pending_session_id:
            return
        self._session_store.put(
            self._session_store_key(),
            TLSSessionState(
                session_id=self._pending_session_id,
                master_secret=self._master_secret,
                cipher_suite_id=self.negotiated_suite.suite_id,
                server_name=self.config.server_name or "",
            ),
        )
