"""The TLS 1.2 key schedule (RFC 5246 §8.1, §6.3).

``premaster → master secret → key block``, all via the SHA-256 PRF.  The
key block is carved into per-direction MAC keys and encryption keys.
mcTLS reuses these helpers for each pairwise secret (client-server,
client-middlebox, server-middlebox).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prf import p_sha256, prf, prf_key_block

MASTER_SECRET_LEN = 48

LABEL_MASTER_SECRET = b"master secret"
LABEL_KEY_EXPANSION = b"key expansion"
LABEL_CLIENT_FINISHED = b"client finished"
LABEL_SERVER_FINISHED = b"server finished"


def master_secret(premaster: bytes, client_random: bytes, server_random: bytes) -> bytes:
    """Derive the 48-byte master secret from the premaster secret."""
    return prf(
        premaster,
        LABEL_MASTER_SECRET,
        client_random + server_random,
        MASTER_SECRET_LEN,
    )


@dataclass(frozen=True)
class KeyBlock:
    """Per-direction record protection keys for one cipher suite."""

    client_mac_key: bytes
    server_mac_key: bytes
    client_enc_key: bytes
    server_enc_key: bytes


def derive_key_block(
    secret: bytes,
    client_random: bytes,
    server_random: bytes,
    mac_key_length: int,
    enc_key_length: int,
) -> KeyBlock:
    """Expand a master secret into the record keys (RFC 5246 §6.3).

    Note the seed order flip versus the master secret derivation:
    ``server_random || client_random``.
    """
    total = 2 * mac_key_length + 2 * enc_key_length
    block = prf_key_block(
        secret, LABEL_KEY_EXPANSION, server_random + client_random, total
    )
    offset = 0

    def take(n: int) -> bytes:
        nonlocal offset
        chunk = block[offset : offset + n]
        offset += n
        return chunk

    return KeyBlock(
        client_mac_key=take(mac_key_length),
        server_mac_key=take(mac_key_length),
        client_enc_key=take(enc_key_length),
        server_enc_key=take(enc_key_length),
    )


def resume_key_block(
    master: bytes,
    client_random: bytes,
    server_random: bytes,
    suite,
) -> KeyBlock:
    """Key block for an abbreviated handshake (RFC 5246 §7.3, resumption).

    The cached master secret is reused as-is; only the randoms are fresh,
    so record keys never repeat across the original and resumed sessions.
    ``suite`` is a ``CipherSuite`` (carries the key lengths).
    """
    return derive_key_block(
        master,
        client_random,
        server_random,
        suite.mac_key_length,
        suite.key_length,
    )


def finished_verify_data(secret: bytes, label: bytes, transcript_hash: bytes) -> bytes:
    """Compute the 12-byte Finished verify_data."""
    return prf(secret, label, transcript_hash, 12)


def expand_secret(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """Raw PRF expansion used by mcTLS for partial/context key material."""
    return p_sha256(secret, label + seed, length)
