"""Cipher suite definitions.

The paper evaluates with ``DHE-RSA-AES128-SHA256``; we implement that suite
faithfully (pure-Python AES-128-CBC, HMAC-SHA256, MAC-then-encrypt per
RFC 5246 §6.2.3.2) plus fast drop-in stream variants that replace the
AES-CBC bulk cipher with a keystream cipher while preserving the record
geometry (an explicit per-record 16-byte IV/nonce and 32-byte MAC):

* ``DHE-RSA-SHACTR-SHA256`` (0xFF67) — the zero-dependency SHA-CTR
  keystream (:mod:`repro.crypto.fastcipher`), golden-vector-pinned;
* ``DHE-RSA-AES128CTR-SHA256`` (0xFF68) — real AES-128-CTR through the
  OpenSSL provider (:mod:`repro.crypto.provider`), with fused
  whole-burst keystream generation;
* ``DHE-RSA-CHACHA20-SHA256`` (0xFF69) — ChaCha20 through the OpenSSL
  provider (per-record contexts; wins on large records).

The OpenSSL-backed suites register only when the ``cryptography``
package is importable; negotiation treats them like any other suite
(offered in ClientHello, sealed into tickets).  All stream suites share
one wire geometry — ``nonce(16) || ciphertext`` with HMAC-SHA256 record
MACs — so the *provider* is an implementation detail, never wire format.
Benchmarks state which suite they use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict

from repro.crypto.aes import AES
from repro.crypto.fastcipher import ShaCtrCipher, xor_bytes, xor_concat
from repro.crypto.hmaccache import hmac_sha256
from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.opcount import count_op, current_counter
from repro.crypto.provider import OPENSSL, get_provider


class CipherError(Exception):
    """Raised when record decryption or MAC verification fails."""


class BulkCipher:
    """Interface for the per-direction bulk encryption of records."""

    def encrypt(self, plaintext: bytes) -> bytes:
        raise NotImplementedError

    def decrypt(self, ciphertext: bytes) -> bytes:
        raise NotImplementedError

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Predict ciphertext size without encrypting (for size accounting)."""
        raise NotImplementedError

    def encrypt_batch(self, plaintexts):
        """Encrypt a burst; byte-identical to per-record :meth:`encrypt`.

        The base implementation is the definitional loop; vectorizing
        ciphers override it.  Either way randomness (per-record IVs or
        nonces) is drawn in record order, so batched and sequential
        encodes agree byte-for-byte under a deterministic RNG.
        """
        return [self.encrypt(p) for p in plaintexts]

    def decrypt_batch(self, ciphertexts):
        """Decrypt a burst; byte-identical to per-record :meth:`decrypt`.

        Raises at the first bad fragment (in record order), like the
        definitional loop — partial results are discarded, matching the
        sequential failure mode where the connection dies anyway.
        """
        return [self.decrypt(c) for c in ciphertexts]


class AesCbcCipher(BulkCipher):
    """AES-CBC with an explicit per-record IV and PKCS#7 padding."""

    def __init__(self, key: bytes):
        self._aes = AES(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        count_op("sym_encrypt")
        if type(plaintext) is not bytes:
            plaintext = bytes(plaintext)
        iv = os.urandom(16)
        return iv + cbc_encrypt(self._aes, iv, pkcs7_pad(plaintext))

    def decrypt(self, ciphertext: bytes) -> bytes:
        count_op("sym_decrypt")
        if type(ciphertext) is not bytes:
            ciphertext = bytes(ciphertext)
        if len(ciphertext) < 32:
            raise CipherError("ciphertext shorter than IV + one block")
        iv, body = ciphertext[:16], ciphertext[16:]
        try:
            return pkcs7_unpad(cbc_decrypt(self._aes, iv, body))
        except (PaddingError, ValueError) as exc:
            raise CipherError(str(exc)) from exc

    def ciphertext_length(self, plaintext_length: int) -> int:
        padded = (plaintext_length // 16 + 1) * 16
        return 16 + padded


class StreamRecordCipher(BulkCipher):
    """Base for ``nonce(16) || ciphertext`` keystream record ciphers.

    The record layers' burst paths batch any cipher of this shape: all
    subclasses expose a pool-aware :meth:`stream_for` (full-block
    keystream, callers slice) and a :meth:`stream_batch` that fused
    generators override.  ``fused_batch`` marks instances whose batch
    keystreams should be generated in one fused call rather than
    per-record through the pool.
    """

    fused_batch = False

    def stream_for(self, nonce: bytes, size: int) -> bytes:
        raise NotImplementedError

    def stream_batch(self, nonces, sizes) -> list:
        return [self.stream_for(n, s) for n, s in zip(nonces, sizes)]

    def stream_concat(self, nonces, sizes) -> bytes:
        """Exactly ``sizes[i]`` keystream bytes per record, packed.

        Fused ciphers override this with a single-call generator path;
        the burst helpers use it to XOR a whole homogeneous burst
        against one buffer with no per-record stream slicing.
        """
        return b"".join(
            memoryview(self.stream_for(n, s))[:s] for n, s in zip(nonces, sizes)
        )

    def stream_grid(self, nonces, count: int, size: int) -> bytes:
        """Packed keystream for ``count`` records of one ``size``.

        ``nonces`` is one packed buffer of 16-byte nonces — the shape a
        uniform wire burst hands over without building per-record nonce
        objects.  Pool accounting matches per-record :meth:`stream_for`;
        fused ciphers override with a single vectorized call.
        """
        view = memoryview(nonces)
        return b"".join(
            memoryview(self.stream_for(bytes(view[i * 16 : i * 16 + 16]), size))[:size]
            for i in range(count)
        )

    def stream_grid_arr(self, nonces, count: int, size: int):
        """:meth:`stream_grid` as a transient numpy view, or ``None``.

        Fused providers return a ``(count, size)`` uint8 array valid
        only until their next keystream call, letting the wire-burst
        open path XOR keystream against record bodies without a packed
        ``bytes`` in between.  The base cipher (and any pool-accounted
        cipher) returns ``None``; callers must fall back to
        :meth:`stream_grid`.
        """
        return None

    def ciphertext_length(self, plaintext_length: int) -> int:
        return 16 + plaintext_length


class ShaCtrRecordCipher(StreamRecordCipher):
    """SHA-CTR keystream cipher with an explicit 16-byte nonce.

    Same wire geometry as :class:`AesCbcCipher` minus padding: records are
    ``nonce || ciphertext``.
    """

    def __init__(self, key: bytes):
        self._cipher = ShaCtrCipher(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        count_op("sym_encrypt")
        nonce = os.urandom(16)
        return nonce + self._cipher.xor(nonce, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        count_op("sym_decrypt")
        if len(ciphertext) < 16:
            raise CipherError("ciphertext shorter than nonce")
        nonce, body = ciphertext[:16], ciphertext[16:]
        return self._cipher.xor(nonce, body)

    def stream_for(self, nonce: bytes, size: int) -> bytes:
        """Pool-backed full-block keystream (see :meth:`ShaCtrCipher.stream_for`)."""
        return self._cipher.stream_for(nonce, size)

    def encrypt_batch(self, plaintexts):
        return stream_encrypt_batch([(self, p) for p in plaintexts])

    def decrypt_batch(self, ciphertexts):
        return stream_decrypt_batch([(self, c) for c in ciphertexts])


class ProviderStreamCipher(StreamRecordCipher):
    """Stream record cipher over a provider keystream generator.

    Wire geometry is identical to :class:`ShaCtrRecordCipher` — only the
    keystream definition differs per suite.  Pooling decisions live in
    the generator (:meth:`KeystreamPool.worthwhile`); fused generators
    make whole-burst batch paths regenerate below the pool's hit cost.
    """

    def __init__(self, gen):
        self._gen = gen
        self.fused_batch = gen.fused

    def encrypt(self, plaintext: bytes) -> bytes:
        count_op("sym_encrypt")
        nonce = os.urandom(16)
        size = len(plaintext)
        if not size:
            return nonce
        stream = self._gen.stream_for(nonce, size)
        if len(stream) != size:
            stream = memoryview(stream)[:size]
        return nonce + xor_bytes(plaintext, stream, size)

    def decrypt(self, ciphertext: bytes) -> bytes:
        count_op("sym_decrypt")
        if len(ciphertext) < 16:
            raise CipherError("ciphertext shorter than nonce")
        nonce, body = bytes(ciphertext[:16]), ciphertext[16:]
        size = len(body)
        if not size:
            return b""
        stream = self._gen.stream_for(nonce, size)
        if len(stream) != size:
            stream = memoryview(stream)[:size]
        return xor_bytes(body, stream, size)

    def stream_for(self, nonce: bytes, size: int) -> bytes:
        return self._gen.stream_for(nonce, size)

    def stream_batch(self, nonces, sizes) -> list:
        return self._gen.stream_batch(nonces, sizes)

    def stream_concat(self, nonces, sizes) -> bytes:
        return self._gen.keystream_concat(nonces, sizes)

    def stream_grid(self, nonces, count: int, size: int) -> bytes:
        return self._gen.keystream_grid(nonces, count, size)

    def stream_grid_arr(self, nonces, count: int, size: int):
        if not self.fused_batch:
            return None
        grid_arr = getattr(self._gen, "keystream_grid_arr", None)
        return grid_arr(nonces, count, size) if grid_arr is not None else None

    def encrypt_batch(self, plaintexts):
        return stream_encrypt_batch([(self, p) for p in plaintexts])

    def decrypt_batch(self, ciphertexts):
        return stream_decrypt_batch([(self, c) for c in ciphertexts])


class AesCtrRecordCipher(ProviderStreamCipher):
    """AES-128-CTR records via the OpenSSL provider (fused bursts)."""

    def __init__(self, key: bytes):
        super().__init__(OPENSSL.aes_ctr_keystream(key))


class ChaCha20RecordCipher(ProviderStreamCipher):
    """ChaCha20 records via the OpenSSL provider (per-record contexts)."""

    def __init__(self, key: bytes):
        super().__init__(OPENSSL.chacha20_keystream(key))


def _gather_streams(ciphers, nonces, sizes) -> list:
    """Per-record keystreams for a burst, fusing where the cipher can.

    Non-fused ciphers (SHA-CTR) draw through the pool per record in
    record order — identical accounting to the sequential path.  Fused
    ciphers (AES-CTR) are grouped per instance and generate their whole
    group's keystream in one call; generation order within a group is
    record order, so bytes are position-independent either way.
    """
    streams = [None] * len(ciphers)
    fused = None
    for i, cipher in enumerate(ciphers):
        if cipher.fused_batch:
            if fused is None:
                fused = {}
            entry = fused.get(id(cipher))
            if entry is None:
                entry = fused[id(cipher)] = (cipher, [])
            entry[1].append(i)
        else:
            streams[i] = cipher.stream_for(nonces[i], sizes[i])
    if fused is not None:
        for cipher, indices in fused.values():
            outs = cipher.stream_batch(
                [nonces[i] for i in indices], [sizes[i] for i in indices]
            )
            for i, stream in zip(indices, outs):
                streams[i] = stream
    return streams


def _burst_xor(ciphers, nonces, bodies, sizes) -> bytes:
    """XOR a burst's bodies against their keystreams, concatenated.

    A homogeneous fused burst — every record under the same
    fused-capable cipher instance, the shape of every single-context
    data-plane burst — takes the packed path: one generator call for
    the whole burst's keystream and one XOR, with no per-record stream
    slicing.  Mixed or pool-backed bursts keep the per-record gather
    (pool accounting identical to the sequential path).  Bytes are
    identical either way.
    """
    first = ciphers[0] if ciphers else None
    if (
        first is not None
        and first.fused_batch
        and ciphers.count(first) == len(ciphers)
    ):
        data = b"".join(bodies)
        return xor_bytes(data, first.stream_concat(nonces, sizes), len(data))
    streams = _gather_streams(ciphers, nonces, sizes)
    return xor_concat(bodies, streams, sizes)


def stream_encrypt_batch(items) -> list:
    """Batched stream-cipher encrypt across possibly-different instances.

    ``items`` is a sequence of ``(StreamRecordCipher, plaintext)`` pairs —
    the mcTLS record layer encrypts adjacent records under different
    per-context ciphers, and byte-identity with the sequential path
    requires nonces to be drawn strictly in record order regardless of
    which cipher each record uses, so the batch helper lives above the
    per-cipher API.  Op counts and ``os.urandom`` draws happen per record
    exactly as the sequential ``encrypt`` would; the XOR is fused into
    one pass over the concatenated burst, and fused-capable ciphers
    generate their keystreams in one call.
    """
    counter = current_counter()
    if counter is not None:
        counter.add("sym_encrypt", len(items))
    urandom = os.urandom
    nonces = []
    bodies = []
    sizes = []
    ciphers = []
    for cipher, plaintext in items:
        nonces.append(urandom(16))
        bodies.append(plaintext)
        sizes.append(len(plaintext))
        ciphers.append(cipher)
    joined = _burst_xor(ciphers, nonces, bodies, sizes)
    out = []
    off = 0
    for nonce, size in zip(nonces, sizes):
        end = off + size
        out.append(nonce + joined[off:end])
        off = end
    return out


def stream_decrypt_batch(items, views: bool = False) -> list:
    """Batched stream-cipher decrypt across possibly-different instances.

    ``items`` is a sequence of ``(StreamRecordCipher, fragment)`` pairs.
    A short fragment raises :class:`CipherError` at its record position
    (before any XOR work), matching the sequential loop's failure order.
    With ``views=True`` the plaintexts come back as :class:`memoryview`
    slices of one shared buffer (no per-record copy) — for callers that
    re-slice them anyway and never let them escape.
    """
    counter = current_counter()
    if counter is not None:
        counter.add("sym_decrypt", len(items))
    nonces = []
    bodies = []
    sizes = []
    ciphers = []
    for cipher, fragment in items:
        if len(fragment) < 16:
            raise CipherError("ciphertext shorter than nonce")
        nonces.append(bytes(fragment[:16]))
        bodies.append(fragment[16:])
        sizes.append(len(fragment) - 16)
        ciphers.append(cipher)
    joined = _burst_xor(ciphers, nonces, bodies, sizes)
    if views:
        joined = memoryview(joined)
    out = []
    off = 0
    for size in sizes:
        end = off + size
        out.append(joined[off:end])
        off = end
    return out


# Legacy names from the batched-data-plane PR; same helpers, now
# provider-agnostic.
shactr_encrypt_batch = stream_encrypt_batch
shactr_decrypt_batch = stream_decrypt_batch


@dataclass(frozen=True)
class CipherSuite:
    """A negotiated algorithm bundle (key exchange is always DHE-RSA)."""

    suite_id: int
    name: str
    key_length: int
    mac_key_length: int
    mac_length: int
    cipher_factory: Callable[[bytes], BulkCipher]
    stream: bool = False  # nonce(16)||ciphertext geometry, batchable
    provider: str = "pure"  # crypto backend (never wire-visible)

    def new_cipher(self, key: bytes) -> BulkCipher:
        if len(key) != self.key_length:
            raise ValueError("bulk key has wrong length for suite")
        return self.cipher_factory(key)

    def mac(self, key: bytes, data: bytes) -> bytes:
        # Identical bytes to hmac.new(key, data, sha256).digest(), with
        # the key schedule cached per key (see repro.crypto.hmaccache).
        return hmac_sha256(key, data)

    def mac_context(self, key: bytes):
        """Cached HMAC-SHA256 context from this suite's provider.

        All providers produce identical MAC bytes (HMAC-SHA256 is fixed
        by the record format); only the implementation backing the
        cached context differs.
        """
        return get_provider(self.provider).mac_context(key)


SUITE_DHE_RSA_AES128_CBC_SHA256 = CipherSuite(
    suite_id=0x0067,  # TLS_DHE_RSA_WITH_AES_128_CBC_SHA256
    name="DHE-RSA-AES128-CBC-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=AesCbcCipher,
)

SUITE_DHE_RSA_SHACTR_SHA256 = CipherSuite(
    suite_id=0xFF67,  # private-use id for the fast simulation suite
    name="DHE-RSA-SHACTR-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=ShaCtrRecordCipher,
    stream=True,
)

# OpenSSL-backed stream suites.  key_length stays 16 (the mcTLS key
# schedule derives 16-byte bulk keys); ChaCha20 expands internally.
SUITE_DHE_RSA_AES128CTR_SHA256 = CipherSuite(
    suite_id=0xFF68,  # private-use id
    name="DHE-RSA-AES128CTR-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=AesCtrRecordCipher,
    stream=True,
    provider="openssl",
)

SUITE_DHE_RSA_CHACHA20_SHA256 = CipherSuite(
    suite_id=0xFF69,  # private-use id
    name="DHE-RSA-CHACHA20-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=ChaCha20RecordCipher,
    stream=True,
    provider="openssl",
)

SUITES: Dict[int, CipherSuite] = {
    s.suite_id: s
    for s in (SUITE_DHE_RSA_AES128_CBC_SHA256, SUITE_DHE_RSA_SHACTR_SHA256)
}

# Providerless builds (no ``cryptography``) simply never know these
# suite ids: a client cannot offer them, a server cannot pick them, and
# sealed tickets naming them fail resumption cleanly via suite_by_id.
if OPENSSL.available:
    SUITES[SUITE_DHE_RSA_AES128CTR_SHA256.suite_id] = SUITE_DHE_RSA_AES128CTR_SHA256
    SUITES[SUITE_DHE_RSA_CHACHA20_SHA256.suite_id] = SUITE_DHE_RSA_CHACHA20_SHA256


def suite_by_id(suite_id: int) -> CipherSuite:
    try:
        return SUITES[suite_id]
    except KeyError:
        raise CipherError(f"unknown cipher suite 0x{suite_id:04x}") from None
