"""Cipher suite definitions.

The paper evaluates with ``DHE-RSA-AES128-SHA256``; we implement that suite
faithfully (pure-Python AES-128-CBC, HMAC-SHA256, MAC-then-encrypt per
RFC 5246 §6.2.3.2) plus a fast drop-in variant that replaces the AES-CBC
bulk cipher with the SHA-CTR keystream cipher while preserving the record
geometry (an explicit per-record 16-byte IV/nonce and 32-byte MAC).  The
fast suite keeps multi-megabyte simulated transfers tractable in pure
Python; benchmarks state which suite they use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict

from repro.crypto.aes import AES
from repro.crypto.fastcipher import ShaCtrCipher, xor_concat
from repro.crypto.hmaccache import hmac_sha256
from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.opcount import count_op, current_counter


class CipherError(Exception):
    """Raised when record decryption or MAC verification fails."""


class BulkCipher:
    """Interface for the per-direction bulk encryption of records."""

    def encrypt(self, plaintext: bytes) -> bytes:
        raise NotImplementedError

    def decrypt(self, ciphertext: bytes) -> bytes:
        raise NotImplementedError

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Predict ciphertext size without encrypting (for size accounting)."""
        raise NotImplementedError

    def encrypt_batch(self, plaintexts):
        """Encrypt a burst; byte-identical to per-record :meth:`encrypt`.

        The base implementation is the definitional loop; vectorizing
        ciphers override it.  Either way randomness (per-record IVs or
        nonces) is drawn in record order, so batched and sequential
        encodes agree byte-for-byte under a deterministic RNG.
        """
        return [self.encrypt(p) for p in plaintexts]

    def decrypt_batch(self, ciphertexts):
        """Decrypt a burst; byte-identical to per-record :meth:`decrypt`.

        Raises at the first bad fragment (in record order), like the
        definitional loop — partial results are discarded, matching the
        sequential failure mode where the connection dies anyway.
        """
        return [self.decrypt(c) for c in ciphertexts]


class AesCbcCipher(BulkCipher):
    """AES-CBC with an explicit per-record IV and PKCS#7 padding."""

    def __init__(self, key: bytes):
        self._aes = AES(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        count_op("sym_encrypt")
        if type(plaintext) is not bytes:
            plaintext = bytes(plaintext)
        iv = os.urandom(16)
        return iv + cbc_encrypt(self._aes, iv, pkcs7_pad(plaintext))

    def decrypt(self, ciphertext: bytes) -> bytes:
        count_op("sym_decrypt")
        if type(ciphertext) is not bytes:
            ciphertext = bytes(ciphertext)
        if len(ciphertext) < 32:
            raise CipherError("ciphertext shorter than IV + one block")
        iv, body = ciphertext[:16], ciphertext[16:]
        try:
            return pkcs7_unpad(cbc_decrypt(self._aes, iv, body))
        except (PaddingError, ValueError) as exc:
            raise CipherError(str(exc)) from exc

    def ciphertext_length(self, plaintext_length: int) -> int:
        padded = (plaintext_length // 16 + 1) * 16
        return 16 + padded


class ShaCtrRecordCipher(BulkCipher):
    """SHA-CTR keystream cipher with an explicit 16-byte nonce.

    Same wire geometry as :class:`AesCbcCipher` minus padding: records are
    ``nonce || ciphertext``.
    """

    def __init__(self, key: bytes):
        self._cipher = ShaCtrCipher(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        count_op("sym_encrypt")
        nonce = os.urandom(16)
        return nonce + self._cipher.xor(nonce, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        count_op("sym_decrypt")
        if len(ciphertext) < 16:
            raise CipherError("ciphertext shorter than nonce")
        nonce, body = ciphertext[:16], ciphertext[16:]
        return self._cipher.xor(nonce, body)

    def ciphertext_length(self, plaintext_length: int) -> int:
        return 16 + plaintext_length

    def stream_for(self, nonce: bytes, size: int) -> bytes:
        """Pool-backed full-block keystream (see :meth:`ShaCtrCipher.stream_for`)."""
        return self._cipher.stream_for(nonce, size)

    def encrypt_batch(self, plaintexts):
        return shactr_encrypt_batch([(self, p) for p in plaintexts])

    def decrypt_batch(self, ciphertexts):
        return shactr_decrypt_batch([(self, c) for c in ciphertexts])


def shactr_encrypt_batch(items) -> list:
    """Batched SHA-CTR encrypt across possibly-different cipher instances.

    ``items`` is a sequence of ``(ShaCtrRecordCipher, plaintext)`` pairs —
    the mcTLS record layer encrypts adjacent records under different
    per-context ciphers, and byte-identity with the sequential path
    requires nonces to be drawn strictly in record order regardless of
    which cipher each record uses, so the batch helper lives above the
    per-cipher API.  Op counts and ``os.urandom`` draws happen per record
    exactly as :meth:`ShaCtrRecordCipher.encrypt` would; only the XOR is
    fused into one pass over the concatenated burst.
    """
    counter = current_counter()
    if counter is not None:
        counter.add("sym_encrypt", len(items))
    urandom = os.urandom
    nonces = []
    bodies = []
    streams = []
    sizes = []
    for cipher, plaintext in items:
        nonce = urandom(16)
        size = len(plaintext)
        nonces.append(nonce)
        bodies.append(plaintext)
        sizes.append(size)
        streams.append(cipher.stream_for(nonce, size))
    joined = xor_concat(bodies, streams, sizes)
    out = []
    off = 0
    for nonce, size in zip(nonces, sizes):
        end = off + size
        out.append(nonce + joined[off:end])
        off = end
    return out


def shactr_decrypt_batch(items, views: bool = False) -> list:
    """Batched SHA-CTR decrypt across possibly-different cipher instances.

    ``items`` is a sequence of ``(ShaCtrRecordCipher, fragment)`` pairs.
    A short fragment raises :class:`CipherError` at its record position
    (before any XOR work), matching the sequential loop's failure order.
    With ``views=True`` the plaintexts come back as :class:`memoryview`
    slices of one shared buffer (no per-record copy) — for callers that
    re-slice them anyway and never let them escape.
    """
    counter = current_counter()
    if counter is not None:
        counter.add("sym_decrypt", len(items))
    bodies = []
    streams = []
    sizes = []
    for cipher, fragment in items:
        if len(fragment) < 16:
            raise CipherError("ciphertext shorter than nonce")
        nonce = bytes(fragment[:16])
        body = fragment[16:]
        size = len(body)
        bodies.append(body)
        sizes.append(size)
        streams.append(cipher.stream_for(nonce, size))
    joined = xor_concat(bodies, streams, sizes)
    if views:
        joined = memoryview(joined)
    out = []
    off = 0
    for size in sizes:
        end = off + size
        out.append(joined[off:end])
        off = end
    return out


@dataclass(frozen=True)
class CipherSuite:
    """A negotiated algorithm bundle (key exchange is always DHE-RSA)."""

    suite_id: int
    name: str
    key_length: int
    mac_key_length: int
    mac_length: int
    cipher_factory: Callable[[bytes], BulkCipher]

    def new_cipher(self, key: bytes) -> BulkCipher:
        if len(key) != self.key_length:
            raise ValueError("bulk key has wrong length for suite")
        return self.cipher_factory(key)

    def mac(self, key: bytes, data: bytes) -> bytes:
        # Identical bytes to hmac.new(key, data, sha256).digest(), with
        # the key schedule cached per key (see repro.crypto.hmaccache).
        return hmac_sha256(key, data)


SUITE_DHE_RSA_AES128_CBC_SHA256 = CipherSuite(
    suite_id=0x0067,  # TLS_DHE_RSA_WITH_AES_128_CBC_SHA256
    name="DHE-RSA-AES128-CBC-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=AesCbcCipher,
)

SUITE_DHE_RSA_SHACTR_SHA256 = CipherSuite(
    suite_id=0xFF67,  # private-use id for the fast simulation suite
    name="DHE-RSA-SHACTR-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=ShaCtrRecordCipher,
)

SUITES: Dict[int, CipherSuite] = {
    s.suite_id: s
    for s in (SUITE_DHE_RSA_AES128_CBC_SHA256, SUITE_DHE_RSA_SHACTR_SHA256)
}


def suite_by_id(suite_id: int) -> CipherSuite:
    try:
        return SUITES[suite_id]
    except KeyError:
        raise CipherError(f"unknown cipher suite 0x{suite_id:04x}") from None
