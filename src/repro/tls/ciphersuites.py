"""Cipher suite definitions.

The paper evaluates with ``DHE-RSA-AES128-SHA256``; we implement that suite
faithfully (pure-Python AES-128-CBC, HMAC-SHA256, MAC-then-encrypt per
RFC 5246 §6.2.3.2) plus a fast drop-in variant that replaces the AES-CBC
bulk cipher with the SHA-CTR keystream cipher while preserving the record
geometry (an explicit per-record 16-byte IV/nonce and 32-byte MAC).  The
fast suite keeps multi-megabyte simulated transfers tractable in pure
Python; benchmarks state which suite they use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict

from repro.crypto.aes import AES
from repro.crypto.fastcipher import ShaCtrCipher
from repro.crypto.hmaccache import hmac_sha256
from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.opcount import count_op


class CipherError(Exception):
    """Raised when record decryption or MAC verification fails."""


class BulkCipher:
    """Interface for the per-direction bulk encryption of records."""

    def encrypt(self, plaintext: bytes) -> bytes:
        raise NotImplementedError

    def decrypt(self, ciphertext: bytes) -> bytes:
        raise NotImplementedError

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Predict ciphertext size without encrypting (for size accounting)."""
        raise NotImplementedError


class AesCbcCipher(BulkCipher):
    """AES-CBC with an explicit per-record IV and PKCS#7 padding."""

    def __init__(self, key: bytes):
        self._aes = AES(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        count_op("sym_encrypt")
        if type(plaintext) is not bytes:
            plaintext = bytes(plaintext)
        iv = os.urandom(16)
        return iv + cbc_encrypt(self._aes, iv, pkcs7_pad(plaintext))

    def decrypt(self, ciphertext: bytes) -> bytes:
        count_op("sym_decrypt")
        if type(ciphertext) is not bytes:
            ciphertext = bytes(ciphertext)
        if len(ciphertext) < 32:
            raise CipherError("ciphertext shorter than IV + one block")
        iv, body = ciphertext[:16], ciphertext[16:]
        try:
            return pkcs7_unpad(cbc_decrypt(self._aes, iv, body))
        except (PaddingError, ValueError) as exc:
            raise CipherError(str(exc)) from exc

    def ciphertext_length(self, plaintext_length: int) -> int:
        padded = (plaintext_length // 16 + 1) * 16
        return 16 + padded


class ShaCtrRecordCipher(BulkCipher):
    """SHA-CTR keystream cipher with an explicit 16-byte nonce.

    Same wire geometry as :class:`AesCbcCipher` minus padding: records are
    ``nonce || ciphertext``.
    """

    def __init__(self, key: bytes):
        self._cipher = ShaCtrCipher(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        count_op("sym_encrypt")
        nonce = os.urandom(16)
        return nonce + self._cipher.xor(nonce, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        count_op("sym_decrypt")
        if len(ciphertext) < 16:
            raise CipherError("ciphertext shorter than nonce")
        nonce, body = ciphertext[:16], ciphertext[16:]
        return self._cipher.xor(nonce, body)

    def ciphertext_length(self, plaintext_length: int) -> int:
        return 16 + plaintext_length


@dataclass(frozen=True)
class CipherSuite:
    """A negotiated algorithm bundle (key exchange is always DHE-RSA)."""

    suite_id: int
    name: str
    key_length: int
    mac_key_length: int
    mac_length: int
    cipher_factory: Callable[[bytes], BulkCipher]

    def new_cipher(self, key: bytes) -> BulkCipher:
        if len(key) != self.key_length:
            raise ValueError("bulk key has wrong length for suite")
        return self.cipher_factory(key)

    def mac(self, key: bytes, data: bytes) -> bytes:
        # Identical bytes to hmac.new(key, data, sha256).digest(), with
        # the key schedule cached per key (see repro.crypto.hmaccache).
        return hmac_sha256(key, data)


SUITE_DHE_RSA_AES128_CBC_SHA256 = CipherSuite(
    suite_id=0x0067,  # TLS_DHE_RSA_WITH_AES_128_CBC_SHA256
    name="DHE-RSA-AES128-CBC-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=AesCbcCipher,
)

SUITE_DHE_RSA_SHACTR_SHA256 = CipherSuite(
    suite_id=0xFF67,  # private-use id for the fast simulation suite
    name="DHE-RSA-SHACTR-SHA256",
    key_length=16,
    mac_key_length=32,
    mac_length=32,
    cipher_factory=ShaCtrRecordCipher,
)

SUITES: Dict[int, CipherSuite] = {
    s.suite_id: s
    for s in (SUITE_DHE_RSA_AES128_CBC_SHA256, SUITE_DHE_RSA_SHACTR_SHA256)
}


def suite_by_id(suite_id: int) -> CipherSuite:
    try:
        return SUITES[suite_id]
    except KeyError:
        raise CipherError(f"unknown cipher suite 0x{suite_id:04x}") from None
