"""The TLS 1.2 server state machine (DHE-RSA)."""

from __future__ import annotations

import hashlib
from enum import Enum, auto
from typing import Optional

from repro.crypto.dh import DHKeyPair
from repro.tls import keyschedule as ks
from repro.tls import messages as msgs
from repro.tls.connection import (
    ALERT_DECRYPT_ERROR,
    ALERT_UNEXPECTED_MESSAGE,
    HandshakeComplete,
    TLSConfig,
    TLSConnectionBase,
    TLSError,
    make_random,
)


class _State(Enum):
    WAIT_CLIENT_HELLO = auto()
    WAIT_CLIENT_KEY_EXCHANGE = auto()
    WAIT_CCS = auto()
    WAIT_FINISHED = auto()
    CONNECTED = auto()


class TLSServer(TLSConnectionBase):
    """A sans-I/O TLS 1.2 server.

    Requires ``config.identity`` (certificate chain + RSA key).  The server
    waits passively: feed it bytes, drain ``data_to_send()``.
    """

    def __init__(self, config: TLSConfig):
        if config.identity is None:
            raise TLSError("server requires an identity (certificate + key)")
        super().__init__(config)
        self._state = _State.WAIT_CLIENT_HELLO
        self._server_random = make_random()
        self._client_random: Optional[bytes] = None
        self._dh_keypair: Optional[DHKeyPair] = None
        self._master_secret: Optional[bytes] = None
        self._client_hello: Optional[msgs.ClientHello] = None

    # -- message handling ---------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        self._transcript.append(raw)
        if msg_type == msgs.CLIENT_HELLO and self._state is _State.WAIT_CLIENT_HELLO:
            self._on_client_hello(msgs.ClientHello.decode(body))
        elif (
            msg_type == msgs.CLIENT_KEY_EXCHANGE
            and self._state is _State.WAIT_CLIENT_KEY_EXCHANGE
        ):
            self._on_client_key_exchange(msgs.ClientKeyExchange.decode(body))
        elif msg_type == msgs.FINISHED and self._state is _State.WAIT_FINISHED:
            self._on_finished(msgs.Finished.decode(body))
        else:
            raise TLSError(
                f"unexpected handshake message {msg_type} in state {self._state.name}",
                ALERT_UNEXPECTED_MESSAGE,
            )

    def _on_client_hello(self, hello: msgs.ClientHello) -> None:
        self._client_hello = hello
        self._client_random = hello.random
        suite = next(
            (
                self.config.suite_for_id(sid)
                for sid in hello.cipher_suites
                if self.config.suite_for_id(sid) is not None
            ),
            None,
        )
        if suite is None:
            raise TLSError("no mutually supported cipher suite")
        self.negotiated_suite = suite

        self._send_handshake(
            msgs.ServerHello(
                random=self._server_random,
                cipher_suite=suite.suite_id,
                extensions=self._hello_extensions(hello),
            )
        )
        self._send_handshake(msgs.CertificateMessage(chain=self.config.identity.chain))
        self._send_server_key_exchange()
        self._before_hello_done(hello)
        self._send_handshake(msgs.ServerHelloDone())
        self._state = _State.WAIT_CLIENT_KEY_EXCHANGE

    def _hello_extensions(self, hello: msgs.ClientHello):
        """Hook: mcTLS echoes its negotiated mode here."""
        return []

    def _before_hello_done(self, hello: msgs.ClientHello) -> None:
        """Hook: mcTLS middlebox-related processing."""

    def _send_server_key_exchange(self) -> None:
        group = self.config.dh_group
        self._dh_keypair = group.generate_keypair()
        params = msgs.ServerKeyExchange(
            dh_p=group.p,
            dh_g=group.g,
            dh_public=self._dh_keypair.public_bytes,
            signature=b"",
        )
        signed = self._client_random + self._server_random + params.params_bytes()
        params.signature = self.config.identity.key.sign(signed)
        self._send_handshake(params)

    def _on_client_key_exchange(self, kx: msgs.ClientKeyExchange) -> None:
        group = self.config.dh_group
        client_public = group.public_from_bytes(kx.dh_public)
        premaster = self._dh_keypair.combine(client_public)
        self._master_secret = ks.master_secret(
            premaster, self._client_random, self._server_random
        )
        suite = self.negotiated_suite
        self._key_block = ks.derive_key_block(
            self._master_secret,
            self._client_random,
            self._server_random,
            suite.mac_key_length,
            suite.key_length,
        )
        self._after_key_exchange()
        self._state = _State.WAIT_CCS

    def _after_key_exchange(self) -> None:
        """Hook: mcTLS waits for the client's key material messages here."""

    def _handle_change_cipher_spec(self) -> None:
        if self._state is not _State.WAIT_CCS:
            raise TLSError("unexpected ChangeCipherSpec", ALERT_UNEXPECTED_MESSAGE)
        suite = self.negotiated_suite
        self.records.read_state.activate(
            suite,
            suite.new_cipher(self._key_block.client_enc_key),
            self._key_block.client_mac_key,
        )
        self._state = _State.WAIT_FINISHED

    def _on_finished(self, finished: msgs.Finished) -> None:
        transcript = self._transcript[:-1]
        expected = ks.finished_verify_data(
            self._master_secret,
            ks.LABEL_CLIENT_FINISHED,
            hashlib.sha256(b"".join(transcript)).digest(),
        )
        if finished.verify_data != expected:
            raise TLSError("client Finished verification failed", ALERT_DECRYPT_ERROR)

        self._before_server_finished()
        suite = self.negotiated_suite
        self._send_change_cipher_spec()
        self.records.write_state.activate(
            suite,
            suite.new_cipher(self._key_block.server_enc_key),
            self._key_block.server_mac_key,
        )
        verify = ks.finished_verify_data(
            self._master_secret, ks.LABEL_SERVER_FINISHED, self._transcript_hash()
        )
        self._send_handshake(msgs.Finished(verify_data=verify))
        self._state = _State.CONNECTED
        self.handshake_complete = True
        self._emit(HandshakeComplete(cipher_suite=suite.name))

    def _before_server_finished(self) -> None:
        """Hook: mcTLS sends its key material messages here."""
