"""The TLS 1.2 server state machine (DHE-RSA)."""

from __future__ import annotations

import dataclasses
import hashlib
from enum import Enum, auto
from typing import Optional

from repro.crypto.dh import DHKeyPair
from repro.tls import keyschedule as ks
from repro.tls import messages as msgs
from repro.tls.connection import (
    ALERT_DECRYPT_ERROR,
    ALERT_UNEXPECTED_MESSAGE,
    HandshakeComplete,
    TLSConfig,
    TLSConnectionBase,
    TLSError,
    make_random,
)
from repro.tls.sessioncache import SessionCache, TLSSessionState, new_session_id
from repro.tls.tickets import (
    KIND_TLS,
    TicketError,
    TicketKeyManager,
    decode_tls_ticket_state,
    encode_tls_ticket_state,
)


class _State(Enum):
    WAIT_CLIENT_HELLO = auto()
    WAIT_CLIENT_KEY_EXCHANGE = auto()
    WAIT_CCS = auto()
    WAIT_FINISHED = auto()
    CONNECTED = auto()


class TLSServer(TLSConnectionBase):
    """A sans-I/O TLS 1.2 server.

    Requires ``config.identity`` (certificate chain + RSA key).  The server
    waits passively: feed it bytes, drain ``data_to_send()``.

    With a ``session_cache``, full handshakes are issued a fresh session id
    and cached on completion; a ClientHello carrying a cached id gets the
    abbreviated flow (no certificates, no key exchange — zero public-key
    operations at the server).

    With a ``ticket_manager``, full handshakes additionally issue an RFC
    5077 NewSessionTicket to clients that signalled ticket support, and a
    ClientHello carrying a valid ticket resumes with **no server-side
    state at all** — any worker holding the same ticket key can honor it.
    A defective ticket (tampered, truncated, expired, rotated-out key,
    version skew) is silently ignored: the handshake proceeds in full.
    """

    def __init__(
        self,
        config: TLSConfig,
        session_cache: Optional[SessionCache] = None,
        ticket_manager: Optional[TicketKeyManager] = None,
    ):
        if config.identity is None:
            raise TLSError("server requires an identity (certificate + key)")
        super().__init__(config)
        self._state = _State.WAIT_CLIENT_HELLO
        self._server_random = make_random()
        self._client_random: Optional[bytes] = None
        self._dh_keypair: Optional[DHKeyPair] = None
        self._master_secret: Optional[bytes] = None
        self._client_hello: Optional[msgs.ClientHello] = None
        self._session_cache = session_cache
        self._ticket_manager = ticket_manager
        self._client_ticket_support = False
        self._session_id = b""
        self.resumed = False

    # -- message handling ---------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        self._transcript.append(raw)
        if msg_type == msgs.CLIENT_HELLO and self._state is _State.WAIT_CLIENT_HELLO:
            self._on_client_hello(msgs.ClientHello.decode(body))
        elif (
            msg_type == msgs.CLIENT_KEY_EXCHANGE
            and self._state is _State.WAIT_CLIENT_KEY_EXCHANGE
        ):
            self._on_client_key_exchange(msgs.ClientKeyExchange.decode(body))
        elif msg_type == msgs.FINISHED and self._state is _State.WAIT_FINISHED:
            self._on_finished(msgs.Finished.decode(body))
        else:
            raise TLSError(
                f"unexpected handshake message {msg_type} in state {self._state.name}",
                ALERT_UNEXPECTED_MESSAGE,
            )

    def _on_client_hello(self, hello: msgs.ClientHello) -> None:
        self._client_hello = hello
        self._client_random = hello.random

        if self._try_ticket_resumption(hello):
            return

        resumable = self._lookup_resumable_session(hello)
        if resumable is not None:
            self._resume_session(hello, resumable)
            return

        suite = next(
            (
                self.config.suite_for_id(sid)
                for sid in hello.cipher_suites
                if self.config.suite_for_id(sid) is not None
            ),
            None,
        )
        if suite is None:
            raise TLSError("no mutually supported cipher suite")
        self.negotiated_suite = suite

        # On full handshakes the server never echoes the client-proposed
        # session id (RFC 5246 §7.4.1.3); it issues a fresh one if it is
        # willing to cache this session, or none at all.
        if self._session_cache is not None:
            self._session_id = new_session_id()

        self._send_handshake(
            msgs.ServerHello(
                random=self._server_random,
                session_id=self._session_id,
                cipher_suite=suite.suite_id,
                extensions=self._hello_extensions(hello),
            )
        )
        self._send_handshake(msgs.CertificateMessage(chain=self.config.identity.chain))
        self._send_server_key_exchange()
        self._before_hello_done(hello)
        self._send_handshake(msgs.ServerHelloDone())
        self._state = _State.WAIT_CLIENT_KEY_EXCHANGE

    # -- resumption ---------------------------------------------------------

    def _try_ticket_resumption(self, hello: msgs.ClientHello) -> bool:
        """Resume from a client-presented ticket, if it checks out.

        Any defect in the ticket returns False (→ full handshake); the
        extension's mere presence — even empty — marks the client as
        ticket-capable, so a NewSessionTicket goes out on completion.
        RFC 5077 §3.4: the accepting server echoes the session id the
        client *proposed* alongside the ticket, which is how the client
        recognises acceptance without readable ticket contents.
        """
        ext = hello.find_extension(msgs.EXT_SESSION_TICKET)
        if ext is None:
            return False
        self._client_ticket_support = True
        if self._ticket_manager is None or not ext or not hello.session_id:
            return False
        try:
            kind, payload = self._ticket_manager.unseal(ext)
            if kind != KIND_TLS:
                raise TicketError("ticket sealed for a different protocol")
            state = decode_tls_ticket_state(payload)
        except TicketError:
            return False
        if state.cipher_suite_id not in hello.cipher_suites:
            return False
        if self.config.suite_for_id(state.cipher_suite_id) is None:
            return False
        self._resume_session(
            hello, dataclasses.replace(state, session_id=bytes(hello.session_id))
        )
        return True

    def _maybe_send_new_session_ticket(self) -> None:
        """Issue a fresh ticket on a completing full handshake (sent after
        the client's Finished, before our ChangeCipherSpec)."""
        if self._ticket_manager is None or not self._client_ticket_support:
            return
        ticket = self._ticket_manager.seal(
            KIND_TLS,
            encode_tls_ticket_state(
                TLSSessionState(
                    session_id=b"",
                    master_secret=self._master_secret,
                    cipher_suite_id=self.negotiated_suite.suite_id,
                    server_name=self.config.server_name or "",
                )
            ),
        )
        self._send_handshake(
            msgs.NewSessionTicket(
                lifetime_hint=int(self._ticket_manager.lifetime), ticket=ticket
            )
        )

    def _lookup_resumable_session(
        self, hello: msgs.ClientHello
    ) -> Optional[TLSSessionState]:
        """Return cached state iff the proposed session id can be honored.

        Unknown, evicted or expired ids simply return None — the caller
        falls back to a full handshake, exactly as RFC 5246 prescribes.
        """
        if self._session_cache is None or not hello.session_id:
            return None
        cached = self._session_cache.get(bytes(hello.session_id))
        if not isinstance(cached, TLSSessionState):
            return None
        if cached.cipher_suite_id not in hello.cipher_suites:
            return None  # client no longer offers the original suite
        if self.config.suite_for_id(cached.cipher_suite_id) is None:
            return None  # we no longer support it either
        return cached

    def _resume_session(self, hello: msgs.ClientHello, cached: TLSSessionState) -> None:
        """Abbreviated handshake: echo the id, skip certs and key exchange."""
        self.resumed = True
        self._session_id = cached.session_id
        suite = self.config.suite_for_id(cached.cipher_suite_id)
        self.negotiated_suite = suite
        self._master_secret = cached.master_secret

        self._send_handshake(
            msgs.ServerHello(
                random=self._server_random,
                session_id=cached.session_id,  # explicit echo = resumption
                cipher_suite=suite.suite_id,
                extensions=self._hello_extensions(hello),
            )
        )
        self._key_block = ks.resume_key_block(
            self._master_secret, self._client_random, self._server_random, suite
        )
        # Server finishes first in the abbreviated flow: its Finished covers
        # just [ClientHello, ServerHello].
        verify = ks.finished_verify_data(
            self._master_secret, ks.LABEL_SERVER_FINISHED, self._transcript_hash()
        )
        self._send_change_cipher_spec()
        self.records.write_state.activate(
            suite,
            suite.new_cipher(self._key_block.server_enc_key),
            self._key_block.server_mac_key,
        )
        self._send_handshake(msgs.Finished(verify_data=verify))
        self._state = _State.WAIT_CCS

    def _hello_extensions(self, hello: msgs.ClientHello):
        """Hook: mcTLS echoes its negotiated mode here."""
        return []

    def _before_hello_done(self, hello: msgs.ClientHello) -> None:
        """Hook: mcTLS middlebox-related processing."""

    def _send_server_key_exchange(self) -> None:
        group = self.config.dh_group
        self._dh_keypair = group.generate_keypair()
        params = msgs.ServerKeyExchange(
            dh_p=group.p,
            dh_g=group.g,
            dh_public=self._dh_keypair.public_bytes,
            signature=b"",
        )
        signed = self._client_random + self._server_random + params.params_bytes()
        params.signature = self.config.identity.key.sign(signed)
        self._send_handshake(params)

    def _on_client_key_exchange(self, kx: msgs.ClientKeyExchange) -> None:
        group = self.config.dh_group
        client_public = group.public_from_bytes(kx.dh_public)
        premaster = self._dh_keypair.combine(client_public)
        self._master_secret = ks.master_secret(
            premaster, self._client_random, self._server_random
        )
        suite = self.negotiated_suite
        self._key_block = ks.derive_key_block(
            self._master_secret,
            self._client_random,
            self._server_random,
            suite.mac_key_length,
            suite.key_length,
        )
        self._after_key_exchange()
        self._state = _State.WAIT_CCS

    def _after_key_exchange(self) -> None:
        """Hook: mcTLS waits for the client's key material messages here."""

    def _handle_change_cipher_spec(self) -> None:
        if self._state is not _State.WAIT_CCS:
            raise TLSError("unexpected ChangeCipherSpec", ALERT_UNEXPECTED_MESSAGE)
        suite = self.negotiated_suite
        self.records.read_state.activate(
            suite,
            suite.new_cipher(self._key_block.client_enc_key),
            self._key_block.client_mac_key,
        )
        self._state = _State.WAIT_FINISHED

    def _on_finished(self, finished: msgs.Finished) -> None:
        transcript = self._transcript[:-1]
        expected = ks.finished_verify_data(
            self._master_secret,
            ks.LABEL_CLIENT_FINISHED,
            hashlib.sha256(b"".join(transcript)).digest(),
        )
        if finished.verify_data != expected:
            raise TLSError("client Finished verification failed", ALERT_DECRYPT_ERROR)

        if self.resumed:
            # Abbreviated flow: our CCS + Finished already went out with the
            # ServerHello; the client's Finished closes the handshake.
            self._state = _State.CONNECTED
            self.handshake_complete = True
            self._emit(
                HandshakeComplete(cipher_suite=self.negotiated_suite.name, resumed=True)
            )
            return

        self._maybe_send_new_session_ticket()
        self._before_server_finished()
        suite = self.negotiated_suite
        self._send_change_cipher_spec()
        self.records.write_state.activate(
            suite,
            suite.new_cipher(self._key_block.server_enc_key),
            self._key_block.server_mac_key,
        )
        verify = ks.finished_verify_data(
            self._master_secret, ks.LABEL_SERVER_FINISHED, self._transcript_hash()
        )
        self._send_handshake(msgs.Finished(verify_data=verify))
        self._state = _State.CONNECTED
        self.handshake_complete = True
        self._cache_session()
        self._emit(HandshakeComplete(cipher_suite=suite.name))

    def _cache_session(self) -> None:
        """Make a completed full handshake resumable."""
        if self._session_cache is None or not self._session_id:
            return
        self._session_cache.put(
            self._session_id,
            TLSSessionState(
                session_id=self._session_id,
                master_secret=self._master_secret,
                cipher_suite_id=self.negotiated_suite.suite_id,
            ),
        )

    def _before_server_finished(self) -> None:
        """Hook: mcTLS sends its key material messages here."""
