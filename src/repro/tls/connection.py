"""Sans-I/O connection base shared by the TLS client and server.

A connection consumes raw transport bytes (``receive_data``) and produces
(1) raw bytes to write to the transport (``data_to_send``) and (2) a list
of high-level events (handshake completion, application data, alerts,
closure).  Nothing here ever touches a socket; transports live elsewhere.
The surface is the formal :class:`repro.core.Connection` protocol; the
event classes live in :mod:`repro.core.events` and are re-exported here
for compatibility.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.events import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    Event,
    HandshakeComplete,
    SessionClosed,
)
from repro.core.instrument import record_event
from repro.crypto.certs import Certificate, Identity
from repro.crypto.dh import DHGroup, GROUP_MODP_2048
from repro.tls import messages as msgs
from repro.tls import record as rec
from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    CipherSuite,
)
from repro.wire import DecodeError

# Alert descriptions (RFC 5246 §7.2).
ALERT_CLOSE_NOTIFY = 0
ALERT_UNEXPECTED_MESSAGE = 10
ALERT_BAD_RECORD_MAC = 20
ALERT_HANDSHAKE_FAILURE = 40
ALERT_BAD_CERTIFICATE = 42
ALERT_DECRYPT_ERROR = 51

ALERT_LEVEL_WARNING = 1
ALERT_LEVEL_FATAL = 2


class TLSError(Exception):
    """Fatal protocol failure; the connection is unusable afterwards."""

    def __init__(self, message: str, alert: int = ALERT_HANDSHAKE_FAILURE):
        super().__init__(message)
        self.alert = alert


# -- configuration --------------------------------------------------------


@dataclass
class TLSConfig:
    """Static configuration shared by clients, servers and middleboxes."""

    identity: Optional[Identity] = None
    trusted_roots: Sequence[Certificate] = ()
    cipher_suites: Sequence[CipherSuite] = (SUITE_DHE_RSA_AES128_CBC_SHA256,)
    dh_group: DHGroup = GROUP_MODP_2048
    server_name: Optional[str] = None
    verify_certificates: bool = True
    # Record-framing negotiation (mcTLS stacks only; plain TLS ignores
    # both).  ``framing`` names a :mod:`repro.framing` instance the
    # client offers / the server accepts ("mctls-default" or
    # "mctls-compact"); ``field_schemas`` are the per-field sub-context
    # declarations (``repro.mctls.contexts.FieldSchema``) the compact
    # framing carries.
    framing: str = "mctls-default"
    field_schemas: Sequence = ()

    def suite_ids(self) -> List[int]:
        return [s.suite_id for s in self.cipher_suites]

    def suite_for_id(self, suite_id: int) -> Optional[CipherSuite]:
        for suite in self.cipher_suites:
            if suite.suite_id == suite_id:
                return suite
        return None


def make_random() -> bytes:
    return os.urandom(msgs.RANDOM_LEN)


# -- the connection base ---------------------------------------------------


class TLSConnectionBase:
    """Common machinery: record layer, handshake buffer, transcript, events."""

    def __init__(self, config: TLSConfig):
        self.config = config
        self.records = rec.RecordLayer()
        self._handshake_buf = msgs.HandshakeBuffer()
        self._transcript: List[bytes] = []
        # Outgoing bytes as a chunk list: encoders append whole records,
        # data_to_send_views() hands the chunks to scatter-gather writers
        # (sendmsg/writelines) without an intermediate join.
        self._out: List[bytes] = []
        self._events: List[Event] = []
        self.handshake_complete = False
        self.closed = False
        self.resumed = False
        self.negotiated_suite: Optional[CipherSuite] = None
        self.peer_certificate: Optional[Certificate] = None
        # Instrumentation plane: None (the default) costs one attribute
        # load per hook site; attach a repro.core.Instruments to enable.
        self.instruments = None

    # -- transport-facing API ------------------------------------------

    def start_handshake(self) -> None:
        """Passive side by default; the client subclass overrides."""

    def data_to_send(self) -> bytes:
        data = b"".join(self._out)
        self._out.clear()
        return data

    def data_to_send_views(self) -> List[bytes]:
        """Pending output as a list of buffers for scatter-gather writes.

        The concatenation equals what :meth:`data_to_send` would have
        returned; transports may pass the list straight to
        ``socket.sendmsg`` / ``StreamWriter.writelines``.
        """
        views, self._out = self._out, []
        return views

    def receive_data(self, data: bytes) -> List[Event]:
        """Feed transport bytes; returns the events they produced."""
        if self.closed:
            return self._drain_events()
        self.records.feed(data)
        try:
            for content_type, plaintext in self.records.read_burst():
                self._dispatch_record(content_type, plaintext)
        except (rec.RecordError, DecodeError) as exc:
            self._count_failure()
            self._fail(TLSError(str(exc), ALERT_BAD_RECORD_MAC))
        except TLSError as exc:
            self._count_failure()
            self._fail(exc)
        return self._drain_events()

    def receive_bytes(self, data: bytes) -> List[Event]:
        """Historical name for :meth:`receive_data`."""
        return self.receive_data(data)

    def _count_failure(self) -> None:
        if self.instruments is not None:
            self.instruments.inc("errors.fatal")
            if not self.handshake_complete:
                self.instruments.inc("handshake.failed")

    def send_application_data(self, data: bytes, context_id: int = 0) -> None:
        if not self.handshake_complete:
            raise TLSError("cannot send application data before handshake")
        if self.closed:
            raise TLSError("connection is closed")
        if self.instruments is not None:
            self.instruments.inc("records.out")
            self.instruments.inc(f"context.{context_id}.bytes_out", len(data))
        self._out.append(self.records.encode(rec.APPLICATION_DATA, data))

    def close(self) -> None:
        """Send close_notify and mark the connection closed."""
        if not self.closed:
            self._send_alert(ALERT_LEVEL_WARNING, ALERT_CLOSE_NOTIFY)
            self.closed = True

    # -- internals -------------------------------------------------------

    def _drain_events(self) -> List[Event]:
        events, self._events = self._events, []
        return events

    def _emit(self, event: Event) -> None:
        if self.instruments is not None:
            record_event(self.instruments, event)
        self._events.append(event)

    def _fail(self, exc: TLSError) -> None:
        if not self.closed:
            self._send_alert(ALERT_LEVEL_FATAL, exc.alert)
            self.closed = True
        raise exc

    def _send_alert(self, level: int, description: int) -> None:
        self._out.append(self.records.encode(rec.ALERT, bytes([level, description])))

    def _dispatch_record(self, content_type: int, plaintext: bytes) -> None:
        if content_type == rec.HANDSHAKE:
            self._handshake_buf.feed(plaintext)
            while True:
                message = self._handshake_buf.next_message()
                if message is None:
                    break
                msg_type, body, raw = message
                if self.instruments is not None:
                    self.instruments.inc("handshake.messages_in")
                self._handle_handshake_message(msg_type, body, raw)
        elif content_type == rec.CHANGE_CIPHER_SPEC:
            if plaintext != b"\x01":
                raise TLSError("malformed ChangeCipherSpec")
            self._handle_change_cipher_spec()
        elif content_type == rec.ALERT:
            self._handle_alert(plaintext)
        elif content_type == rec.APPLICATION_DATA:
            if not self.handshake_complete:
                raise TLSError("application data before handshake completion")
            self._emit(ApplicationData(data=plaintext))
        else:  # pragma: no cover - RecordLayer already validates
            raise TLSError(f"unexpected content type {content_type}")

    def _handle_alert(self, payload: bytes) -> None:
        if len(payload) != 2:
            raise TLSError("malformed alert")
        level, description = payload
        self._emit(AlertReceived(level=level, description=description))
        if description == ALERT_CLOSE_NOTIFY or level == ALERT_LEVEL_FATAL:
            self.closed = True
            self._emit(ConnectionClosed())

    # -- handshake helpers -------------------------------------------------

    def _send_handshake(self, message, transcript: bool = True) -> bytes:
        """Frame, record-encode and transmit a handshake message."""
        raw = msgs.frame(message.msg_type, message.encode())
        if transcript:
            self._transcript.append(raw)
        if self.instruments is not None:
            self.instruments.inc("handshake.messages_out")
        self._out.append(self.records.encode(rec.HANDSHAKE, raw))
        return raw

    def _send_change_cipher_spec(self) -> None:
        self._out.append(self.records.encode(rec.CHANGE_CIPHER_SPEC, b"\x01"))

    def _transcript_hash(self) -> bytes:
        return hashlib.sha256(b"".join(self._transcript)).digest()

    # -- subclass hooks ------------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        raise NotImplementedError

    def _handle_change_cipher_spec(self) -> None:
        raise NotImplementedError
