"""Stateless session tickets (RFC 5077's construction, re-built here).

PR 2's :class:`~repro.tls.sessioncache.SessionCache` resumes sessions
from *server memory*: a bounded LRU that evicts under load and — the
multi-process problem — lives inside one worker, so a returning client
that lands on a different shard gets a full handshake.  Tickets invert
the storage: the server *seals* the session state under a key only it
holds and hands the opaque blob to the client, who presents it on the
next connection.  Resumption then costs the server O(1) memory and works
on any worker sharing the ticket key — exactly the property a
SO_REUSEPORT worker pool needs (see ``repro.mp``).

Ticket format (the sealed blob the client carries)::

    version(1) || key_name(16) || nonce(16) || ciphertext || mac(32)

* ``version`` — format version; a bumped version is indistinguishable
  from garbage to an old server (→ full handshake), never a crash.
* ``key_name`` — identifies which rotation epoch sealed this ticket, so
  rotation does not orphan live tickets (RFC 5077 §4).
* ``ciphertext`` — XOR of the plaintext with a P_SHA256 keystream bound
  to the nonce (the repo-local stand-in for AES-CTR; same construction
  as the record layer's PRF use).
* ``mac`` — HMAC-SHA256 over ``version || key_name || nonce ||
  ciphertext`` (encrypt-then-MAC, verified with a constant-time
  compare before any decryption).

The plaintext carries a *kind* byte (TLS vs mcTLS) so a ticket can never
be replayed across protocols, the sealing timestamp (tickets expire by
ticket age, not by server table residence) and the protocol payload.
For plain TLS that payload is master secret + cipher suite; for mcTLS it
is the endpoint secret **plus the full granted context topology, mode
and key transport** — the server re-checks all of them against the new
ClientHello before honoring the ticket, so a resumption can never widen
middlebox access beyond what was originally approved (the same rule
``McTLSServer._session_cacheable`` enforces for the in-memory cache).

Keys rotate: :class:`TicketKeyManager` seals under the newest key,
starts a fresh key every ``rotation_period`` seconds and keeps old keys
just long enough to validate tickets they could still have sealed.  The
clock is injectable so tests drive rotation and expiry without sleeping.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.crypto.prf import p_sha256
from repro.tls.sessioncache import TLSSessionState
from repro.wire import DecodeError, Reader, Writer

TICKET_VERSION = 1
KEY_NAME_LEN = 16
NONCE_LEN = 16
MAC_LEN = 32
MIN_TICKET_LEN = 1 + KEY_NAME_LEN + NONCE_LEN + MAC_LEN

# Payload kinds: a ticket sealed for one protocol is garbage to the other.
KIND_TLS = 1
KIND_MCTLS = 2
KIND_MDTLS = 3

DEFAULT_LIFETIME_S = 3600.0

LABEL_KEYSTREAM = b"ticket keystream"
LABEL_MAC = b"ticket mac"


class TicketError(Exception):
    """The ticket cannot be honored.  Every path raising this must end in
    a silent fallback to a full handshake — never an alert, never a
    crash (RFC 5077 §3.1)."""


@dataclass(frozen=True)
class TicketKey:
    """One rotation epoch's sealing key."""

    name: bytes
    secret: bytes
    created_at: float


@dataclass
class TicketStats:
    """Counters for every way a ticket can be minted or judged."""

    sealed: int = 0
    unsealed: int = 0
    rejected: int = 0
    rotations: int = 0

    def snapshot(self):
        return {
            "sealed": self.sealed,
            "unsealed": self.unsealed,
            "rejected": self.rejected,
            "rotations": self.rotations,
        }


class TicketKeyManager:
    """Seals and unseals session tickets under rotating, versioned keys.

    * ``lifetime`` — seconds a ticket stays valid, measured from sealing
      (also the ``lifetime_hint`` sent in NewSessionTicket).
    * ``rotation_period`` — seconds a key stays the *sealing* key;
      defaults to ``lifetime``.  Old keys are kept for
      ``rotation_period + lifetime`` so every ticket they could have
      sealed can still be validated, then pruned.
    * ``clock`` / ``rng`` — injectable for deterministic tests.

    One manager is shared by every worker of a process pool (created
    before fork); a real deployment would distribute fresh keys to the
    pool out-of-band on rotation (RFC 5077 §5.5) — here rotation is
    exercised in-process by the tests.
    """

    def __init__(
        self,
        lifetime: float = DEFAULT_LIFETIME_S,
        rotation_period: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        rng: Callable[[int], bytes] = os.urandom,
    ):
        if lifetime <= 0:
            raise ValueError("ticket lifetime must be positive")
        self.lifetime = lifetime
        self.rotation_period = (
            rotation_period if rotation_period is not None else lifetime
        )
        if self.rotation_period <= 0:
            raise ValueError("ticket rotation period must be positive")
        self._clock = clock
        self._rng = rng
        self._keys: "OrderedDict[bytes, TicketKey]" = OrderedDict()
        self.stats = TicketStats()
        self._mint_key()

    # -- key lifecycle ---------------------------------------------------

    def _mint_key(self) -> TicketKey:
        key = TicketKey(
            name=self._rng(KEY_NAME_LEN),
            secret=self._rng(32),
            created_at=self._clock(),
        )
        self._keys[key.name] = key
        return key

    def rotate(self) -> TicketKey:
        """Force a fresh sealing key (normally driven by the clock)."""
        self.stats.rotations += 1
        return self._mint_key()

    def _prune(self) -> None:
        horizon = self.rotation_period + self.lifetime
        now = self._clock()
        stale = [
            name
            for name, key in self._keys.items()
            if now - key.created_at > horizon
        ]
        for name in stale:
            del self._keys[name]

    def _sealing_key(self) -> TicketKey:
        self._prune()
        current = next(reversed(self._keys.values()), None)
        if current is None or self._clock() - current.created_at > self.rotation_period:
            if current is not None:
                self.stats.rotations += 1
            current = self._mint_key()
        return current

    @property
    def current_key_name(self) -> bytes:
        return self._sealing_key().name

    # -- seal / unseal ---------------------------------------------------

    def _cipher(self, key: TicketKey, nonce: bytes, data: bytes) -> bytes:
        stream = p_sha256(key.secret, LABEL_KEYSTREAM + nonce, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))

    def _mac(self, key: TicketKey, header_and_ct: bytes) -> bytes:
        mac_key = p_sha256(key.secret, LABEL_MAC, 32)
        return hmac.new(mac_key, header_and_ct, hashlib.sha256).digest()

    def seal(self, kind: int, payload: bytes) -> bytes:
        """Seal a protocol payload into an opaque ticket blob."""
        key = self._sealing_key()
        nonce = self._rng(NONCE_LEN)
        inner = Writer()
        inner.u8(kind)
        inner.u64(int(self._clock() * 1000))  # issued_at, milliseconds
        inner.raw(payload)
        header = bytes([TICKET_VERSION]) + key.name + nonce
        ciphertext = self._cipher(key, nonce, inner.bytes())
        self.stats.sealed += 1
        return header + ciphertext + self._mac(key, header + ciphertext)

    def unseal(self, ticket: bytes) -> Tuple[int, bytes]:
        """Validate and open a ticket; returns ``(kind, payload)``.

        Raises :class:`TicketError` on *any* defect — truncation, version
        skew, unknown (rotated-out) key, MAC failure, malformed plaintext
        or expiry.  Callers treat every failure identically: ignore the
        ticket and run a full handshake.
        """
        try:
            return self._unseal(ticket)
        except TicketError:
            self.stats.rejected += 1
            raise

    def _unseal(self, ticket: bytes) -> Tuple[int, bytes]:
        if len(ticket) < MIN_TICKET_LEN:
            raise TicketError("ticket truncated")
        if ticket[0] != TICKET_VERSION:
            raise TicketError(f"unknown ticket version {ticket[0]}")
        name = ticket[1 : 1 + KEY_NAME_LEN]
        nonce = ticket[1 + KEY_NAME_LEN : 1 + KEY_NAME_LEN + NONCE_LEN]
        ciphertext = ticket[1 + KEY_NAME_LEN + NONCE_LEN : -MAC_LEN]
        mac = ticket[-MAC_LEN:]
        self._prune()
        key = self._keys.get(bytes(name))
        if key is None:
            raise TicketError("ticket sealed under an unknown or retired key")
        expected = self._mac(key, bytes(ticket[:-MAC_LEN]))
        if not hmac.compare_digest(mac, expected):
            raise TicketError("ticket MAC verification failed")
        try:
            r = Reader(self._cipher(key, nonce, ciphertext))
            kind = r.u8()
            issued_at = r.u64() / 1000.0
            payload = r.rest()
        except DecodeError as exc:
            raise TicketError(f"malformed ticket plaintext: {exc}") from exc
        if self._clock() - issued_at > self.lifetime:
            raise TicketError("ticket expired")
        self.stats.unsealed += 1
        return kind, payload


# -- plain-TLS payload codec ---------------------------------------------


def encode_tls_ticket_state(state: TLSSessionState) -> bytes:
    """Serialize what a plain-TLS resumption needs (the session id is
    *not* sealed: on resumption the server echoes the fresh id the
    client proposed, per RFC 5077 §3.4)."""
    w = Writer()
    w.vec8(state.master_secret)
    w.u16(state.cipher_suite_id)
    w.string8(state.server_name)
    return w.bytes()


def decode_tls_ticket_state(payload: bytes) -> TLSSessionState:
    try:
        r = Reader(payload)
        master_secret = r.vec8()
        cipher_suite_id = r.u16()
        server_name = r.string8()
        r.expect_end()
    except DecodeError as exc:
        raise TicketError(f"malformed TLS ticket payload: {exc}") from exc
    return TLSSessionState(
        session_id=b"",
        master_secret=master_secret,
        cipher_suite_id=cipher_suite_id,
        server_name=server_name,
    )


# -- client side ----------------------------------------------------------


@dataclass
class ClientTicket:
    """What the client keeps per endpoint: the opaque server-sealed blob
    plus its *own* record of the session (the client cannot read the
    ticket; mcTLS clients also need their cached middlebox certificates
    to re-distribute fresh context keys on resumption)."""

    ticket: bytes
    state: object  # TLSSessionState | McTLSSessionState
