"""TLS 1.2 handshake message codecs (RFC 5246 §7.4).

Each message knows how to encode its body; :func:`frame` adds the 4-byte
handshake header (type + 24-bit length) and :class:`HandshakeBuffer`
reassembles framed messages out of the record stream (messages may span
records and records may carry several messages).

The raw framed bytes of every message are what transcript hashes (Finished
verification) are computed over, so codecs must round-trip exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.certs import Certificate
from repro.wire import DecodeError, Reader, Writer

# Handshake message types (RFC 5246 + RFC 5077 + mcTLS private range).
CLIENT_HELLO = 1
SERVER_HELLO = 2
NEW_SESSION_TICKET = 4
CERTIFICATE = 11
SERVER_KEY_EXCHANGE = 12
SERVER_HELLO_DONE = 14
CLIENT_KEY_EXCHANGE = 16
FINISHED = 20

# mcTLS additions (private-use message type space).
MIDDLEBOX_HELLO = 0xF1
MIDDLEBOX_CERTIFICATE = 0xF2
MIDDLEBOX_KEY_EXCHANGE = 0xF3
MIDDLEBOX_KEY_MATERIAL = 0xF4

# mdTLS delegation additions (same private-use space).
WARRANT_ISSUE = 0xF5
DELEGATED_KEY_MATERIAL = 0xF6

RANDOM_LEN = 32
VERIFY_DATA_LEN = 12

# Extension type numbers.
EXT_SESSION_TICKET = 0x0023  # RFC 5077 SessionTicket
EXT_MIDDLEBOX_LIST = 0xFF01


def frame(msg_type: int, body: bytes) -> bytes:
    """Add the handshake header: type(1) || length(3) || body."""
    if len(body) >= 1 << 24:
        raise ValueError("handshake message too long")
    return bytes([msg_type]) + len(body).to_bytes(3, "big") + body


class HandshakeBuffer:
    """Reassembles handshake messages from record fragments."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def next_message(self) -> Optional[Tuple[int, bytes, bytes]]:
        """Return (msg_type, body, raw_framed_bytes) or None if incomplete."""
        if len(self._buf) < 4:
            return None
        msg_type = self._buf[0]
        length = int.from_bytes(self._buf[1:4], "big")
        if len(self._buf) < 4 + length:
            return None
        raw = bytes(self._buf[: 4 + length])
        body = raw[4:]
        del self._buf[: 4 + length]
        return msg_type, body, raw

    @property
    def has_partial(self) -> bool:
        return bool(self._buf)


# -- extensions ---------------------------------------------------------


def encode_extensions(extensions: Sequence[Tuple[int, bytes]]) -> bytes:
    """Encode an extension block (empty block encodes as zero bytes)."""
    if not extensions:
        return b""
    inner = Writer()
    for ext_type, data in extensions:
        inner.u16(ext_type)
        inner.vec16(data)
    return Writer().vec16(inner.bytes()).bytes()


def decode_extensions(reader: Reader) -> List[Tuple[int, bytes]]:
    if reader.exhausted:
        return []
    block = Reader(reader.vec16())
    extensions = []
    while not block.exhausted:
        ext_type = block.u16()
        extensions.append((ext_type, block.vec16()))
    return extensions


# -- hello messages ------------------------------------------------------


@dataclass
class ClientHello:
    random: bytes
    cipher_suites: Sequence[int]
    session_id: bytes = b""
    extensions: List[Tuple[int, bytes]] = field(default_factory=list)

    msg_type = CLIENT_HELLO

    def encode(self) -> bytes:
        w = Writer()
        w.u16(0x0303)
        w.raw(self.random)
        w.vec8(self.session_id)
        suites = Writer()
        for suite in self.cipher_suites:
            suites.u16(suite)
        w.vec16(suites.bytes())
        w.vec8(b"\x00")  # null compression only
        w.raw(encode_extensions(self.extensions))
        return w.bytes()

    @classmethod
    def decode(cls, body: bytes) -> "ClientHello":
        r = Reader(body)
        version = r.u16()
        if version != 0x0303:
            raise DecodeError(f"unsupported client version 0x{version:04x}")
        random = r.raw(RANDOM_LEN)
        session_id = r.vec8()
        suite_bytes = Reader(r.vec16())
        suites = []
        while not suite_bytes.exhausted:
            suites.append(suite_bytes.u16())
        compression = r.vec8()
        if b"\x00" not in compression:
            raise DecodeError("null compression not offered")
        extensions = decode_extensions(r)
        r.expect_end()
        return cls(
            random=random,
            cipher_suites=suites,
            session_id=session_id,
            extensions=extensions,
        )

    def find_extension(self, ext_type: int) -> Optional[bytes]:
        for etype, data in self.extensions:
            if etype == ext_type:
                return data
        return None


@dataclass
class ServerHello:
    random: bytes
    cipher_suite: int
    session_id: bytes = b""
    extensions: List[Tuple[int, bytes]] = field(default_factory=list)

    msg_type = SERVER_HELLO

    def encode(self) -> bytes:
        w = Writer()
        w.u16(0x0303)
        w.raw(self.random)
        w.vec8(self.session_id)
        w.u16(self.cipher_suite)
        w.u8(0)  # null compression
        w.raw(encode_extensions(self.extensions))
        return w.bytes()

    @classmethod
    def decode(cls, body: bytes) -> "ServerHello":
        r = Reader(body)
        version = r.u16()
        if version != 0x0303:
            raise DecodeError(f"unsupported server version 0x{version:04x}")
        random = r.raw(RANDOM_LEN)
        session_id = r.vec8()
        suite = r.u16()
        if r.u8() != 0:
            raise DecodeError("server selected non-null compression")
        extensions = decode_extensions(r)
        r.expect_end()
        return cls(
            random=random,
            cipher_suite=suite,
            session_id=session_id,
            extensions=extensions,
        )

    def find_extension(self, ext_type: int) -> Optional[bytes]:
        for etype, data in self.extensions:
            if etype == ext_type:
                return data
        return None


# -- certificates --------------------------------------------------------


@dataclass
class CertificateMessage:
    chain: Sequence[Certificate]

    msg_type = CERTIFICATE

    def encode(self) -> bytes:
        inner = Writer()
        for cert in self.chain:
            inner.vec24(cert.to_bytes())
        return Writer().vec24(inner.bytes()).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "CertificateMessage":
        r = Reader(body)
        inner = Reader(r.vec24())
        r.expect_end()
        chain = []
        while not inner.exhausted:
            chain.append(Certificate.from_bytes(inner.vec24()))
        return cls(chain=tuple(chain))


# -- key exchange --------------------------------------------------------


@dataclass
class ServerKeyExchange:
    """Ephemeral DH parameters signed by the server's certificate key.

    The signature covers ``client_random || server_random || params`` as in
    RFC 5246 §7.4.3.
    """

    dh_p: int
    dh_g: int
    dh_public: bytes
    signature: bytes

    msg_type = SERVER_KEY_EXCHANGE

    def params_bytes(self) -> bytes:
        from repro.crypto.numtheory import int_to_bytes

        w = Writer()
        w.vec16(int_to_bytes(self.dh_p))
        w.vec16(int_to_bytes(self.dh_g))
        w.vec16(self.dh_public)
        return w.bytes()

    def encode(self) -> bytes:
        return self.params_bytes() + Writer().vec16(self.signature).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "ServerKeyExchange":
        from repro.crypto.numtheory import bytes_to_int

        r = Reader(body)
        p = bytes_to_int(r.vec16())
        g = bytes_to_int(r.vec16())
        public = r.vec16()
        signature = r.vec16()
        r.expect_end()
        return cls(dh_p=p, dh_g=g, dh_public=public, signature=signature)


@dataclass
class ClientKeyExchange:
    dh_public: bytes

    msg_type = CLIENT_KEY_EXCHANGE

    def encode(self) -> bytes:
        return Writer().vec16(self.dh_public).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "ClientKeyExchange":
        r = Reader(body)
        public = r.vec16()
        r.expect_end()
        return cls(dh_public=public)


@dataclass
class ServerHelloDone:
    msg_type = SERVER_HELLO_DONE

    def encode(self) -> bytes:
        return b""

    @classmethod
    def decode(cls, body: bytes) -> "ServerHelloDone":
        if body:
            raise DecodeError("ServerHelloDone must be empty")
        return cls()


@dataclass
class NewSessionTicket:
    """RFC 5077 §3.3: delivered by the server after the client's Finished
    and before its own ChangeCipherSpec, on full handshakes where the
    client signalled ticket support.  ``ticket`` is opaque to the client
    (sealed by :class:`repro.tls.tickets.TicketKeyManager`)."""

    lifetime_hint: int  # seconds; advisory
    ticket: bytes

    msg_type = NEW_SESSION_TICKET

    def encode(self) -> bytes:
        w = Writer()
        w.u32(self.lifetime_hint)
        w.vec16(self.ticket)
        return w.bytes()

    @classmethod
    def decode(cls, body: bytes) -> "NewSessionTicket":
        r = Reader(body)
        lifetime_hint = r.u32()
        ticket = r.vec16()
        r.expect_end()
        return cls(lifetime_hint=lifetime_hint, ticket=ticket)


@dataclass
class Finished:
    verify_data: bytes

    msg_type = FINISHED

    def encode(self) -> bytes:
        return self.verify_data

    @classmethod
    def decode(cls, body: bytes) -> "Finished":
        if len(body) != VERIFY_DATA_LEN:
            raise DecodeError("Finished verify_data has wrong length")
        return cls(verify_data=body)


MESSAGE_CLASSES: Dict[int, type] = {
    CLIENT_HELLO: ClientHello,
    SERVER_HELLO: ServerHello,
    NEW_SESSION_TICKET: NewSessionTicket,
    CERTIFICATE: CertificateMessage,
    SERVER_KEY_EXCHANGE: ServerKeyExchange,
    SERVER_HELLO_DONE: ServerHelloDone,
    CLIENT_KEY_EXCHANGE: ClientKeyExchange,
    FINISHED: Finished,
}
