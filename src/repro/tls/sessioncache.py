"""Session caching for abbreviated-handshake resumption (RFC 5246 §7.3).

The paper's server-side bottleneck is handshake CPU (§5, Figure 5); real
deployments amortise it with *session resumption*: the server remembers
the master secret under a ``session_id``, and a returning client skips
certificates and key exchange entirely — ClientHello (cached id) →
ServerHello (echo) + ChangeCipherSpec + Finished → ChangeCipherSpec +
Finished.  Fresh randoms re-derive the record keys, so resumed sessions
never reuse record protection keys.

Two stores live here:

* :class:`SessionCache` — the server side: a bounded LRU with absolute
  TTL expiry, explicit invalidation and statistics counters.  Millions of
  clients must not grow server memory without bound, so capacity is a
  hard cap and the least-recently-used entry is evicted first.
* :class:`ClientSessionStore` — the client side: the most recent
  resumable session per endpoint (server name), same LRU/TTL machinery.

Both are deliberately deterministic: the clock is injectable, so tests
drive TTL expiry without sleeping.

State payloads:

* :class:`TLSSessionState` — plain TLS 1.2: master secret + cipher suite.
* mcTLS state (endpoint secret, mode, key transport, topology bytes and
  the middlebox certificates needed to re-distribute fresh context keys)
  lives in :class:`repro.mctls.session.McTLSSessionState`; this module is
  payload-agnostic.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

SESSION_ID_LEN = 32

DEFAULT_CAPACITY = 1024
DEFAULT_TTL_S = 3600.0


def new_session_id() -> bytes:
    """A fresh 32-byte session identifier (RFC 5246 caps it at 32)."""
    return os.urandom(SESSION_ID_LEN)


@dataclass(frozen=True)
class TLSSessionState:
    """What a plain-TLS resumption needs to rebuild record protection."""

    session_id: bytes
    master_secret: bytes
    cipher_suite_id: int
    server_name: str = ""


@dataclass
class CacheStats:
    """Counters for every way an entry can enter or leave the cache."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    stores: int = 0
    overwrites: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "stores": self.stores,
            "overwrites": self.overwrites,
            "invalidations": self.invalidations,
        }


@dataclass
class _Entry:
    state: object
    stored_at: float


class SessionCache:
    """A bounded LRU session cache with TTL expiry and stats.

    * ``capacity`` — hard bound on live entries; storing beyond it evicts
      the least recently *used* entry (lookups refresh recency).
    * ``ttl`` — seconds an entry stays resumable, measured from its most
      recent ``put``.  Expiry is lazy: detected on lookup (counted as an
      expiration *and* a miss) or via :meth:`purge_expired`.
    * ``clock`` — injectable monotonic time source for deterministic
      tests; defaults to :func:`time.monotonic`.

    Accounting invariant (the property tests pin it)::

        stores == len(cache) + evictions + expirations
                  + invalidations + overwrites
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        ttl: float = DEFAULT_TTL_S,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("session cache capacity must be at least 1")
        if ttl <= 0:
            raise ValueError("session cache TTL must be positive")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching recency or the hit/miss counters."""
        entry = self._entries.get(key)
        return entry is not None and not self._expired(entry)

    def _expired(self, entry: _Entry) -> bool:
        return self._clock() - entry.stored_at > self.ttl

    def get(self, key: Hashable) -> Optional[object]:
        """Look up a resumable session; refreshes LRU recency on hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self._expired(entry):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.state

    def put(self, key: Hashable, state: object) -> None:
        """Store (or refresh) a session, evicting LRU entries past capacity."""
        if key in self._entries:
            self.stats.overwrites += 1
            del self._entries[key]
        self._entries[key] = _Entry(state=state, stored_at=self._clock())
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Explicitly drop a session (e.g. on fatal alert); True if present."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def purge_expired(self) -> int:
        """Eagerly drop every expired entry; returns how many were dropped."""
        expired = [k for k, e in self._entries.items() if self._expired(e)]
        for key in expired:
            del self._entries[key]
            self.stats.expirations += 1
        return len(expired)

    def clear(self) -> None:
        """Drop everything (counted as invalidations)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()


class ClientSessionStore(SessionCache):
    """The client side: resumable sessions keyed by endpoint name.

    Identical machinery to :class:`SessionCache`; the subclass exists so
    call sites say what they mean and so client-side defaults can diverge
    later (browsers keep far fewer sessions than servers)."""

    def __init__(
        self,
        capacity: int = 64,
        ttl: float = DEFAULT_TTL_S,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(capacity=capacity, ttl=ttl, clock=clock)
