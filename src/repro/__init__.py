"""Reproduction of mcTLS (Naylor et al., SIGCOMM 2015).

Multi-context TLS extends TLS with encryption contexts and explicit,
least-privilege middleboxes.  Package map:

* :mod:`repro.mctls` — the protocol (client, server, middlebox, contexts,
  keys, record layer, discovery, fallback, compliance data)
* :mod:`repro.tls` — the TLS 1.2 substrate and baseline protocol
* :mod:`repro.crypto` — from-scratch primitives (AES, DHE, RSA, PRF, PKI)
* :mod:`repro.http` — HTTP/1.1 + context strategies + stream multiplexing
* :mod:`repro.middleboxes` — the Table 1 applications
* :mod:`repro.baselines` — SplitTLS / E2E-TLS / NoEncrypt
* :mod:`repro.netsim` — deterministic network simulator (TCP with Nagle)
* :mod:`repro.workloads` / :mod:`repro.experiments` — the paper's evaluation
* :mod:`repro.builder` — high-level session construction
* :mod:`repro.sockets` — real-socket transports
* :mod:`repro.trace` — wire-stream decoder for debugging

Entry points for new users: :class:`repro.builder.SessionBuilder` and
``examples/quickstart.py``.
"""

__version__ = "1.0.0"
