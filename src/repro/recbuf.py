"""Cursor-based receive buffer for record de-framing.

Both record layers (TLS and mcTLS) used to consume their receive buffer
with ``del buf[:n]`` per record.  CPython's ``bytearray`` makes prefix
deletion cheap (the ``ob_start`` offset optimisation), but it is still a
per-record call plus periodic internal copying; a cursor makes the
consume step two integer assignments and batches reclamation into one
deletion per :meth:`append` once the dead prefix crosses a threshold.

The buffer deliberately exposes ``data``/``pos`` so record parsers can
run ``struct.unpack_from(self.data, self.pos)`` straight against the
underlying ``bytearray`` — no peek copies.  Callers must treat any
slice they keep past the next ``append``/``consume`` as volatile and
copy it out (both record layers copy exactly once, into the fragment).
"""

from __future__ import annotations

# Reclaim the consumed prefix once it exceeds this many bytes (or the
# buffer is fully drained, which makes the deletion free).
_COMPACT_BYTES = 1 << 16


class RecordBuffer:
    """Append-at-tail, consume-by-cursor byte buffer."""

    __slots__ = ("data", "pos")

    def __init__(self) -> None:
        self.data = bytearray()
        self.pos = 0

    def __len__(self) -> int:
        return len(self.data) - self.pos

    def __bool__(self) -> bool:
        return len(self.data) > self.pos

    def append(self, chunk) -> None:
        pos = self.pos
        if pos and (pos >= len(self.data) or pos > _COMPACT_BYTES):
            del self.data[:pos]
            self.pos = 0
        self.data += chunk

    def consume(self, n: int) -> None:
        """Advance the cursor past ``n`` already-parsed bytes."""
        self.pos += n

    def take(self, n: int) -> bytes:
        """Copy out the next ``n`` bytes and advance the cursor."""
        start = self.pos
        end = start + n
        self.pos = end
        # memoryview slice: one copy (bytearray slicing would copy twice).
        return bytes(memoryview(self.data)[start:end])

    def next_record(self, framing):
        """Split one record off the buffer under ``framing``'s geometry.

        Returns ``(content_type, context_id, fragment, raw)`` —
        ``context_id`` is 0 for framings without one (plain TLS) and
        ``fragment``/``raw`` are immutable copies — or ``None`` when a
        complete record is not yet buffered.  Raises the framing's
        :class:`repro.framing.FramingError` on a malformed header, so a
        buffer carrying mixed framings (the records before and after a
        negotiated framing switch) can be drained record by record with
        the caller re-selecting ``framing`` between calls.
        """
        avail = len(self.data) - self.pos
        hlen = framing.header_len
        if avail < hlen:
            return None
        content_type, context_id, length = framing.parse_header(self.data, self.pos)
        if avail < hlen + length:
            return None
        raw = self.take(hlen + length)
        return content_type, context_id, raw[hlen:], raw

    def snapshot(self, n: int) -> bytes:
        """Atomically copy out the next ``n`` bytes and consume them.

        This is the batched-parse primitive.  A burst reader that parsed
        record boundaries against ``data``/``pos`` must not hold those
        offsets across a later :meth:`append`: reclamation there deletes
        the consumed prefix and shifts every offset, so stale offsets
        would silently re-read already-reclaimed bytes.  Copying the
        parsed span *and* advancing the cursor in one step makes that
        hazard unrepresentable — the returned ``bytes`` is immutable and
        self-contained, and the buffer is free to compact underneath it.
        """
        return self.take(n)

    def clear(self) -> None:
        self.data.clear()
        self.pos = 0
