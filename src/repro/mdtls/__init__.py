"""mdTLS — mcTLS with delegated credentials instead of key distribution.

The delegation variant (after Ahn et al.'s mdTLS proxy-signature design)
keeps mcTLS's record layer, contexts and wire geometry unchanged and
replaces the per-middlebox key-distribution flights with **warrants**:

* each endpoint signs one context-scoped, session-bound, time-limited
  :class:`~repro.mdtls.warrants.Warrant` per middlebox
  (:mod:`repro.mdtls.warrants`);
* the middlebox proves possession of the warranted certificate key with
  the signed key exchange it already sends
  (:mod:`repro.mdtls.middlebox`);
* context keys flow once, from the server, sealed to the warranted key
  and clamped to the intersection of both warrants
  (:mod:`repro.mdtls.server` / :mod:`repro.mdtls.client`).

The net effect on the handshake economics (the reason mdTLS exists):
adding a middlebox costs the endpoints one extra warrant signature each
and the server one sealed key-material message — versus two to four
per-middlebox secret computations and seals in mcTLS's modes.

``MdTLSClient`` / ``MdTLSServer`` / ``MdTLSMiddlebox`` subclass the
mcTLS stack and implement the same ``repro.core`` Connection /
RelayProcessor protocols, so every runtime, the conformance battery,
the fault matrix and the benchmark harness drive them unmodified.
"""

from repro.mdtls.client import MdTLSClient
from repro.mdtls.messages import DelegatedKeyMaterial, WarrantIssue
from repro.mdtls.middlebox import MdTLSMiddlebox
from repro.mdtls.server import MdTLSServer
from repro.mdtls.warrants import (
    ISSUER_CLIENT,
    ISSUER_SERVER,
    Warrant,
    WarrantError,
    check_warrant,
    check_warrant_set,
    effective_permission,
    issue_warrants,
)

__all__ = [
    "DelegatedKeyMaterial",
    "ISSUER_CLIENT",
    "ISSUER_SERVER",
    "MdTLSClient",
    "MdTLSMiddlebox",
    "MdTLSServer",
    "Warrant",
    "WarrantError",
    "WarrantIssue",
    "check_warrant",
    "check_warrant_set",
    "effective_permission",
    "issue_warrants",
]
