"""mdTLS handshake messages.

Two additions to the mcTLS message set, in the same private-use
handshake-type space:

* ``WarrantIssue`` (0xF5) — one endpoint's full warrant flight: its
  certificate chain (so warrants verify even in the abbreviated flow,
  where no Certificate message exists) plus one signed
  :class:`~repro.mdtls.warrants.Warrant` per middlebox.
* ``DelegatedKeyMaterial`` (0xF6) — the server's context key blocks for
  one middlebox, hybrid-sealed to the warranted certificate key.

Both flow inside ordinary handshake records, pass through middleboxes
like any other flight message, and are covered by the Finished hashes
via the delegation-mode canonical orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.certs import Certificate
from repro.mctls.messages import SENDER_CLIENT, SENDER_SERVER
from repro.mdtls.warrants import Warrant
from repro.tls import messages as tls_msgs
from repro.wire import DecodeError, Reader, Writer


@dataclass
class WarrantIssue:
    """One endpoint's warrants for every middlebox, plus the chain that
    proves who signed them."""

    sender: int  # SENDER_CLIENT or SENDER_SERVER
    issuer_chain: Sequence[Certificate]
    warrants: Sequence[Warrant]

    msg_type = tls_msgs.WARRANT_ISSUE

    def encode(self) -> bytes:
        chain = Writer()
        for cert in self.issuer_chain:
            chain.vec24(cert.to_bytes())
        w = Writer().u8(self.sender).vec24(chain.bytes())
        w.u8(len(self.warrants))
        for warrant in self.warrants:
            w.vec16(warrant.encode())
        return w.bytes()

    @classmethod
    def decode(cls, body: bytes) -> "WarrantIssue":
        r = Reader(body)
        sender = r.u8()
        if sender not in (SENDER_CLIENT, SENDER_SERVER):
            raise DecodeError(f"invalid warrant issue sender {sender}")
        chain_r = Reader(r.vec24())
        issuer_chain: List[Certificate] = []
        while not chain_r.exhausted:
            issuer_chain.append(Certificate.from_bytes(chain_r.vec24()))
        warrants = [Warrant.decode(r.vec16()) for _ in range(r.u8())]
        r.expect_end()
        return cls(
            sender=sender, issuer_chain=tuple(issuer_chain), warrants=tuple(warrants)
        )


@dataclass
class DelegatedKeyMaterial:
    """Full context key blocks for one middlebox, sealed by the server to
    the middlebox's certificate key (the same hybrid construction the
    mcTLS RSA key transport uses)."""

    target: int  # mbox_id
    sealed: bytes

    msg_type = tls_msgs.DELEGATED_KEY_MATERIAL

    def encode(self) -> bytes:
        return Writer().u8(self.target).vec16(self.sealed).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "DelegatedKeyMaterial":
        r = Reader(body)
        target = r.u8()
        sealed = r.vec16()
        r.expect_end()
        return cls(target=target, sealed=sealed)
