"""The mdTLS server.

Rides the mcTLS server state machine with the delegation-mode deltas:

* always negotiates :attr:`HandshakeMode.DELEGATION` and insists on the
  DHE key transport (the middlebox's signed key exchange is its proof of
  possession of the warranted key);
* issues its warrants — scoped to the topology its *policy approved*,
  the delegation form of "the server can say no" — right after its
  ServerKeyExchange;
* verifies the client's warrants (signature under the client's certified
  key, session binding, window, scope against the proposed topology);
* after the client's Finished verifies, seals one
  ``DelegatedKeyMaterial`` per middlebox to that middlebox's certificate
  key, carrying full context key blocks clamped to the *intersection* of
  both warrants — this is the only per-middlebox key-distribution work
  either endpoint does;
* tickets seal the middlebox certificates too, so a stateless resumption
  can re-seal fresh material; fresh warrants and material are sent
  before the server's Finished in the abbreviated flow.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.crypto.certs import Certificate, verify_chain
from repro.mctls import keys as mk
from repro.mctls import messages as mm
from repro.mctls import session as ms
from repro.mctls.contexts import Permission, SessionTopology
from repro.mctls.server import McTLSServer
from repro.mdtls import messages as mdm
from repro.mdtls import session as mds
from repro.mdtls import warrants as mdw
from repro.tls import messages as tls_msgs
from repro.tls.connection import ALERT_BAD_CERTIFICATE, TLSConfig, TLSError
from repro.tls.sessioncache import SessionCache
from repro.tls.tickets import KIND_MDTLS, TicketKeyManager

DEFAULT_WARRANT_LIFETIME_S = 3600.0


class MdTLSServer(McTLSServer):
    """A sans-I/O mdTLS (delegated-credential mcTLS) server."""

    _ticket_kind = KIND_MDTLS

    def __init__(
        self,
        config: TLSConfig,
        mode: ms.HandshakeMode = ms.HandshakeMode.DELEGATION,
        topology_policy=None,
        verify_middleboxes: bool = True,
        session_cache: Optional[SessionCache] = None,
        ticket_manager: Optional[TicketKeyManager] = None,
        warrant_lifetime: float = DEFAULT_WARRANT_LIFETIME_S,
        clock: Callable[[], float] = time.time,
    ):
        if mode is not ms.HandshakeMode.DELEGATION:
            raise TLSError("MdTLSServer only speaks the delegation mode")
        super().__init__(
            config,
            mode=ms.HandshakeMode.DELEGATION,
            topology_policy=topology_policy,
            verify_middleboxes=verify_middleboxes,
            session_cache=session_cache,
            ticket_manager=ticket_manager,
        )
        self.warrant_lifetime = warrant_lifetime
        self._clock = clock
        self._client_warrants: Dict[int, mdw.Warrant] = {}
        self._server_warrants: Dict[int, mdw.Warrant] = {}
        self._resumed_certs: Dict[int, Certificate] = {}

    # -- flight 1 ----------------------------------------------------------

    def _send_server_key_exchange(self) -> None:
        if self.key_transport is not ms.KeyTransport.DHE:
            raise TLSError("mdTLS requires the DHE key transport")
        super()._send_server_key_exchange()
        self._send_server_warrants()

    def _make_warrants(self, now_ms: int) -> List[mdw.Warrant]:
        """Hook: the warrants this server issues (fault harnesses override
        this to issue deliberately defective ones)."""
        return mdw.issue_warrants(
            mdw.ISSUER_SERVER,
            self.config.identity.key,
            self.approved_topology,
            self._client_random,
            self._server_random,
            now_ms,
            int(self.warrant_lifetime * 1000),
        )

    def _send_server_warrants(self) -> None:
        warrants = self._make_warrants(int(self._clock() * 1000))
        self._server_warrants = {w.mbox_id: w for w in warrants}
        self._send_handshake(
            mdm.WarrantIssue(
                sender=mm.SENDER_SERVER,
                issuer_chain=self.config.identity.chain,
                warrants=warrants,
            ),
            tag=mds.TAG_SERVER_WARRANTS,
        )

    # -- client flight -----------------------------------------------------

    def _on_client_flight_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if msg_type == tls_msgs.WARRANT_ISSUE:
            self._on_client_warrants(mdm.WarrantIssue.decode(body), raw)
            return
        super()._on_client_flight_message(msg_type, body, raw)

    def _on_client_warrants(self, issue: mdm.WarrantIssue, raw: bytes) -> None:
        if issue.sender != mm.SENDER_CLIENT:
            raise TLSError("server received its own warrants back")
        self.transcript.add(mds.TAG_CLIENT_WARRANTS, raw)
        if not issue.issuer_chain:
            raise TLSError(
                "client warrant issue lacks a certificate chain", ALERT_BAD_CERTIFICATE
            )
        if self.config.verify_certificates and self.config.trusted_roots:
            try:
                verify_chain(issue.issuer_chain, self.config.trusted_roots)
            except Exception as exc:
                raise TLSError(
                    f"client warrant issuer chain verification failed: {exc}",
                    ALERT_BAD_CERTIFICATE,
                ) from exc
        self._client_warrants = mdw.check_warrant_set(
            issue.warrants,
            mdw.ISSUER_CLIENT,
            issue.issuer_chain[0].public_key,
            self.topology,
            self._client_random,
            self._server_random,
            int(self._clock() * 1000),
            where="server",
        )

    # -- key setup ---------------------------------------------------------

    def _finish_key_setup(self) -> None:
        if self.topology.middleboxes and not self._client_warrants:
            raise TLSError("client sent no warrants before its Finished")
        self._send_delegated_key_material(resumption=False)
        self._install_ckd_context_keys()

    def _delegated_shares(
        self, mbox_id: int, blocks: Dict[int, "tuple"]
    ) -> List[mm.ContextKeyShare]:
        """Key blocks for one middlebox, clamped to min(client warrant,
        server warrant) per context.  On resumption the client's fresh
        warrants arrive only after this flight; the server warrant (its
        own approved grant) bounds the material, and the middlebox
        additionally clamps to the client warrant before installing."""
        server_warrant = self._server_warrants.get(mbox_id)
        client_warrant = self._client_warrants.get(mbox_id)
        shares = []
        for ctx in self.approved_topology.contexts:
            if client_warrant is not None:
                permission = mdw.effective_permission(
                    ctx.context_id, client_warrant, server_warrant
                )
            elif server_warrant is not None:
                permission = server_warrant.grants.get(
                    ctx.context_id, Permission.NONE
                )
            else:
                permission = Permission.NONE
            if not permission.can_read:
                continue
            reader_block, writer_block = blocks[ctx.context_id]
            shares.append(
                mm.ContextKeyShare(
                    context_id=ctx.context_id,
                    reader_material=reader_block,
                    writer_material=writer_block if permission.can_write else b"",
                )
            )
        return shares

    def _send_delegated_key_material(self, resumption: bool) -> None:
        suite = self.negotiated_suite
        blocks: Dict[int, tuple] = {}
        for ctx_id in self.topology.context_ids:
            if resumption:
                keys = mk.resumption_context_keys(
                    self._endpoint_secret,
                    self._client_random,
                    self._server_random,
                    ctx_id,
                )
            else:
                keys = mk.ckd_context_keys(
                    self._endpoint_secret,
                    self._client_random,
                    self._server_random,
                    ctx_id,
                )
            blocks[ctx_id] = (
                mk.reader_block_bytes(keys.readers),
                mk.writer_block_bytes(keys.writers),
            )
        for mbox in self.topology.middleboxes:
            cert = self._middlebox_certificate(mbox.mbox_id)
            sealed = mk.rsa_hybrid_seal(
                suite,
                cert.public_key,
                mm.encode_key_shares(self._delegated_shares(mbox.mbox_id, blocks)),
            )
            self._send_handshake(
                mdm.DelegatedKeyMaterial(target=mbox.mbox_id, sealed=sealed),
                tag=mds.tag_dkm(mbox.mbox_id),
            )

    def _middlebox_certificate(self, mbox_id: int) -> Certificate:
        state = self._mboxes.get(mbox_id)
        if state is not None and state.chain:
            return state.chain[0]
        cert = self._resumed_certs.get(mbox_id)
        if cert is None:
            raise TLSError(
                f"no certificate for middlebox {mbox_id}; cannot seal "
                "delegated key material"
            )
        return cert

    # -- resumption --------------------------------------------------------

    def _resume_session(self, cached: ms.McTLSSessionState) -> None:
        self._resumed_certs = dict(cached.middlebox_certs)
        super()._resume_session(cached)

    def _send_resumption_flight(self) -> None:
        """Fresh warrants (bound to the new randoms) + re-sealed key
        material, all covered by the server's Finished."""
        self._send_server_warrants()
        self._send_delegated_key_material(resumption=True)

    def _cache_session(self) -> None:
        """Like the base, plus the middlebox certificates the abbreviated
        flow needs to re-seal delegated key material."""
        if self._session_cache is None or not self._session_id:
            return
        self._session_cache.put(
            self._session_id,
            ms.McTLSSessionState(
                session_id=self._session_id,
                endpoint_secret=self._endpoint_secret,
                cipher_suite_id=self.negotiated_suite.suite_id,
                mode=int(self.mode),
                key_transport=int(self.key_transport),
                topology_bytes=self.topology.encode(),
                middlebox_certs={
                    mbox_id: state.chain[0]
                    for mbox_id, state in self._mboxes.items()
                    if state.chain
                },
            ),
        )

    def _encode_ticket_payload(self) -> bytes:
        return mds.encode_mdtls_ticket_state(
            ms.McTLSSessionState(
                session_id=b"",
                endpoint_secret=self._endpoint_secret,
                cipher_suite_id=self.negotiated_suite.suite_id,
                mode=int(self.mode),
                key_transport=int(self.key_transport),
                topology_bytes=self.topology.encode(),
                middlebox_certs={
                    mbox_id: state.chain[0]
                    for mbox_id, state in self._mboxes.items()
                    if state.chain
                },
            )
        )

    def _decode_ticket_payload(self, payload: bytes) -> ms.McTLSSessionState:
        return mds.decode_mdtls_ticket_state(payload)

    # -- canonical orders --------------------------------------------------

    def _order_t1(self) -> List[str]:
        return mds.delegation_order_t1(self.topology)

    def _order_t2(self) -> List[str]:
        return mds.delegation_order_t2(self.topology)

    def _resumed_order_server(self) -> List[str]:
        return mds.delegation_resumed_order_server(self.topology)

    def _resumed_order_client(self) -> List[str]:
        return mds.delegation_resumed_order_client(self.topology)
