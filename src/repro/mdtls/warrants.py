"""Proxy-signature warrants — the heart of the mdTLS delegation variant.

In mcTLS both endpoints push (half or full) context keys to every
middlebox, so each added middlebox costs the endpoints per-middlebox
key-distribution work.  mdTLS replaces that with *delegation*: each
endpoint signs one **warrant** per middlebox stating exactly what the
middlebox may do —

    warrant = (issuer role, middlebox identity, per-context permissions,
               validity window, session binding)  signed by the issuer

and the middlebox proves possession of the warranted key by signing its
key-exchange contribution under its certificate key (the same signed
``MiddleboxKeyExchange`` mcTLS already has).  Context keys then flow from
the *server alone*, sealed to the warranted certificate key, clamped to
the intersection of both endpoints' warrants.

Security properties enforced here:

* **Unforgeability** — a warrant verifies under the issuer's certified
  key; a flipped bit anywhere in the to-be-signed body or signature is
  detected by whoever verifies (middlebox or opposite endpoint).
* **Session binding** — warrants cover both hello randoms, so a warrant
  from one session is garbage in any other (no replay, no splicing).
* **Bounded lifetime** — an expired warrant is rejected even if its
  signature verifies.
* **No widening** — a warrant granting a context or permission beyond
  the topology the *client proposed* is rejected by every verifier;
  effective access is the per-context minimum of the client warrant,
  the server warrant and the key material actually delegated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.crypto.certs import Certificate
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.mctls.contexts import Permission, SessionTopology
from repro.tls import messages as tls_msgs
from repro.tls.connection import ALERT_BAD_CERTIFICATE, TLSError
from repro.wire import DecodeError, Reader, Writer

# Who signed the warrant.
ISSUER_CLIENT = 1
ISSUER_SERVER = 2

_ROLE_NAMES = {ISSUER_CLIENT: "client", ISSUER_SERVER: "server"}

# Tolerated clock skew between issuer and verifier, in milliseconds.
CLOCK_SKEW_MS = 60_000


class WarrantError(TLSError):
    """A warrant failed verification.

    ``where`` names the party that detected the problem (``client``,
    ``server`` or ``middlebox``) and ``reason`` classifies it
    (``forged`` / ``expired`` / ``widened`` / ``missing`` / ...), so the
    fault matrix can attribute every detection precisely.
    """

    def __init__(
        self,
        message: str,
        where: str,
        reason: str,
        mbox_id: Optional[int] = None,
    ):
        super().__init__(message, ALERT_BAD_CERTIFICATE)
        self.where = where
        self.reason = reason
        self.mbox_id = mbox_id


@dataclass
class Warrant:
    """One endpoint's signed, context-scoped delegation to one middlebox."""

    issuer_role: int  # ISSUER_CLIENT or ISSUER_SERVER
    mbox_id: int
    mbox_name: str
    grants: Dict[int, Permission] = field(default_factory=dict)
    not_before: int = 0  # milliseconds since the epoch
    not_after: int = 0
    client_random: bytes = b""
    server_random: bytes = b""
    signature: bytes = b""

    # -- codec -----------------------------------------------------------

    def tbs_bytes(self) -> bytes:
        """The to-be-signed body (everything except the signature)."""
        w = Writer()
        w.u8(self.issuer_role)
        w.u8(self.mbox_id)
        w.string8(self.mbox_name)
        w.u8(len(self.grants))
        for ctx_id in sorted(self.grants):
            w.u8(ctx_id)
            w.u8(int(self.grants[ctx_id]))
        w.u64(self.not_before)
        w.u64(self.not_after)
        w.raw(self.client_random)
        w.raw(self.server_random)
        return w.bytes()

    def encode(self) -> bytes:
        return Writer().raw(self.tbs_bytes()).vec16(self.signature).bytes()

    @classmethod
    def decode(cls, data: bytes) -> "Warrant":
        r = Reader(data)
        issuer_role = r.u8()
        if issuer_role not in (ISSUER_CLIENT, ISSUER_SERVER):
            raise DecodeError(f"invalid warrant issuer role {issuer_role}")
        mbox_id = r.u8()
        mbox_name = r.string8()
        grants: Dict[int, Permission] = {}
        for _ in range(r.u8()):
            ctx_id = r.u8()
            try:
                grants[ctx_id] = Permission(r.u8())
            except ValueError as exc:
                raise DecodeError(f"invalid warrant permission: {exc}") from exc
        not_before = r.u64()
        not_after = r.u64()
        client_random = r.raw(tls_msgs.RANDOM_LEN)
        server_random = r.raw(tls_msgs.RANDOM_LEN)
        signature = r.vec16()
        r.expect_end()
        return cls(
            issuer_role=issuer_role,
            mbox_id=mbox_id,
            mbox_name=mbox_name,
            grants=grants,
            not_before=not_before,
            not_after=not_after,
            client_random=client_random,
            server_random=server_random,
            signature=signature,
        )

    # -- signing ---------------------------------------------------------

    def sign(self, key: RSAPrivateKey) -> "Warrant":
        self.signature = key.sign(self.tbs_bytes())
        return self

    def verify_signature(self, issuer_key: RSAPublicKey) -> bool:
        return issuer_key.verify(self.tbs_bytes(), self.signature)


# -- issuing ---------------------------------------------------------------


def issue_warrants(
    issuer_role: int,
    key: RSAPrivateKey,
    topology: SessionTopology,
    client_random: bytes,
    server_random: bytes,
    now_ms: int,
    lifetime_ms: int,
) -> List[Warrant]:
    """One signed warrant per middlebox, scoped to ``topology``.

    For the server, ``topology`` is the *approved* topology — withholding
    a grant here is the delegation-mode form of the "server can say no"
    control (§4.2): the warrant simply never grants the context, and the
    delegated key material won't carry it either.
    """
    warrants = []
    for mbox in topology.middleboxes:
        grants = {
            ctx_id: perm
            for ctx_id, perm in topology.permissions_of(mbox.mbox_id).items()
            if perm is not Permission.NONE
        }
        warrants.append(
            Warrant(
                issuer_role=issuer_role,
                mbox_id=mbox.mbox_id,
                mbox_name=mbox.name,
                grants=grants,
                not_before=now_ms - CLOCK_SKEW_MS,
                not_after=now_ms + lifetime_ms,
                client_random=client_random,
                server_random=server_random,
            ).sign(key)
        )
    return warrants


# -- verifying -------------------------------------------------------------


def check_warrant(
    warrant: Warrant,
    issuer_role: int,
    issuer_key: RSAPublicKey,
    topology: SessionTopology,
    client_random: bytes,
    server_random: bytes,
    now_ms: int,
    where: str,
) -> None:
    """Full warrant verification; raises :class:`WarrantError` on any defect.

    ``topology`` is the topology the *client proposed* in its ClientHello
    — the upper bound no warrant may exceed, whoever signed it.
    """
    role = _ROLE_NAMES.get(warrant.issuer_role, "?")
    if warrant.issuer_role != issuer_role:
        raise WarrantError(
            f"warrant for middlebox {warrant.mbox_id} claims the wrong issuer role",
            where=where,
            reason="forged",
            mbox_id=warrant.mbox_id,
        )
    try:
        entry = topology.middlebox(warrant.mbox_id)
    except KeyError:
        entry = None
    if entry is None or entry.name != warrant.mbox_name:
        raise WarrantError(
            f"{role} warrant names undeclared middlebox "
            f"{warrant.mbox_id} ({warrant.mbox_name!r})",
            where=where,
            reason="widened",
            mbox_id=warrant.mbox_id,
        )
    if not warrant.verify_signature(issuer_key):
        raise WarrantError(
            f"{role} warrant for middlebox {warrant.mbox_id} has an invalid signature",
            where=where,
            reason="forged",
            mbox_id=warrant.mbox_id,
        )
    if (
        warrant.client_random != client_random
        or warrant.server_random != server_random
    ):
        raise WarrantError(
            f"{role} warrant for middlebox {warrant.mbox_id} is bound to a "
            "different session",
            where=where,
            reason="forged",
            mbox_id=warrant.mbox_id,
        )
    if not warrant.not_before <= now_ms <= warrant.not_after:
        raise WarrantError(
            f"{role} warrant for middlebox {warrant.mbox_id} is expired or "
            "not yet valid",
            where=where,
            reason="expired",
            mbox_id=warrant.mbox_id,
        )
    for ctx_id, perm in warrant.grants.items():
        try:
            ceiling = topology.context(ctx_id).permission_for(warrant.mbox_id)
        except KeyError:
            ceiling = Permission.NONE
        if int(perm) > int(ceiling):
            raise WarrantError(
                f"{role} warrant widens middlebox {warrant.mbox_id} access to "
                f"context {ctx_id} beyond the proposed topology",
                where=where,
                reason="widened",
                mbox_id=warrant.mbox_id,
            )


def check_warrant_set(
    warrants: Iterable[Warrant],
    issuer_role: int,
    issuer_key: RSAPublicKey,
    topology: SessionTopology,
    client_random: bytes,
    server_random: bytes,
    now_ms: int,
    where: str,
) -> Dict[int, Warrant]:
    """Verify a full warrant flight: every warrant checks out AND every
    declared middlebox got exactly one."""
    checked: Dict[int, Warrant] = {}
    for warrant in warrants:
        check_warrant(
            warrant,
            issuer_role,
            issuer_key,
            topology,
            client_random,
            server_random,
            now_ms,
            where,
        )
        if warrant.mbox_id in checked:
            raise WarrantError(
                f"duplicate warrant for middlebox {warrant.mbox_id}",
                where=where,
                reason="forged",
                mbox_id=warrant.mbox_id,
            )
        checked[warrant.mbox_id] = warrant
    role = _ROLE_NAMES.get(issuer_role, "?")
    for mbox in topology.middleboxes:
        if mbox.mbox_id not in checked:
            raise WarrantError(
                f"{role} issued no warrant for middlebox {mbox.mbox_id}",
                where=where,
                reason="missing",
                mbox_id=mbox.mbox_id,
            )
    return checked


def effective_permission(
    ctx_id: int,
    client_warrant: Optional[Warrant],
    server_warrant: Optional[Warrant],
) -> Permission:
    """Access is the per-context minimum of both endpoints' grants (R4:
    both sides must agree before a middlebox can touch a context)."""
    if client_warrant is None or server_warrant is None:
        return Permission.NONE
    granted_c = client_warrant.grants.get(ctx_id, Permission.NONE)
    granted_s = server_warrant.grants.get(ctx_id, Permission.NONE)
    return Permission(min(int(granted_c), int(granted_s)))
