"""mdTLS session machinery: transcript tags, canonical orders, tickets.

The delegation handshake keeps mcTLS's record-layer wire geometry and
most of its message flow; what changes is *who distributes keys*:

* the server adds a ``WarrantIssue`` between its ServerKeyExchange and
  ServerHelloDone;
* middlebox flights are CKD-shaped (hello, certificate, one
  client-directed signed key exchange — the signature under the
  warranted certificate key doubles as the proof of possession);
* the client sends a ``WarrantIssue`` after its ClientKeyExchange and
  **no key material at all**;
* after verifying the client's Finished, the server sends each
  middlebox one ``DelegatedKeyMaterial``, sealed to its certificate key
  and clamped to the intersection of both warrants.

The canonical orders below mirror :mod:`repro.mctls.session`'s: both
endpoints can assemble them from the topology alone, independent of
arrival order.

Tickets: an mdTLS ticket seals the mcTLS session state **plus the
middlebox certificates** (the server must re-seal fresh delegated key
material on resumption, statelessly).  The payload rides under its own
ticket kind so an mdTLS ticket can never resume an mcTLS session or
vice versa, and the sealed topology is re-checked byte-for-byte against
the new ClientHello — resumption can never widen the warranted access.
"""

from __future__ import annotations

from typing import List

from repro.crypto.certs import Certificate
from repro.mctls import messages as mm
from repro.mctls import session as ms
from repro.mctls.contexts import SessionTopology
from repro.wire import DecodeError, Reader, Writer

TAG_SERVER_WARRANTS = "server_warrants"
TAG_CLIENT_WARRANTS = "client_warrants"


def tag_dkm(mbox_id: int) -> str:
    return f"dkm:{mbox_id}"


# -- canonical transcript orders -------------------------------------------


def delegation_order_t1(topology: SessionTopology) -> List[str]:
    """Messages covered by the client's Finished in a full handshake."""
    tags = [
        ms.TAG_CLIENT_HELLO,
        ms.TAG_SERVER_HELLO,
        ms.TAG_SERVER_CERT,
        ms.TAG_SERVER_KE,
        TAG_SERVER_WARRANTS,
        ms.TAG_SERVER_HELLO_DONE,
    ]
    for mbox in topology.middleboxes:
        tags.append(ms.tag_mbox_hello(mbox.mbox_id))
        tags.append(ms.tag_mbox_cert(mbox.mbox_id))
        tags.append(ms.tag_mbox_ke(mbox.mbox_id, mm.TOWARD_CLIENT))
    tags.append(ms.TAG_CLIENT_KE)
    tags.append(TAG_CLIENT_WARRANTS)
    return tags


def delegation_order_t2(topology: SessionTopology) -> List[str]:
    """Messages covered by the server's Finished in a full handshake:
    everything the client finished over, the client's Finished itself,
    and the delegated key material — so the client (and transcript)
    detects suppression or reordering of any DelegatedKeyMaterial."""
    tags = delegation_order_t1(topology)
    tags.append(ms.TAG_CLIENT_FINISHED)
    for mbox in topology.middleboxes:
        tags.append(tag_dkm(mbox.mbox_id))
    return tags


def delegation_resumed_order_server(topology: SessionTopology) -> List[str]:
    """The abbreviated flow's server Finished covers the fresh warrants
    and re-sealed key material the server sent before it."""
    tags = [ms.TAG_CLIENT_HELLO, ms.TAG_SERVER_HELLO, TAG_SERVER_WARRANTS]
    for mbox in topology.middleboxes:
        tags.append(tag_dkm(mbox.mbox_id))
    return tags


def delegation_resumed_order_client(topology: SessionTopology) -> List[str]:
    """The abbreviated flow's client Finished additionally covers the
    server's Finished and the client's fresh warrants."""
    tags = delegation_resumed_order_server(topology)
    tags.append(ms.TAG_SERVER_FINISHED)
    tags.append(TAG_CLIENT_WARRANTS)
    return tags


# -- ticket payload ---------------------------------------------------------


def encode_mdtls_ticket_state(state: ms.McTLSSessionState) -> bytes:
    """The mcTLS ticket payload plus the middlebox certificates the
    server needs to re-seal delegated key material statelessly."""
    w = Writer()
    w.vec16(ms.encode_ticket_state(state))
    w.u8(len(state.middlebox_certs))
    for mbox_id in sorted(state.middlebox_certs):
        w.u8(mbox_id)
        w.vec24(state.middlebox_certs[mbox_id].to_bytes())
    return w.bytes()


def decode_mdtls_ticket_state(payload: bytes) -> ms.McTLSSessionState:
    from repro.tls.tickets import TicketError

    try:
        r = Reader(payload)
        state = ms.decode_ticket_state(r.vec16())
        for _ in range(r.u8()):
            mbox_id = r.u8()
            state.middlebox_certs[mbox_id] = Certificate.from_bytes(r.vec24())
        r.expect_end()
    except DecodeError as exc:
        raise TicketError(f"malformed mdTLS ticket payload: {exc}") from exc
    return state
