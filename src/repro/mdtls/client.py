"""The mdTLS client.

Rides the mcTLS client state machine with the delegation-mode deltas:

* requires an identity — the client *signs warrants* instead of sealing
  key material, so ``config.identity`` is mandatory (in mcTLS only the
  server and middleboxes are certified);
* verifies the server's warrants (signature under the server's certified
  key, session binding, validity window, scope against the topology the
  client itself proposed);
* derives **no pairwise middlebox keys** and sends **no
  MiddleboxKeyMaterial** — its entire key-distribution flight is one
  ``WarrantIssue``;
* tags the server's ``DelegatedKeyMaterial`` messages into the
  transcript (it cannot open them — they are sealed to middlebox keys —
  but its Finished-hash coverage means suppressing one is detected);
* on resumption, re-issues fresh warrants bound to the new randoms
  instead of re-distributing context keys.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.crypto.certs import verify_chain
from repro.mctls import messages as mm
from repro.mctls import session as ms
from repro.mctls.client import McTLSClient, _State
from repro.mctls.contexts import SessionTopology
from repro.mdtls import messages as mdm
from repro.mdtls import session as mds
from repro.mdtls import warrants as mdw
from repro.tls import messages as tls_msgs
from repro.tls.connection import ALERT_BAD_CERTIFICATE, TLSConfig, TLSError
from repro.tls.sessioncache import ClientSessionStore

DEFAULT_WARRANT_LIFETIME_S = 3600.0


class MdTLSClient(McTLSClient):
    """A sans-I/O mdTLS (delegated-credential mcTLS) client."""

    def __init__(
        self,
        config: TLSConfig,
        topology: SessionTopology,
        verify_middleboxes: bool = True,
        key_transport: ms.KeyTransport = None,
        session_store: Optional[ClientSessionStore] = None,
        ticket_store: Optional[ClientSessionStore] = None,
        warrant_lifetime: float = DEFAULT_WARRANT_LIFETIME_S,
        clock: Callable[[], float] = time.time,
    ):
        if config.identity is None:
            raise TLSError("mdTLS client requires an identity to sign warrants")
        if key_transport is not None and key_transport is not ms.KeyTransport.DHE:
            # The middlebox's signed key exchange *is* its proof of
            # possession of the warranted key; RSA transport has none.
            raise TLSError("mdTLS requires the DHE key transport")
        super().__init__(
            config,
            topology,
            verify_middleboxes=verify_middleboxes,
            key_transport=ms.KeyTransport.DHE,
            session_store=session_store,
            ticket_store=ticket_store,
        )
        self.warrant_lifetime = warrant_lifetime
        self._clock = clock
        self._server_warrants = {}

    def _session_store_key(self):
        # Separate namespace: an mdTLS session must never be offered to
        # (or satisfied from) an mcTLS client's cache.
        return ("mdtls", self.config.server_name or "")

    # -- message routing ---------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if msg_type == tls_msgs.WARRANT_ISSUE and (
            self._state is _State.WAIT_HELLO_DONE
            or (self._state is _State.WAIT_SERVER_FLIGHT and self.resumed)
        ):
            self._on_server_warrants(mdm.WarrantIssue.decode(body), raw)
        elif (
            msg_type == tls_msgs.DELEGATED_KEY_MATERIAL
            and self._state is _State.WAIT_SERVER_FLIGHT
        ):
            self._on_delegated_key_material(mdm.DelegatedKeyMaterial.decode(body), raw)
        else:
            super()._handle_handshake_message(msg_type, body, raw)

    def _on_server_hello(self, hello: tls_msgs.ServerHello) -> None:
        super()._on_server_hello(hello)
        if self.mode is not ms.HandshakeMode.DELEGATION:
            raise TLSError("server did not negotiate the delegation mode")

    # -- server warrants ---------------------------------------------------

    def _on_server_warrants(self, issue: mdm.WarrantIssue, raw: bytes) -> None:
        if issue.sender != mm.SENDER_SERVER:
            raise TLSError("client received its own warrants back")
        self.transcript.add(mds.TAG_SERVER_WARRANTS, raw)
        if not issue.issuer_chain:
            raise TLSError(
                "server warrant issue lacks a certificate chain", ALERT_BAD_CERTIFICATE
            )
        if self.config.verify_certificates:
            try:
                verify_chain(
                    issue.issuer_chain,
                    self.config.trusted_roots,
                    expected_subject=self.config.server_name,
                )
            except Exception as exc:
                raise TLSError(
                    f"server warrant issuer chain verification failed: {exc}",
                    ALERT_BAD_CERTIFICATE,
                ) from exc
        self._server_warrants = mdw.check_warrant_set(
            issue.warrants,
            mdw.ISSUER_SERVER,
            issue.issuer_chain[0].public_key,
            self.topology,
            self._client_random,
            self._server_random,
            int(self._clock() * 1000),
            where="client",
        )

    # -- client flight (delegation deltas) ---------------------------------

    def _derive_middlebox_pairwise(self) -> None:
        """No pairwise keys: the client distributes no key material."""

    def _check_middlebox_flights_complete(self) -> None:
        super()._check_middlebox_flights_complete()
        if not self._server_warrants and self.topology.middleboxes:
            raise TLSError("server sent no warrants before ServerHelloDone")

    def _send_key_material(self) -> None:
        """The client's whole key-distribution flight is its warrants."""
        self._send_client_warrants()

    def _make_warrants(self, now_ms: int) -> List[mdw.Warrant]:
        """Hook: the warrants this client issues (fault harnesses override
        this to issue deliberately defective ones)."""
        return mdw.issue_warrants(
            mdw.ISSUER_CLIENT,
            self.config.identity.key,
            self.topology,
            self._client_random,
            self._server_random,
            now_ms,
            int(self.warrant_lifetime * 1000),
        )

    def _send_client_warrants(self) -> None:
        warrants = self._make_warrants(int(self._clock() * 1000))
        self._send_handshake(
            mdm.WarrantIssue(
                sender=mm.SENDER_CLIENT,
                issuer_chain=self.config.identity.chain,
                warrants=warrants,
            ),
            tag=mds.TAG_CLIENT_WARRANTS,
        )

    # -- server flight 2 ---------------------------------------------------

    def _on_delegated_key_material(
        self, dkm: mdm.DelegatedKeyMaterial, raw: bytes
    ) -> None:
        if dkm.target not in self._mboxes:
            raise TLSError(
                f"delegated key material for undeclared middlebox {dkm.target}"
            )
        # Sealed to the middlebox's key — the client only transcripts it.
        self.transcript.add(mds.tag_dkm(dkm.target), raw)

    # -- resumption --------------------------------------------------------

    def _redistribute_context_keys(self) -> None:
        """Fresh warrants bound to the new randoms; no key material (the
        server re-seals delegated material itself)."""
        self._send_client_warrants()

    # -- canonical orders --------------------------------------------------

    def _order_t1(self) -> List[str]:
        return mds.delegation_order_t1(self.topology)

    def _order_t2(self) -> List[str]:
        return mds.delegation_order_t2(self.topology)

    def _resumed_order_server(self) -> List[str]:
        return mds.delegation_resumed_order_server(self.topology)

    def _resumed_order_client(self) -> List[str]:
        return mds.delegation_resumed_order_client(self.topology)
