"""The mdTLS middlebox.

Rides the mcTLS middlebox relay with the delegation-mode deltas:

* its handshake flight is naturally CKD-shaped (hello, certificate, one
  client-directed signed key exchange — the base class already omits the
  server-directed exchange outside the default mode).  That signature,
  made with the certificate key both warrants name, is the middlebox's
  proof of possession: both endpoints verify it in delegation mode;
* it captures and verifies *its own* warrant from each passing
  ``WarrantIssue`` (signature under the embedded issuer chain, session
  binding, validity window, scope against the ClientHello it snooped) —
  a middlebox handed a forged, expired or widened warrant refuses the
  session rather than operate on bad credentials;
* its context keys arrive in a single ``DelegatedKeyMaterial`` from the
  server, sealed to its certificate key; it installs them clamped to
  ``min(client warrant, server warrant, delivered material)``.

``_handle_protected_record`` is deliberately *not* overridden, so the
record-layer burst fast path stays engaged.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.crypto.certs import verify_chain
from repro.mctls import keys as mk
from repro.mctls import messages as mm
from repro.mctls import session as ms
from repro.mctls.contexts import Permission
from repro.mctls.middlebox import (
    McTLSMiddlebox,
    MiddleboxHandshakeComplete,
    Observer,
    Transformer,
    _Side,
)
from repro.mdtls import messages as mdm
from repro.mdtls import warrants as mdw
from repro.tls import messages as tls_msgs
from repro.tls.connection import TLSConfig, TLSError


class MdTLSMiddlebox(McTLSMiddlebox):
    """A sans-I/O mdTLS middlebox relay."""

    def __init__(
        self,
        name: str,
        config: TLSConfig,
        transformer: Optional[Transformer] = None,
        observer: Optional[Observer] = None,
        verify_server: bool = False,
        clock: Callable[[], float] = time.time,
    ):
        super().__init__(
            name,
            config,
            transformer=transformer,
            observer=observer,
            verify_server=verify_server,
        )
        self._clock = clock
        self._client_warrant: Optional[mdw.Warrant] = None
        self._server_warrant: Optional[mdw.Warrant] = None

    # -- handshake interception --------------------------------------------

    def _handle_from_client(self, msg_type: int, body: bytes, msg_raw: bytes) -> None:
        if msg_type == tls_msgs.WARRANT_ISSUE:
            self._forward_message(_Side.CLIENT, msg_raw)
            self._on_warrant_issue(mdm.WarrantIssue.decode(body), mdw.ISSUER_CLIENT)
        else:
            super()._handle_from_client(msg_type, body, msg_raw)

    def _handle_from_server(self, msg_type: int, body: bytes, msg_raw: bytes) -> None:
        if msg_type == tls_msgs.WARRANT_ISSUE:
            self._forward_message(_Side.SERVER, msg_raw)
            self._on_warrant_issue(mdm.WarrantIssue.decode(body), mdw.ISSUER_SERVER)
        elif msg_type == tls_msgs.DELEGATED_KEY_MATERIAL:
            dkm = mdm.DelegatedKeyMaterial.decode(body)
            self._forward_message(_Side.SERVER, msg_raw)
            if dkm.target == self.mbox_id:
                self._on_own_delegated_material(dkm)
        else:
            super()._handle_from_server(msg_type, body, msg_raw)

    # -- warrants ----------------------------------------------------------

    def _on_warrant_issue(self, issue: mdm.WarrantIssue, issuer_role: int) -> None:
        """Capture and verify our own warrant from a passing flight."""
        own = next((w for w in issue.warrants if w.mbox_id == self.mbox_id), None)
        if own is None:
            role = "client" if issuer_role == mdw.ISSUER_CLIENT else "server"
            raise mdw.WarrantError(
                f"{role} issued no warrant for middlebox {self.mbox_id}",
                where="middlebox",
                reason="missing",
                mbox_id=self.mbox_id,
            )
        if not issue.issuer_chain:
            raise mdw.WarrantError(
                "warrant issue lacks a certificate chain",
                where="middlebox",
                reason="forged",
                mbox_id=self.mbox_id,
            )
        if self.config.trusted_roots:
            try:
                verify_chain(issue.issuer_chain, self.config.trusted_roots)
            except Exception as exc:
                raise mdw.WarrantError(
                    f"warrant issuer chain rejected by middlebox: {exc}",
                    where="middlebox",
                    reason="forged",
                    mbox_id=self.mbox_id,
                ) from exc
        mdw.check_warrant(
            own,
            issuer_role,
            issue.issuer_chain[0].public_key,
            self.topology,
            self._client_random,
            self._server_random,
            int(self._clock() * 1000),
            where="middlebox",
        )
        if issuer_role == mdw.ISSUER_CLIENT:
            self._client_warrant = own
        else:
            self._server_warrant = own
        self._maybe_install_keys()

    # -- delegated key material --------------------------------------------

    def _on_own_delegated_material(self, dkm: mdm.DelegatedKeyMaterial) -> None:
        plaintext = mk.rsa_hybrid_open(self.suite, self.config.identity.key, dkm.sealed)
        self._server_shares = {
            s.context_id: s for s in mm.decode_key_shares(plaintext)
        }
        self._maybe_install_keys()

    def _maybe_install_keys(self) -> None:
        if self.mode is not ms.HandshakeMode.DELEGATION:
            super()._maybe_install_keys()
            return
        if self._keys_installed:
            return
        if (
            self._server_shares is None
            or self._client_warrant is None
            or self._server_warrant is None
        ):
            return
        self._install_delegated_keys()
        self._keys_installed = True
        self.handshake_complete = True
        self._emit(
            MiddleboxHandshakeComplete(
                topology=self.topology,
                permissions=dict(self.permissions),
                mode=self.mode,
            )
        )

    def _install_delegated_keys(self) -> None:
        """Install full key blocks from the server's delegated material,
        clamped to the intersection of both warrants — access materialises
        only where *both* endpoints' warrants and the delivered material
        agree (R4 under delegation)."""
        for ctx in self.topology.contexts:
            ctx_id = ctx.context_id
            granted = mdw.effective_permission(
                ctx_id, self._client_warrant, self._server_warrant
            )
            share = self._server_shares.get(ctx_id)
            if share is None or not share.reader_material or not granted.can_read:
                self.permissions[ctx_id] = Permission.NONE
                continue
            readers = mk.reader_keys_from_block(share.reader_material)
            if share.writer_material and granted.can_write:
                writers = mk.writer_keys_from_block(share.writer_material)
                permission = Permission.WRITE
            else:
                writers = mk.WriterKeys(mac_c2s=b"", mac_s2c=b"")
                permission = Permission.READ
            self.permissions[ctx_id] = permission
            keys = mk.ContextKeys(readers=readers, writers=writers)
            self._proc_c2s.install(ctx_id, permission, keys)
            self._proc_s2c.install(ctx_id, permission, keys)
