"""The one in-memory drive loop for sans-I/O chains.

Every in-memory harness in this repository used to hand-roll the same
byte-shuttling loop (``transport.pump``, ``transport.Chain.pump``, the
handshake-size experiment's counting variant).  :class:`DriveLoop` is
that loop, once: a client and a server (each a
:class:`~repro.core.interface.Connection`) joined through zero or more
two-sided relays (:class:`~repro.core.interface.RelayProcessor`), pumped
until the whole path is quiet.

Hops are numbered from the client: hop 0 is the client's access link,
hop ``i`` joins node ``i`` and node ``i+1`` (node 0 = client, nodes
1..n = relays, node n+1 = server).  The optional ``on_hop`` tap sees
every transfer as ``(hop_index, direction, data)`` with direction
``"c2s"`` or ``"s2c"`` — which is all the Figure 8 handshake-size
measurement needs to count the client hop's bytes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.events import Event

HopTap = Callable[[int, str, bytes], None]
EventSink = Callable[[Event], None]


class DriveLoop:
    """Pump a client ⇄ relays ⇄ server path until no node has output.

    ``on_client_event`` / ``on_server_event`` are optional per-endpoint
    event sinks (used to route application data to sessions);
    ``on_hop`` is an optional wire tap (see module docstring).
    """

    def __init__(
        self,
        client,
        relays: Sequence[object] = (),
        server=None,
        on_client_event: Optional[EventSink] = None,
        on_server_event: Optional[EventSink] = None,
        on_hop: Optional[HopTap] = None,
    ):
        self.client = client
        self.relays = list(relays)
        self.server = server
        self.events: List[Event] = []
        self.on_client_event = on_client_event
        self.on_server_event = on_server_event
        self.on_hop = on_hop

    def pump(self, max_rounds: int = 200) -> List[Event]:
        """Deliver bytes along the path until every node is quiet.

        Returns the events this pump produced (in delivery order) and
        appends them to :attr:`events`.
        """
        new_events: List[Event] = []
        for _ in range(max_rounds):
            moved = False

            data = self.client.data_to_send()
            if data:
                moved = True
                new_events.extend(self._deliver_towards_server(0, data))

            for i, relay in enumerate(self.relays):
                to_server = relay.data_to_server()
                if to_server:
                    moved = True
                    new_events.extend(
                        self._deliver_towards_server(i + 1, to_server)
                    )
                to_client = relay.data_to_client()
                if to_client:
                    moved = True
                    new_events.extend(
                        self._deliver_towards_client(i - 1, to_client)
                    )

            data = self.server.data_to_send()
            if data:
                moved = True
                new_events.extend(
                    self._deliver_towards_client(len(self.relays) - 1, data)
                )

            if not moved:
                self.events.extend(new_events)
                return new_events
        raise RuntimeError("pump did not converge")

    def _deliver_towards_server(self, node_index: int, data: bytes) -> List[Event]:
        """Deliver server-ward bytes into the relay at ``node_index``
        (crossing hop ``node_index``), or the server past the last one."""
        if self.on_hop is not None:
            self.on_hop(node_index, "c2s", data)
        if node_index < len(self.relays):
            return list(self.relays[node_index].receive_from_client(data))
        events = list(self.server.receive_data(data))
        if self.on_server_event is not None:
            for event in events:
                self.on_server_event(event)
        return events

    def _deliver_towards_client(self, node_index: int, data: bytes) -> List[Event]:
        """Deliver client-ward bytes into the relay at ``node_index``
        (crossing hop ``node_index + 1``), or the client below relay 0."""
        if self.on_hop is not None:
            self.on_hop(node_index + 1, "s2c", data)
        if node_index >= 0:
            return list(self.relays[node_index].receive_from_server(data))
        events = list(self.client.receive_data(data))
        if self.on_client_event is not None:
            for event in events:
                self.on_client_event(event)
        return events
