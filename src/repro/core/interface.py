"""The formal sans-I/O interfaces: endpoint connections and relays.

Both protocols are :func:`typing.runtime_checkable`, so conformance is a
plain ``isinstance`` check — the interface drift check in
``repro.tools.check_interface`` and the conformance suite assert it for
every stack.  Runtime checks verify the *surface* (methods and data
members exist); the behavioural contract below is what the shared
conformance battery (``tests/test_core_conformance.py``) pins.

Contract for :class:`Connection`:

* ``receive_data(data)`` consumes transport bytes and returns the events
  they produced, in order.  Feeding ``b""`` is legal and drains any
  internally queued events without consuming input.  After a fatal
  protocol error the connection raises and ``closed`` is True; further
  input is ignored.
* ``data_to_send()`` drains the pending output buffer (returns ``b""``
  when quiet).  It never blocks and never raises.
* ``data_to_send_views()`` drains the same buffer as a list of chunks
  (empty when quiet) for scatter-gather writes (``writev``/``sendmsg``/
  ``writelines``).  ``b"".join(data_to_send_views())`` is byte-identical
  to what ``data_to_send()`` would have returned; the two drain one
  queue, so callers use one or the other per flush, never both.
* ``start_handshake()`` begins the handshake on the active (client)
  side; on passive (server) connections it is a no-op.  Calling it twice
  is an error for stateful stacks.
* ``send_application_data(data, context_id)`` queues protected payload;
  raises if the handshake has not completed or the connection is closed.
* ``close()`` queues a close_notify (where the protocol has one) and
  marks the connection ``closed``.

``handshake_complete``, ``closed`` and ``resumed`` are plain readable
attributes — drivers poll them between pumps.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

from repro.core.events import Event


@runtime_checkable
class Connection(Protocol):
    """A sans-I/O endpoint: bytes in, bytes out, events up."""

    handshake_complete: bool
    closed: bool
    resumed: bool

    def start_handshake(self) -> None:
        """Begin the handshake (no-op on passive/server connections)."""

    def receive_data(self, data: bytes) -> List[Event]:
        """Consume transport bytes; return the events they produced."""

    def data_to_send(self) -> bytes:
        """Drain pending output bytes for the transport."""

    def data_to_send_views(self) -> List[bytes]:
        """Drain pending output as chunks for scatter-gather writes."""

    def send_application_data(self, data: bytes, context_id: int = 0) -> None:
        """Queue application payload for ``context_id``."""

    def close(self) -> None:
        """Signal end-of-session to the peer and mark ``closed``."""


@runtime_checkable
class RelayProcessor(Protocol):
    """A two-sided in-path relay (middlebox, proxy, blind forwarder).

    A relay sits between a client-facing and a server-facing transport:
    bytes arriving from either side are fed in, and each side's pending
    output is drained independently.  Events (e.g.
    :class:`~repro.core.events.ContextData`) surface whatever the relay
    could legally observe.
    """

    def receive_from_client(self, data: bytes) -> List[Event]:
        """Consume bytes arriving on the client side."""

    def receive_from_server(self, data: bytes) -> List[Event]:
        """Consume bytes arriving on the server side."""

    def data_to_client(self) -> bytes:
        """Drain bytes pending towards the client."""

    def data_to_server(self) -> bytes:
        """Drain bytes pending towards the server."""

    def data_to_client_views(self) -> List[bytes]:
        """Drain client-bound output as chunks for scatter-gather writes."""

    def data_to_server_views(self) -> List[bytes]:
        """Drain server-bound output as chunks for scatter-gather writes."""
