"""The sans-I/O core: one connection interface for every protocol stack.

Every protocol implementation in this repository — plain TLS 1.2, mcTLS,
and the three baselines (SplitTLS, E2E-TLS, NoEncrypt) — is a sans-I/O
state machine: bytes in, bytes out, events up.  This package makes that
contract *formal* instead of duck-typed:

* :class:`Connection` / :class:`RelayProcessor` — runtime-checkable
  protocols every endpoint / middlebox implements natively;
* :mod:`repro.core.events` — the shared event vocabulary
  (:class:`HandshakeComplete`, :class:`ApplicationData`,
  :class:`ContextData`, :class:`AlertReceived`, :class:`SessionClosed`);
* :class:`DriveLoop` — the one in-memory drive/pump loop every
  byte-shuttling harness builds on (``transport.pump``,
  ``transport.Chain``, the experiment harnesses);
* :mod:`repro.core.instrument` — a zero-cost-when-disabled counter /
  histogram plane threaded through the stacks' single event seam, plus
  the :class:`ServerStats` ledger both serving runtimes expose.

Runtimes (``repro.sockets``, ``repro.aio``, ``repro.netsim`` glue) are
generic over :class:`Connection`: they never inspect protocol types, only
drive the interface.
"""

from repro.core.driveloop import DriveLoop
from repro.core.events import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    ContextData,
    Event,
    HandshakeComplete,
    SessionClosed,
)
from repro.core.instrument import Counter, Histogram, Instruments, ServerStats
from repro.core.interface import Connection, RelayProcessor

__all__ = [
    "AlertReceived",
    "ApplicationData",
    "Connection",
    "ConnectionClosed",
    "ContextData",
    "Counter",
    "DriveLoop",
    "Event",
    "HandshakeComplete",
    "Histogram",
    "Instruments",
    "RelayProcessor",
    "ServerStats",
    "SessionClosed",
]
