"""Zero-cost-when-disabled instrumentation for the protocol stacks.

Every connection and middlebox carries an ``instruments`` attribute that
defaults to ``None``.  Hook sites in the hot paths are guarded by a
single ``is not None`` check, so the disabled cost is one attribute load
and one comparison — the record data-plane benchmark gate
(``benchmarks/bench_record_dataplane.py``) runs with instrumentation
disabled and must stay within 5% of its baseline.

When enabled, an :class:`Instruments` registry collects named counters
and histograms.  The registry is thread-safe (the threaded runtime
shares one across handler threads); metric names are dotted strings.

Hook points wired through the stacks (all optional — absent counters
simply read as missing keys in the snapshot):

==============================  =============================================
name                            incremented when
==============================  =============================================
``records.in``                  a record is decoded off the wire
``records.out``                 an application record is encoded for the wire
``records.legally_modified``    a record arrives writer-modified (mcTLS)
``handshake.messages_in``       a handshake message is processed
``handshake.messages_out``      a handshake message is sent
``handshake.complete``          a handshake finishes (phase transition)
``handshake.resumed``           ... via the abbreviated flow
``handshake.failed``            a connection dies before completing
``errors.fatal``                any fatal protocol error (superset of failed)
``alerts.in``                   an alert record arrives
``session.closed``              the peer ends the session
``mac.fail.<slot>``             MAC verification fails for ``endpoints`` /
                                ``writers`` / ``readers``
``context.<id>.bytes_in/out``   application bytes per context
``relay.records``               a protected record transits a middlebox
``relay.modified``              ... and was rewritten by the transformer
``keystream.pool.hit``          a record's keystream came from the bounded
                                pool (:data:`repro.crypto.fastcipher.KEYSTREAM_POOL`)
``keystream.pool.miss``         ... had to be derived (and was admitted
                                if pool-sized)
``keystream.pool.evict``        admission pushed out the oldest entry
                                (FIFO, bounded by ``size_to_workload``)
==============================  =============================================

The ``keystream.pool.*`` counters are published in deltas by
``KeystreamPool.publish_to`` — relays fold them in once per forwarded
burst, so snapshots stay consistent however many bursts a wakeup
handled.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.events import (
    AlertReceived,
    ApplicationData,
    HandshakeComplete,
    SessionClosed,
)

__all__ = ["Counter", "Histogram", "Instruments", "ServerStats", "record_event"]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Streaming summary of an observed value (count/sum/min/max).

    Deliberately tiny — enough for latency and size distributions in a
    JSON report without keeping every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": (self.total / self.count) if self.count else 0.0,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class Instruments:
    """A named counter/histogram registry shared by many connections.

    Attach one to any object exposing an ``instruments`` attribute (all
    connections and the mcTLS middlebox); servers attach theirs to every
    per-connection protocol object they create.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.value += n

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.observe(value)

    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            snap: Dict[str, object] = {
                name: c.value for name, c in sorted(self._counters.items())
            }
            for name, h in sorted(self._histograms.items()):
                snap[name] = h.summary()
            return snap

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


def record_event(instruments: Instruments, event: object) -> None:
    """Account one emitted event.  Called from the stacks' single event
    seam (``_emit``) — and only when instrumentation is enabled, so the
    isinstance dispatch below is never on the disabled fast path."""
    if isinstance(event, ApplicationData):
        instruments.inc("records.in")
        instruments.inc(f"context.{event.context_id}.bytes_in", len(event.data))
        if getattr(event, "legally_modified", False):
            instruments.inc("records.legally_modified")
    elif isinstance(event, HandshakeComplete):
        instruments.inc("handshake.complete")
        if event.resumed:
            instruments.inc("handshake.resumed")
    elif isinstance(event, AlertReceived):
        instruments.inc("alerts.in")
    elif isinstance(event, SessionClosed):
        instruments.inc("session.closed")


@dataclass
class ServerStats:
    """Counters a serving deployment actually graphs.

    Shared by both runtimes: ``repro.aio`` servers mutate fields directly
    (single event loop thread), the threaded ``repro.sockets`` servers go
    through :meth:`add`, which locks.  ``instruments`` optionally carries
    the protocol-level registry the server threads through its
    per-connection protocol objects; :meth:`snapshot` folds it in.
    """

    accepted: int = 0
    active: int = 0
    handshakes_ok: int = 0
    handshakes_failed: int = 0
    resumed: int = 0
    timeouts: int = 0
    errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    instruments: Optional[Instruments] = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, **deltas: int) -> None:
        """Apply counter deltas atomically (threaded-runtime path)."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            "accepted": self.accepted,
            "active": self.active,
            "handshakes_ok": self.handshakes_ok,
            "handshakes_failed": self.handshakes_failed,
            "resumed": self.resumed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }
        if self.instruments is not None:
            snap["instruments"] = self.instruments.snapshot()
        return snap
