"""The shared event vocabulary every protocol stack speaks.

A sans-I/O connection communicates upward exclusively through these
events (or subclasses of them — mcTLS extends :class:`HandshakeComplete`
and :class:`ApplicationData` with its session-specific fields).  Drivers
therefore dispatch on *these* classes and work unchanged across all six
stacks: ``isinstance(event, ApplicationData)`` matches plain TLS, mcTLS,
mdTLS and the plaintext baseline alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # structural annotations only; core imports no stack
    from repro.crypto.certs import Certificate
    from repro.mctls.contexts import Permission


class Event:
    """Base class for all connection and relay events."""


@dataclass
class HandshakeComplete(Event):
    """The connection is ready for application data.

    ``resumed`` marks an abbreviated handshake from a cached session;
    ``cipher_suite`` is ``"none"`` for the plaintext baseline.
    """

    cipher_suite: str
    peer_certificate: Optional["Certificate"] = None
    resumed: bool = False


@dataclass
class ApplicationData(Event):
    """Application payload received on one context.

    ``context_id`` is meaningful for mcTLS; plain TLS and the plaintext
    baseline always deliver on context 0.
    """

    data: bytes
    context_id: int = 0


@dataclass
class ContextData(Event):
    """Application data observed (and possibly rewritten) at a relay.

    Emitted by :class:`~repro.core.interface.RelayProcessor`
    implementations that can see plaintext — the mcTLS middlebox for
    contexts it was granted, the SplitTLS proxy for everything.
    """

    direction: str  # "c2s" | "s2c"
    context_id: int
    data: bytes
    permission: "Permission" = None
    modified: bool = False


@dataclass
class AlertReceived(Event):
    level: int
    description: int


@dataclass
class SessionClosed(Event):
    """The peer ended the session (close_notify or a fatal alert)."""


# Historical name, kept as a true alias so existing ``isinstance(event,
# ConnectionClosed)`` checks and the new vocabulary match the same event.
ConnectionClosed = SessionClosed
