"""Figure 7: file download time across link speeds and file sizes.

One middlebox with full read/write access (worst case for mcTLS).  The
client opens the session, requests a file, and we record the time from
connection start until the last payload byte arrives — so small files
are dominated by handshake RTTs and large files by link bandwidth,
exactly the structure of the paper's Figure 7.

Configurations reproduce the paper's x-axis: 1 Mbps × {0.5 kB, 4.9 kB,
185.6 kB, 10 MB}, {10, 100} Mbps × 185.6 kB (controlled), and the
wide-area fiber / 3G profiles × 185.6 kB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.harness import (
    Mode,
    TestBed,
    build_links,
    build_path,
    is_app_data,
    is_handshake_complete,
)
from repro.netsim import Simulator
from repro.netsim.profiles import LinkProfile, controlled, wide_area_3g, wide_area_fiber
from repro.workloads.filesizes import PAPER_FILE_SIZES


@dataclass
class TransferResult:
    mode: str
    config: str
    file_size: int
    download_time_s: float


def measure_transfer(
    bed: TestBed,
    mode: Mode,
    file_size: int,
    profile: LinkProfile,
    nagle: bool = True,
    config_name: str = "",
) -> TransferResult:
    """Time from connection start to last file byte at the client."""
    sim = Simulator()
    links = build_links(sim, profile)
    n_middleboxes = profile.hops - 1
    topology = (
        bed.topology(n_middleboxes, n_contexts=1)
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS) and n_middleboxes > 0
        else (
            bed.topology(0, n_contexts=1)
            if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
            else None
        )
    )
    is_mctls = topology is not None

    state: Dict[str, float] = {"received": 0}
    path_holder: List[object] = []

    def client_event(event, now):
        if is_handshake_complete(event):
            path_holder[0].client_node.send_application_data(
                b"GET", context_id=1 if is_mctls else None
            )
        elif is_app_data(event):
            state["received"] += len(event.data)
            if state["received"] >= file_size and "done" not in state:
                state["done"] = now

    def server_event(event, now):
        if is_app_data(event):
            path_holder[0].server_node.send_application_data(
                b"x" * file_size, context_id=1 if is_mctls else None
            )

    path = build_path(
        sim,
        bed,
        mode,
        links,
        topology=topology,
        nagle=nagle,
        client_on_event=client_event,
        server_on_event=server_event,
    )
    path_holder.append(path)
    path.start()
    sim.run(until=1000.0)
    if "done" not in state:
        raise RuntimeError(
            f"transfer incomplete: {mode} {config_name} got {state['received']}/{file_size}"
        )
    return TransferResult(
        mode=mode.value if nagle else f"{mode.value} (Nagle off)",
        config=config_name,
        file_size=file_size,
        download_time_s=state["done"],
    )


def figure7_configs() -> List[dict]:
    """The eight bar groups of Figure 7."""
    p10, p50, p99, large = (
        PAPER_FILE_SIZES["p10"],
        PAPER_FILE_SIZES["p50"],
        PAPER_FILE_SIZES["p99"],
        PAPER_FILE_SIZES["large"],
    )
    return [
        {"name": "1Mbps/0.5kB", "profile": controlled(2, 1.0), "size": p10},
        {"name": "1Mbps/4.9kB", "profile": controlled(2, 1.0), "size": p50},
        {"name": "1Mbps/185.6kB", "profile": controlled(2, 1.0), "size": p99},
        {"name": "1Mbps/10MB", "profile": controlled(2, 1.0), "size": large},
        {"name": "10Mbps/185.6kB", "profile": controlled(2, 10.0), "size": p99},
        {"name": "100Mbps/185.6kB", "profile": controlled(2, 100.0), "size": p99},
        {"name": "Fiber/185.6kB", "profile": wide_area_fiber(), "size": p99},
        {"name": "3G/185.6kB", "profile": wide_area_3g(), "size": p99},
    ]


def figure7(
    bed: TestBed,
    modes=(Mode.MCTLS, Mode.SPLIT_TLS, Mode.E2E_TLS, Mode.NO_ENCRYPT),
    include_nagle_off: bool = True,
    configs: Optional[List[dict]] = None,
) -> List[TransferResult]:
    rows: List[TransferResult] = []
    for config in configs or figure7_configs():
        for mode in modes:
            rows.append(
                measure_transfer(
                    bed, mode, config["size"], config["profile"], config_name=config["name"]
                )
            )
        if include_nagle_off:
            rows.append(
                measure_transfer(
                    bed,
                    Mode.MCTLS,
                    config["size"],
                    config["profile"],
                    nagle=False,
                    config_name=config["name"],
                )
            )
    return rows
