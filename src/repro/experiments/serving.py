"""Real-loopback serving chains: client → middleboxes → server on TCP.

``repro.experiments.harness`` wires protocol objects over the *simulated*
network; this module wires the same :class:`TestBed` factories over real
loopback sockets, in either runtime:

* **async** — ``repro.aio`` servers (:func:`start_chain`), driven by the
  concurrent load generator (:func:`run_async_load`);
* **threaded** — ``repro.sockets`` servers (:func:`start_threaded_chain`),
  driven by the thread-per-connection twin (:func:`run_threaded_load`).

Both run every protocol mode of §5 (mcTLS / mcTLS-CKD / mdTLS /
SplitTLS / E2E-TLS / NoEncrypt) with any number of middlebox hops, so the Fig. 5
capacity question — handshakes/sec and concurrent sessions sustained —
can be asked of a real socket path instead of an in-memory pump.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.aio import (
    AsyncConnection,
    AsyncEndpointServer,
    AsyncRelayServer,
    run_load,
    run_load_mp,
    run_load_threaded,
    run_periodic,
)
from repro.baselines import BlindRelay, PlainConnection, PlainRelay, SplitTLSRelay
from repro.core import Connection, Instruments, RelayProcessor
from repro.experiments.harness import Mode, TestBed
from repro.mctls import McTLSClient, McTLSMiddlebox, McTLSServer, SessionTopology
from repro.mctls.session import HandshakeMode
from repro.mdtls import MdTLSClient, MdTLSMiddlebox, MdTLSServer
from repro.mp import ClusterEndpointServer
from repro.sockets import EndpointServer, RelayServer
from repro.tls.client import TLSClient
from repro.tls.server import TLSServer
from repro.tls.sessioncache import ClientSessionStore, SessionCache
from repro.tls.tickets import TicketKeyManager

LOOPBACK = "127.0.0.1"


# -- per-mode factories (the socket-serving view of TestBed) ---------------


def server_connection_factory(
    bed: TestBed,
    mode: Mode,
    ticket_manager: Optional[TicketKeyManager] = None,
) -> Callable[..., Connection]:
    """A factory for fresh server-side sans-I/O connections.

    Accepts an optional positional ``session_cache`` so it can be handed
    to ``EndpointServer``/``AsyncEndpointServer`` with or without a
    cache attached.  A ``ticket_manager`` (shared across all connections
    — and, under the sharded runtime, fork-inherited by every worker)
    additionally enables stateless session-ticket resumption.
    """
    if mode in (Mode.MCTLS, Mode.MCTLS_CKD):
        hs_mode = (
            HandshakeMode.CLIENT_KEY_DIST
            if mode is Mode.MCTLS_CKD
            else HandshakeMode.DEFAULT
        )

        def make(session_cache=None):
            return McTLSServer(
                bed.server_tls_config(),
                mode=hs_mode,
                session_cache=session_cache,
                ticket_manager=ticket_manager,
            )

        return make
    if mode is Mode.MDTLS:

        def make(session_cache=None):
            return MdTLSServer(
                bed.server_tls_config(),
                session_cache=session_cache,
                ticket_manager=ticket_manager,
            )

        return make
    if mode in (Mode.SPLIT_TLS, Mode.E2E_TLS):
        # SplitTLS terminates at the proxy, so the origin is plain TLS
        # either way; only E2E sessions ever reach the cache with a
        # client that can resume.
        def make(session_cache=None):
            return TLSServer(
                bed.server_tls_config(),
                session_cache=session_cache,
                ticket_manager=ticket_manager,
            )

        return make

    def make(session_cache=None):
        return PlainConnection()

    return make


def client_connection_factory(
    bed: TestBed,
    mode: Mode,
    topology: Optional[SessionTopology] = None,
    session_store: Optional[ClientSessionStore] = None,
    ticket_store: Optional[ClientSessionStore] = None,
    framing: str = "mctls-default",
    field_schemas: Tuple = (),
) -> Callable[..., Connection]:
    """A ``client_factory(resume=..., ticket=...)`` for the load generator.

    ``resume=True`` builds the client against the shared
    ``session_store`` (when the mode can resume at all); ``resume=False``
    always yields a full handshake.  ``ticket=True`` (with ``resume``)
    attaches the ``ticket_store`` instead, so that session resumes via a
    stateless server-sealed ticket rather than the server's cache.
    ``framing``/``field_schemas`` select the record framing the mcTLS
    client offers (servers accept any valid offer); the other modes have
    no framing negotiation and ignore both.
    """

    def make(resume: bool = False, ticket: bool = False):
        store = session_store if (resume and not ticket) else None
        tstore = ticket_store if (resume and ticket) else None
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD):
            config = bed.client_tls_config()
            config.framing = framing
            config.field_schemas = tuple(field_schemas)
            return McTLSClient(
                config,
                topology=topology,
                key_transport=bed.key_transport,
                session_store=store,
                ticket_store=tstore,
            )
        if mode is Mode.MDTLS:
            return MdTLSClient(
                bed.client_tls_config(with_identity=True),
                topology=topology,
                session_store=store,
                ticket_store=tstore,
            )
        if mode is Mode.SPLIT_TLS:
            # The client's session ends at the interception proxy, which
            # keeps no cache — SplitTLS always handshakes in full.
            return TLSClient(bed.client_tls_config(trust_corp=True))
        if mode is Mode.E2E_TLS:
            return TLSClient(
                bed.client_tls_config(), session_store=store, ticket_store=tstore
            )
        return PlainConnection()

    return make


def relay_factory(
    bed: TestBed, mode: Mode, index: int, count: int
) -> Callable[[], RelayProcessor]:
    """A per-connection relay factory for hop ``index`` of ``count``
    (index 0 is nearest the client), matching ``TestBed.make_relays``."""
    if mode in (Mode.MCTLS, Mode.MCTLS_CKD):
        identity = bed.middlebox_identities(count)[index]
        return lambda: McTLSMiddlebox(identity.name, bed.mbox_tls_config(identity))
    if mode is Mode.MDTLS:
        identity = bed.middlebox_identities(count)[index]
        return lambda: MdTLSMiddlebox(identity.name, bed.mbox_tls_config(identity))
    if mode is Mode.SPLIT_TLS:
        trust_corp = index < count - 1
        config = bed.client_tls_config(trust_corp=trust_corp)
        return lambda: SplitTLSRelay(
            bed.corp_ca,
            config,
            bed.server_name,
            key_bits=bed.key_bits,
            forged_identity=bed.forged_identity,
        )
    if mode is Mode.E2E_TLS:
        return lambda: BlindRelay()
    return lambda: PlainRelay()


# -- echo handlers ----------------------------------------------------------


async def echo_handler(conn: AsyncConnection) -> None:
    """Echo every application record back on the context it arrived on,
    until the peer ends the session (SessionEnded handled by the server)."""
    while True:
        event = await conn.recv_app_data()
        await conn.send(event.data, context_id=event.context_id)


def threaded_echo_handler(conn) -> None:
    while True:
        event = conn.recv_app_data()
        conn.send(event.data, context_id=event.context_id)


# -- chains -----------------------------------------------------------------


@dataclass
class ServingChain:
    """A started client-facing port plus the servers behind it."""

    mode: Mode
    endpoint: object  # AsyncEndpointServer | EndpointServer
    relays: List[object] = field(default_factory=list)
    session_cache: Optional[SessionCache] = None

    @property
    def port(self) -> int:
        """The port clients dial: the outermost relay, else the server."""
        return (self.relays[0] if self.relays else self.endpoint).port

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {"server": self.endpoint.snapshot()}
        if self.relays:
            snap["relays"] = [r.stats.snapshot() for r in self.relays]
        return snap

    async def stop(self, graceful: bool = True) -> None:
        for relay in self.relays:
            await relay.stop(graceful=graceful)
        await self.endpoint.stop(graceful=graceful)

    def stop_threaded(self) -> None:
        for relay in self.relays:
            relay.stop()
        self.endpoint.stop()


async def start_chain(
    bed: TestBed,
    mode: Mode,
    n_middleboxes: int = 0,
    session_cache: Optional[SessionCache] = None,
    max_connections: int = 512,
    handshake_timeout: float = 60.0,
    idle_timeout: float = 60.0,
    handler: Callable[[AsyncConnection], object] = echo_handler,
    instruments: Optional[Instruments] = None,
) -> ServingChain:
    """Start an async echo server and ``n_middleboxes`` relays on
    loopback; relay ``i`` forwards to relay ``i+1``, the last to the
    server — the wire topology of Fig. 1 on real sockets.

    ``instruments`` (optional) is shared by the endpoint server and every
    relay, so protocol-level counters aggregate across the whole chain.
    """
    endpoint = AsyncEndpointServer(
        (LOOPBACK, 0),
        server_connection_factory(bed, mode),
        handler,
        session_cache=session_cache,
        max_connections=max_connections,
        handshake_timeout=handshake_timeout,
        idle_timeout=idle_timeout,
        instruments=instruments,
    )
    await endpoint.start()
    relays: List[AsyncRelayServer] = []
    upstream_port = endpoint.port
    for index in reversed(range(n_middleboxes)):
        relay = AsyncRelayServer(
            (LOOPBACK, 0),
            upstream_addr=(LOOPBACK, upstream_port),
            relay_factory=relay_factory(bed, mode, index, n_middleboxes),
            max_connections=max_connections,
            idle_timeout=idle_timeout,
            instruments=instruments,
        )
        await relay.start()
        relays.insert(0, relay)
        upstream_port = relay.port
    return ServingChain(
        mode=mode, endpoint=endpoint, relays=relays, session_cache=session_cache
    )


def start_threaded_chain(
    bed: TestBed,
    mode: Mode,
    n_middleboxes: int = 0,
    session_cache: Optional[SessionCache] = None,
    instruments: Optional[Instruments] = None,
) -> ServingChain:
    """The ``repro.sockets`` twin of :func:`start_chain`."""
    endpoint = EndpointServer(
        (LOOPBACK, 0),
        server_connection_factory(bed, mode),
        threaded_echo_handler,
        session_cache=session_cache,
        instruments=instruments,
    ).start()
    relays: List[RelayServer] = []
    upstream_port = endpoint.port
    for index in reversed(range(n_middleboxes)):
        relay = RelayServer(
            (LOOPBACK, 0),
            upstream_addr=(LOOPBACK, upstream_port),
            relay_factory=relay_factory(bed, mode, index, n_middleboxes),
            instruments=instruments,
        ).start()
        relays.insert(0, relay)
        upstream_port = relay.port
    return ServingChain(
        mode=mode, endpoint=endpoint, relays=relays, session_cache=session_cache
    )


def start_sharded_chain(
    bed: TestBed,
    mode: Mode,
    n_middleboxes: int = 0,
    workers: int = 2,
    ticket_manager: Optional[TicketKeyManager] = None,
    session_cache_factory: Optional[Callable[[], SessionCache]] = None,
    max_connections: int = 512,
    handshake_timeout: float = 60.0,
    idle_timeout: float = 60.0,
    handler: Callable[[AsyncConnection], object] = echo_handler,
    reuse_port: bool = True,
) -> ServingChain:
    """A multi-process endpoint (:class:`ClusterEndpointServer`) behind
    the usual relay chain.

    The endpoint forks *before* any relay thread starts (forking a
    multi-threaded parent is the classic deadlock), and the relays run
    thread-per-connection in the parent.  Session caches are per-worker
    (``session_cache_factory`` runs post-fork); the ``ticket_manager``
    is fork-inherited, so ticket resumption works across workers while
    cache resumption only hits when the kernel lands the reconnect on
    the same worker — the exact contrast the sharded phase measures.
    """
    endpoint = ClusterEndpointServer(
        (LOOPBACK, 0),
        server_connection_factory(bed, mode, ticket_manager=ticket_manager),
        handler,
        workers=workers,
        session_cache_factory=session_cache_factory,
        max_connections=max_connections,
        handshake_timeout=handshake_timeout,
        idle_timeout=idle_timeout,
        reuse_port=reuse_port,
    ).start()
    relays: List[RelayServer] = []
    upstream_port = endpoint.port
    for index in reversed(range(n_middleboxes)):
        relay = RelayServer(
            (LOOPBACK, 0),
            upstream_addr=(LOOPBACK, upstream_port),
            relay_factory=relay_factory(bed, mode, index, n_middleboxes),
        ).start()
        relays.insert(0, relay)
        upstream_port = relay.port
    return ServingChain(mode=mode, endpoint=endpoint, relays=relays)


# -- load entry points ------------------------------------------------------


def _topology(bed: TestBed, mode: Mode, n_middleboxes: int, n_contexts: int):
    if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS):
        return bed.topology(n_middleboxes, n_contexts=n_contexts)
    return None


def _payload_context(mode: Mode) -> Optional[int]:
    return 1 if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS) else None


async def run_async_load(
    bed: TestBed,
    mode: Mode,
    n_middleboxes: int = 0,
    connections: int = 100,
    concurrency: int = 50,
    rate: Optional[float] = None,
    resume_ratio: float = 0.0,
    n_contexts: int = 1,
    payload: bytes = b"ping",
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
    instruments: Optional[Instruments] = None,
) -> Dict[str, object]:
    """Start a chain, drive the load generator, stop, return the merged
    load + server stats report."""
    session_cache = SessionCache(capacity=max(64, concurrency * 2))
    session_store = (
        ClientSessionStore(capacity=max(64, concurrency * 2))
        if resume_ratio > 0
        else None
    )
    chain = await start_chain(
        bed,
        mode,
        n_middleboxes,
        session_cache=session_cache,
        max_connections=max(concurrency * 2, 64),
        handshake_timeout=handshake_timeout,
        idle_timeout=io_timeout,
        instruments=instruments,
    )
    try:
        result = await run_load(
            (LOOPBACK, chain.port),
            client_connection_factory(
                bed,
                mode,
                topology=_topology(bed, mode, n_middleboxes, n_contexts),
                session_store=session_store,
            ),
            connections=connections,
            concurrency=concurrency,
            rate=rate,
            resume_ratio=resume_ratio,
            payload=payload,
            context_id=_payload_context(mode),
            handshake_timeout=handshake_timeout,
            io_timeout=io_timeout,
        )
    finally:
        await chain.stop(graceful=False)
    report: Dict[str, object] = {
        "mode": mode.value,
        "middleboxes": n_middleboxes,
        "contexts": n_contexts,
        "load": result.to_dict(),
    }
    report.update(chain.snapshot())
    return report


def run_sharded_load(
    bed: TestBed,
    mode: Mode,
    n_middleboxes: int = 0,
    workers: int = 2,
    connections: int = 100,
    concurrency: int = 50,
    client_processes: int = 2,
    resume_ratio: float = 0.0,
    ticket_ratio: float = 1.0,
    n_contexts: int = 1,
    payload: bytes = b"ping",
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> Dict[str, object]:
    """Drive a multi-process client fleet against a sharded chain.

    ``ticket_ratio`` splits the resumption candidates between stateless
    tickets (which resume on *any* worker) and the per-worker session
    cache (which only hits on kernel affinity).  Client stores are
    per-process — forked copies, like independent client machines.
    """
    ticket_manager = TicketKeyManager()
    cache_capacity = max(64, concurrency * 2)
    session_store = (
        ClientSessionStore(capacity=cache_capacity) if resume_ratio > 0 else None
    )
    ticket_store = (
        ClientSessionStore(capacity=cache_capacity)
        if resume_ratio > 0 and ticket_ratio > 0
        else None
    )
    chain = start_sharded_chain(
        bed,
        mode,
        n_middleboxes,
        workers=workers,
        ticket_manager=ticket_manager,
        session_cache_factory=lambda: SessionCache(capacity=cache_capacity),
        max_connections=max(concurrency * 2, 64),
        handshake_timeout=handshake_timeout,
        idle_timeout=io_timeout,
    )
    try:
        result = run_load_mp(
            (LOOPBACK, chain.port),
            client_connection_factory(
                bed,
                mode,
                topology=_topology(bed, mode, n_middleboxes, n_contexts),
                session_store=session_store,
                ticket_store=ticket_store,
            ),
            connections=connections,
            concurrency=concurrency,
            processes=client_processes,
            resume_ratio=resume_ratio,
            ticket_ratio=ticket_ratio,
            payload=payload,
            context_id=_payload_context(mode),
            handshake_timeout=handshake_timeout,
            io_timeout=io_timeout,
        )
    finally:
        chain.stop_threaded()
    report: Dict[str, object] = {
        "mode": mode.value,
        "middleboxes": n_middleboxes,
        "contexts": n_contexts,
        "workers": workers,
        "client_processes": client_processes,
        "load": result.to_dict(),
    }
    report.update(chain.snapshot())
    return report


async def run_industrial_load(
    bed: TestBed,
    mode: Mode,
    n_middleboxes: int = 1,
    records: int = 100,
    record_size: int = 32,
    period_s: float = 0.005,
    sessions: int = 1,
    framing: str = "mctls-default",
    field_schemas: Tuple = (),
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> Dict[str, object]:
    """The industrial low-latency scenario on one chain: a long-lived
    session sending a small record every ``period_s`` seconds, reporting
    per-record round-trip percentiles (the Madtls workload shape, where
    the p99 against a cycle deadline is the figure of merit)."""
    chain = await start_chain(
        bed,
        mode,
        n_middleboxes,
        max_connections=max(sessions * 2, 16),
        handshake_timeout=handshake_timeout,
        idle_timeout=io_timeout,
    )
    try:
        result = await run_periodic(
            (LOOPBACK, chain.port),
            client_connection_factory(
                bed,
                mode,
                topology=_topology(bed, mode, n_middleboxes, 1),
                framing=framing,
                field_schemas=field_schemas,
            ),
            records=records,
            record_size=record_size,
            period_s=period_s,
            sessions=sessions,
            context_id=_payload_context(mode),
            handshake_timeout=handshake_timeout,
            io_timeout=io_timeout,
        )
    finally:
        await chain.stop(graceful=False)
    report: Dict[str, object] = {
        "mode": mode.value,
        "middleboxes": n_middleboxes,
        "framing": framing if mode in (Mode.MCTLS, Mode.MCTLS_CKD) else None,
        "load": result.to_dict(),
    }
    report.update(chain.snapshot())
    return report


async def measure_per_hop_latency(
    bed: TestBed,
    mode: Mode,
    max_hops: int = 2,
    records: int = 100,
    record_size: int = 32,
    period_s: float = 0.005,
    framing: str = "mctls-default",
    field_schemas: Tuple = (),
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> Dict[str, object]:
    """Per-hop *added* record latency: run the industrial workload at
    0..``max_hops`` middleboxes on the same host and difference the
    percentiles against the zero-hop baseline.  The slope is the cost a
    deployment pays per in-path inspection hop — the number an
    industrial latency budget is spent against."""
    runs: List[Dict[str, object]] = []
    for hops in range(max_hops + 1):
        report = await run_industrial_load(
            bed,
            mode,
            n_middleboxes=hops,
            records=records,
            record_size=record_size,
            period_s=period_s,
            framing=framing,
            field_schemas=field_schemas,
            handshake_timeout=handshake_timeout,
            io_timeout=io_timeout,
        )
        runs.append(report)
    base = runs[0]["load"]["record_latency_s"]
    added: Dict[str, Dict[str, float]] = {}
    for hops, report in enumerate(runs[1:], start=1):
        lat = report["load"]["record_latency_s"]
        added[str(hops)] = {
            k: round((lat[k] - base[k]) / hops, 6) for k in ("p50", "p95", "p99")
        }
    return {
        "mode": mode.value,
        "framing": framing if mode in (Mode.MCTLS, Mode.MCTLS_CKD) else None,
        "record_size": record_size,
        "period_s": period_s,
        "records": records,
        "per_hop": [r["load"] for r in runs],
        "added_latency_per_hop_s": added,
    }


def run_threaded_load(
    bed: TestBed,
    mode: Mode,
    n_middleboxes: int = 0,
    connections: int = 100,
    concurrency: int = 50,
    resume_ratio: float = 0.0,
    n_contexts: int = 1,
    payload: bytes = b"ping",
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
    instruments: Optional[Instruments] = None,
) -> Dict[str, object]:
    """The thread-per-connection twin of :func:`run_async_load`."""
    session_cache = SessionCache(capacity=max(64, concurrency * 2))
    session_store = (
        ClientSessionStore(capacity=max(64, concurrency * 2))
        if resume_ratio > 0
        else None
    )
    chain = start_threaded_chain(
        bed,
        mode,
        n_middleboxes,
        session_cache=session_cache,
        instruments=instruments,
    )
    try:
        result = run_load_threaded(
            (LOOPBACK, chain.port),
            client_connection_factory(
                bed,
                mode,
                topology=_topology(bed, mode, n_middleboxes, n_contexts),
                session_store=session_store,
            ),
            connections=connections,
            concurrency=concurrency,
            resume_ratio=resume_ratio,
            payload=payload,
            context_id=_payload_context(mode),
            handshake_timeout=handshake_timeout,
            io_timeout=io_timeout,
        )
    finally:
        chain.stop_threaded()
    report: Dict[str, object] = {
        "mode": mode.value,
        "middleboxes": n_middleboxes,
        "contexts": n_contexts,
        "load": result.to_dict(),
    }
    report.update(chain.snapshot())
    return report
