"""Table 3: cryptographic operations per handshake, per party.

Every primitive in :mod:`repro.crypto` reports to a thread-local
:class:`~repro.crypto.opcount.OpCounter`; wrapping each node's calls in
its own counter attributes operations to the party that performed them.
The experiment runs real handshakes for mcTLS (default mode), mcTLS
(client key distribution), mdTLS (delegated credentials) and SplitTLS,
and reports measured counts next to the paper's closed-form expressions
(N = middleboxes, K = contexts).  mdTLS has no Table 3 row in the paper,
so its ``paper`` dict stays empty — the delegation benchmark compares it
against the measured mcTLS modes instead.

Exact equality with the paper's numbers is not expected — they count at
OpenSSL API granularity, we count at primitive granularity — but the
*structure* must match: client work growing with N and K, the CKD mode
moving server work to the client, SplitTLS's middlebox doing two full
handshakes' worth of work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.opcount import CATEGORIES, OpCounter, counting
from repro.experiments.harness import Mode, TestBed
from repro.transport import Chain


class CountingNode:
    """Wraps a connection/relay; every call runs under its own counter."""

    def __init__(self, inner):
        self._inner = inner
        self.counter = OpCounter()

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def counted(*args, **kwargs):
            with counting(self.counter):
                return attr(*args, **kwargs)

        return counted


# The paper's Table 3 formulas (rows we can evaluate for given N, K).
PAPER_FORMULAS = {
    "mcTLS": {
        "client": {
            "hash": lambda N, K: 12 + 6 * N,
            "secret_comp": lambda N, K: N + 1,
            "key_gen": lambda N, K: 4 * K + N + 1,
            "asym_verify": lambda N, K: N + 1,
            "sym_encrypt": lambda N, K: N + 2,
            "sym_decrypt": lambda N, K: 2,
        },
        "middlebox": {
            "hash": lambda N, K: 0,
            "secret_comp": lambda N, K: 2,
            "key_gen": lambda N, K: 2 * K + 2,  # k ≤ 2K, worst case
            "asym_verify": lambda N, K: 1,  # n ≤ 1
            "sym_encrypt": lambda N, K: 0,
            "sym_decrypt": lambda N, K: 2,
        },
        "server": {
            "hash": lambda N, K: 12 + 6 * N,
            "secret_comp": lambda N, K: N + 1,
            "key_gen": lambda N, K: 4 * K + N + 1,
            "asym_verify": lambda N, K: N,  # n ≤ N
            "sym_encrypt": lambda N, K: N + 2,
            "sym_decrypt": lambda N, K: 2,
        },
    },
    "mcTLS-ckd": {
        "client": {
            "hash": lambda N, K: 10 + 5 * N,
            "secret_comp": lambda N, K: N + 1,
            "key_gen": lambda N, K: 2 * K + N + 1,
            "asym_verify": lambda N, K: N + 1,
            "sym_encrypt": lambda N, K: N + 2,
            "sym_decrypt": lambda N, K: 1,
        },
        "middlebox": {
            "hash": lambda N, K: 0,
            "secret_comp": lambda N, K: 1,
            "key_gen": lambda N, K: 1,
            "asym_verify": lambda N, K: 1,  # n ≤ 1
            "sym_encrypt": lambda N, K: 0,
            "sym_decrypt": lambda N, K: 1,
        },
        "server": {
            "hash": lambda N, K: 10 + 5 * N,
            "secret_comp": lambda N, K: 1,
            "key_gen": lambda N, K: 1,
            "asym_verify": lambda N, K: 0,
            "sym_encrypt": lambda N, K: 1,
            "sym_decrypt": lambda N, K: 2,
        },
    },
    "SplitTLS": {
        "client": {
            "hash": lambda N, K: 10,
            "secret_comp": lambda N, K: 1,
            "key_gen": lambda N, K: 1,
            "asym_verify": lambda N, K: 1,
            "sym_encrypt": lambda N, K: 1,
            "sym_decrypt": lambda N, K: 1,
        },
        "middlebox": {
            "hash": lambda N, K: 20,
            "secret_comp": lambda N, K: 2,
            "key_gen": lambda N, K: 2,
            "asym_verify": lambda N, K: 1,
            "sym_encrypt": lambda N, K: 2,
            "sym_decrypt": lambda N, K: 2,
        },
        "server": {
            "hash": lambda N, K: 10,
            "secret_comp": lambda N, K: 1,
            "key_gen": lambda N, K: 1,
            "asym_verify": lambda N, K: 0,
            "sym_encrypt": lambda N, K: 1,
            "sym_decrypt": lambda N, K: 1,
        },
    },
}


@dataclass
class OpCountResult:
    mode: str
    n_contexts: int
    n_middleboxes: int
    counts: Dict[str, Dict[str, int]]  # party -> category -> measured
    paper: Dict[str, Dict[str, int]]  # party -> category -> paper formula


def measure_opcounts(
    bed: TestBed, mode: Mode, n_contexts: int = 1, n_middleboxes: int = 1
) -> OpCountResult:
    topology = (
        bed.topology(n_middleboxes, n_contexts=n_contexts)
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
        else None
    )
    client, server = bed.make_endpoints(mode, topology=topology)
    relays = bed.make_relays(mode, n_middleboxes)

    counted_client = CountingNode(client)
    counted_server = CountingNode(server)
    counted_relays = [CountingNode(r) for r in relays]

    chain = Chain(counted_client, counted_relays, counted_server)
    counted_client.start_handshake()
    chain.pump()
    if not client.handshake_complete or not server.handshake_complete:
        raise RuntimeError(f"handshake failed for {mode}")

    mode_key = {
        Mode.MCTLS: "mcTLS",
        Mode.MCTLS_CKD: "mcTLS-ckd",
        Mode.SPLIT_TLS: "SplitTLS",
    }.get(mode)
    paper: Dict[str, Dict[str, int]] = {}
    if mode_key is not None:
        N, K = n_middleboxes, n_contexts
        paper = {
            party: {cat: fn(N, K) for cat, fn in formulas.items()}
            for party, formulas in PAPER_FORMULAS[mode_key].items()
        }

    counts = {
        "client": counted_client.counter.snapshot(),
        "server": counted_server.counter.snapshot(),
    }
    if counted_relays:
        counts["middlebox"] = counted_relays[0].counter.snapshot()
    return OpCountResult(
        mode=mode.value,
        n_contexts=n_contexts,
        n_middleboxes=n_middleboxes,
        counts=counts,
        paper=paper,
    )


def table3(bed: TestBed, n_contexts: int = 4, n_middleboxes: int = 1) -> List[OpCountResult]:
    return [
        measure_opcounts(bed, mode, n_contexts, n_middleboxes)
        for mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS, Mode.SPLIT_TLS)
    ]
