"""Small statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The q-quantile (0..1) by the nearest-rank method."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90)
) -> List[float]:
    return [percentile(values, q) for q in qs]


def median(values: Sequence[float]) -> float:
    return percentile(values, 0.5)


def cdf_points(values: Sequence[float], points: int = 100) -> List[Tuple[float, float]]:
    """(value, cumulative_fraction) pairs suitable for plotting."""
    if not values:
        raise ValueError("cannot build a CDF of no values")
    ordered = sorted(values)
    out = []
    for i in range(points + 1):
        fraction = i / points
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        out.append((ordered[index], fraction))
    return out


def group_by(rows: Sequence[object], key: str) -> Dict[object, List[object]]:
    """Group result rows by an attribute."""
    grouped: Dict[object, List[object]] = {}
    for row in rows:
        grouped.setdefault(getattr(row, key), []).append(row)
    return grouped
