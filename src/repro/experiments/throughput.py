"""Figure 5: handshake throughput (connections/sec) at server and middlebox.

The paper saturates a server (or middlebox) with handshakes and reports
sustainable connections per second.  We measure the same quantity
directly: wall-clock CPU time spent inside each node's protocol code
during a handshake, attributed per node; sustainable rate = 1 / cpu-time.
Absolute rates are pure-Python-slow, but the *ratios* the paper reports
are determined by the work mix, which runs for real here:

* mcTLS server 23–35 % below SplitTLS/E2E (extra partial-key generation
  and per-middlebox encryption, growing with contexts);
* mcTLS middlebox well above SplitTLS (one mcTLS handshake's middlebox
  work vs two full TLS handshakes) but far below E2E-TLS (blind
  forwarding costs almost nothing);
* client key distribution mode reclaiming the server gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.opcount import OpCounter, counting
from repro.experiments.harness import Mode, TestBed
from repro.transport import Chain


class TimedNode:
    """Wraps a connection or relay, accumulating CPU time in its calls."""

    def __init__(self, inner):
        self._inner = inner
        self.cpu_seconds = 0.0

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr
        def timed(*args, **kwargs):
            start = time.process_time()
            try:
                return attr(*args, **kwargs)
            finally:
                self.cpu_seconds += time.process_time() - start
        return timed


class ProfiledNode(TimedNode):
    """TimedNode that also attributes crypto operations to the node.

    Every call into the wrapped connection runs under this node's
    :class:`OpCounter`, so after a handshake ``node.ops`` holds exactly
    the Table-3-style operation mix that node performed.  Bytes the node
    emitted (via any ``data_to_*`` call) accumulate in ``bytes_sent``.
    """

    def __init__(self, inner):
        super().__init__(inner)
        self.ops = OpCounter()
        self.bytes_sent = 0

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr
        emits = name.startswith("data_to_")
        def profiled(*args, **kwargs):
            start = time.process_time()
            with counting(self.ops):
                try:
                    result = attr(*args, **kwargs)
                finally:
                    self.cpu_seconds += time.process_time() - start
            if emits and isinstance(result, bytes):
                self.bytes_sent += len(result)
            return result
        return profiled


@dataclass
class ThroughputResult:
    mode: str
    n_contexts: int
    n_middleboxes: int
    client_cps: float
    server_cps: float
    middlebox_cps: Optional[float]  # first middlebox; None when absent


def measure_handshake_throughput(
    bed: TestBed,
    mode: Mode,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
    repetitions: int = 3,
) -> ThroughputResult:
    """CPU-time-based sustainable handshake rate per node."""
    totals: Dict[str, float] = {"client": 0.0, "server": 0.0, "middlebox": 0.0}
    # One untimed warmup round stabilises allocator/caching effects.
    for repetition in range(repetitions + 1):
        warmup = repetition == 0
        topology = (
            bed.topology(n_middleboxes, n_contexts=n_contexts)
            if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
            else None
        )
        client, server = bed.make_endpoints(mode, topology=topology)
        relays = bed.make_relays(mode, n_middleboxes)
        timed_client = TimedNode(client)
        timed_server = TimedNode(server)
        timed_relays = [TimedNode(r) for r in relays]
        chain = Chain(timed_client, timed_relays, timed_server)
        timed_client.start_handshake()
        chain.pump()
        if not client.handshake_complete or not server.handshake_complete:
            raise RuntimeError(f"handshake failed for {mode}")
        if warmup:
            continue
        totals["client"] += timed_client.cpu_seconds
        totals["server"] += timed_server.cpu_seconds
        if timed_relays:
            totals["middlebox"] += timed_relays[0].cpu_seconds

    def rate(total: float) -> float:
        per_handshake = total / repetitions
        return 1.0 / per_handshake if per_handshake > 0 else float("inf")

    return ThroughputResult(
        mode=mode.value,
        n_contexts=n_contexts,
        n_middleboxes=n_middleboxes,
        client_cps=rate(totals["client"]),
        server_cps=rate(totals["server"]),
        middlebox_cps=rate(totals["middlebox"]) if n_middleboxes else None,
    )


def figure5(
    bed: TestBed,
    context_counts=(1, 2, 4, 8, 16),
    repetitions: int = 3,
) -> List[ThroughputResult]:
    """Both panels: server and middlebox rates vs contexts.

    Series follow the paper: mcTLS / SplitTLS / E2E-TLS with one
    middlebox, plus mcTLS with 2 and 4 middleboxes, plus the §3.6 client
    key distribution variant.
    """
    rows: List[ThroughputResult] = []
    for n_ctx in context_counts:
        rows.append(
            measure_handshake_throughput(bed, Mode.MCTLS, n_ctx, 1, repetitions)
        )
        rows.append(
            measure_handshake_throughput(bed, Mode.MCTLS_CKD, n_ctx, 1, repetitions)
        )
        rows.append(
            measure_handshake_throughput(bed, Mode.SPLIT_TLS, n_ctx, 1, repetitions)
        )
        rows.append(
            measure_handshake_throughput(bed, Mode.E2E_TLS, n_ctx, 1, repetitions)
        )
        rows.append(
            measure_handshake_throughput(bed, Mode.MCTLS, n_ctx, 2, repetitions)
        )
        rows.append(
            measure_handshake_throughput(bed, Mode.MCTLS, n_ctx, 4, repetitions)
        )
    return rows


# -- session resumption: full vs abbreviated handshake ------------------------

PUBKEY_CATEGORIES = ("secret_comp", "asym_sign", "asym_verify")

RESUMABLE_MODES = (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS, Mode.E2E_TLS)


@dataclass
class FullVsResumedResult:
    """Per-node operation counts and CPU time for a full handshake and
    the abbreviated handshake that resumed it."""

    mode: str
    n_contexts: int
    n_middleboxes: int
    full_ops: Dict[str, Dict[str, int]]      # node name -> category -> count
    resumed_ops: Dict[str, Dict[str, int]]
    full_cpu: Dict[str, float]               # node name -> seconds
    resumed_cpu: Dict[str, float]
    full_bytes: Dict[str, int]               # node name -> handshake bytes sent
    resumed_bytes: Dict[str, int]

    def pubkey_ops(self, phase: str, node: str) -> int:
        """Public-key operations (DH/RSA secret computations, signatures,
        verifications) performed by ``node`` during ``phase``."""
        ops = self.full_ops if phase == "full" else self.resumed_ops
        return sum(ops[node].get(c, 0) for c in PUBKEY_CATEGORIES)


def _run_profiled_handshake(bed: TestBed, mode: Mode, topology, n_middleboxes: int):
    client, server = bed.make_endpoints(mode, topology=topology)
    relays = bed.make_relays(mode, n_middleboxes)
    profiled_client = ProfiledNode(client)
    profiled_server = ProfiledNode(server)
    profiled_relays = [ProfiledNode(r) for r in relays]
    chain = Chain(profiled_client, profiled_relays, profiled_server)
    profiled_client.start_handshake()
    chain.pump()
    if not client.handshake_complete or not server.handshake_complete:
        raise RuntimeError(f"handshake failed for {mode}")
    nodes = {"client": profiled_client, "server": profiled_server}
    for i, relay in enumerate(profiled_relays):
        nodes[f"middlebox{i + 1}"] = relay
    ops = {name: node.ops.snapshot() for name, node in nodes.items()}
    cpu = {name: node.cpu_seconds for name, node in nodes.items()}
    sent = {name: node.bytes_sent for name, node in nodes.items()}
    return client, server, ops, cpu, sent


def measure_full_vs_resumed(
    bed: TestBed,
    mode: Mode,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
) -> FullVsResumedResult:
    """Run one full handshake, then resume it, profiling both.

    Uses a fresh session cache (the bed's configured cache is restored on
    exit), so the first handshake is guaranteed full and the second is
    guaranteed abbreviated — a failure to resume raises.
    """
    if mode not in RESUMABLE_MODES:
        raise ValueError(f"{mode} does not support session resumption")
    saved = (bed.session_cache, bed.client_sessions)
    bed.enable_resumption()
    try:
        topology = (
            bed.topology(n_middleboxes, n_contexts=n_contexts)
            if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
            else None
        )
        client, server, full_ops, full_cpu, full_bytes = _run_profiled_handshake(
            bed, mode, topology, n_middleboxes
        )
        if server.resumed:
            raise RuntimeError("first handshake unexpectedly resumed")
        client, server, resumed_ops, resumed_cpu, resumed_bytes = _run_profiled_handshake(
            bed, mode, topology, n_middleboxes
        )
        if not (client.resumed and server.resumed):
            raise RuntimeError(f"second handshake did not resume for {mode}")
    finally:
        bed.session_cache, bed.client_sessions = saved
    return FullVsResumedResult(
        mode=mode.value,
        n_contexts=n_contexts,
        n_middleboxes=n_middleboxes,
        full_ops=full_ops,
        resumed_ops=resumed_ops,
        full_cpu=full_cpu,
        resumed_cpu=resumed_cpu,
        full_bytes=full_bytes,
        resumed_bytes=resumed_bytes,
    )


def table_full_vs_resumed(
    bed: TestBed,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
) -> List[FullVsResumedResult]:
    """Full-vs-resumed comparison across every resumable mode."""
    return [
        measure_full_vs_resumed(bed, mode, n_contexts, n_middleboxes)
        for mode in RESUMABLE_MODES
    ]
