"""Figure 8: handshake sizes.

Counts the bytes crossing the client's access link (both directions)
from the first ClientHello until the client's handshake completes — the
certificate flights, key exchanges and (for mcTLS) middlebox flights and
key material.  Configurations follow the paper: contexts {1, 4, 8} with
no middlebox, and 4 contexts with {1, 2} middleboxes.

Expected shape (paper values with 2048-bit OpenSSL certificates): a base
mcTLS handshake ≈ 0.5 kB larger than TLS (≈2.1 vs ≈1.6 kB), growing with
both contexts (key material) and middleboxes (certificates + flights),
while SplitTLS / E2E-TLS stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.harness import Mode, TestBed
from repro.transport import Chain


@dataclass
class HandshakeSizeResult:
    mode: str
    n_contexts: int
    n_middleboxes: int
    bytes_total: int


class _CountingChain(Chain):
    """Chain that counts bytes crossing the client's first hop.

    Uses the :class:`~repro.core.DriveLoop` ``on_hop`` tap: hop 0 is the
    client's access link, and the tap sees every transfer crossing it in
    either direction — no need to re-implement the pump loop.
    """

    def __init__(self, client, relays, server):
        super().__init__(client, relays, server)
        self.client_hop_bytes = 0
        self.on_hop = self._count_hop

    def _count_hop(self, hop_index: int, direction: str, data: bytes) -> None:
        if hop_index == 0:
            self.client_hop_bytes += len(data)

    def pump(self, max_rounds: int = 400):
        return super().pump(max_rounds)


def measure_handshake_size(
    bed: TestBed, mode: Mode, n_contexts: int, n_middleboxes: int
) -> HandshakeSizeResult:
    topology = (
        bed.topology(n_middleboxes, n_contexts=n_contexts)
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
        else None
    )
    client, server = bed.make_endpoints(mode, topology=topology)
    relays = bed.make_relays(mode, n_middleboxes)
    chain = _CountingChain(client, relays, server)
    client.start_handshake()
    chain.pump()
    if not client.handshake_complete:
        raise RuntimeError(f"handshake failed: {mode} ctx={n_contexts} mbox={n_middleboxes}")
    return HandshakeSizeResult(
        mode=mode.value,
        n_contexts=n_contexts,
        n_middleboxes=n_middleboxes,
        bytes_total=chain.client_hop_bytes,
    )


def figure8(bed: TestBed, modes=(Mode.MCTLS, Mode.SPLIT_TLS, Mode.E2E_TLS)) -> List[HandshakeSizeResult]:
    """The five bar groups of Figure 8."""
    configurations = [
        (1, 0),
        (4, 0),
        (8, 0),
        (4, 1),
        (4, 2),
    ]
    rows: List[HandshakeSizeResult] = []
    for n_contexts, n_middleboxes in configurations:
        for mode in modes:
            rows.append(measure_handshake_size(bed, mode, n_contexts, n_middleboxes))
    return rows
