"""Shared experiment harness.

Two halves:

* :class:`TestBed` — a cached set of CAs, identities and configuration
  (key generation is expensive in pure Python; every experiment reuses
  one bed), plus factories producing fresh protocol objects for each of
  the paper's four protocol modes.
* netsim glue — :class:`EndpointNode` / :class:`RelayNode` bind sans-I/O
  protocol objects to simulated TCP sockets, and :class:`SimPath` builds
  the full client → middleboxes → server topology over shared links, with
  each relay opening its upstream TCP connection only when its downstream
  side is accepted (as real proxies do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import BlindRelay, PlainConnection, PlainRelay, SplitTLSRelay
from repro.core.events import ApplicationData, HandshakeComplete
from repro.crypto.certs import CertificateAuthority, Identity, generate_rsa_key
from repro.crypto.dh import GROUP_MODP_1024, DHGroup
from repro.http.strategies import ContextStrategy, FOUR_CONTEXT, ONE_CONTEXT
from repro.mctls import (
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.mctls.contexts import ContextDefinition
from repro.mctls.session import HandshakeMode, KeyTransport
from repro.mdtls import MdTLSClient, MdTLSMiddlebox, MdTLSServer
from repro.netsim import Simulator
from repro.netsim.link import Link, duplex
from repro.netsim.profiles import LinkProfile
from repro.netsim.tcp import make_tcp_pair
from repro.tls.ciphersuites import (
    SUITE_DHE_RSA_AES128_CBC_SHA256,
    SUITE_DHE_RSA_SHACTR_SHA256,
)
from repro.tls.client import TLSClient
from repro.tls.connection import TLSConfig
from repro.tls.server import TLSServer
from repro.tls.sessioncache import ClientSessionStore, SessionCache


class Mode(str, Enum):
    """The four protocol modes of §5, the §3.6 mcTLS variant and the
    mdTLS delegation variant."""

    MCTLS = "mcTLS"
    MCTLS_CKD = "mcTLS-ckd"
    MDTLS = "mdTLS"
    SPLIT_TLS = "SplitTLS"
    E2E_TLS = "E2E-TLS"
    NO_ENCRYPT = "NoEncrypt"


DEFAULT_KEY_BITS = 1024


@dataclass
class TestBed:
    """Cached crypto material + per-mode protocol factories.

    ``key_bits`` trades realism against pure-Python run time (the paper
    used 2048-bit RSA; 1024 keeps handshake CPU tractable while keeping
    message structure identical — EXPERIMENTS.md records the choice).
    """

    __test__ = False  # not a pytest class despite the Test* name

    key_bits: int = DEFAULT_KEY_BITS
    dh_group: DHGroup = GROUP_MODP_1024
    fast_records: bool = True  # SHA-CTR record cipher for bulk simulation
    server_name: str = "server.example"
    # The paper's evaluated prototype used RSA key transport for the
    # MiddleboxKeyMaterial messages (§5); default to it so measured
    # numbers correspond to the evaluated system.  Pass KeyTransport.DHE
    # for the full (forward-secret) design.
    key_transport: KeyTransport = KeyTransport.RSA
    # Record framing the mcTLS clients offer ("mctls-default" or
    # "mctls-compact") plus the per-field sub-context schemas the compact
    # framing carries; non-mcTLS stacks have no framing negotiation and
    # ignore both.
    framing: str = "mctls-default"
    field_schemas: Sequence = ()

    def __post_init__(self) -> None:
        # Resumption is opt-in: call enable_resumption() and endpoints built
        # afterwards share a server-side SessionCache / client-side store,
        # so a second make_endpoints() + handshake resumes the first.
        self.session_cache: Optional[SessionCache] = None
        self.client_sessions: Optional[ClientSessionStore] = None
        self.ca = CertificateAuthority.create_root("Web Root CA", key_bits=self.key_bits)
        self.corp_ca = CertificateAuthority.create_root(
            "Interception Root", key_bits=self.key_bits
        )
        self.server_identity = Identity.issued_by(
            self.ca, self.server_name, key_bits=self.key_bits
        )
        # mdTLS clients sign warrants, so (unlike every other mode) the
        # client is certified too.
        self.client_identity = Identity.issued_by(
            self.ca, "client.example", key_bits=self.key_bits
        )
        # Forged identity cache for SplitTLS (real proxies cache these).
        key = generate_rsa_key(self.key_bits)
        cert = self.corp_ca.issue(self.server_name, key.public_key)
        self.forged_identity = Identity(name=self.server_name, key=key, chain=(cert,))
        self._mbox_identities: List[Identity] = []

    # -- session resumption --------------------------------------------------

    def enable_resumption(self, capacity: int = 64, ttl: float = 3600.0) -> None:
        """Create the shared session cache/store used by make_endpoints().

        One cache serves both plain-TLS and mcTLS endpoints: server entries
        are keyed by random 32-byte session ids and the client store
        namespaces mcTLS sessions, so the protocols cannot collide.
        SplitTLS relays terminate TLS themselves and do not resume.
        """
        self.session_cache = SessionCache(capacity=capacity, ttl=ttl)
        self.client_sessions = ClientSessionStore(capacity=capacity, ttl=ttl)

    # -- identities ----------------------------------------------------------

    def middlebox_identities(self, count: int) -> List[Identity]:
        while len(self._mbox_identities) < count:
            index = len(self._mbox_identities) + 1
            self._mbox_identities.append(
                Identity.issued_by(self.ca, f"mbox{index}.example", key_bits=self.key_bits)
            )
        return self._mbox_identities[:count]

    # -- configs -------------------------------------------------------------

    @property
    def suites(self):
        if self.fast_records:
            return (SUITE_DHE_RSA_SHACTR_SHA256,)
        return (SUITE_DHE_RSA_AES128_CBC_SHA256,)

    def client_tls_config(
        self, trust_corp: bool = False, with_identity: bool = False
    ) -> TLSConfig:
        # Installing an interception root ADDS it to the trust store;
        # the genuine web roots stay trusted.
        roots = [self.ca.certificate]
        if trust_corp:
            roots.insert(0, self.corp_ca.certificate)
        return TLSConfig(
            identity=self.client_identity if with_identity else None,
            trusted_roots=roots,
            server_name=self.server_name,
            dh_group=self.dh_group,
            cipher_suites=self.suites,
            framing=self.framing,
            field_schemas=tuple(self.field_schemas),
        )

    def server_tls_config(self) -> TLSConfig:
        return TLSConfig(
            identity=self.server_identity,
            trusted_roots=[self.ca.certificate],
            dh_group=self.dh_group,
            cipher_suites=self.suites,
        )

    def mbox_tls_config(self, identity: Identity) -> TLSConfig:
        return TLSConfig(
            identity=identity,
            trusted_roots=[self.ca.certificate],
            dh_group=self.dh_group,
            cipher_suites=self.suites,
        )

    # -- topology helpers -------------------------------------------------------

    def topology(
        self,
        n_middleboxes: int,
        contexts: Optional[Sequence[ContextDefinition]] = None,
        n_contexts: int = 1,
        permission: Permission = Permission.WRITE,
    ) -> SessionTopology:
        """A topology granting every middlebox ``permission`` on every
        context — "the worst case for mcTLS performance" (§5 setup)."""
        identities = self.middlebox_identities(n_middleboxes)
        middleboxes = [
            MiddleboxInfo(i + 1, identity.name) for i, identity in enumerate(identities)
        ]
        if contexts is None:
            grant = {
                m.mbox_id: permission for m in middleboxes
            }
            contexts = [
                ContextDefinition(i + 1, f"context-{i + 1}", dict(grant))
                for i in range(n_contexts)
            ]
        return SessionTopology(middleboxes=middleboxes, contexts=tuple(contexts))

    # -- protocol factories --------------------------------------------------------

    def make_endpoints(
        self,
        mode: Mode,
        topology: Optional[SessionTopology] = None,
    ) -> Tuple[object, object]:
        """Fresh (client_connection, server_connection) for ``mode``."""
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD):
            if topology is None:
                topology = self.topology(0)
            client = McTLSClient(
                self.client_tls_config(),
                topology=topology,
                key_transport=self.key_transport,
                session_store=self.client_sessions,
            )
            server = McTLSServer(
                self.server_tls_config(),
                mode=(
                    HandshakeMode.CLIENT_KEY_DIST
                    if mode is Mode.MCTLS_CKD
                    else HandshakeMode.DEFAULT
                ),
                session_cache=self.session_cache,
            )
            return client, server
        if mode is Mode.MDTLS:
            if topology is None:
                topology = self.topology(0)
            client = MdTLSClient(
                self.client_tls_config(with_identity=True),
                topology=topology,
                session_store=self.client_sessions,
            )
            server = MdTLSServer(
                self.server_tls_config(),
                session_cache=self.session_cache,
            )
            return client, server
        if mode is Mode.SPLIT_TLS:
            # The client's TLS session terminates at the proxy, which does
            # not keep a cache — SplitTLS always performs full handshakes.
            client = TLSClient(self.client_tls_config(trust_corp=True))
            server = TLSServer(self.server_tls_config())
            return client, server
        if mode is Mode.E2E_TLS:
            client = TLSClient(
                self.client_tls_config(), session_store=self.client_sessions
            )
            server = TLSServer(
                self.server_tls_config(), session_cache=self.session_cache
            )
            return client, server
        return PlainConnection(), PlainConnection()

    def make_relays(self, mode: Mode, count: int) -> List[object]:
        """Fresh relay objects for ``mode`` (one per middlebox hop)."""
        if count == 0:
            return []
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD):
            return [
                McTLSMiddlebox(identity.name, self.mbox_tls_config(identity))
                for identity in self.middlebox_identities(count)
            ]
        if mode is Mode.MDTLS:
            return [
                MdTLSMiddlebox(identity.name, self.mbox_tls_config(identity))
                for identity in self.middlebox_identities(count)
            ]
        if mode is Mode.SPLIT_TLS:
            relays = []
            for index in range(count):
                # Every hop after the first must also trust the corp root
                # (it connects to another interception proxy upstream).
                trust_corp = index < count - 1
                relays.append(
                    SplitTLSRelay(
                        self.corp_ca,
                        self.client_tls_config(trust_corp=trust_corp),
                        self.server_name,
                        key_bits=self.key_bits,
                        forged_identity=self.forged_identity,
                    )
                )
            return relays
        if mode is Mode.E2E_TLS:
            return [BlindRelay() for _ in range(count)]
        return [PlainRelay() for _ in range(count)]


# -- netsim glue -----------------------------------------------------------------


class EndpointNode:
    """Binds a sans-I/O connection to a simulated TCP socket."""

    def __init__(
        self,
        sim: Simulator,
        connection,
        socket,
        is_client: bool,
        on_event: Optional[Callable[[object, float], None]] = None,
    ):
        self.sim = sim
        self.connection = connection
        self.socket = socket
        self.is_client = is_client
        self.on_event = on_event
        socket.on_connected = self._on_connected
        socket.on_data = self._on_data

    def _on_connected(self) -> None:
        if self.is_client:
            self.connection.start_handshake()
            # Drain events queued by start_handshake itself (plain TCP
            # "completes" instantly) so drivers treat all modes uniformly.
            self._route_events(self.connection.receive_data(b""))
        self.flush()

    def _on_data(self, data: bytes) -> None:
        self._route_events(self.connection.receive_data(data))
        self.flush()

    def _route_events(self, events) -> None:
        if self.on_event is not None:
            for event in events:
                self.on_event(event, self.sim.now)

    def flush(self) -> None:
        data = self.connection.data_to_send()
        if data:
            self.socket.send(data)

    def send_application_data(self, data: bytes, context_id: Optional[int] = None) -> None:
        if context_id is None:
            self.connection.send_application_data(data)
        else:
            self.connection.send_application_data(data, context_id=context_id)
        self.flush()


class RelayNode:
    """Binds a two-sided relay to a downstream socket and a lazily
    connected upstream socket.

    Most relays dial their upstream hop as soon as a downstream client
    is accepted.  A relay exposing ``ready_to_dial_upstream()`` can delay
    the dial — SplitTLS proxies complete the client-side TLS handshake
    before contacting the real server, which is why the paper measures
    SplitTLS at the same 4-RTT TTFB as the other encrypted modes.
    """

    def __init__(self, sim: Simulator, relay, downstream_socket, upstream_socket):
        self.sim = sim
        self.relay = relay
        self.downstream = downstream_socket  # towards the client
        self.upstream = upstream_socket  # towards the server
        self._pending_upstream: List[bytes] = []
        self._accepted = False
        self._dialed = False
        downstream_socket.on_connected = self._on_downstream_accepted
        downstream_socket.on_data = self._on_client_data
        upstream_socket.on_connected = self._on_upstream_connected
        upstream_socket.on_data = self._on_server_data

    def _ready_to_dial(self) -> bool:
        probe = getattr(self.relay, "ready_to_dial_upstream", None)
        return probe() if probe is not None else True

    def _maybe_dial(self) -> None:
        if self._accepted and not self._dialed and self._ready_to_dial():
            self._dialed = True
            self.upstream.connect()

    def _on_downstream_accepted(self) -> None:
        self._accepted = True
        self._maybe_dial()

    def _on_upstream_connected(self) -> None:
        for data in self._pending_upstream:
            self.upstream.send(data)
        self._pending_upstream.clear()
        self.flush()

    def _on_client_data(self, data: bytes) -> None:
        self.relay.receive_from_client(data)
        self.flush()
        self._maybe_dial()

    def _on_server_data(self, data: bytes) -> None:
        self.relay.receive_from_server(data)
        self.flush()

    def flush(self) -> None:
        to_server = self.relay.data_to_server()
        if to_server:
            if self.upstream.established:
                self.upstream.send(to_server)
            else:
                self._pending_upstream.append(to_server)
        to_client = self.relay.data_to_client()
        if to_client:
            self.downstream.send(to_client)


@dataclass
class SimPath:
    """A fully wired client → relays → server path in one simulator."""

    sim: Simulator
    client_node: EndpointNode
    relay_nodes: List[RelayNode]
    server_node: EndpointNode
    links: List[Tuple[Link, Link]]

    def start(self) -> None:
        """Kick off the client's TCP connection (time 0 of the flow)."""
        self.client_node.socket.connect()

    def total_bytes_on_client_hop(self) -> int:
        fwd, rev = self.links[0]
        return fwd.bytes_carried + rev.bytes_carried


def build_links(
    sim: Simulator, profile: LinkProfile
) -> List[Tuple[Link, Link]]:
    """One duplex link pair per hop of the profile."""
    return [
        duplex(sim, bandwidth, delay, name=f"hop{i}")
        for i, (delay, bandwidth) in enumerate(
            zip(profile.hop_delays_s, profile.hop_bandwidths_bps)
        )
    ]


def build_path(
    sim: Simulator,
    bed: TestBed,
    mode: Mode,
    links: List[Tuple[Link, Link]],
    topology: Optional[SessionTopology] = None,
    nagle: bool = True,
    relays: Optional[List[object]] = None,
    client_on_event: Optional[Callable[[object, float], None]] = None,
    server_on_event: Optional[Callable[[object, float], None]] = None,
    attacker: Optional[object] = None,
    attacker_hop: int = 0,
) -> SimPath:
    """Wire protocol objects for ``mode`` across ``links``.

    ``len(links) - 1`` relays are created (one per interior hop) unless
    explicit ``relays`` are given.  TCP connections are chained: the
    client's SYN starts on :meth:`SimPath.start`; each relay dials its
    upstream hop upon accepting its downstream connection.

    ``attacker`` splices an extra on-path relay (any object with the
    two-sided relay interface, e.g. a ``repro.faults.TamperProxy``) into
    hop ``attacker_hop`` over a zero-delay link — tampering happens
    mid-simulation without perturbing the modelled link timings.
    """
    n_relays = len(links) - 1
    client_conn, server_conn = bed.make_endpoints(mode, topology=topology)
    if relays is None:
        relays = bed.make_relays(mode, n_relays)
    if len(relays) != n_relays:
        raise ValueError("need exactly one relay per interior hop")
    if attacker is not None:
        if not 0 <= attacker_hop <= n_relays:
            raise ValueError("attacker_hop must name an existing hop")
        # Split hop attacker_hop: its original link now reaches the
        # attacker, which forwards over an instantaneous link.
        links = (
            links[: attacker_hop + 1]
            + [duplex(sim, None, 0.0, name="tamper")]
            + links[attacker_hop + 1 :]
        )
        relays = list(relays[:attacker_hop]) + [attacker] + list(relays[attacker_hop:])

    # Socket pairs per hop (unconnected).
    socket_pairs = [
        make_tcp_pair(sim, fwd, rev, nagle=nagle, name=f"hop{i}")
        for i, (fwd, rev) in enumerate(links)
    ]

    client_node = EndpointNode(
        sim, client_conn, socket_pairs[0][0], is_client=True, on_event=client_on_event
    )
    relay_nodes = []
    for i, relay in enumerate(relays):
        relay_nodes.append(
            RelayNode(
                sim,
                relay,
                downstream_socket=socket_pairs[i][1],
                upstream_socket=socket_pairs[i + 1][0],
            )
        )
    server_node = EndpointNode(
        sim,
        server_conn,
        socket_pairs[-1][1],
        is_client=False,
        on_event=server_on_event,
    )
    return SimPath(
        sim=sim,
        client_node=client_node,
        relay_nodes=relay_nodes,
        server_node=server_node,
        links=links,
    )


# -- event helpers (uniform across TLS / mcTLS / plain) ---------------------------


def is_handshake_complete(event) -> bool:
    return isinstance(event, HandshakeComplete)


def is_app_data(event) -> bool:
    return isinstance(event, ApplicationData)


# Module-level testbed cache so pytest-benchmark runs share key material.
_BEDS: Dict[Tuple[int, bool], TestBed] = {}


def shared_testbed(key_bits: int = DEFAULT_KEY_BITS, fast_records: bool = True) -> TestBed:
    key = (key_bits, fast_records)
    if key not in _BEDS:
        _BEDS[key] = TestBed(key_bits=key_bits, fast_records=fast_records)
    return _BEDS[key]
