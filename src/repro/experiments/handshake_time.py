"""Figure 3: time to first byte vs. number of contexts / middleboxes.

Setup from the paper: one middlebox (left plot) or a varying number
(right plot), every hop a 10 Mbps link with 20 ms one-way delay, all
middleboxes granted full read/write access (worst case).  The client
requests a small object as soon as the session is up; TTFB is the arrival
time of the first response byte at the client.

The paper's observations this experiment must reproduce:

* NoEncrypt ≈ 2 total-RTTs; all encrypted protocols ≈ 4 total-RTTs;
* with Nagle enabled, mcTLS jumps by +1 RTT at context counts where a
  handshake flight crosses an MSS boundary (10 and 14 in the paper's
  build; the crossover points depend on message sizes);
* disabling Nagle (TCP_NODELAY) restores mcTLS to the common curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.experiments.harness import (
    Mode,
    SimPath,
    TestBed,
    build_links,
    build_path,
    is_app_data,
    is_handshake_complete,
)
from repro.netsim import Simulator
from repro.netsim.profiles import controlled
from repro.transport import Chain

REQUEST_SIZE = 100
RESPONSE_SIZE = 100


@dataclass
class TTFBResult:
    mode: str
    n_contexts: int
    n_middleboxes: int
    nagle: bool
    ttfb_s: float
    total_rtt_s: float

    @property
    def rtts(self) -> float:
        """TTFB expressed in multiples of the end-to-end RTT."""
        return self.ttfb_s / self.total_rtt_s


def measure_ttfb(
    bed: TestBed,
    mode: Mode,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
    nagle: bool = True,
    bandwidth_mbps: float = 10.0,
    hop_delay_ms: float = 20.0,
) -> TTFBResult:
    """Run one TTFB measurement in a fresh simulator."""
    sim = Simulator()
    profile = controlled(
        hops=n_middleboxes + 1,
        bandwidth_mbps=bandwidth_mbps,
        hop_delay_ms=hop_delay_ms,
    )
    links = build_links(sim, profile)
    topology = (
        bed.topology(n_middleboxes, n_contexts=n_contexts)
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
        else None
    )

    result: Dict[str, float] = {}
    path_holder: List[SimPath] = []

    def client_event(event, now):
        if is_handshake_complete(event):
            path_holder[0].client_node.send_application_data(
                b"R" * REQUEST_SIZE, context_id=1 if topology is not None else None
            )
        elif is_app_data(event) and "ttfb" not in result:
            result["ttfb"] = now

    def server_event(event, now):
        if is_app_data(event):
            path_holder[0].server_node.send_application_data(
                b"D" * RESPONSE_SIZE, context_id=1 if topology is not None else None
            )

    path = build_path(
        sim,
        bed,
        mode,
        links,
        topology=topology,
        nagle=nagle,
        client_on_event=client_event,
        server_on_event=server_event,
    )
    path_holder.append(path)
    path.start()
    sim.run(until=60.0)
    if "ttfb" not in result:
        raise RuntimeError(
            f"no response byte arrived ({mode}, ctx={n_contexts}, mbox={n_middleboxes})"
        )
    return TTFBResult(
        mode=mode.value if nagle else f"{mode.value} (Nagle off)",
        n_contexts=n_contexts,
        n_middleboxes=n_middleboxes,
        nagle=nagle,
        ttfb_s=result["ttfb"],
        total_rtt_s=profile.total_rtt_s,
    )


def measure_resumed_ttfb(
    bed: TestBed,
    mode: Mode,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
    nagle: bool = True,
    bandwidth_mbps: float = 10.0,
    hop_delay_ms: float = 20.0,
) -> TTFBResult:
    """TTFB for an *abbreviated* handshake.

    Primes a fresh session cache with one in-memory full handshake (zero
    simulated time), then measures TTFB over the simulated network; the
    network handshake therefore resumes, skipping certificates and key
    exchange.  Compare against :func:`measure_ttfb` for the same mode to
    see the RTT savings.  The bed's configured cache is restored on exit.
    """
    saved = (bed.session_cache, bed.client_sessions)
    bed.enable_resumption()
    try:
        topology = (
            bed.topology(n_middleboxes, n_contexts=n_contexts)
            if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
            else None
        )
        client, server = bed.make_endpoints(mode, topology=topology)
        relays = bed.make_relays(mode, n_middleboxes)
        chain = Chain(client, relays, server)
        client.start_handshake()
        chain.pump()
        if not client.handshake_complete or not server.handshake_complete:
            raise RuntimeError(f"priming handshake failed for {mode}")
        result = measure_ttfb(
            bed,
            mode,
            n_contexts=n_contexts,
            n_middleboxes=n_middleboxes,
            nagle=nagle,
            bandwidth_mbps=bandwidth_mbps,
            hop_delay_ms=hop_delay_ms,
        )
        if bed.session_cache.stats.hits < 1:
            raise RuntimeError(f"simulated handshake did not resume for {mode}")
    finally:
        bed.session_cache, bed.client_sessions = saved
    return replace(result, mode=f"{result.mode} (resumed)")


def figure3_left(
    bed: TestBed, context_counts=tuple(range(1, 17)), n_middleboxes: int = 1
) -> List[TTFBResult]:
    """TTFB vs number of contexts (mcTLS sweeps; baselines are flat)."""
    rows: List[TTFBResult] = []
    for n_ctx in context_counts:
        rows.append(measure_ttfb(bed, Mode.MCTLS, n_contexts=n_ctx, n_middleboxes=n_middleboxes))
        rows.append(
            measure_ttfb(
                bed, Mode.MCTLS, n_contexts=n_ctx, n_middleboxes=n_middleboxes, nagle=False
            )
        )
        for mode in (Mode.SPLIT_TLS, Mode.E2E_TLS, Mode.NO_ENCRYPT):
            rows.append(measure_ttfb(bed, mode, n_contexts=n_ctx, n_middleboxes=n_middleboxes))
    return rows


def figure3_right(
    bed: TestBed, middlebox_counts=tuple(range(0, 17, 2)), n_contexts: int = 1
) -> List[TTFBResult]:
    """TTFB vs number of middleboxes (each adds a 20 ms hop)."""
    rows: List[TTFBResult] = []
    for n_mbox in middlebox_counts:
        rows.append(measure_ttfb(bed, Mode.MCTLS, n_contexts=n_contexts, n_middleboxes=n_mbox))
        rows.append(
            measure_ttfb(
                bed, Mode.MCTLS, n_contexts=n_contexts, n_middleboxes=n_mbox, nagle=False
            )
        )
        for mode in (Mode.SPLIT_TLS, Mode.E2E_TLS, Mode.NO_ENCRYPT):
            rows.append(measure_ttfb(bed, mode, n_contexts=n_contexts, n_middleboxes=n_mbox))
    return rows
