"""Experiment implementations, one module per paper table/figure.

=================  =====================================================
module             reproduces
=================  =====================================================
``opcounts``       Table 3 — crypto operations per handshake
``handshake_time`` Figure 3 — time to first byte vs contexts/middleboxes
``page_load``      Figures 4 & 6 — page load time CDFs
``throughput``     Figure 5 — handshakes/sec at server and middlebox
``transfer``       Figure 7 — file download times
``handshake_size`` Figure 8 — handshake sizes
``overhead``       §5.2 — record MAC/data volume overhead
=================  =====================================================

Each experiment is a plain function returning structured rows; the
``benchmarks/`` directory wraps them in pytest-benchmark entries that
print paper-style tables.
"""

from repro.experiments.harness import Mode, TestBed

__all__ = ["Mode", "TestBed"]
