"""§5.2: data-volume overhead of the record protocols.

Two parts, as in the paper:

* **handshake bytes** — covered by Figure 8 (:mod:`handshake_size`);
* **record overhead** — every mcTLS application record carries three
  32-byte MACs, a context byte and per-record cipher framing, versus one
  MAC for TLS.  The paper reports, for the web-browsing workload, a
  median per-page byte overhead relative to NoEncrypt of ≈0.6 % for
  SplitTLS and ≈2.4 % for mcTLS ("as expected, mcTLS triples that").

This experiment replays the corpus pages through the record codecs
directly (no network needed — overhead is a pure framing property) using
the 4-Context strategy for mcTLS, and reports the per-page overhead
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Dict, List

from repro.http import FOUR_CONTEXT, HttpRequest, HttpResponse
from repro.http.strategies import ContextStrategy
from repro.mctls import keys as mk
from repro.mctls.record import McTLSRecordLayer
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256
from repro.tls.record import APPLICATION_DATA, RecordLayer
from repro.workloads.alexa import PageCorpus, SyntheticPage

_SUITE = SUITE_DHE_RSA_SHACTR_SHA256

_REQUEST = HttpRequest(
    target="/object/0?size=0",
    headers=[
        ("Host", "server.example"),
        ("User-Agent", "repro-browser/1.0 (mcTLS reproduction)"),
        ("Accept", "text/html,application/xhtml+xml,*/*;q=0.8"),
        ("Cookie", "session=0123456789abcdef0123456789abcdef"),
    ],
)


def _tls_record_layer() -> RecordLayer:
    layer = RecordLayer()
    layer.write_state.activate(
        _SUITE, _SUITE.new_cipher(bytes(16)), b"m" * 32
    )
    return layer


def _mctls_record_layer(context_ids) -> McTLSRecordLayer:
    layer = McTLSRecordLayer(is_client=True)
    layer.set_suite(_SUITE)
    layer.set_endpoint_keys(mk.derive_endpoint_keys(b"S" * 48, b"c" * 32, b"s" * 32))
    for ctx_id in context_ids:
        layer.install_context_keys(
            ctx_id,
            mk.ckd_context_keys(b"S" * 48, b"c" * 32, b"s" * 32, ctx_id),
        )
    layer.activate_write()
    return layer


def _page_messages(page: SyntheticPage):
    """(request, response) pairs for every object of a page."""
    for connection in page.connections:
        for index, size in enumerate(connection):
            request = HttpRequest(
                target=f"/object/{index}?size={size}", headers=list(_REQUEST.headers)
            )
            response = HttpResponse(
                headers=[("Content-Type", "application/octet-stream")], body=b"x" * size
            )
            yield request, response


@dataclass
class OverheadResult:
    protocol: str
    median_overhead_pct: float
    p90_overhead_pct: float
    per_page_pct: List[float]


def _page_wire_bytes_plain(page: SyntheticPage) -> int:
    return sum(
        len(req.encode()) + len(resp.encode()) for req, resp in _page_messages(page)
    )


def _page_wire_bytes_tls(page: SyntheticPage) -> int:
    layer = _tls_record_layer()
    total = 0
    for req, resp in _page_messages(page):
        total += len(layer.encode(APPLICATION_DATA, req.encode()))
        total += len(layer.encode(APPLICATION_DATA, resp.encode()))
    return total


def _page_wire_bytes_mctls(page: SyntheticPage, strategy: ContextStrategy) -> int:
    layer = _mctls_record_layer(strategy.context_ids)
    total = 0
    for req, resp in _page_messages(page):
        for ctx_id, piece in strategy.split_request(req):
            total += len(layer.encode(APPLICATION_DATA, piece, ctx_id))
        for ctx_id, piece in strategy.split_response(resp):
            total += len(layer.encode(APPLICATION_DATA, piece, ctx_id))
    return total


def record_overhead(
    corpus: PageCorpus, strategy: ContextStrategy = FOUR_CONTEXT, max_pages: int = 100
) -> Dict[str, OverheadResult]:
    """Per-page record overhead vs NoEncrypt for SplitTLS and mcTLS."""
    pages = list(corpus)[:max_pages]
    tls_pct: List[float] = []
    mctls_pct: List[float] = []
    for page in pages:
        plain = _page_wire_bytes_plain(page)
        tls = _page_wire_bytes_tls(page)
        mctls = _page_wire_bytes_mctls(page, strategy)
        tls_pct.append(100.0 * (tls - plain) / plain)
        mctls_pct.append(100.0 * (mctls - plain) / plain)

    def summarize(name: str, values: List[float]) -> OverheadResult:
        ordered = sorted(values)
        return OverheadResult(
            protocol=name,
            median_overhead_pct=median(ordered),
            p90_overhead_pct=ordered[int(0.9 * (len(ordered) - 1))],
            per_page_pct=values,
        )

    return {
        "SplitTLS": summarize("SplitTLS", tls_pct),
        "mcTLS": summarize("mcTLS", mctls_pct),
    }
