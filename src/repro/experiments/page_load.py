"""Figures 4 & 6: web page load time.

Replays synthetic Alexa-like pages (see :mod:`repro.workloads`) through
the simulated network, following the paper's replay rules: each page's
connections run in parallel, each object is requested once the previous
object on the same connection has fully arrived, and every connection
does its own transport + security handshake through the middlebox.

Figure 4 compares mcTLS context strategies (1-Context / 4-Context /
Context-per-Header, ± Nagle); Figure 6 compares protocols (mcTLS-4Ctx vs
SplitTLS / E2E-TLS / NoEncrypt).  The paper's findings: strategies are
indistinguishable; mcTLS matches the others once Nagle is off (multiple
per-context ``send()`` calls trigger Nagle stalls otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.harness import (
    Mode,
    TestBed,
    build_links,
    build_path,
    is_app_data,
    is_handshake_complete,
)
from repro.http import (
    FOUR_CONTEXT,
    HttpClientSession,
    HttpRequest,
    HttpResponse,
    HttpServerSession,
    ONE_CONTEXT,
)
from repro.http.strategies import CONTEXT_PER_HEADER, ContextStrategy
from repro.netsim import Simulator
from repro.netsim.profiles import controlled
from repro.workloads.alexa import PageCorpus, SyntheticPage

STRATEGIES: Dict[str, ContextStrategy] = {
    "1-Ctx": ONE_CONTEXT,
    "4-Ctx": FOUR_CONTEXT,
    "CtxPerHdr": CONTEXT_PER_HEADER,
}

_REQUEST_HEADERS = [
    ("Host", "server.example"),
    ("User-Agent", "repro-browser/1.0 (mcTLS reproduction)"),
    ("Accept", "text/html,application/xhtml+xml,*/*;q=0.8"),
    ("Cookie", "session=0123456789abcdef0123456789abcdef"),
]


def _object_request(size: int, index: int) -> HttpRequest:
    return HttpRequest(
        target=f"/object/{index}?size={size}", headers=list(_REQUEST_HEADERS)
    )


def _serve(request: HttpRequest) -> HttpResponse:
    size = int(request.target.rsplit("size=", 1)[1])
    return HttpResponse(
        headers=[("Content-Type", "application/octet-stream")],
        body=b"x" * size,
    )


@dataclass
class PageLoadResult:
    label: str
    page_url: str
    plt_s: float
    object_count: int
    total_bytes: int


class _ConnectionDriver:
    """Fetches one connection's object list sequentially."""

    def __init__(self, path, strategy: Optional[ContextStrategy], sizes, on_done):
        self.path = path
        self.sizes = list(sizes)
        self.index = 0
        self.on_done = on_done
        self.client_session = HttpClientSession(path.client_node.connection, strategy)
        self.server_session = HttpServerSession(
            path.server_node.connection, _serve, strategy
        )

    def client_event(self, event, now):
        if is_handshake_complete(event):
            self._request_next()
        elif is_app_data(event):
            self.client_session.on_data(event.data)
            self.path.client_node.flush()

    def server_event(self, event, now):
        if is_app_data(event):
            self.server_session.on_data(event.data)
            self.path.server_node.flush()

    def _request_next(self):
        size = self.sizes[self.index]
        self.client_session.request(
            _object_request(size, self.index), self._on_response
        )
        self.path.client_node.flush()

    def _on_response(self, response):
        self.index += 1
        if self.index < len(self.sizes):
            self._request_next()
        else:
            self.on_done()


def load_page(
    bed: TestBed,
    mode: Mode,
    page: SyntheticPage,
    strategy: Optional[ContextStrategy] = None,
    nagle: bool = True,
    n_middleboxes: int = 1,
    bandwidth_mbps: float = 10.0,
    hop_delay_ms: float = 20.0,
    label: str = "",
) -> PageLoadResult:
    """Load one page; returns the page load time (last object completion)."""
    sim = Simulator()
    profile = controlled(
        hops=n_middleboxes + 1, bandwidth_mbps=bandwidth_mbps, hop_delay_ms=hop_delay_ms
    )
    links = build_links(sim, profile)

    if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS):
        if strategy is None:
            strategy = FOUR_CONTEXT
        from repro.mctls import Permission, SessionTopology

        contexts = strategy.uniform_permissions(
            list(range(1, n_middleboxes + 1)), Permission.WRITE
        )
        topology = bed.topology(n_middleboxes, contexts=contexts)
        conn_strategy = strategy
    else:
        topology = None
        conn_strategy = None

    finished = {"count": 0}
    plt = {"t": 0.0}
    drivers: List[_ConnectionDriver] = []

    n_connections = len(page.connections)

    def make_done(sim_ref):
        def done():
            finished["count"] += 1
            plt["t"] = max(plt["t"], sim_ref.now)
        return done

    for sizes in page.connections:
        driver_box: List[_ConnectionDriver] = []

        def client_event(event, now, box=driver_box):
            box[0].client_event(event, now)

        def server_event(event, now, box=driver_box):
            box[0].server_event(event, now)

        path = build_path(
            sim,
            bed,
            mode,
            links,
            topology=topology,
            nagle=nagle,
            client_on_event=client_event,
            server_on_event=server_event,
        )
        driver = _ConnectionDriver(path, conn_strategy, sizes, make_done(sim))
        driver_box.append(driver)
        drivers.append(driver)
        path.start()

    sim.run(until=300.0)
    if finished["count"] != n_connections:
        raise RuntimeError(
            f"page load stalled: {finished['count']}/{n_connections} connections done"
        )
    return PageLoadResult(
        label=label,
        page_url=page.url,
        plt_s=plt["t"],
        object_count=page.object_count,
        total_bytes=page.total_bytes,
    )


def figure4(
    bed: TestBed, corpus: PageCorpus, max_pages: Optional[int] = None
) -> List[PageLoadResult]:
    """PLT per page for the three context strategies, Nagle on and off."""
    pages = list(corpus)[:max_pages] if max_pages else list(corpus)
    rows: List[PageLoadResult] = []
    for name, strategy in STRATEGIES.items():
        for nagle in (True, False):
            label = f"mcTLS ({name})" + ("" if nagle else " Nagle off")
            for page in pages:
                rows.append(
                    load_page(
                        bed, Mode.MCTLS, page, strategy=strategy, nagle=nagle, label=label
                    )
                )
    return rows


def figure6(
    bed: TestBed, corpus: PageCorpus, max_pages: Optional[int] = None
) -> List[PageLoadResult]:
    """PLT per page: mcTLS (4-Ctx, ± Nagle) vs the three baselines."""
    pages = list(corpus)[:max_pages] if max_pages else list(corpus)
    rows: List[PageLoadResult] = []
    series = [
        ("mcTLS (4 Ctx)", Mode.MCTLS, True),
        ("mcTLS (4 Ctx, Nagle off)", Mode.MCTLS, False),
        ("SplitTLS (Nagle off)", Mode.SPLIT_TLS, False),
        ("E2E-TLS (Nagle off)", Mode.E2E_TLS, False),
        ("NoEncrypt (Nagle off)", Mode.NO_ENCRYPT, False),
    ]
    for label, mode, nagle in series:
        for page in pages:
            rows.append(
                load_page(bed, mode, page, strategy=FOUR_CONTEXT, nagle=nagle, label=label)
            )
    return rows


def cdf(values: List[float], points: int = 100) -> List[tuple]:
    """(value, cumulative_fraction) pairs for plotting/reporting."""
    from repro.experiments.stats import cdf_points

    return cdf_points(values, points)
