"""Synthetic Alexa-like page corpus.

Object sizes are drawn from an empirical quantile function interpolating
the percentiles the paper publishes (§5.1: 0.5 kB / 4.9 kB / 185.6 kB at
P10/P50/P99), log-linearly between anchors.  Pages hold a log-normal
number of objects; objects are assigned to a page's connections uniformly
at random — exactly the paper's replay rule ("we assign the object to an
existing [connection] chosen at random"), with the paper's dependency
model (each object depends only on the previous object loaded in the
same connection).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import List, Sequence

# Quantile anchors for object sizes, in bytes.  P10/P50/P99 come from the
# paper; the tails are representative web-object extremes.
_SIZE_ANCHORS = (
    (0.00, 120),
    (0.10, 500),
    (0.50, 4_900),
    (0.99, 185_600),
    (1.00, 2_000_000),
)


def object_size_quantile(q: float) -> int:
    """The object size at quantile ``q`` (log-linear between anchors)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    for (q_low, s_low), (q_high, s_high) in zip(_SIZE_ANCHORS, _SIZE_ANCHORS[1:]):
        if q <= q_high:
            if q_high == q_low:
                return s_low
            fraction = (q - q_low) / (q_high - q_low)
            log_size = math.log(s_low) + fraction * (math.log(s_high) - math.log(s_low))
            return max(1, round(math.exp(log_size)))
    return _SIZE_ANCHORS[-1][1]


@dataclass(frozen=True)
class SyntheticPage:
    """One page: per-connection ordered object size lists.

    ``connections[i]`` is the ordered list of object sizes fetched on
    connection ``i``; each object waits for the previous one on the same
    connection (the paper's dependency assumption).
    """

    url: str
    connections: Sequence[Sequence[int]]

    @property
    def object_count(self) -> int:
        return sum(len(c) for c in self.connections)

    @property
    def total_bytes(self) -> int:
        return sum(sum(c) for c in self.connections)


@dataclass(frozen=True)
class PageCorpus:
    pages: Sequence[SyntheticPage]
    seed: int

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self):
        return iter(self.pages)

    # -- persistence (reproducible experiment inputs) -------------------

    def to_json(self) -> str:
        """Serialize for exact replay across machines/runs."""
        return json.dumps(
            {
                "seed": self.seed,
                "pages": [
                    {"url": p.url, "connections": [list(c) for c in p.connections]}
                    for p in self.pages
                ],
            }
        )

    @classmethod
    def from_json(cls, data: str) -> "PageCorpus":
        raw = json.loads(data)
        pages = tuple(
            SyntheticPage(
                url=entry["url"],
                connections=tuple(tuple(c) for c in entry["connections"]),
            )
            for entry in raw["pages"]
        )
        return cls(pages=pages, seed=raw["seed"])

    def size_percentile(self, q: float) -> int:
        sizes = sorted(s for page in self.pages for c in page.connections for s in c)
        if not sizes:
            raise ValueError("empty corpus")
        index = min(len(sizes) - 1, int(q * len(sizes)))
        return sizes[index]


def _page_object_count(rng: random.Random) -> int:
    """Objects per page: log-normal, median ≈ 40, clamped to [1, 300]."""
    count = round(rng.lognormvariate(math.log(40), 0.7))
    return max(1, min(300, count))


def _page_connection_count(rng: random.Random, n_objects: int) -> int:
    """Connections per page: roughly one per 3 objects, at least 2 (when
    the page has ≥ 2 objects), at most 32 — matching browser behaviour of
    ~6 connections per host across several hosts."""
    if n_objects == 1:
        return 1
    estimate = round(n_objects / 3)
    return max(2, min(32, estimate, n_objects))


def generate_corpus(n_pages: int = 500, seed: int = 2015) -> PageCorpus:
    """Generate a deterministic corpus of ``n_pages`` synthetic pages."""
    rng = random.Random(seed)
    pages: List[SyntheticPage] = []
    for page_index in range(n_pages):
        n_objects = _page_object_count(rng)
        n_connections = _page_connection_count(rng, n_objects)
        connections: List[List[int]] = [[] for _ in range(n_connections)]
        # First object (the HTML) goes on connection 0; the rest land on a
        # random connection, as in the paper's replay.
        for object_index in range(n_objects):
            size = object_size_quantile(rng.random())
            if object_index == 0:
                connections[0].append(size)
            else:
                connections[rng.randrange(n_connections)].append(size)
        pages.append(
            SyntheticPage(
                url=f"page{page_index:03d}.example",
                connections=tuple(tuple(c) for c in connections if c),
            )
        )
    return PageCorpus(pages=tuple(pages), seed=seed)
