"""The fixed file sizes used in the paper's transfer experiments (§5.1).

"To choose realistic file sizes, we loaded the top 500 Alexa pages and
picked the 10th, 50th, and 99th percentile object sizes (0.5 kB, 4.9 kB,
and 185 kB...). We also consider large (10MB) downloads."
"""

from __future__ import annotations

PAPER_FILE_SIZES = {
    "p10": 500,  # 0.5 kB — 10th percentile object
    "p50": 4_900,  # 4.9 kB — median object
    "p99": 185_600,  # 185.6 kB — 99th percentile object
    "large": 10 * 1024 * 1024,  # 10 MB — zip files / video chunks
}
