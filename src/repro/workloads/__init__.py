"""Synthetic workloads standing in for the paper's recorded page loads.

The paper replays the Alexa top-500 pages recorded in Chrome (object
sizes, connection reuse) and reports the object-size percentiles it uses
for file-transfer tests: 10th = 0.5 kB, 50th = 4.9 kB, 99th = 185.6 kB.
We generate a seeded corpus whose object-size distribution interpolates
exactly those anchors, with page structure (objects per page, connections
per page, random object→connection assignment) following the paper's
replay methodology.
"""

from repro.workloads.alexa import (
    PageCorpus,
    SyntheticPage,
    generate_corpus,
    object_size_quantile,
)
from repro.workloads.filesizes import PAPER_FILE_SIZES

__all__ = [
    "PAPER_FILE_SIZES",
    "PageCorpus",
    "SyntheticPage",
    "generate_corpus",
    "object_size_quantile",
]
