"""Link profiles matching the paper's experimental environments.

*Controlled* (§5, "Experimental Setup"): per-hop links shaped to a chosen
bandwidth with 20 ms one-way delay, as in "each link has a 20 ms delay
(80 ms total RTT)" for the client–middlebox–server topology.

*Wide area*: client in Spain, middlebox in Ireland, server in California,
reached over fiber or 3G access.  We model the access link (fiber: high
bandwidth, low extra delay; 3G: ~4 Mbps down, ~50 ms extra one-way delay)
plus representative inter-region propagation delays (Spain–Ireland
~15 ms, Ireland–California ~70 ms one-way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence


@dataclass(frozen=True)
class LinkProfile:
    """Per-hop bandwidth/delay settings for a client→mbox→server path.

    ``hop_delays_s`` lists one-way delays per hop; ``hop_bandwidths_bps``
    the matching serialization rates (None = unconstrained).
    """

    name: str
    hop_delays_s: Sequence[float]
    hop_bandwidths_bps: Sequence[Optional[float]]

    def __post_init__(self) -> None:
        if len(self.hop_delays_s) != len(self.hop_bandwidths_bps):
            raise ValueError("per-hop delay and bandwidth lists must align")

    @property
    def hops(self) -> int:
        return len(self.hop_delays_s)

    @property
    def total_rtt_s(self) -> float:
        return 2 * sum(self.hop_delays_s)


def controlled(
    hops: int = 2,
    bandwidth_mbps: float = 10.0,
    hop_delay_ms: float = 20.0,
) -> LinkProfile:
    """The paper's controlled environment: every hop identical."""
    return LinkProfile(
        name=f"controlled-{bandwidth_mbps}mbps-{hops}hops",
        hop_delays_s=tuple([hop_delay_ms / 1000.0] * hops),
        hop_bandwidths_bps=tuple([bandwidth_mbps * 1e6] * hops),
    )


def industrial(hops: int = 2) -> LinkProfile:
    """A Madtls-style industrial segment: short switched-Ethernet links
    (100 Mbps, ~0.5 ms one-way per hop) between controller, inspecting
    middlebox and field device.  Propagation is negligible here — the
    latency budget is consumed by per-record processing at each hop,
    which is exactly what the industrial low-latency scenario measures.
    """
    return LinkProfile(
        name=f"industrial-{hops}hops",
        hop_delays_s=tuple([0.0005] * hops),
        hop_bandwidths_bps=tuple([100e6] * hops),
    )


def wide_area_fiber() -> LinkProfile:
    """Client (Spain, fiber) → middlebox (Ireland) → server (California)."""
    return LinkProfile(
        name="wide-area-fiber",
        hop_delays_s=(0.018, 0.070),
        hop_bandwidths_bps=(100e6, 1e9),
    )


def wide_area_3g() -> LinkProfile:
    """Client (Spain, 3G) → middlebox (Ireland) → server (California)."""
    return LinkProfile(
        name="wide-area-3g",
        hop_delays_s=(0.065, 0.070),
        hop_bandwidths_bps=(4e6, 1e9),
    )


PROFILES: Dict[str, LinkProfile] = {
    "controlled": controlled(),
    "fiber": wide_area_fiber(),
    "3g": wide_area_3g(),
    "industrial": industrial(),
}
