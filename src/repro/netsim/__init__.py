"""A deterministic discrete-event network simulator.

Stands in for the paper's testbed (tc-shaped links, EC2 wide-area paths):
point-to-point links with bandwidth and propagation delay, and a TCP model
with a 3-way handshake, MSS segmentation, **Nagle's algorithm** (the
protagonist of the paper's §5.1 timing anomalies), optional delayed ACKs,
and IW10 slow start.

The sans-I/O protocol stacks (:mod:`repro.tls`, :mod:`repro.mctls`) run
unmodified on simulated sockets, so simulated timings reflect the real
byte streams the protocols produce.
"""

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.tcp import TCPSocket, connect_tcp
from repro.netsim.profiles import LinkProfile, PROFILES

__all__ = [
    "Link",
    "LinkProfile",
    "PROFILES",
    "Simulator",
    "TCPSocket",
    "connect_tcp",
]
