"""An O(1)-amortised FIFO byte buffer.

``bytearray`` deletion from the front is O(n); multi-megabyte simulated
transfers need better.  :class:`ByteQueue` keeps appended chunks intact
and tracks a head offset, so ``peek``/``advance`` never copy more than
they return.
"""

from __future__ import annotations

from collections import deque


class ByteQueue:
    """FIFO queue of bytes with cheap front consumption."""

    def __init__(self) -> None:
        self._chunks: deque = deque()
        self._head_offset = 0
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def append(self, data: bytes) -> None:
        if data:
            self._chunks.append(bytes(data))
            self._length += len(data)

    def peek(self, n: int) -> bytes:
        """Return up to ``n`` bytes from the front without consuming."""
        if n <= 0 or not self._length:
            return b""
        n = min(n, self._length)
        parts = []
        taken = 0
        offset = self._head_offset
        for chunk in self._chunks:
            piece = chunk[offset : offset + (n - taken)]
            parts.append(piece)
            taken += len(piece)
            offset = 0
            if taken == n:
                break
        return b"".join(parts)

    def advance(self, n: int) -> None:
        """Discard ``n`` bytes from the front."""
        if n < 0 or n > self._length:
            raise ValueError("cannot advance past the end of the queue")
        self._length -= n
        while n:
            head = self._chunks[0]
            available = len(head) - self._head_offset
            if n < available:
                self._head_offset += n
                return
            n -= available
            self._chunks.popleft()
            self._head_offset = 0

    def take(self, n: int) -> bytes:
        """Consume and return up to ``n`` bytes."""
        data = self.peek(n)
        self.advance(len(data))
        return data
