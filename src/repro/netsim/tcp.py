"""A TCP model sufficient for the paper's timing phenomena.

Modelled: the 3-way handshake (SYN / SYN-ACK / ACK), MSS segmentation
with 40-byte headers, **Nagle's algorithm** (RFC 896: a sub-MSS segment
may only be transmitted when no unacknowledged data is outstanding),
optional delayed ACKs (ack every second segment or after a timeout),
IW10 slow start with per-ACK exponential growth, a receive-window cap,
and FIN-initiated close.

Not modelled: loss, reordering, retransmission, congestion response —
the paper's testbed experiments are loss-free, and every reported effect
(RTT counting, Nagle stalls, bandwidth-limited transfers, slow-start
ramps) is reproduced by the mechanics above.

The paper's §5.1 anomaly lives here: with Nagle on, a handshake flight
larger than one MSS sends its first MSS immediately but holds the tail
until the first segment is ACKed — one extra RTT per stall.  Disabling
Nagle (``nagle=False``, i.e. TCP_NODELAY) removes the stalls.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.bytequeue import ByteQueue
from repro.netsim.engine import Simulator
from repro.netsim.link import Link

MSS = 1448  # bytes of payload per full segment (1500 MTU - 40 - 12 options)
HEADER = 40  # IP + TCP header bytes
INITIAL_CWND_SEGMENTS = 10  # IW10 (RFC 6928)
DEFAULT_RWND = 1 << 20  # 1 MiB receive window
DELACK_TIMEOUT = 0.040  # 40 ms delayed-ACK timer


class TCPError(Exception):
    pass


class TCPSocket:
    """One endpoint of a simulated TCP connection.

    Build pairs with :func:`connect_tcp`; do not instantiate directly
    unless wiring custom topologies.
    """

    def __init__(
        self,
        sim: Simulator,
        out_link: Link,
        in_link: Link,
        nagle: bool = True,
        delayed_ack: bool = False,
        rwnd: int = DEFAULT_RWND,
        mss: int = MSS,
        name: str = "",
    ):
        self.sim = sim
        self.out_link = out_link
        self.in_link = in_link
        self.nagle = nagle
        self.delayed_ack = delayed_ack
        self.rwnd = rwnd
        self.mss = mss
        self.name = name

        self.peer: Optional["TCPSocket"] = None
        self.established = False
        self.closed = False
        self._fin_sent = False
        self._fin_received = False

        # Sender state.
        self._buf = ByteQueue()
        self._inflight = 0
        self._cwnd = INITIAL_CWND_SEGMENTS * mss

        # Receiver state (delayed ACK bookkeeping).
        self._segments_unacked = 0
        self._bytes_unacked = 0
        self._delack_event = None

        # Application callbacks.
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_peer_closed: Optional[Callable[[], None]] = None

        # Statistics.
        self.bytes_sent = 0
        self.segments_sent = 0

    # -- connection establishment -------------------------------------------

    def connect(self) -> None:
        """Client side: start the 3-way handshake."""
        if self.peer is None:
            raise TCPError("socket is not wired to a peer")
        self.out_link.send(HEADER, self.peer._on_syn)

    def _on_syn(self) -> None:
        # Server side: respond SYN-ACK.
        self.out_link.send(HEADER, self.peer._on_syn_ack)

    def _on_syn_ack(self) -> None:
        # Client side: established; final ACK travels to the server.
        self.established = True
        self.out_link.send(HEADER, self.peer._on_handshake_ack)
        if self.on_connected is not None:
            self.on_connected()
        self._try_send()

    def _on_handshake_ack(self) -> None:
        self.established = True
        if self.on_connected is not None:
            self.on_connected()
        self._try_send()

    # -- sending ------------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Queue application data for transmission."""
        if self.closed or self._fin_sent:
            raise TCPError("cannot send on a closed socket")
        self._buf.append(data)
        if self.established:
            self._try_send()

    def close(self) -> None:
        """Half-close: flush buffered data, then send FIN."""
        if self.closed:
            return
        self.closed = True
        if self.established:
            self._try_send()

    def _try_send(self) -> None:
        while len(self._buf):
            window = min(self._cwnd, self.peer.rwnd) - self._inflight
            if window < 1:
                return
            chunk_len = min(len(self._buf), self.mss, int(window))
            if chunk_len < self.mss and len(self._buf) >= self.mss:
                # Window-limited partial segment: wait for more window.
                return
            if (
                self.nagle
                and chunk_len < self.mss
                and self._inflight > 0
            ):
                # Nagle: hold the small tail until everything is ACKed.
                return
            chunk = self._buf.take(chunk_len)
            self._transmit(chunk)
        if self.closed and not self._fin_sent and not len(self._buf):
            self._fin_sent = True
            self.out_link.send(HEADER, self.peer._on_fin)

    def _transmit(self, chunk: bytes) -> None:
        self._inflight += len(chunk)
        self.bytes_sent += len(chunk)
        self.segments_sent += 1
        self.out_link.send(HEADER + len(chunk), lambda: self.peer._on_segment(chunk))

    # -- receiving -----------------------------------------------------------------

    def _on_segment(self, payload: bytes) -> None:
        self._schedule_ack(len(payload))
        if self.on_data is not None:
            self.on_data(payload)

    def _schedule_ack(self, payload_len: int) -> None:
        self._bytes_unacked += payload_len
        self._segments_unacked += 1
        if not self.delayed_ack or self._segments_unacked >= 2:
            self._send_ack()
        elif self._delack_event is None:
            self._delack_event = self.sim.schedule(DELACK_TIMEOUT, self._send_ack)

    def _send_ack(self) -> None:
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        if self._bytes_unacked == 0:
            return
        acked = self._bytes_unacked
        self._bytes_unacked = 0
        self._segments_unacked = 0
        self.out_link.send(HEADER, lambda: self.peer._on_ack(acked))

    def _on_ack(self, acked: int) -> None:
        self._inflight -= acked
        if self._inflight < 0:  # pragma: no cover - defensive
            self._inflight = 0
        # Slow start: exponential growth, one MSS per MSS acknowledged.
        self._cwnd += min(acked, self.mss)
        self._try_send()

    def _on_fin(self) -> None:
        self._fin_received = True
        if self.on_peer_closed is not None:
            self.on_peer_closed()


def make_tcp_pair(
    sim: Simulator,
    fwd_link: Link,
    rev_link: Link,
    nagle: bool = True,
    server_nagle: Optional[bool] = None,
    delayed_ack: bool = False,
    rwnd: int = DEFAULT_RWND,
    name: str = "",
) -> tuple:
    """Create a wired (client, server) socket pair WITHOUT connecting.

    Call ``client.connect()`` when the connection should actually start
    (e.g. a relay opens its upstream hop only once its downstream side is
    accepted).
    """
    if server_nagle is None:
        server_nagle = nagle
    client = TCPSocket(
        sim, fwd_link, rev_link, nagle=nagle, delayed_ack=delayed_ack,
        rwnd=rwnd, name=f"{name}:client",
    )
    server = TCPSocket(
        sim, rev_link, fwd_link, nagle=server_nagle, delayed_ack=delayed_ack,
        rwnd=rwnd, name=f"{name}:server",
    )
    client.peer = server
    server.peer = client
    return client, server


def connect_tcp(
    sim: Simulator,
    fwd_link: Link,
    rev_link: Link,
    nagle: bool = True,
    server_nagle: Optional[bool] = None,
    delayed_ack: bool = False,
    rwnd: int = DEFAULT_RWND,
    name: str = "",
) -> tuple:
    """Create a wired (client, server) socket pair and start connecting.

    The client's SYN is sent immediately; attach callbacks right after
    this call returns — no simulated time passes until ``sim.run()``.
    """
    client, server = make_tcp_pair(
        sim, fwd_link, rev_link, nagle=nagle, server_nagle=server_nagle,
        delayed_ack=delayed_ack, rwnd=rwnd, name=name,
    )
    client.connect()
    return client, server
