"""Point-to-point simulated links.

A link is unidirectional with a serialization rate (bandwidth) and a
propagation delay — the same two knobs the paper turns with ``tc``.
Packets serialize FIFO (the link is busy until the last bit is on the
wire) and arrive ``delay`` seconds after serialization finishes.  A
``None`` bandwidth means infinitely fast serialization.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.engine import Simulator


class Link:
    """One direction of a network link."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: Optional[float],
        delay_s: float,
        name: str = "",
    ):
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive (or None for infinite)")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.name = name
        self._busy_until = 0.0
        self.bytes_carried = 0
        self.packets_carried = 0

    def transit_time(self, size_bytes: int) -> float:
        """Serialization time for a packet of ``size_bytes``."""
        if self.bandwidth_bps is None:
            return 0.0
        return size_bytes * 8 / self.bandwidth_bps

    def send(self, size_bytes: int, deliver: Callable[[], None]) -> float:
        """Carry a packet; ``deliver`` fires on arrival.

        Returns the (absolute) delivery time.
        """
        start = max(self.sim.now, self._busy_until)
        done_serializing = start + self.transit_time(size_bytes)
        self._busy_until = done_serializing
        arrival = done_serializing + self.delay_s
        self.bytes_carried += size_bytes
        self.packets_carried += 1
        self.sim.schedule(arrival - self.sim.now, deliver)
        return arrival


def duplex(
    sim: Simulator,
    bandwidth_bps: Optional[float],
    delay_s: float,
    name: str = "",
) -> tuple:
    """Create a symmetric link pair (forward, reverse)."""
    return (
        Link(sim, bandwidth_bps, delay_s, name=f"{name}:fwd"),
        Link(sim, bandwidth_bps, delay_s, name=f"{name}:rev"),
    )
