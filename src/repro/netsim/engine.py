"""The discrete-event engine.

A plain priority-queue scheduler.  Ties are broken by insertion order, so
runs are fully deterministic.  Time is in seconds (float).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event loop: ``schedule`` callbacks, then ``run``."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._events_processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = Event(self.now + delay, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Process events until the queue empties (or ``until`` is reached).

        Returns the simulation time afterwards.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._events_processed += 1
            if self._events_processed > max_events:
                raise RuntimeError("simulation exceeded event budget (livelock?)")
            self.now = event.time
            event.fn()
        return self.now

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
