"""NoEncrypt: plain TCP endpoints and relay.

The cleartext baseline.  :class:`PlainConnection` implements the
:class:`repro.core.Connection` protocol over nothing at all (the
"handshake" completes instantly, bytes pass through untouched), so
harness code treats all six protocol modes uniformly;
:class:`PlainRelay` forwards bytes and can observe or transform them —
a cleartext middlebox sees everything.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.events import ApplicationData, Event, HandshakeComplete
from repro.core.instrument import record_event


class PlainConnection:
    """A no-op 'secure' connection: bytes in, bytes out."""

    def __init__(self) -> None:
        self._out: List[bytes] = []
        self._events: List[Event] = []
        self.handshake_complete = False
        self.closed = False
        self.resumed = False
        # Instrumentation plane: None (the default) costs one attribute
        # load per hook site; attach a repro.core.Instruments to enable.
        self.instruments = None

    def start_handshake(self) -> None:
        """No handshake on plain TCP; completes instantly."""
        if not self.handshake_complete:
            self.handshake_complete = True
            self._emit(HandshakeComplete(cipher_suite="none"))

    def data_to_send(self) -> bytes:
        out = b"".join(self._out)
        self._out.clear()
        return out

    def data_to_send_views(self) -> List[bytes]:
        """Pending output as buffers for scatter-gather writes."""
        views, self._out = self._out, []
        return views

    def receive_data(self, data: bytes) -> List[Event]:
        if not self.handshake_complete:
            self.start_handshake()
        if data:
            self._emit(ApplicationData(data=data))
        events, self._events = self._events, []
        return events

    def receive_bytes(self, data: bytes) -> List[Event]:
        """Historical name for :meth:`receive_data`."""
        return self.receive_data(data)

    def send_application_data(self, data: bytes, context_id: int = 0) -> None:
        if self.instruments is not None:
            self.instruments.inc("records.out")
            self.instruments.inc(f"context.{context_id}.bytes_out", len(data))
        self._out.append(data)

    def close(self) -> None:
        self.closed = True

    def _emit(self, event: Event) -> None:
        if self.instruments is not None:
            record_event(self.instruments, event)
        self._events.append(event)


class PlainRelay:
    """A cleartext relay with optional transform/observe hooks."""

    def __init__(
        self,
        transformer: Optional[Callable[[str, bytes], bytes]] = None,
        observer: Optional[Callable[[str, bytes], None]] = None,
    ):
        self.transformer = transformer
        self.observer = observer
        self._to_client: List[bytes] = []
        self._to_server: List[bytes] = []

    def _relay(self, direction: str, data: bytes, out: List[bytes]) -> List[Event]:
        if self.transformer is not None:
            data = self.transformer(direction, data)
        if self.observer is not None:
            self.observer(direction, data)
        out.append(data)
        return []

    def receive_from_client(self, data: bytes) -> List[Event]:
        return self._relay("c2s", data, self._to_server)

    def receive_from_server(self, data: bytes) -> List[Event]:
        return self._relay("s2c", data, self._to_client)

    def data_to_client(self) -> bytes:
        out = b"".join(self._to_client)
        self._to_client.clear()
        return out

    def data_to_server(self) -> bytes:
        out = b"".join(self._to_server)
        self._to_server.clear()
        return out

    def data_to_client_views(self) -> List[bytes]:
        views, self._to_client = self._to_client, []
        return views

    def data_to_server_views(self) -> List[bytes]:
        views, self._to_server = self._to_server, []
        return views
