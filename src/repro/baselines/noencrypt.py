"""NoEncrypt: plain TCP endpoints and relay.

The cleartext baseline.  :class:`PlainConnection` mimics the sans-I/O
connection API (including a no-op "handshake") so harness code treats all
four protocol modes uniformly; :class:`PlainRelay` forwards bytes and can
observe or transform them — a cleartext middlebox sees everything.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.tls.connection import ApplicationData, Event, HandshakeComplete


class PlainConnection:
    """A no-op 'secure' connection: bytes in, bytes out."""

    def __init__(self) -> None:
        self._out = bytearray()
        self.handshake_complete = False
        self.closed = False
        self._started = False

    def start_handshake(self) -> None:
        """No handshake on plain TCP; completes instantly."""
        self._started = True
        self.handshake_complete = True

    def data_to_send(self) -> bytes:
        out = bytes(self._out)
        self._out.clear()
        return out

    def receive_bytes(self, data: bytes) -> List[Event]:
        events: List[Event] = []
        if not self.handshake_complete:
            self.handshake_complete = True
            events.append(HandshakeComplete(cipher_suite="none"))
        if data:
            events.append(ApplicationData(data=data))
        return events

    def send_application_data(self, data: bytes, context_id: int = 0) -> None:
        self._out += data

    def close(self) -> None:
        self.closed = True


class PlainRelay:
    """A cleartext relay with optional transform/observe hooks."""

    def __init__(
        self,
        transformer: Optional[Callable[[str, bytes], bytes]] = None,
        observer: Optional[Callable[[str, bytes], None]] = None,
    ):
        self.transformer = transformer
        self.observer = observer
        self._to_client = bytearray()
        self._to_server = bytearray()

    def _relay(self, direction: str, data: bytes, out: bytearray) -> List[object]:
        if self.transformer is not None:
            data = self.transformer(direction, data)
        if self.observer is not None:
            self.observer(direction, data)
        out += data
        return []

    def receive_from_client(self, data: bytes) -> List[object]:
        return self._relay("c2s", data, self._to_server)

    def receive_from_server(self, data: bytes) -> List[object]:
        return self._relay("s2c", data, self._to_client)

    def data_to_client(self) -> bytes:
        out = bytes(self._to_client)
        self._to_client.clear()
        return out

    def data_to_server(self) -> bytes:
        out = bytes(self._to_server)
        self._to_server.clear()
        return out
