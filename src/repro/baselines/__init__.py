"""The protocol baselines the paper compares mcTLS against (§5).

* **SplitTLS** — today's interception practice: a custom root certificate
  is installed on the client; the middlebox impersonates the server by
  minting a certificate on the fly and maintains two independent TLS
  connections, decrypting and re-encrypting everything.
* **E2E-TLS** — one end-to-end TLS connection; the middlebox blindly
  forwards ciphertext and can do nothing else.
* **NoEncrypt** — plain TCP through a forwarding relay.

All three implement the same formal sans-I/O surfaces as the mcTLS
classes (endpoints: :class:`repro.core.Connection`; relays:
:class:`repro.core.RelayProcessor`), so experiments and runtimes swap
protocols without changing harness code.
"""

from repro.baselines.e2e import BlindRelay
from repro.baselines.noencrypt import PlainConnection, PlainRelay
from repro.baselines.split import SplitTLSRelay

__all__ = ["BlindRelay", "PlainConnection", "PlainRelay", "SplitTLSRelay"]
